#include "core/detect.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "test_fixtures.h"

namespace netclust::core {
namespace {

class DetectOnSmallWorld : public ::testing::Test {
 protected:
  DetectOnSmallWorld()
      : world_(netclust::testing::GetSmallWorld()),
        clustering_(ClusterNetworkAware(world_.generated.log, world_.table)),
        report_(DetectSpidersAndProxies(world_.generated.log, clustering_)) {}

  const netclust::testing::SmallWorld& world_;
  Clustering clustering_;
  DetectionReport report_;
};

TEST_F(DetectOnSmallWorld, FindsTheInjectedSpider) {
  const auto spiders = report_.SpiderAddresses();
  ASSERT_EQ(world_.generated.truth.spiders.size(), 1u);
  const net::IpAddress truth = *world_.generated.truth.spiders.begin();
  EXPECT_TRUE(spiders.contains(truth))
      << "spider " << truth.ToString() << " not flagged";
}

TEST_F(DetectOnSmallWorld, FindsTheInjectedProxy) {
  const auto proxies = report_.ProxyAddresses();
  ASSERT_EQ(world_.generated.truth.proxies.size(), 1u);
  const net::IpAddress truth = *world_.generated.truth.proxies.begin();
  EXPECT_TRUE(proxies.contains(truth))
      << "proxy " << truth.ToString() << " not flagged";
}

TEST_F(DetectOnSmallWorld, DoesNotDrownInFalsePositives) {
  EXPECT_LE(report_.suspects.size(), 8u);
  for (const Suspect& suspect : report_.suspects) {
    // Every suspect dominates its cluster, as required for candidacy.
    EXPECT_GE(suspect.cluster_request_share, 0.5);
  }
}

TEST_F(DetectOnSmallWorld, SpiderAndProxyHaveOpposedArrivalPatterns) {
  const Suspect* spider = nullptr;
  const Suspect* proxy = nullptr;
  for (const Suspect& suspect : report_.suspects) {
    if (world_.generated.truth.spiders.contains(suspect.client)) {
      spider = &suspect;
    }
    if (world_.generated.truth.proxies.contains(suspect.client)) {
      proxy = &suspect;
    }
  }
  ASSERT_NE(spider, nullptr);
  ASSERT_NE(proxy, nullptr);
  // Figure 9: the proxy tracks the log's diurnal wave all day long; the
  // spider is a tight burst (low active fraction, weaker correlation).
  EXPECT_GT(proxy->arrival_correlation, 0.5);
  EXPECT_GT(proxy->active_fraction, 0.8);
  EXPECT_LE(spider->active_fraction, 0.5);
  EXPECT_LT(spider->arrival_correlation, proxy->arrival_correlation);
}

TEST_F(DetectOnSmallWorld, SpiderDominatesItsClusterLikeFigureTen) {
  for (const Suspect& suspect : report_.suspects) {
    if (suspect.kind != SuspectKind::kSpider) continue;
    // Figure 10: 99.79% of the cluster's requests from the spider host.
    EXPECT_GT(suspect.cluster_request_share, 0.9);
    EXPECT_GT(suspect.unique_urls, 100u);
  }
}

TEST_F(DetectOnSmallWorld, ProxyPresentsManyUserAgents) {
  for (const Suspect& suspect : report_.suspects) {
    if (world_.generated.truth.proxies.contains(suspect.client)) {
      EXPECT_GE(suspect.distinct_agents, 4u);
    }
  }
}

TEST_F(DetectOnSmallWorld, RemoveClientsStripsAllTheirRequests) {
  const auto flagged = report_.AllAddresses();
  ASSERT_FALSE(flagged.empty());
  const weblog::ServerLog filtered =
      RemoveClients(world_.generated.log, flagged);

  std::uint64_t flagged_requests = 0;
  for (const auto& request : world_.generated.log.requests()) {
    if (flagged.contains(request.client)) ++flagged_requests;
  }
  EXPECT_EQ(filtered.request_count(),
            world_.generated.log.request_count() - flagged_requests);
  EXPECT_EQ(filtered.unique_clients(),
            world_.generated.log.unique_clients() - flagged.size());
  for (const auto& request : filtered.requests()) {
    EXPECT_FALSE(flagged.contains(request.client));
  }
}

TEST(Detect, EmptyLogYieldsNothing) {
  weblog::ServerLog log("empty");
  Clustering clustering;
  const DetectionReport report = DetectSpidersAndProxies(log, clustering);
  EXPECT_TRUE(report.suspects.empty());
}

TEST(Detect, QuietLogHasNoSuspects) {
  // A handful of light clients: nobody crosses the min_log_share bar.
  weblog::ServerLog log("quiet");
  for (int i = 0; i < 100; ++i) {
    weblog::LogRecord record;
    record.client = net::IpAddress(10, 0, static_cast<std::uint8_t>(i), 1);
    record.timestamp = i * 60;
    record.url = "/p" + std::to_string(i % 7);
    log.Append(record);
  }
  bgp::PrefixTable table;
  const int src = table.AddSource(
      {"T", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  table.Insert(net::Prefix(net::IpAddress(10, 0, 0, 0), 8), src);
  const Clustering clustering = ClusterNetworkAware(log, table);

  DetectionConfig config;
  config.min_log_share = 0.1;
  const DetectionReport report =
      DetectSpidersAndProxies(log, clustering, config);
  EXPECT_TRUE(report.suspects.empty());
}

TEST(Detect, ReportAddressSetsArePartitioned) {
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  const DetectionReport report =
      DetectSpidersAndProxies(world.generated.log, clustering);
  const auto spiders = report.SpiderAddresses();
  const auto proxies = report.ProxyAddresses();
  const auto all = report.AllAddresses();
  EXPECT_EQ(spiders.size() + proxies.size(), all.size());
  for (const auto& address : spiders) {
    EXPECT_FALSE(proxies.contains(address));
  }
}

}  // namespace
}  // namespace netclust::core
