# Empty dependencies file for bench_fig6_multilog.
# This may be replaced when dependencies are built.
