#include "synth/internet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "synth/buddy.h"
#include "synth/rng.h"

namespace netclust::synth {
namespace {

// Hash-domain separators so independent per-entity draws don't correlate.
constexpr std::uint64_t kDnsDomain = 0x444E53;    // "DNS"
constexpr std::uint64_t kProbeDomain = 0x505242;  // "PRB"
constexpr std::uint64_t kRttDomain = 0x525454;    // "RTT"

// Base round-trip times (ms) between regions. Regions 0-2 are US coasts/
// center; 3-5 are Europe, Asia-Pacific and South America. Values reflect
// the paper era's typical WAN latencies.
constexpr double kRegionRtt[6][6] = {
    {18, 45, 70, 95, 160, 130},   // US-East
    {45, 15, 45, 120, 150, 140},  // US-Central
    {70, 45, 16, 150, 120, 160},  // US-West
    {95, 120, 150, 25, 280, 220}, // Europe
    {160, 150, 120, 280, 30, 320},// Asia-Pacific
    {130, 140, 160, 220, 320, 35},// South America
};

constexpr const char* kOrgWords[] = {
    "acme",  "globo", "univ",  "metro", "zenith", "cyber", "nova",
    "delta", "apex",  "quant", "omni",  "vertex", "pioneer", "summit",
    "lumen", "argo",  "boreal", "castor", "drift", "ember"};

constexpr const char* kDepartments[] = {
    "cs", "ee", "math", "phys", "sales", "eng", "hr",   "lab",
    "it", "ops", "research", "web", "mail", "dial", "lan", "net"};

constexpr const char* kUsTlds[] = {"com", "edu", "net", "org", "gov", "mil"};

// Country suffixes for non-US orgs; a mix of one- and two-component TLDs
// so the validator's variable-depth suffix rule is exercised.
constexpr const char* kCcTlds[] = {"ac.za", "co.jp", "fr",     "de",
                                   "co.uk", "com.br", "ca",    "it",
                                   "nl",    "se",     "es",    "hr",
                                   "co.kr", "edu.au", "com.mx"};

template <typename T, std::size_t N>
const T& PickStable(const T (&table)[N], std::uint64_t key) {
  return table[Mix64(key) % N];
}

}  // namespace

const std::vector<double>& PaperPrefixLengthHistogram() {
  // Figure 1(b) of the paper (Mae-West, 7/3/1999) for lengths 15..24 and 26,
  // with small tails added for the lengths Figure 1(a)'s histogram shows but
  // the table omits. Index = prefix length.
  static const std::vector<double> histogram = [] {
    std::vector<double> h(33, 0.0);
    h[8] = 20;
    h[9] = 5;
    h[10] = 5;
    h[11] = 10;
    h[12] = 25;
    h[13] = 40;
    h[14] = 60;
    h[15] = 111;
    h[16] = 3098;
    h[17] = 333;
    h[18] = 706;
    h[19] = 2092;
    h[20] = 1009;
    h[21] = 1275;
    h[22] = 1805;
    h[23] = 2227;
    h[24] = 13937;
    h[25] = 40;
    h[26] = 34;
    h[27] = 25;
    h[28] = 30;
    h[29] = 15;
    h[30] = 8;
    return h;
  }();
  return histogram;
}

Internet::Internet(InternetConfig config, std::vector<Allocation> allocations,
                   std::vector<RegistryOrg> orgs)
    : config_(config),
      allocations_(std::move(allocations)),
      orgs_(std::move(orgs)) {
  for (const Allocation& allocation : allocations_) {
    locator_.Insert(allocation.prefix, allocation.index);
  }
}

const Allocation* Internet::Locate(net::IpAddress address) const {
  const auto match = locator_.LongestMatch(address);
  if (!match.has_value()) return nullptr;
  return &allocations_[*match->value];
}

net::IpAddress Internet::HostAddress(const Allocation& allocation,
                                     std::uint64_t host_index) const {
  // Skip the network address; wrap within the usable host range. For /31
  // and /32 blocks (absent from the generator's histogram) this degrades
  // to the network address itself.
  const std::uint64_t usable =
      allocation.prefix.size() > 2 ? allocation.prefix.size() - 2 : 1;
  return net::IpAddress(allocation.prefix.network().bits() +
                        1 + static_cast<std::uint32_t>(host_index % usable));
}

std::optional<std::string> Internet::ResolveName(
    net::IpAddress address) const {
  const Allocation* allocation = Locate(address);
  if (allocation == nullptr) return std::nullopt;
  if (HashToUnit(config_.seed ^ kDnsDomain, address.bits()) >=
      allocation->dns_coverage) {
    return std::nullopt;
  }
  const std::uint32_t host_part =
      address.bits() - allocation->prefix.network().bits();
  if (allocation->kind == AllocationKind::kIspResale &&
      !allocation->customer_domains.empty()) {
    const auto& domains = allocation->customer_domains;
    const std::string& customer =
        domains[Mix64(address.bits()) % domains.size()];
    return "h" + std::to_string(host_part) + "." + customer;
  }
  return "h" + std::to_string(host_part) + "." + allocation->domain;
}

bool Internet::HostAnswersProbe(net::IpAddress address) const {
  return HashToUnit(config_.seed ^ kProbeDomain, address.bits()) < 0.5;
}

const std::vector<std::string>* Internet::RouterPath(
    net::IpAddress address) const {
  const Allocation* allocation = Locate(address);
  return allocation == nullptr ? nullptr : &allocation->router_path;
}

double Internet::RttMs(net::IpAddress address, int from_region) const {
  const Allocation* allocation = Locate(address);
  const int to_region =
      allocation == nullptr ? kRegionCount - 1 : allocation->region;
  const double base =
      kRegionRtt[from_region % kRegionCount][to_region % kRegionCount];
  // Stable per-host jitter: last-mile variation in [0.85, 1.45).
  const double jitter =
      0.85 + 0.6 * HashToUnit(config_.seed ^ kRttDomain, address.bits());
  return base * jitter;
}

Internet GenerateInternet(const InternetConfig& config) {
  Rng rng(config.seed);
  const std::vector<double>& histogram = PaperPrefixLengthHistogram();
  // Leaf allocations never get the full /8..;/11 blocks (those are org
  // blocks); clamp the leaf-length sampler accordingly.
  std::vector<double> leaf_weights(33, 0.0);
  for (int l = 12; l <= 30; ++l) {
    leaf_weights[static_cast<std::size_t>(l)] =
        histogram[static_cast<std::size_t>(l)];
  }
  WeightedSampler leaf_sampler(leaf_weights);

  // Roots span all three address classes; shuffled so allocation draws
  // from Class A, B and C space alike (the buddy allocator consumes roots
  // LIFO, and an ordered list would confine everything to one class).
  BuddyAllocator space;
  {
    std::vector<int> octets;
    for (int octet = 4; octet <= 223; ++octet) {
      if (octet == 10 || octet == 127) continue;  // private / loopback
      octets.push_back(octet);
    }
    std::shuffle(octets.begin(), octets.end(), rng.engine());
    for (const int octet : octets) {
      space.AddRoot(net::Prefix(
          net::IpAddress(static_cast<std::uint8_t>(octet), 0, 0, 0), 8));
    }
  }

  std::vector<Allocation> allocations;
  std::vector<RegistryOrg> orgs;
  allocations.reserve(config.allocation_count);

  while (allocations.size() < config.allocation_count) {
    RegistryOrg org;
    org.index = static_cast<std::uint32_t>(orgs.size());
    org.national_gateway = rng.Bernoulli(config.national_gateway_org_fraction);
    org.us_based = !org.national_gateway && rng.Bernoulli(0.72);
    org.region = org.us_based
                     ? static_cast<int>(rng.Uniform(3))
                     : 3 + static_cast<int>(rng.Uniform(3));
    org.post_1997 = rng.Bernoulli(0.35);
    org.bgp_dark = rng.Bernoulli(config.bgp_dark_org_fraction);
    org.unregistered = org.bgp_dark && rng.Bernoulli(config.unregistered_fraction);
    org.as_number = 100 + org.index;

    // Org naming: "univ17.edu" (US) or "univ17.ac.za" (country-code).
    const std::string word =
        std::string(PickStable(kOrgWords, Mix64(config.seed) ^ org.index)) +
        std::to_string(org.index);
    const std::string tld =
        org.us_based
            ? PickStable(kUsTlds, Mix64(config.seed ^ 7) ^ org.index)
            : PickStable(kCcTlds, Mix64(config.seed ^ 9) ^ org.index);
    org.name = word + "." + tld;

    // How many leaf allocations this org subdivides into.
    std::size_t leaf_count =
        org.national_gateway
            ? 15 + rng.Uniform(60)
            : 1 + static_cast<std::size_t>(rng.Exponential(4.0));
    leaf_count = std::min(leaf_count,
                          config.allocation_count - allocations.size() + 8);

    // Sample the leaves, then size the org block to fit them (with slack
    // for buddy fragmentation).
    std::vector<int> leaf_lengths(leaf_count);
    std::uint64_t total_size = 0;
    for (int& length : leaf_lengths) {
      length = static_cast<int>(leaf_sampler.Sample(rng));
      total_size += std::uint64_t{1} << (32 - length);
    }
    int org_length = 32;
    while (org_length > 8 &&
           (std::uint64_t{1} << (32 - org_length)) <
               total_size + total_size / 2) {
      --org_length;
    }
    const auto block = space.Allocate(org_length);
    if (!block.has_value()) break;  // address space exhausted (never at paper scale)
    org.block = *block;

    BuddyAllocator inside;
    inside.AddRoot(org.block);
    // Large leaves first: avoids fragmentation failures inside the block.
    std::sort(leaf_lengths.begin(), leaf_lengths.end());

    for (const int length : leaf_lengths) {
      if (allocations.size() >= config.allocation_count) break;
      const auto leaf = inside.Allocate(std::max(length, org_length));
      if (!leaf.has_value()) continue;  // slack exhausted; drop this leaf

      Allocation allocation;
      allocation.index = static_cast<std::uint32_t>(allocations.size());
      allocation.prefix = *leaf;
      allocation.org = org.index;
      allocation.as_number = org.as_number;
      allocation.us_based = org.us_based;
      allocation.region = org.region;

      if (org.national_gateway) {
        allocation.kind = AllocationKind::kNationalGateway;
        // Distinct institutions directly under the country TLD: a
        // too-large country cluster mixes suffixes and fails validation.
        allocation.domain =
            std::string(PickStable(kOrgWords,
                                   Mix64(config.seed ^ 11) ^
                                       allocation.index)) +
            std::to_string(allocation.index) + "." + tld;
      } else if (rng.Bernoulli(config.isp_resale_fraction)) {
        allocation.kind = AllocationKind::kIspResale;
        allocation.domain =
            std::string(kDepartments[allocation.index %
                                     std::size(kDepartments)]) +
            "." + org.name;
        const std::size_t customers = 3 + rng.Uniform(6);
        for (std::size_t c = 0; c < customers; ++c) {
          allocation.customer_domains.push_back(
              std::string(PickStable(
                  kOrgWords, Mix64(config.seed ^ 13) ^
                                 (allocation.index * 131 + c))) +
              std::to_string(allocation.index) + std::to_string(c) + ".com");
        }
      } else {
        allocation.kind = AllocationKind::kNormal;
        allocation.domain =
            std::string(kDepartments[allocation.index %
                                     std::size(kDepartments)]) +
            "." + org.name;
      }

      allocation.dns_coverage =
          rng.Bernoulli(config.unresolvable_allocation_fraction)
              ? 0.0
              : config.host_dns_coverage;

      // Router path: core transit hops, then the org border, then the
      // allocation's own gateway. Hosts share their 2-hop path suffix iff
      // they share an allocation.
      const int home_transit = static_cast<int>(
          Mix64(config.seed ^ 17 ^ org.index) %
          static_cast<std::uint64_t>(config.transit_as_count));
      const int second_transit =
          (home_transit + 1 + static_cast<int>(Mix64(org.index) % 3)) %
          config.transit_as_count;
      allocation.router_path = {
          "core" + std::to_string(second_transit) + ".transit.net",
          "core" + std::to_string(home_transit) + ".transit.net",
          (org.national_gateway ? "natgw" : "br") + std::to_string(org.index) +
              ".as" + std::to_string(org.as_number) + ".net",
          "gw" + std::to_string(allocation.index) + ".as" +
              std::to_string(org.as_number) + ".net",
      };

      org.allocations.push_back(allocation.index);
      allocations.push_back(std::move(allocation));
    }
    orgs.push_back(std::move(org));
  }

  return Internet(config, std::move(allocations), std::move(orgs));
}

}  // namespace netclust::synth
