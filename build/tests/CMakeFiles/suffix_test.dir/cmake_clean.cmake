file(REMOVE_RECURSE
  "CMakeFiles/suffix_test.dir/suffix_test.cpp.o"
  "CMakeFiles/suffix_test.dir/suffix_test.cpp.o.d"
  "suffix_test"
  "suffix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
