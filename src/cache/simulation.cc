#include "cache/simulation.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

namespace netclust::cache {

double SimulationResult::ServerHitRatio() const {
  std::uint64_t requests = direct_requests;
  std::uint64_t absorbed = 0;
  for (const ProxyStats& proxy : proxies) {
    requests += proxy.requests;
    absorbed += proxy.hits;
  }
  return requests == 0 ? 0.0
                       : static_cast<double>(absorbed) /
                             static_cast<double>(requests);
}

double SimulationResult::ServerByteHitRatio() const {
  std::uint64_t bytes = direct_bytes;
  std::uint64_t from_server = direct_bytes;
  for (const ProxyStats& proxy : proxies) {
    bytes += proxy.bytes_requested;
    from_server += proxy.bytes_from_server;
  }
  return bytes == 0 ? 0.0
                    : 1.0 - static_cast<double>(from_server) /
                                static_cast<double>(bytes);
}

SimulationResult SimulateProxyCaching(const weblog::ServerLog& log,
                                      const core::Clustering& clustering,
                                      const SimulationConfig& config) {
  SimulationResult result;
  result.approach = clustering.approach;

  // Resource sizes: the largest body observed per URL (304/404 rows carry
  // zero bytes but still address the same resource). Also access counts
  // for the min_url_accesses filter.
  std::vector<std::uint64_t> url_size(log.unique_urls(), 0);
  std::vector<std::uint64_t> url_accesses(log.unique_urls(), 0);
  for (const weblog::CompactRequest& request : log.requests()) {
    url_size[request.url_id] =
        std::max<std::uint64_t>(url_size[request.url_id],
                                request.response_bytes);
    ++url_accesses[request.url_id];
  }

  const core::ClusterIndex index(clustering);
  const OriginServer origin(config.origin_seed,
                            config.origin_mean_update_hours);

  // Proxies are created lazily: most clusters are small and a dense vector
  // of caches would dwarf the trace itself at full scale.
  std::unordered_map<std::uint32_t, std::unique_ptr<ProxyCache>> proxies;

  for (const weblog::CompactRequest& request : log.requests()) {
    if (config.min_url_accesses > 0 &&
        url_accesses[request.url_id] < config.min_url_accesses) {
      ++result.skipped_requests;
      continue;
    }
    const std::uint64_t size = url_size[request.url_id];
    ++result.total_requests;
    result.total_bytes += size;

    const auto cluster = index.ClusterOf(request.client);
    if (!cluster.has_value()) {
      ++result.direct_requests;
      result.direct_bytes += size;
      if (config.latency != nullptr) {
        result.total_latency_ms +=
            config.latency->OriginRttMs(request.client) +
            config.latency->TransferMs(size);
      }
      continue;
    }
    auto [it, inserted] = proxies.try_emplace(*cluster);
    if (inserted) {
      it->second = std::make_unique<ProxyCache>(config.proxy, &origin);
    }
    const RequestOutcome outcome =
        it->second->HandleRequest(request.url_id, size, request.timestamp);
    if (config.latency != nullptr) {
      const double proxy_rtt = config.latency->ProxyRttMs(request.client);
      switch (outcome) {
        case RequestOutcome::kHit:
          result.total_latency_ms += proxy_rtt;
          break;
        case RequestOutcome::kValidatedHit:
          result.total_latency_ms +=
              proxy_rtt + config.latency->OriginRttMs(request.client);
          break;
        case RequestOutcome::kMiss:
          result.total_latency_ms +=
              proxy_rtt + config.latency->OriginRttMs(request.client) +
              config.latency->TransferMs(size);
          break;
      }
    }
  }

  result.proxies.assign(clustering.cluster_count(), ProxyStats{});
  for (const auto& [cluster, proxy] : proxies) {
    result.proxies[cluster] = proxy->stats();
  }
  return result;
}

}  // namespace netclust::cache
