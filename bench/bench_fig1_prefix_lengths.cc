// Figure 1: distribution of prefix lengths in the MAE-WEST routing table,
// as a histogram (a) and across four consecutive days (b).
#include <array>
#include <cstdio>
#include <map>

#include "bench_common.h"

namespace {

using namespace netclust;

std::map<int, std::size_t> LengthHistogram(const bgp::Snapshot& snapshot) {
  std::map<int, std::size_t> histogram;
  for (const auto& entry : snapshot.entries) {
    ++histogram[entry.prefix.length()];
  }
  return histogram;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 1 — prefix-length distribution of MAE-WEST snapshots",
      "~50% of prefixes are /24; /16 is the second mode; counts are stable "
      "day to day (7/3-7/6/1999: /24 = 13937, 14029, 14013, 14018)");

  const auto& scenario = bench::GetScenario();
  // MAE-WEST is source index 7 in DefaultVantageProfiles().
  const std::size_t mae_west = 7;

  std::array<bgp::Snapshot, 4> days;
  for (int d = 0; d < 4; ++d) {
    days[static_cast<std::size_t>(d)] =
        scenario.vantages().MakeSnapshot(mae_west, d);
  }

  // (a) histogram for day 0.
  const auto day0 = LengthHistogram(days[0]);
  std::size_t total = 0;
  for (const auto& [length, count] : day0) total += count;
  std::printf("\n-- Figure 1(a): histogram, day 0 (%zu prefixes) --\n",
              total);
  std::printf("%8s  %8s  %8s\n", "length", "count", "fraction");
  for (const auto& [length, count] : day0) {
    std::printf("%8d  %8zu  %8.4f\n", length, count,
                static_cast<double>(count) / static_cast<double>(total));
  }
  std::printf("/24 share: %.1f%% (paper: ~50%%)\n",
              100.0 * static_cast<double>(day0.count(24) ? day0.at(24) : 0) /
                  static_cast<double>(total));

  // (b) counts over four days for the lengths the paper tabulates.
  std::printf("\n-- Figure 1(b): counts per day --\n");
  std::printf("%8s", "length");
  for (int d = 0; d < 4; ++d) std::printf("  day+%d ", d);
  std::printf("\n");
  for (const int length : {15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 26}) {
    std::printf("%8d", length);
    for (int d = 0; d < 4; ++d) {
      const auto histogram = LengthHistogram(days[static_cast<std::size_t>(d)]);
      const auto it = histogram.find(length);
      std::printf("  %6zu", it == histogram.end() ? 0 : it->second);
    }
    std::printf("\n");
  }
  std::printf(
      "\nday-to-day variation of the /24 row: paper <1%%; here the same "
      "flap/growth model drives Table 4.\n");
  return 0;
}
