// Compact in-memory server log.
//
// The paper's logs run to tens of millions of requests, so ServerLog interns
// URLs and User-Agent strings and stores fixed-width request rows. All the
// clustering, detection and cache-simulation code consumes this type.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <istream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ip_address.h"
#include "weblog/record.h"

namespace netclust::weblog {

/// Interns strings to dense uint32 ids.
class StringInterner {
 public:
  std::uint32_t Intern(std::string_view text);
  [[nodiscard]] const std::string& Lookup(std::uint32_t id) const {
    return strings_[id];
  }
  /// Id of `text` if already interned, or kNotFound.
  [[nodiscard]] std::uint32_t Find(std::string_view text) const;
  [[nodiscard]] std::size_t size() const { return strings_.size(); }

  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  // deque: growth never moves existing strings, so the string_view keys in
  // index_ (which point into these strings) stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

/// One request row; 24 bytes.
struct CompactRequest {
  net::IpAddress client;
  std::int64_t timestamp = 0;
  std::uint32_t url_id = 0;
  std::uint32_t response_bytes = 0;
  std::uint16_t status = 200;
  std::uint8_t agent_id = 0;  // 0 = unknown; logs rarely have >255 distinct agents per study
  Method method = Method::kGet;
};

/// Sampling modes for SampleLog (§3.3/§3.6: "this selective sampling can
/// be performed in either a client-based or a request-based manner").
enum class SampleMode {
  /// Keep every request of a `fraction` sample of clients — preserves
  /// per-client behaviour (think times, per-client URL sets).
  kByClient,
  /// Keep a `fraction` sample of individual requests — preserves the
  /// aggregate arrival process.
  kByRequest,
};

/// A server log: interned request rows plus summary accounting.
class ServerLog {
 public:
  explicit ServerLog(std::string name = "log") : name_(std::move(name)) {}

  /// Appends one request. 0.0.0.0 clients are dropped, per the paper
  /// (§3.2.2 footnote: BOOTP artifact). Returns true if appended.
  bool Append(const LogRecord& record);

  /// Reads CLF lines from a stream, skipping (and counting) malformed ones.
  /// Returns the number of records appended.
  std::size_t AppendClfStream(std::istream& in,
                              std::size_t* malformed = nullptr);

  /// Writes every request as a CLF/combined line (round-trips through
  /// AppendClfStream). Returns the number of lines written.
  std::size_t WriteClfStream(std::ostream& out) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<CompactRequest>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t request_count() const { return requests_.size(); }
  [[nodiscard]] std::size_t unique_clients() const { return clients_.size(); }
  [[nodiscard]] std::size_t unique_urls() const { return urls_.size(); }
  /// Distinct User-Agent strings interned so far; bounded by kMaxAgents —
  /// past that, new agents collapse into the last id without interning.
  [[nodiscard]] std::size_t unique_agents() const { return agents_.size(); }

  /// The one-byte agent-id space: ids 1..255 (0 = unknown), so at most
  /// 255 distinct strings are ever interned.
  static constexpr std::uint32_t kMaxAgents = 255;

  [[nodiscard]] const std::string& url(std::uint32_t id) const {
    return urls_.Lookup(id);
  }
  [[nodiscard]] const std::string& agent(std::uint8_t id) const {
    return agents_.Lookup(id);
  }

  /// Distinct client addresses, in first-seen order.
  [[nodiscard]] const std::vector<net::IpAddress>& clients() const {
    return client_order_;
  }

  /// Log time span [first, last] over appended records; 0,0 when empty.
  [[nodiscard]] std::int64_t start_time() const { return start_time_; }
  [[nodiscard]] std::int64_t end_time() const { return end_time_; }

  /// Number of 0.0.0.0 records dropped.
  [[nodiscard]] std::size_t dropped_unspecified() const {
    return dropped_unspecified_;
  }

  /// Deterministic sub-sample of this log (hash-based on `seed`), either
  /// by client or by request. Time order is preserved.
  [[nodiscard]] ServerLog Sample(double fraction, SampleMode mode,
                                 std::uint64_t seed = 0x53414D) const;

 private:
  std::string name_;
  std::vector<CompactRequest> requests_;
  StringInterner urls_;
  StringInterner agents_;
  std::unordered_map<net::IpAddress, std::uint32_t> clients_;
  std::vector<net::IpAddress> client_order_;
  std::int64_t start_time_ = 0;
  std::int64_t end_time_ = 0;
  std::size_t dropped_unspecified_ = 0;
};

}  // namespace netclust::weblog
