// §3.6 second-level clustering: grouping client clusters into network
// clusters by shared upstream path suffix, plus §4.1.4's AS-level proxy
// clusters over the busy set.
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/network_cluster.h"
#include "core/proxy_placement.h"
#include "core/threshold.h"
#include "validate/oracles.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "§3.6/§4.1.4 — network clusters and AS-level proxy clusters",
      "client clusters roll up into network clusters by traceroute path "
      "suffix; proxies group by AS for co-operation");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const core::Clustering clustering =
      core::ClusterNetworkAware(generated.log, scenario.table);

  // Second-level network clusters.
  const validate::OptimizedTraceroute oracle(scenario.internet);
  const auto network = core::ClusterClusters(clustering, oracle);
  std::printf("\n%zu client clusters -> %zu network clusters "
              "(%zu unresolved; %zu probes, %.0fs modelled)\n",
              clustering.cluster_count(), network.network_clusters.size(),
              network.unresolved.size(), network.probes, network.seconds);
  std::printf("\ntop network clusters by requests:\n");
  std::printf("%-28s  %9s  %9s  %9s\n", "upstream suffix", "clusters",
              "clients", "requests");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(network.network_clusters.size(), 10); ++i) {
    const auto& cluster = network.network_clusters[i];
    std::printf("%-28.28s  %9zu  %9zu  %9llu\n",
                cluster.path_suffix.c_str(), cluster.clusters.size(),
                cluster.clients,
                static_cast<unsigned long long>(cluster.requests));
  }

  // AS-level proxy clusters over the busy set.
  const auto busy = core::ThresholdBusyClusters(clustering, 0.7);
  const auto assignments = core::AssignProxies(clustering, busy);
  const auto groups =
      core::GroupProxiesByAs(clustering, assignments, scenario.table);
  int total_proxies = 0;
  for (const auto& assignment : assignments) {
    total_proxies += assignment.proxies;
  }
  std::printf("\nproxy placement: %zu busy clusters -> %d proxies -> "
              "%zu AS-level proxy clusters\n",
              busy.busy.size(), total_proxies, groups.size());
  std::printf("%-10s  %9s  %9s  %9s  %9s\n", "AS", "clusters", "proxies",
              "clients", "requests");
  for (std::size_t i = 0; i < std::min<std::size_t>(groups.size(), 10);
       ++i) {
    std::printf("%-10u  %9zu  %9d  %9zu  %9llu\n", groups[i].as_number,
                groups[i].clusters.size(), groups[i].proxies,
                groups[i].clients,
                static_cast<unsigned long long>(groups[i].requests));
  }
  return 0;
}
