#include "net/ip_address.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace netclust::net {
namespace {

TEST(IpAddress, DefaultIsUnspecified) {
  IpAddress address;
  EXPECT_TRUE(address.IsUnspecified());
  EXPECT_EQ(address.bits(), 0u);
  EXPECT_EQ(address.ToString(), "0.0.0.0");
}

TEST(IpAddress, OctetConstructor) {
  IpAddress address(12, 65, 147, 94);
  EXPECT_EQ(address.bits(), 0x0C41935Eu);
  EXPECT_EQ(address.ToString(), "12.65.147.94");
  const auto octets = address.octets();
  EXPECT_EQ(octets[0], 12);
  EXPECT_EQ(octets[1], 65);
  EXPECT_EQ(octets[2], 147);
  EXPECT_EQ(octets[3], 94);
}

TEST(IpAddress, ParseRoundTripsExamplesFromPaper) {
  // Addresses quoted in §2 and §3.2.1 of the paper.
  for (const char* text :
       {"151.198.194.17", "151.198.194.34", "151.198.194.50", "12.65.147.94",
        "12.65.147.149", "12.65.146.207", "12.65.144.247", "24.48.3.87",
        "24.48.2.166", "0.0.0.0", "255.255.255.255"}) {
    const auto parsed = IpAddress::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.error();
    EXPECT_EQ(parsed.value().ToString(), text);
  }
}

TEST(IpAddress, ParseRejectsMalformedInput) {
  for (const char* text :
       {"", ".", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.256", "1..2.3",
        "1.2.3.4 ", " 1.2.3.4", "a.b.c.d", "1.2.3.-4", "01.2.3.4",
        "1.2.3.04", "1.2.3.4/24", "1.2.3.1000"}) {
    EXPECT_FALSE(IpAddress::Parse(text).ok()) << "accepted: '" << text << "'";
  }
}

TEST(IpAddress, ParseReportsContextInErrors) {
  const auto result = IpAddress::Parse("999.1.1.1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("999.1.1.1"), std::string::npos);
}

TEST(IpAddress, OrderingFollowsNumericValue) {
  EXPECT_LT(IpAddress(9, 255, 255, 255), IpAddress(10, 0, 0, 0));
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_EQ(IpAddress(12, 0, 0, 0), IpAddress(0x0C000000));
}

TEST(IpAddress, HashSpreadsAdjacentAddresses) {
  // Clients from one subnet must not collide; count distinct hash values
  // for a /24's worth of adjacent addresses.
  std::unordered_set<std::size_t> hashes;
  std::hash<IpAddress> hasher;
  for (int i = 0; i < 256; ++i) {
    hashes.insert(hasher(IpAddress(10, 1, 2, static_cast<std::uint8_t>(i))));
  }
  EXPECT_EQ(hashes.size(), 256u);
}

TEST(IpAddress, StreamInsertion) {
  std::ostringstream out;
  out << IpAddress(198, 18, 3, 1);
  EXPECT_EQ(out.str(), "198.18.3.1");
}

TEST(IpAddress, UsableInHashContainers) {
  std::unordered_set<IpAddress> set;
  set.insert(IpAddress(1, 2, 3, 4));
  set.insert(IpAddress(1, 2, 3, 4));
  set.insert(IpAddress(1, 2, 3, 5));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IpAddress(1, 2, 3, 4)));
  EXPECT_FALSE(set.contains(IpAddress(1, 2, 3, 6)));
}

}  // namespace
}  // namespace netclust::net
