file(REMOVE_RECURSE
  "CMakeFiles/clf_test.dir/clf_test.cpp.o"
  "CMakeFiles/clf_test.dir/clf_test.cpp.o.d"
  "clf_test"
  "clf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
