#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "cache/origin.h"

namespace netclust::cache {
namespace {

CacheEntry Entry(std::uint64_t size, std::int64_t expires = 0) {
  return CacheEntry{size, 0, expires};
}

TEST(LruByteCache, InsertAndTouch) {
  LruByteCache cache(1000);
  cache.Insert(1, Entry(100));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.used_bytes(), 100u);
  ASSERT_NE(cache.Touch(1), nullptr);
  EXPECT_EQ(cache.Touch(1)->size, 100u);
  EXPECT_EQ(cache.Touch(2), nullptr);
}

TEST(LruByteCache, EvictsLeastRecentlyUsed) {
  LruByteCache cache(300);
  cache.Insert(1, Entry(100));
  cache.Insert(2, Entry(100));
  cache.Insert(3, Entry(100));
  cache.Touch(1);              // order now: 1,3,2
  cache.Insert(4, Entry(100)); // evicts 2
  EXPECT_EQ(cache.Touch(2), nullptr);
  EXPECT_NE(cache.Touch(1), nullptr);
  EXPECT_NE(cache.Touch(3), nullptr);
  EXPECT_NE(cache.Touch(4), nullptr);
  EXPECT_LE(cache.used_bytes(), 300u);
}

TEST(LruByteCache, PeekDoesNotPromote) {
  LruByteCache cache(200);
  cache.Insert(1, Entry(100));
  cache.Insert(2, Entry(100));
  cache.Peek(1);               // 1 stays least-recently-used
  cache.Insert(3, Entry(100)); // evicts 1
  EXPECT_EQ(cache.Touch(1), nullptr);
  EXPECT_NE(cache.Touch(2), nullptr);
}

TEST(LruByteCache, ReplacingAnEntryAdjustsBytes) {
  LruByteCache cache(1000);
  cache.Insert(1, Entry(100));
  cache.Insert(1, Entry(400));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.used_bytes(), 400u);
}

TEST(LruByteCache, OversizedEntryIsNotAdmitted) {
  LruByteCache cache(100);
  cache.Insert(1, Entry(50));
  cache.Insert(2, Entry(500));  // larger than the whole cache
  EXPECT_EQ(cache.Touch(2), nullptr);
  EXPECT_NE(cache.Touch(1), nullptr);  // and must not nuke everything else
}

TEST(LruByteCache, OversizedReplacementKeepsOldCopy) {
  // Admission rejection is not eviction: re-inserting a key with a body
  // larger than the whole cache must leave the existing smaller copy
  // untouched (a stale revalidation that outgrew the cache must not
  // destroy the still-servable copy the proxy already holds).
  LruByteCache cache(100);
  cache.Insert(1, Entry(50));
  cache.Insert(1, Entry(500));  // rejected, NOT erased
  ASSERT_NE(cache.Touch(1), nullptr);
  EXPECT_EQ(cache.Touch(1)->size, 50u);
  EXPECT_EQ(cache.used_bytes(), 50u);
}

TEST(LruByteCache, EraseRemovesAndReportsPresence) {
  LruByteCache cache(1000);
  cache.Insert(1, Entry(100));
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_TRUE(cache.empty());
}

TEST(LruByteCache, ZeroCapacityMeansUnbounded) {
  LruByteCache cache(0);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    cache.Insert(i, Entry(1 << 20));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_NE(cache.Touch(0), nullptr);
}

TEST(LruByteCache, LruKeyTracksOrder) {
  LruByteCache cache(0);
  cache.Insert(1, Entry(10));
  cache.Insert(2, Entry(10));
  EXPECT_EQ(cache.lru_key(), 1u);
  cache.Touch(1);
  EXPECT_EQ(cache.lru_key(), 2u);
}

TEST(LruEntryCache, InsertTouchAndReplace) {
  LruEntryCache<int> cache(4);
  EXPECT_TRUE(cache.enabled());
  EXPECT_TRUE(cache.Insert(1, 10));
  EXPECT_TRUE(cache.Insert(2, 20));
  ASSERT_NE(cache.Touch(1), nullptr);
  EXPECT_EQ(*cache.Touch(1), 10);
  EXPECT_EQ(cache.Touch(3), nullptr);
  EXPECT_TRUE(cache.Insert(1, 11));  // replace promotes, not duplicates
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Touch(1), 11);
}

TEST(LruEntryCache, EvictsLeastRecentlyUsedAtCapacity) {
  LruEntryCache<int> cache(3);
  cache.Insert(1, 1);
  cache.Insert(2, 2);
  cache.Insert(3, 3);
  cache.Touch(1);      // order now: 1,3,2
  cache.Insert(4, 4);  // evicts 2
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Touch(2), nullptr);
  EXPECT_NE(cache.Touch(1), nullptr);
  EXPECT_NE(cache.Touch(3), nullptr);
  EXPECT_NE(cache.Touch(4), nullptr);
}

TEST(LruEntryCache, ClearEmptiesWithoutDisabling) {
  LruEntryCache<int> cache(2);
  cache.Insert(1, 1);
  cache.Clear();
  EXPECT_TRUE(cache.empty());
  EXPECT_TRUE(cache.enabled());
  EXPECT_TRUE(cache.Insert(1, 1));
  EXPECT_EQ(cache.size(), 1u);
}

// Regression: constructing with capacity 0 used to assert instead of
// producing a disabled cache. A mapping tier configured off must cost
// nothing and cache nothing — every Insert refused, every Touch a miss.
TEST(LruEntryCache, CapacityZeroIsDisabledNotFatal) {
  LruEntryCache<int> cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 0u);
  for (std::uint32_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(cache.Insert(key, static_cast<int>(key)));
    EXPECT_EQ(cache.Touch(key), nullptr);
  }
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.size(), 0u);
  cache.Clear();  // harmless when disabled
  EXPECT_TRUE(cache.empty());
}

TEST(OriginServer, VersionsAdvanceMonotonically) {
  const OriginServer origin(1, 24.0);
  for (std::uint32_t url = 0; url < 50; ++url) {
    std::uint64_t previous = origin.VersionAt(url, 0);
    for (std::int64_t t = 0; t < 7 * 86400; t += 3600) {
      const std::uint64_t version = origin.VersionAt(url, t);
      EXPECT_GE(version, previous);
      previous = version;
    }
  }
}

TEST(OriginServer, UpdateIntervalsAreHeterogeneous) {
  const OriginServer origin(1, 24.0);
  std::int64_t min_interval = INT64_MAX;
  std::int64_t max_interval = 0;
  for (std::uint32_t url = 0; url < 1000; ++url) {
    const std::int64_t interval = origin.UpdateInterval(url);
    min_interval = std::min(min_interval, interval);
    max_interval = std::max(max_interval, interval);
  }
  // log-uniform 0.05x..5x around 24h.
  EXPECT_LT(min_interval, 3 * 3600);
  EXPECT_GT(max_interval, 48 * 3600);
}

TEST(OriginServer, DeterministicAcrossInstances) {
  const OriginServer a(7, 24.0);
  const OriginServer b(7, 24.0);
  const OriginServer c(8, 24.0);
  bool any_difference = false;
  for (std::uint32_t url = 0; url < 100; ++url) {
    EXPECT_EQ(a.VersionAt(url, 1234567), b.VersionAt(url, 1234567));
    any_difference |= a.UpdateInterval(url) != c.UpdateInterval(url);
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace netclust::cache
