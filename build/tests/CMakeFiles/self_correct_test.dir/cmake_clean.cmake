file(REMOVE_RECURSE
  "CMakeFiles/self_correct_test.dir/self_correct_test.cpp.o"
  "CMakeFiles/self_correct_test.dir/self_correct_test.cpp.o.d"
  "self_correct_test"
  "self_correct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_correct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
