#include "bgp/prefix_table.h"

#include <algorithm>
#include <cassert>

namespace netclust::bgp {

int PrefixTable::AddSource(const SnapshotInfo& info) {
  // The id is a bit position in the 32-bit source_mask: registration past
  // kMaxSources must fail here, detectably, because Insert's shift cannot
  // represent source 32 (UB in release builds, where the old assert-only
  // guard compiled away).
  if (sources_.size() >= static_cast<std::size_t>(kMaxSources)) {
    return kInvalidSource;
  }
  sources_.push_back(SourceStats{.info = info});
  return static_cast<int>(sources_.size()) - 1;
}

bool PrefixTable::Insert(const net::Prefix& prefix, int source_id,
                         AsNumber origin_as) {
  if (source_id < 0 || source_id >= static_cast<int>(sources_.size())) {
    // A propagated kInvalidSource (or any stray id) is dropped, counted —
    // never shifted into source_mask.
    ++rejected_inserts_;
    return false;
  }
  SourceStats& stats = sources_[static_cast<std::size_t>(source_id)];
  ++stats.entries;

  const std::uint32_t bit = 1u << source_id;
  const bool is_bgp = stats.info.kind == SourceKind::kBgpTable;

  if (const Origin* existing = trie_.Find(prefix)) {
    if ((existing->source_mask & bit) == 0) ++stats.unique_prefixes;
    Origin updated = *existing;
    updated.source_mask |= bit;
    updated.from_bgp |= is_bgp;
    updated.from_dump |= !is_bgp;
    if (updated.origin_as == 0) updated.origin_as = origin_as;
    const bool changed = updated.source_mask != existing->source_mask ||
                         updated.from_bgp != existing->from_bgp ||
                         updated.from_dump != existing->from_dump ||
                         updated.origin_as != existing->origin_as;
    if (changed) trie_.Insert(prefix, updated);
    return changed;
  }
  Origin origin;
  origin.source_mask = bit;
  origin.from_bgp = is_bgp;
  origin.from_dump = !is_bgp;
  origin.origin_as = origin_as;
  trie_.Insert(prefix, origin);
  ++stats.unique_prefixes;
  ++stats.new_prefixes;
  return true;
}

AsNumber PrefixTable::OriginAs(const net::Prefix& prefix) const {
  const Origin* origin = trie_.Find(prefix);
  return origin == nullptr ? 0 : origin->origin_as;
}

int PrefixTable::AddSnapshot(const Snapshot& snapshot) {
  const int id = AddSource(snapshot.info);
  if (id == kInvalidSource) return kInvalidSource;
  for (const RouteEntry& entry : snapshot.entries) {
    Insert(entry.prefix, id,
           entry.as_path.empty() ? 0 : entry.as_path.back());
  }
  return id;
}

std::optional<PrefixTable::Match> PrefixTable::LongestMatch(
    net::IpAddress address) const {
  std::optional<Match> best_bgp;
  std::optional<Match> best_dump;
  trie_.AllMatches(address, [&](const net::Prefix& prefix,
                                const Origin& origin) {
    // AllMatches visits shortest-first, so the last hit of each kind is the
    // longest of that kind.
    if (origin.from_bgp) {
      best_bgp = Match{prefix, SourceKind::kBgpTable, origin.source_mask,
                       origin.origin_as};
    } else {
      best_dump = Match{prefix, SourceKind::kNetworkDump, origin.source_mask,
                        origin.origin_as};
    }
  });
  if (best_bgp.has_value()) return best_bgp;
  return best_dump;
}

PrefixTable::Flat PrefixTable::CompileFlat() const {
  std::vector<Flat::Entry> entries;
  entries.reserve(trie_.size());
  trie_.Visit([&](const net::Prefix& prefix, const Origin& origin) {
    // Same classification as LongestMatch: a prefix any BGP source
    // contributed counts as BGP, and BGP (priority 1) beats every
    // network-dump prefix (priority 0) regardless of length.
    const SourceKind kind = origin.from_bgp ? SourceKind::kBgpTable
                                            : SourceKind::kNetworkDump;
    entries.push_back(Flat::Entry{
        prefix, origin.from_bgp ? 1 : 0,
        Match{prefix, kind, origin.source_mask, origin.origin_as}});
  });
  return Flat::Compile(std::move(entries));
}

PrefixTable::Flat PrefixTable::CompileFlatDelta(
    const Flat& prev, std::span<const net::Prefix> changed) const {
  if (changed.empty()) return prev;
  // Compaction bound: every delta appends fresh payload records and
  // orphans replaced blocks inside the copy, so a long churn run would
  // grow the directory without bound. Once the previous compile holds
  // more than twice the live entries (plus slack so tiny tables never
  // trip it), recompile from scratch instead.
  if (prev.size() > 2 * trie_.size() + 1024) return CompileFlat();

  // Every /16 root slot a changed prefix covers must be repainted: a
  // short prefix covers a run of root slots, a long one exactly one.
  std::vector<std::uint32_t> touched;
  for (const net::Prefix& prefix : changed) {
    const std::uint32_t first = prefix.network().bits() >> 16;
    const std::size_t span =
        prefix.length() <= 16 ? std::size_t{1} << (16 - prefix.length()) : 1;
    for (std::size_t i = 0; i < span; ++i) {
      touched.push_back(first + static_cast<std::uint32_t>(i));
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<Flat::RootPatch> patches;
  patches.reserve(touched.size());
  for (const std::uint32_t root_index : touched) {
    Flat::RootPatch patch;
    patch.root_index = root_index;
    const auto add = [&](const net::Prefix& prefix, const Origin& origin) {
      const SourceKind kind = origin.from_bgp ? SourceKind::kBgpTable
                                              : SourceKind::kNetworkDump;
      patch.entries.push_back(Flat::Entry{
          prefix, origin.from_bgp ? 1 : 0,
          Match{prefix, kind, origin.source_mask, origin.origin_as}});
    };
    const net::IpAddress base(root_index << 16);
    // Covering prefixes (length <= 16) blanket the whole slot; interior
    // ones (length > 16) live under it. The split at 16 keeps the /16
    // entry itself — returned by both traversals — counted once.
    trie_.AllMatches(base, [&](const net::Prefix& prefix,
                               const Origin& origin) {
      if (prefix.length() <= 16) add(prefix, origin);
    });
    trie_.VisitUnder(net::Prefix(base, 16),
                     [&](const net::Prefix& prefix, const Origin& origin) {
                       if (prefix.length() > 16) add(prefix, origin);
                     });
    patches.push_back(std::move(patch));
  }
  return Flat::CompileDelta(prev, std::move(patches));
}

std::vector<net::Prefix> PrefixTable::AllPrefixes() const {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(trie_.size());
  trie_.Visit([&](const net::Prefix& prefix, const Origin&) {
    prefixes.push_back(prefix);
  });
  return prefixes;
}

bool PrefixTable::Contains(const net::Prefix& prefix) const {
  return trie_.Find(prefix) != nullptr;
}

}  // namespace netclust::bgp
