# Empty compiler generated dependencies file for netclust_weblog.
# This may be replaced when dependencies are built.
