// Churn absorption: sustained BGP UPDATE rate through the incremental
// recompile path while the lock-free serving plane keeps answering.
//
// The live-feed pipeline (netclustd --live-bgp4mp) batches decoded UPDATEs
// into Engine::ApplyUpdateBatch: one delta recompile + one RCU swap per
// burst. This bench drives that path in-process and answers the question
// the delta compiler exists for — can the table absorb a BGP-scale update
// stream without the readers noticing?
//
//   1. Quiescent baseline: one reader thread runs LookupBatch over a
//      client-population probe set with no ingest; exact p99 over the
//      per-batch latencies.
//   2. Churn: the ingest thread replays announce/withdraw pairs of /24s
//      (drawn from the same client population, so deltas land in populated
//      table regions) in bursts, while the same reader keeps measuring.
//
// Floors (--floor-only, the CI mode, writes BENCH_churn.json):
//   - sustained updates/s >= 10k
//   - churn-time lookup p99 <= 2x the quiescent p99
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bgp/update.h"
#include "engine/engine.h"
#include "net/prefix.h"

namespace {

using namespace netclust;

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exact (not bucketed) p99 of a latency sample set, ns. 0 when empty.
std::uint64_t ExactP99(std::vector<std::uint64_t> samples) {
  if (samples.empty()) return 0;
  const std::size_t rank = samples.size() * 99 / 100;
  const std::size_t index = rank < samples.size() ? rank : samples.size() - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

constexpr std::size_t kProbeBatch = 256;

/// One timed LookupBatch sweep over the probe set; appends the per-batch
/// latency (ns) to `latencies`.
void ProbeOnce(const engine::Engine& engine,
               const std::vector<net::IpAddress>& probes, std::size_t* cursor,
               std::vector<std::uint64_t>* latencies,
               std::uint64_t* matched) {
  std::array<net::IpAddress, kProbeBatch> batch;
  std::array<std::optional<bgp::PrefixTable::Match>, kProbeBatch> out;
  for (std::size_t i = 0; i < kProbeBatch; ++i) {
    batch[i] = probes[*cursor];
    if (++*cursor == probes.size()) *cursor = 0;
  }
  const std::uint64_t start = engine::NowNs();
  *matched += engine.LookupBatch(batch, out);
  latencies->push_back(engine::NowNs() - start);
}

struct ChurnResult {
  double updates_per_s = 0.0;
  std::size_t updates = 0;
  std::size_t changed = 0;
  std::uint64_t p99_quiescent_ns = 0;
  std::uint64_t p99_churn_ns = 0;
};

/// The measurement core: quiescent baseline, then `seconds` of sustained
/// churn in `burst`-sized ApplyUpdateBatch calls with a concurrent reader.
ChurnResult MeasureChurn(engine::Engine* engine, int source_id,
                         const std::vector<bgp::UpdateMessage>& stream,
                         const std::vector<net::IpAddress>& probes,
                         std::size_t burst, double seconds) {
  ChurnResult result;

  // --- quiescent baseline (reader alone) ---
  {
    std::vector<std::uint64_t> latencies;
    latencies.reserve(1 << 16);
    std::size_t cursor = 0;
    std::uint64_t matched = 0;
    const auto start = std::chrono::steady_clock::now();
    while (Seconds(start) < seconds * 0.5) {
      ProbeOnce(*engine, probes, &cursor, &latencies, &matched);
    }
    result.p99_quiescent_ns = ExactP99(std::move(latencies));
  }

  // --- churn with a concurrent reader ---
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> churn_latencies;
  churn_latencies.reserve(1 << 16);
  std::thread reader([&] {
    std::size_t cursor = 0;
    std::uint64_t matched = 0;
    // order: relaxed — plain stop flag; no data is handed across it that
    // the join below doesn't already order.
    while (!stop.load(std::memory_order_relaxed)) {
      ProbeOnce(*engine, probes, &cursor, &churn_latencies, &matched);
    }
  });

  std::size_t at = 0;
  const auto start = std::chrono::steady_clock::now();
  while (Seconds(start) < seconds) {
    const std::size_t take = std::min(burst, stream.size() - at);
    result.changed += engine->ApplyUpdateBatch(
        std::span<const bgp::UpdateMessage>(stream.data() + at, take),
        source_id);
    result.updates += take;
    at += take;
    if (at == stream.size()) at = 0;
  }
  const double elapsed = Seconds(start);
  // order: relaxed — see the reader's load.
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  result.updates_per_s = static_cast<double>(result.updates) / elapsed;
  result.p99_churn_ns = ExactP99(std::move(churn_latencies));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool floor_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--floor-only") == 0) {
      floor_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--floor-only]\n", argv[0]);
      return 2;
    }
  }

  if (!floor_only) {
    bench::PrintHeader(
        "churn — live BGP UPDATE absorption vs serving-plane latency",
        "incremental FlatLpm recompile (delta publish) absorbs a sustained "
        "update stream while lock-free lookup p99 stays flat");
  }

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const auto& log = generated.log;
  const bgp::Snapshot seed = scenario.vantages().MakeSnapshot(0, 0);

  engine::EngineConfig config;
  config.shards = 2;
  config.log_name = "nagano";
  engine::Engine engine(config);
  engine.SeedSnapshot(seed);
  bgp::SnapshotInfo live_info;
  live_info.name = "churn-bench";
  live_info.comment = "synthetic announce/withdraw stream";
  const int source = engine.AddSource(live_info);
  engine.Start();

  // Probe set: the log's client population (strided), the same stream the
  // serving benches replay.
  std::vector<net::IpAddress> probes;
  const auto& clients = log.clients();
  const std::size_t stride = std::max<std::size_t>(clients.size() / 4096, 1);
  for (std::size_t i = 0; i < clients.size(); i += stride) {
    probes.push_back(clients[i]);
  }

  // Churn stream: announce/withdraw pairs of the /24s covering the client
  // population — every update lands in a populated region of the table,
  // so each delta repaints live directory blocks.
  std::vector<bgp::UpdateMessage> stream;
  stream.reserve(2 * probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const net::Prefix p24(probes[i], 24);
    bgp::UpdateMessage announce;
    announce.announced.push_back(p24);
    announce.as_path = {static_cast<bgp::AsNumber>(64512 + (i & 0xFF))};
    announce.next_hop = net::IpAddress(0x0A000001u);
    stream.push_back(std::move(announce));
    bgp::UpdateMessage withdraw;
    withdraw.withdrawn.push_back(p24);
    stream.push_back(std::move(withdraw));
  }

  if (!floor_only) {
    std::printf("\nseed: %zu-prefix table; churn stream: %zu updates "
                "(announce/withdraw /24 pairs); probes: %zu addresses, "
                "batches of %zu\n",
                seed.entries.size(), stream.size(), probes.size(),
                kProbeBatch);
    std::printf("\n  %-12s %12s %12s %14s %14s %7s\n", "burst",
                "updates/s", "changed", "p99 quiet", "p99 churn", "ratio");
    for (const std::size_t burst : {std::size_t{1}, std::size_t{16},
                                    std::size_t{64}, std::size_t{256}}) {
      const ChurnResult r =
          MeasureChurn(&engine, source, stream, probes, burst, 1.0);
      std::printf("  %-12zu %12s %11.0f%% %11.1f us %11.1f us %6.2fx\n",
                  burst, bench::Fmt(r.updates_per_s).c_str(),
                  100.0 * static_cast<double>(r.changed) /
                      static_cast<double>(std::max<std::size_t>(r.updates, 1)),
                  static_cast<double>(r.p99_quiescent_ns) / 1e3,
                  static_cast<double>(r.p99_churn_ns) / 1e3,
                  static_cast<double>(r.p99_churn_ns) /
                      static_cast<double>(std::max<std::uint64_t>(
                          r.p99_quiescent_ns, 1)));
    }
  }

  // The CI measurement: the live feeder's default burst size.
  constexpr std::size_t kBurst = 64;
  constexpr double kFloorUpdatesPerSec = 10'000.0;
  constexpr double kMaxP99Ratio = 2.0;
  const ChurnResult r = MeasureChurn(&engine, source, stream, probes, kBurst,
                                     floor_only ? 1.5 : 2.0);
  engine.Stop();

  const double ratio =
      static_cast<double>(r.p99_churn_ns) /
      static_cast<double>(std::max<std::uint64_t>(r.p99_quiescent_ns, 1));
  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"updates_per_s\": %.1f, \"burst\": %zu, \"updates\": %zu, "
      "\"changed\": %zu, \"p99_quiescent_us\": %.3f, "
      "\"p99_churn_us\": %.3f, \"p99_ratio\": %.3f, "
      "\"floor_updates_per_s\": %.1f, \"max_p99_ratio\": %.1f}",
      r.updates_per_s, kBurst, r.updates, r.changed,
      static_cast<double>(r.p99_quiescent_ns) / 1e3,
      static_cast<double>(r.p99_churn_ns) / 1e3, ratio, kFloorUpdatesPerSec,
      kMaxP99Ratio);

  std::FILE* out = std::fopen("BENCH_churn.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_churn: cannot write BENCH_churn.json\n");
    return 1;
  }
  std::fprintf(out, "%s\n", json);
  std::fclose(out);
  std::printf("%swrote BENCH_churn.json: %s\n", floor_only ? "" : "\n", json);

  if (r.updates_per_s < kFloorUpdatesPerSec) {
    std::fprintf(stderr,
                 "bench_churn: %.0f updates/s is below the %.0f floor\n",
                 r.updates_per_s, kFloorUpdatesPerSec);
    return 1;
  }
  if (ratio > kMaxP99Ratio) {
    std::fprintf(stderr,
                 "bench_churn: churn-time lookup p99 (%.1f us) is %.2fx the "
                 "quiescent p99 (%.1f us); floor is %.1fx\n",
                 static_cast<double>(r.p99_churn_ns) / 1e3, ratio,
                 static_cast<double>(r.p99_quiescent_ns) / 1e3, kMaxP99Ratio);
    return 1;
  }
  std::printf("floors: %.0f updates/s cleared (>= %.0f); churn p99 %.2fx "
              "quiescent (<= %.1fx)\n",
              r.updates_per_s, kFloorUpdatesPerSec, ratio, kMaxP99Ratio);
  return 0;
}
