#include "bgp/aggregate.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "synth/rng.h"

namespace netclust::bgp {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

TEST(AggregatePrefixes, MergesSiblingPairs) {
  const auto out = AggregatePrefixes({P("10.0.0.0/9"), P("10.128.0.0/9")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("10.0.0.0/8")}));
}

TEST(AggregatePrefixes, MergesRecursively) {
  // Four /26 quarters collapse all the way to the /24.
  const auto out = AggregatePrefixes({P("192.0.2.0/26"), P("192.0.2.64/26"),
                                      P("192.0.2.128/26"),
                                      P("192.0.2.192/26")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("192.0.2.0/24")}));
}

TEST(AggregatePrefixes, NonSiblingAdjacencyDoesNotMerge) {
  // 10.1.0.0/24 and 10.1.1.0/24 are siblings; 10.1.1.0/24 and
  // 10.1.2.0/24 are adjacent but in different parents.
  const auto out = AggregatePrefixes({P("10.1.1.0/24"), P("10.1.2.0/24")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(AggregatePrefixes, DropsCoveredPrefixes) {
  const auto out = AggregatePrefixes(
      {P("10.0.0.0/8"), P("10.1.0.0/16"), P("10.1.2.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("10.0.0.0/8")}));
}

TEST(AggregatePrefixes, CoveredRemovalEnablesNoFalseMerge) {
  // 10.0.0.0/9 covers 10.0.0.0/10; after suppression the remaining /9
  // has no sibling, so nothing merges further.
  const auto out = AggregatePrefixes({P("10.0.0.0/9"), P("10.0.0.0/10")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("10.0.0.0/9")}));
}

TEST(AggregatePrefixes, HandlesDuplicatesAndEmpty) {
  EXPECT_TRUE(AggregatePrefixes({}).empty());
  const auto out =
      AggregatePrefixes({P("10.0.0.0/8"), P("10.0.0.0/8")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("10.0.0.0/8")}));
}

TEST(AggregatePrefixes, DefaultRouteSwallowsEverything) {
  const auto out = AggregatePrefixes({P("0.0.0.0/0"), P("10.0.0.0/8")});
  EXPECT_EQ(out, (std::vector<Prefix>{P("0.0.0.0/0")}));
}

TEST(AggregatePrefixes, PreservesAddressCoverageOnRandomSets) {
  synth::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<Prefix> prefixes;
    for (int i = 0; i < 64; ++i) {
      prefixes.push_back(Prefix(
          net::IpAddress(static_cast<std::uint32_t>(rng.Uniform(1ull << 32))),
          8 + static_cast<int>(rng.Uniform(20))));
    }
    const auto aggregated = AggregatePrefixes(prefixes);
    EXPECT_LE(aggregated.size(), 64u);
    EXPECT_TRUE(CoverSameAddresses(prefixes, aggregated));

    // Output is ancestor-free and sibling-free (fully aggregated).
    const std::unordered_set<Prefix> set(aggregated.begin(),
                                         aggregated.end());
    for (const Prefix& prefix : aggregated) {
      Prefix walk = prefix;
      while (walk.length() > 0) {
        walk = walk.Parent();
        EXPECT_FALSE(set.contains(walk)) << prefix.ToString();
      }
      if (prefix.length() > 0) {
        const Prefix sibling(
            net::IpAddress(prefix.network().bits() ^
                           (0x80000000u >> (prefix.length() - 1))),
            prefix.length());
        EXPECT_FALSE(set.contains(sibling)) << prefix.ToString();
      }
    }
  }
}

TEST(AggregateRoutes, MergesOnlyMatchingAttributes) {
  RouteEntry left;
  left.prefix = P("10.0.0.0/9");
  left.next_hop = net::IpAddress(1, 1, 1, 1);
  left.as_path = {7018, 42};
  RouteEntry right = left;
  right.prefix = P("10.128.0.0/9");
  RouteEntry other;
  other.prefix = P("11.0.0.0/9");
  other.next_hop = net::IpAddress(2, 2, 2, 2);
  other.as_path = {7018, 42};
  RouteEntry other_sibling = other;
  other_sibling.prefix = P("11.128.0.0/9");
  other_sibling.next_hop = net::IpAddress(3, 3, 3, 3);  // differs!

  const auto out = AggregateRoutes({left, right, other, other_sibling});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].prefix, P("10.0.0.0/8"));  // merged
  EXPECT_EQ(out[0].next_hop, net::IpAddress(1, 1, 1, 1));
  EXPECT_EQ(out[1].prefix, P("11.0.0.0/9"));  // kept apart
  EXPECT_EQ(out[2].prefix, P("11.128.0.0/9"));
}

TEST(AggregateRoutes, SuppressesCoveredOnlyWithinGroup) {
  RouteEntry wide;
  wide.prefix = P("10.0.0.0/8");
  wide.next_hop = net::IpAddress(1, 1, 1, 1);
  RouteEntry narrow_same = wide;
  narrow_same.prefix = P("10.1.0.0/16");
  RouteEntry narrow_other;
  narrow_other.prefix = P("10.2.0.0/16");
  narrow_other.next_hop = net::IpAddress(9, 9, 9, 9);

  const auto out = AggregateRoutes({wide, narrow_same, narrow_other});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].prefix, P("10.0.0.0/8"));
  EXPECT_EQ(out[1].prefix, P("10.2.0.0/16"));  // different next hop: kept
}

TEST(CoverSameAddresses, DetectsDifferences) {
  EXPECT_TRUE(CoverSameAddresses({P("10.0.0.0/9"), P("10.128.0.0/9")},
                                 {P("10.0.0.0/8")}));
  EXPECT_FALSE(CoverSameAddresses({P("10.0.0.0/9")}, {P("10.0.0.0/8")}));
  EXPECT_TRUE(CoverSameAddresses({}, {}));
  EXPECT_FALSE(CoverSameAddresses({P("10.0.0.0/8")}, {}));
}

}  // namespace
}  // namespace netclust::bgp
