// §3.6 time partitioning: split the Nagano day into four 6-hour sessions
// and show that each session's cluster distributions look like the whole
// log's ("simulations on a sample of server logs might suffice").
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/metrics.h"
#include "core/session.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "§3.6 — four 6-hour sessions of the Nagano log",
      "all sessions show the same cluster-distribution patterns as the "
      "full day; the first two are less busy than the last two");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);

  const auto report = [&](const weblog::ServerLog& log, const char* label) {
    const core::Clustering clustering =
        core::ClusterNetworkAware(log, scenario.table);
    std::vector<double> sizes;
    std::vector<double> requests;
    std::vector<double> urls;
    for (const core::Cluster& cluster : clustering.clusters) {
      sizes.push_back(static_cast<double>(cluster.members.size()));
      requests.push_back(static_cast<double>(cluster.requests));
      urls.push_back(static_cast<double>(cluster.unique_urls));
    }
    const auto size_cdf = core::CumulativeDistribution(std::move(sizes));
    const auto summary = core::Summarize(clustering);
    std::printf("%-10s  %9zu  %8zu  %8zu  %10.1f%%  %9zu  %9llu\n", label,
                log.request_count(), log.unique_clients(),
                summary.clusters,
                100.0 * core::FractionAtMost(size_cdf, 99.0),
                summary.max_cluster_clients,
                static_cast<unsigned long long>(
                    summary.max_cluster_requests));
  };

  std::printf("\n%-10s  %9s  %8s  %8s  %11s  %9s  %9s\n", "session",
              "requests", "clients", "clusters", "<100 clnts", "max size",
              "max reqs");
  report(generated.log, "whole day");
  const auto sessions = core::PartitionIntoSessions(generated.log, 4);
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const std::string label = "session " + std::to_string(s);
    report(sessions[s], label.c_str());
  }

  // §3.3/§3.6 also suggest working from samples; show a 10% client sample
  // and a 10% request sample keep the same shape.
  std::printf("\n-- sampled logs (\"simulations on a sample ... might "
              "suffice\") --\n");
  report(generated.log.Sample(0.1, weblog::SampleMode::kByClient),
         "10% client");
  report(generated.log.Sample(0.1, weblog::SampleMode::kByRequest),
         "10% request");

  std::printf("\nexpected shape: every session keeps >95%% of clusters "
              "under 100 clients and the same heavy request tail; request "
              "volume follows the diurnal wave; samples keep the shape at "
              "a tenth of the work.\n");
  return 0;
}
