# Empty compiler generated dependencies file for bench_fig7_vs_simple.
# This may be replaced when dependencies are built.
