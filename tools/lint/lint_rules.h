// netclust_lint — repo-specific, dependency-free static checks.
//
// A token-level checker for the project rules that clang-tidy and
// -Wthread-safety cannot express (see DESIGN.md "Static analysis" for the
// rule catalog and rationale). The rule engine is a pure function of
// (path, file content) so the self-test can feed it snippets directly;
// netclust_lint.cc wraps it in a filesystem walk + suppression file and
// the cross-file opcode-coverage check.
//
// Per-file rules (ids are stable; the suppression file references them):
//   order-comment   every memory_order use (memory_order_* or the C++20
//                   memory_order:: spellings) carries an adjacent
//                   `// order:` rationale comment (same line or within
//                   the preceding comment block).
//   atomic-order    atomic .load/.store/.exchange/.fetch_*/
//                   .compare_exchange_* in the data-plane layers
//                   (src/server/, src/cluster/, tools/) must spell the
//                   memory order — implicit seq_cst hides the strongest,
//                   most expensive ordering behind a default.
//   parser-int      no atoi / std::stoi / sscanf / strtol-family in
//                   parser code (src/bgp/, src/weblog/) — use
//                   std::from_chars; locale- and overflow-unsafe parsing
//                   was the PR 2 bug class.
//   naked-thread    no std::thread outside src/engine/,
//                   src/server/server.{h,cc} and src/core/parallel.cc —
//                   thread management goes through the engine's
//                   ShardWorker, the server's reactor spawn (the one
//                   vetted spawn site in the service layer) or
//                   core::ParallelFor.
//   raw-io          no raw POSIX I/O calls (read / write / accept /
//                   recv / send and friends) in library code — every
//                   syscall goes through the EINTR-safe, deadline-aware
//                   wrappers in src/server/io_util.*; that file itself is
//                   the single vetted suppression.
//   wire-cast       no memcpy / reinterpret_cast / const_cast in the wire
//                   layers (src/server/, src/cluster/): network bytes are
//                   read through the bounds-checked GetU*/Decode* codecs,
//                   never by reinterpreting buffer memory. The two vetted
//                   homes (proto.cc's string assign, io_util.cc's
//                   sockaddr casts) are suppression-file entries.
//   wire-decode-result
//                   every Decode* function declared in the wire layers
//                   returns Result<T> — a decoder that cannot report
//                   malformed input forces its caller to guess.
//   wire-bounds     GetU16/GetU32/GetU64 (raw big-endian reads from a
//                   byte buffer) may appear only in src/server/proto.cc,
//                   the codec home where every read sits behind the
//                   decoder's size check; other call sites re-derive
//                   bounds ad hoc and are where PR 4's off-by-frame bugs
//                   lived.
//   fd-unchecked    an epoll_ctl(...) whose result is silently discarded
//                   (statement position, no (void), no check) — a failed
//                   registration strands a connection; either check it or
//                   discard explicitly with (void).
//   fd-close        no raw close(...) — CloseFd (src/server/io_util.h)
//                   is EINTR-correct and the single close site; io_util's
//                   own definition is the vetted suppression.
//   fd-dup          no dup/dup2 in src/server/ or src/cluster/: reactor
//                   ownership of a descriptor is 1:1 by design, and a
//                   duplicated fd escapes the role capability that guards
//                   its lifetime.
//   iostream-include no #include <iostream> in library code under src/
//                   (iostream pulls in static init + locale machinery;
//                   CLI tools are vetted via the suppression file).
//   header-guard    every header under src/ uses #pragma once (the repo
//                   convention), not #ifndef guards.
//
// Cross-file rules (driver-level; see netclust_lint.cc):
//   opcode-coverage every opcode parsed from src/server/proto.h must be
//                   dispatched (request opcodes: `case Opcode::kX` in
//                   server.cc), fuzz-seeded (all opcodes: a
//                   tests/corpus/proto seed whose opcode byte matches),
//                   and counted (request opcodes: a `// stats: <counter>`
//                   annotation naming a ServerMetrics counter that exists
//                   in metrics.h and is bumped in server.cc).
//   stale-suppression a suppression entry whose file no longer exists or
//                   no longer triggers its rule fails the run — dead
//                   suppressions otherwise rot into blanket exemptions.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace netclust::lint {

struct Finding {
  std::string file;  // repo-relative path, e.g. "src/engine/shard.h"
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// Runs every per-file rule over one file. `path` must be repo-relative
/// with '/' separators — rule scoping (parser dirs, wire layers, engine
/// allowance) matches on it.
std::vector<Finding> LintFile(std::string_view path,
                              std::string_view content);

/// One opcode parsed out of the proto.h enum.
struct OpcodeInfo {
  std::string name;     // e.g. "kLookup"
  unsigned value = 0;   // e.g. 0x02
  std::string counter;  // from the `// stats: <counter>` annotation; may
                        // be empty (a coverage finding for requests)
  int line = 0;         // 1-based line of the enumerator
};

/// Parses `enum class Opcode` out of proto.h content. Returns an empty
/// vector when no opcode enum is found (itself a coverage finding).
std::vector<OpcodeInfo> ParseOpcodeEnum(std::string_view proto_header);

/// Inputs for the cross-file opcode-coverage rule. All contents are raw
/// file text; corpus_opcodes is the opcode byte (offset 3) of every
/// corpus seed large enough to carry one.
struct OpcodeCoverageInput {
  std::string proto_path;        // for Finding::file, e.g. src/server/proto.h
  std::string proto_content;     // the enum + // stats: annotations
  std::string dispatch_content;  // server.cc: the dispatch switch + bumps
  std::string metrics_content;   // metrics.h: the ServerMetrics counters
  std::vector<unsigned> corpus_opcodes;
};

/// The cross-file exhaustiveness check: adding an opcode without dispatch,
/// corpus, or STATS coverage produces findings here (rule
/// "opcode-coverage"), so the gap breaks the lint ctest, not production.
std::vector<Finding> CheckOpcodeCoverage(const OpcodeCoverageInput& input);

/// One suppression: exempts `rule` findings in `file` (exact
/// repo-relative path match).
struct Suppression {
  std::string rule;
  std::string file;
};

/// Parses the suppression file format: one `rule:path` per line,
/// '#' comments and blank lines ignored.
std::vector<Suppression> ParseSuppressions(std::string_view text);

/// Index into `suppressions` of the entry covering `finding`, or -1.
/// The driver uses the index to count per-entry hits for the
/// stale-suppression check.
int MatchSuppression(const Finding& finding,
                     const std::vector<Suppression>& suppressions);

/// True when `finding` is covered by an entry in `suppressions`.
bool IsSuppressed(const Finding& finding,
                  const std::vector<Suppression>& suppressions);

/// The stale-suppression rule: entry i is dead when its file is gone
/// (`file_exists[i]` false) or when it matched no finding this run
/// (`hits[i]` zero). Dead entries become findings (rule
/// "stale-suppression") so the suppression file can only shrink back in
/// step with the code it excuses.
std::vector<Finding> StaleSuppressions(
    const std::vector<Suppression>& suppressions,
    const std::vector<std::size_t>& hits,
    const std::vector<bool>& file_exists);

}  // namespace netclust::lint
