#include "weblog/clf.h"

#include <gtest/gtest.h>

namespace netclust::weblog {
namespace {

TEST(ClfTimestamp, ParsesEpoch) {
  EXPECT_EQ(ParseClfTimestamp("01/Jan/1970:00:00:00 +0000").value(), 0);
  EXPECT_EQ(ParseClfTimestamp("01/Jan/1970:00:00:01 +0000").value(), 1);
  EXPECT_EQ(ParseClfTimestamp("02/Jan/1970:00:00:00 +0000").value(), 86400);
}

TEST(ClfTimestamp, ParsesPaperEraDates) {
  // 13/Feb/1998 — the Nagano log's day.
  const auto t = ParseClfTimestamp("13/Feb/1998:00:00:00 +0000");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 887328000);
}

TEST(ClfTimestamp, HandlesZoneOffsets) {
  const auto utc = ParseClfTimestamp("13/Feb/1998:12:00:00 +0000").value();
  EXPECT_EQ(ParseClfTimestamp("13/Feb/1998:07:00:00 -0500").value(), utc);
  EXPECT_EQ(ParseClfTimestamp("13/Feb/1998:21:00:00 +0900").value(), utc);
  // Zone-less form is accepted as UTC.
  EXPECT_EQ(ParseClfTimestamp("13/Feb/1998:12:00:00").value(), utc);
}

TEST(ClfTimestamp, LeapYearHandling) {
  EXPECT_EQ(ParseClfTimestamp("29/Feb/2000:00:00:00 +0000").value() -
                ParseClfTimestamp("28/Feb/2000:00:00:00 +0000").value(),
            86400);
  EXPECT_EQ(ParseClfTimestamp("01/Mar/1999:00:00:00 +0000").value() -
                ParseClfTimestamp("28/Feb/1999:00:00:00 +0000").value(),
            86400);
}

TEST(ClfTimestamp, RejectsMalformed) {
  for (const char* text :
       {"", "13/Feb/1998", "32/Feb/1998:00:00:00 +0000",
        "13/Xxx/1998:00:00:00 +0000", "13/Feb/1998:25:00:00 +0000",
        "13-Feb-1998:00:00:00 +0000", "13/Feb/1998:00:00:00 junk"}) {
    EXPECT_FALSE(ParseClfTimestamp(text).ok()) << "accepted: " << text;
  }
}

TEST(ClfTimestamp, RejectsNegativeComponents) {
  // std::from_chars happily parses "-1"; the parser must not let signed
  // fields slip through the fixed-position layout.
  for (const char* text :
       {"01/Jan/1999:-1:-1:-1 +0000", "01/Jan/1999:12:-5:00 +0000",
        "01/Jan/1999:12:00:-9 +0000", "-1/Jan/1999:12:00:00 +0000",
        "01/Jan/1999:12:00:00 +-100", "01/Jan/1999:12:00:00 -0-30"}) {
    EXPECT_FALSE(ParseClfTimestamp(text).ok()) << "accepted: " << text;
  }
}

TEST(ClfTimestamp, RejectsInstantsOutsideRenderableYears) {
  // A zone offset can push an in-range wall-clock date into year 10000 (or
  // year 0), which FormatClfTimestamp cannot render re-parseably.
  EXPECT_FALSE(ParseClfTimestamp("31/Dec/9999:23:59:59 -0200").ok());
  EXPECT_FALSE(ParseClfTimestamp("01/Jan/0001:00:00:00 +0100").ok());
  // The extremes themselves stay accepted and round-trip.
  const auto max = ParseClfTimestamp("31/Dec/9999:23:59:59 +0000");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(ParseClfTimestamp(FormatClfTimestamp(max.value())).value(),
            max.value());
  const auto min = ParseClfTimestamp("01/Jan/0001:00:00:00 +0000");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(ParseClfTimestamp(FormatClfTimestamp(min.value())).value(),
            min.value());
}

TEST(ClfTimestamp, FormatRoundTrips) {
  for (const std::int64_t t :
       {std::int64_t{0}, std::int64_t{887328000}, std::int64_t{951782400},
        std::int64_t{1234567890}}) {
    const std::string text = FormatClfTimestamp(t);
    EXPECT_EQ(ParseClfTimestamp(text).value(), t) << text;
  }
}

TEST(ClfLine, ParsesCommonLogFormat) {
  const auto record = ParseClfLine(
      "151.198.194.17 - - [13/Feb/1998:10:15:30 +0000] "
      "\"GET /index.html HTTP/1.0\" 200 4523");
  ASSERT_TRUE(record.ok()) << record.error();
  EXPECT_EQ(record.value().client.ToString(), "151.198.194.17");
  EXPECT_EQ(record.value().method, Method::kGet);
  EXPECT_EQ(record.value().url, "/index.html");
  EXPECT_EQ(record.value().status, 200);
  EXPECT_EQ(record.value().response_bytes, 4523u);
  EXPECT_TRUE(record.value().user_agent.empty());
}

TEST(ClfLine, ParsesCombinedFormatWithAgent) {
  const auto record = ParseClfLine(
      "12.65.147.94 - bala [13/Feb/1998:10:15:30 +0000] "
      "\"POST /cgi/vote HTTP/1.1\" 302 0 "
      "\"http://ref.example/\" \"Mozilla/4.5 [en] (WinNT; I)\"");
  ASSERT_TRUE(record.ok()) << record.error();
  EXPECT_EQ(record.value().method, Method::kPost);
  EXPECT_EQ(record.value().user_agent, "Mozilla/4.5 [en] (WinNT; I)");
}

TEST(ClfLine, RejectsJunkGluedToQuotedFields) {
  // A character glued to a closing quote used to shift every later field
  // boundary; here the agent field would swallow a '"', which
  // FormatClfLine then emits as an unparseable line.
  const auto glued = ParseClfLine(
      "176.49.142.30 - - [13/Feb/1998:02:19:43 +0000] "
      "\"GET /p14.html HTTP/1.0\" 200 3152 "
      "\"-\"!\"Mozilla/4.0 (compatible; MSIE 5.0; Windows 98)\"");
  // The mandatory fields are intact, so the line still parses — but the
  // malformed combined tail must be dropped, not mis-tokenized.
  ASSERT_TRUE(glued.ok()) << glued.error();
  EXPECT_TRUE(glued.value().user_agent.empty());

  // Glued junk inside the mandatory fields rejects the whole line.
  EXPECT_FALSE(ParseClfLine("1.2.3.4 - - [13/Feb/1998:00:00:00 +0000] "
                            "\"GET /a HTTP/1.0\"200 10")
                   .ok());
  // A bare token must not carry an embedded quote into a field value.
  EXPECT_FALSE(ParseClfLine("1.2.3.4 - - [13/Feb/1998:00:00:00 +0000] "
                            "\"GET /a HTTP/1.0\" 2\"00 10")
                   .ok());
}

TEST(ClfLine, DashByteCountMeansZero) {
  const auto record = ParseClfLine(
      "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] "
      "\"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().response_bytes, 0u);
  EXPECT_EQ(record.value().status, 304);
}

TEST(ClfLine, AcceptsVersionlessRequests) {
  const auto record = ParseClfLine(
      "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] \"GET /legacy\" 200 10");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().url, "/legacy");
}

TEST(ClfLine, UnknownMethodsMapToOther) {
  const auto record = ParseClfLine(
      "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] "
      "\"OPTIONS /x HTTP/1.1\" 200 10");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().method, Method::kOther);
}

TEST(ClfLine, RejectsStructurallyBrokenLines) {
  for (const char* line :
       {"", "just nonsense", "12.65.147.94 - -",
        "not-an-ip - - [13/Feb/1998:10:15:30 +0000] \"GET /x HTTP/1.0\" 200 1",
        "12.65.147.94 - - [not-a-date] \"GET /x HTTP/1.0\" 200 1",
        "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] \"GETNOSPACE\" 200 1",
        "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] \"GET /x\" xx 1",
        "12.65.147.94 - - [13/Feb/1998:10:15:30 +0000] \"GET /x\" 200 bad"}) {
    EXPECT_FALSE(ParseClfLine(line).ok()) << "accepted: " << line;
  }
}

TEST(ClfLine, FormatParseRoundTrip) {
  LogRecord record;
  record.client = net::IpAddress(24, 48, 3, 87);
  record.timestamp = 887361330;
  record.method = Method::kGet;
  record.url = "/results/speed_skating.html";
  record.status = 200;
  record.response_bytes = 8192;
  record.user_agent = "Mozilla/4.08 [en] (Win98; I)";

  const auto parsed = ParseClfLine(FormatClfLine(record));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value(), record);

  record.user_agent.clear();  // plain CLF path
  const auto parsed_plain = ParseClfLine(FormatClfLine(record));
  ASSERT_TRUE(parsed_plain.ok());
  EXPECT_EQ(parsed_plain.value(), record);
}

}  // namespace
}  // namespace netclust::weblog
