// netclustd service core: a TCP daemon serving cluster lookups from an
// engine::Engine over the src/server/proto.h wire protocol.
//
// Threading model (see DESIGN.md "Service layer" for the diagram):
//
//   * N reader threads share one epoll instance. Connection descriptors
//     are armed EPOLLONESHOT, so at most one reader services a connection
//     at a time — all I/O for a connection happens on whichever reader
//     claimed its event, and no per-frame locking is needed.
//   * LOOKUP / BATCH_LOOKUP are answered directly on the reader thread via
//     Engine::Lookup() — lock-free reads of the RCU-published PrefixTable
//     snapshot, never blocking on ingest.
//   * INGEST_UPDATE frames are forwarded to ONE ingest thread through a
//     bounded queue (the engine's routing-plane API is single-threaded by
//     contract). The reader blocks until the ingest thread has applied the
//     update, then writes the IngestAck itself — so an ack in hand
//     guarantees later lookups see a table version >= the acked one.
//   * A reaper thread closes connections idle past the configured timeout.
//
// Backpressure is explicit, never silent: over max_connections the
// listener accepts, writes one BUSY frame and closes; a full ingest queue
// or too many in-flight frames answers the offending frame with BUSY and
// keeps the connection open so the client can retry.
//
// Shutdown (Stop(), or SIGTERM in the daemon) is a graceful drain: stop
// accepting, let every claimed frame finish (including queued ingests),
// join the threads, then close what remains.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/sync.h"
#include "engine/engine.h"
#include "net/result.h"
#include "server/metrics.h"
#include "server/proto.h"

namespace netclust::server {

struct ServerConfig {
  /// TCP port to bind on loopback; 0 picks an ephemeral port (read it back
  /// with Server::port()).
  std::uint16_t port = 0;
  /// Reader thread count; <= 0 selects 2.
  int reader_threads = 2;
  /// Accepted-connection ceiling; the listener BUSY+closes beyond it.
  std::size_t max_connections = 64;
  /// Decoded-but-unanswered frame ceiling across all connections (this
  /// bounds the ingest queue too); excess frames get BUSY replies.
  std::size_t max_inflight_frames = 128;
  /// Idle-connection reap threshold. <= 0 disables idle reaping only;
  /// read_timeout_ms stays enforced (the reaper runs while either timeout
  /// is positive).
  int idle_timeout_ms = 30'000;
  /// Per-connection deadline for writing one response.
  int write_timeout_ms = 5'000;
  /// Deadline for draining a partially received frame once its first bytes
  /// have arrived (a peer that stalls mid-frame is cut off). <= 0 disables
  /// the mid-frame cutoff.
  int read_timeout_ms = 5'000;
  int listen_backlog = 64;
  /// Engine source ids in [0, source_count) are accepted from
  /// INGEST_UPDATE frames; others get a malformed-payload ERROR. The
  /// daemon sets this to the number of sources it registered.
  int source_count = 0;
  /// This node's cluster id, or < 0 for standalone mode. Standalone
  /// servers answer cluster opcodes with an unsupported-opcode ERROR.
  std::int64_t cluster_node_id = -1;
};

class Server {
 public:
  /// `engine` must outlive the server and must already be Start()ed; once
  /// Serve() returns OK the server's ingest thread is the engine's single
  /// routing-plane caller until Stop() completes.
  Server(engine::Engine* engine, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, arms the epoll loop and spawns the reader/ingest/reaper
  /// threads. Returns the bound port.
  [[nodiscard]] Result<std::uint16_t> Serve();

  /// Graceful drain: stop accepting, finish in-flight frames, join all
  /// threads, close remaining connections. Idempotent; the destructor
  /// calls it.
  void Stop();

  /// Bound port (valid after Serve()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] const ServerMetrics& metrics() const { return metrics_; }

  /// Plain-text STATS body: server exposition + engine exposition.
  [[nodiscard]] std::string StatsText() const;

  /// Installs `topo` as the routing truth for cluster dispatch. Requires
  /// cluster mode (cluster_node_id >= 0) and an epoch strictly newer than
  /// the installed one (equal epoch + identical topology is an idempotent
  /// no-op). This node may be absent from `topo` — a drained node keeps
  /// serving REDIRECTs so stragglers learn the new epoch. Thread-safe;
  /// also reachable over the wire via SET_TOPOLOGY.
  [[nodiscard]] Result<bool> SetTopology(const Topology& topo);

  /// The installed topology, or an empty optional before the first
  /// SetTopology(). Thread-safe.
  [[nodiscard]] std::optional<Topology> CurrentTopology() const;

 private:
  /// An installed topology plus its per-/16-block owner map, published as
  /// an immutable snapshot so cluster frames take one shared_ptr copy
  /// instead of holding topo_mu_ across engine lookups.
  struct CompiledTopology {
    Topology topo;
    std::vector<std::uint16_t> owner;  // kShardBlockCount entries
    int self_index = -1;               // this node's index, -1 if absent
  };
  /// One accepted connection. Owned by connections_; serviced by at most
  /// one reader at a time (EPOLLONESHOT).
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    /// Last activity stamp (ms, steady clock) for the idle reaper.
    std::atomic<std::int64_t> last_activity_ms{0};
    /// Set while a reader services the connection; the reaper skips busy
    /// connections so it never closes a descriptor mid-frame.
    std::atomic<bool> busy{false};
  };

  /// A decoded INGEST_UPDATE parked for the ingest thread. The reader
  /// waits on `done` and then writes the ack itself.
  struct IngestJob {
    IngestRequest request;
    base::Mutex mu;
    base::CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::uint64_t table_version GUARDED_BY(mu) = 0;
  };

  void ReaderLoop();
  void IngestLoop();
  void ReaperLoop();

  /// Accepts until EAGAIN; enforces max_connections with BUSY+close.
  void AcceptNew();

  /// Services one readable connection: drain the socket, decode and answer
  /// every complete frame, then rearm (or close on error/EOF).
  void ServiceConnection(const std::shared_ptr<Connection>& conn);

  /// Dispatches one decoded frame. Returns false when the connection must
  /// be closed (write failure or protocol violation).
  [[nodiscard]] bool DispatchFrame(const std::shared_ptr<Connection>& conn,
                                   const Frame& frame);

  [[nodiscard]] bool SendFrame(const std::shared_ptr<Connection>& conn,
                               Opcode opcode,
                               const std::vector<std::uint8_t>& payload);
  [[nodiscard]] bool SendError(const std::shared_ptr<Connection>& conn,
                               ErrorCode code, const std::string& message);

  /// Removes the connection from epoll + the table and closes it.
  void CloseConnection(const std::shared_ptr<Connection>& conn,
                       engine::Counter* reason);

  /// Rearms an EPOLLONESHOT descriptor for the next readable event, but
  /// only after validating under conn_mu_ that the fd still maps to this
  /// Connection — guards against the reaper closing it and the kernel
  /// recycling the fd between the busy release and the rearm.
  [[nodiscard]] bool RearmIfCurrent(const std::shared_ptr<Connection>& conn);

  /// Rearms an EPOLLONESHOT descriptor for the next readable event. The
  /// caller must hold conn_mu_ so the fd cannot be closed and recycled
  /// between its membership check and the epoll_ctl.
  [[nodiscard]] bool RearmConnection(const Connection& conn)
      REQUIRES(conn_mu_);

  engine::Engine* const engine_;
  const ServerConfig config_;
  mutable ServerMetrics metrics_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; written once at Stop() to wake all readers
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool serving_ = false;  // main-thread lifecycle flag (Serve()/Stop())

  /// Current compiled topology under topo_mu_; null until SetTopology().
  [[nodiscard]] std::shared_ptr<const CompiledTopology> AcquireTopology() const;

  /// Snapshot of this node's counters for a CLUSTER_STATS rollup.
  [[nodiscard]] ClusterStatsRecord BuildClusterStats(
      const std::shared_ptr<const CompiledTopology>& topo) const;

  base::Mutex conn_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_
      GUARDED_BY(conn_mu_);

  mutable base::Mutex topo_mu_;
  std::shared_ptr<const CompiledTopology> topology_ GUARDED_BY(topo_mu_);

  base::Mutex ingest_mu_;
  base::CondVar ingest_cv_;
  std::deque<IngestJob*> ingest_queue_ GUARDED_BY(ingest_mu_);
  bool ingest_stopping_ GUARDED_BY(ingest_mu_) = false;

  /// Decoded-but-unanswered frames across all connections (backpressure).
  std::atomic<std::int64_t> inflight_frames_{0};

  std::vector<std::thread> readers_;
  std::thread ingest_thread_;
  std::thread reaper_thread_;
};

}  // namespace netclust::server
