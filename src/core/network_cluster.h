// Second-level "network clusters" (§3.6).
//
// "After identifying client clusters based on the BGP routing table
// information, we can further cluster nearby client clusters into network
// clusters. We use traceroute to do the higher level clustering.
// Typically, we run traceroute on a number of (r >= 1) randomly selected
// clients in each cluster and do suffix matching on the path towards each
// destination network." Useful for selective content distribution, proxy
// placement and load balancing.
//
// The suffix compared here deliberately *excludes* the destination
// network's own gateway hop (skip_edge_hops, default 1): two client
// clusters behind the same upstream border router are "nearby" even
// though their last hops differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/oracles.h"

namespace netclust::core {

struct NetworkClusterConfig {
  /// Traceroute samples per client cluster (the paper's r >= 1).
  int samples_per_cluster = 2;
  /// Hops dropped from the end of each path before suffix matching
  /// (1 = ignore the destination network's own gateway).
  int skip_edge_hops = 1;
  /// Length of the path suffix compared after skipping.
  int suffix_hops = 1;
};

struct NetworkCluster {
  /// Shared upstream path suffix (joined router names).
  std::string path_suffix;
  /// Indices into the source Clustering's clusters.
  std::vector<std::size_t> clusters;
  std::size_t clients = 0;
  std::uint64_t requests = 0;
};

struct NetworkClusteringResult {
  std::vector<NetworkCluster> network_clusters;
  /// Client clusters whose probes returned no usable path.
  std::vector<std::size_t> unresolved;
  std::size_t probes = 0;
  double seconds = 0.0;
};

/// Groups the client clusters of `clustering` into network clusters by
/// probing `config.samples_per_cluster` members of each (deterministic
/// spread) and suffix-matching the discovered paths.
NetworkClusteringResult ClusterClusters(const Clustering& clustering,
                                        const PathOracle& oracle,
                                        const NetworkClusterConfig& config = {});

}  // namespace netclust::core
