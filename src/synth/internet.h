// Ground-truth synthetic Internet.
//
// This is the substitution for the real 1999 Internet behind the paper's
// data: a hierarchical CIDR allocation of address space to administrative
// entities, with known domains, AS numbers and router paths. From this
// ground truth the library derives everything the paper had to observe
// indirectly: BGP vantage-point tables (vantage.h), registry dumps, DNS
// answers and traceroute paths — and, unlike the paper, it can score any
// clustering against the true partition.
//
// Terminology:
//   * RegistryOrg — an organization that obtained a block from a registry
//     (one row of an ARIN-style network dump). Owns one AS.
//   * Allocation — a leaf administrative entity inside an org block: one
//     department/customer network, the paper's notion of a true cluster.
//     Leaf prefix lengths are sampled from the Mae-West histogram printed
//     in Figure 1(b) of the paper.
//   * National-gateway orgs model the paper's Croatia/France/Japan case:
//     BGP sees only the country-level aggregate, while the allocations
//     behind the gateway are distinct admin entities.
//   * ISP-resale allocations model the 151.198.194.x example: the BGP
//     prefix belongs to an ISP that resells sub-blocks to customers with
//     unrelated domains.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route_entry.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "trie/patricia_trie.h"

namespace netclust::synth {

/// How an allocation behaves for naming/routing purposes.
enum class AllocationKind {
  kNormal,
  kIspResale,        // hosts carry unrelated customer domains
  kNationalGateway,  // BGP aggregates the whole country above this network
};

/// One leaf administrative entity — the ground-truth cluster.
struct Allocation {
  std::uint32_t index = 0;
  net::Prefix prefix;
  std::uint32_t org = 0;  // index into Internet::orgs()
  bgp::AsNumber as_number = 0;
  AllocationKind kind = AllocationKind::kNormal;
  bool us_based = true;
  /// Geographic region (inherited from the org): 0-2 US, 3+ elsewhere.
  int region = 0;
  std::string domain;  // e.g. "cs.univ17.edu"
  /// Router names on the path from the core to this network; the last
  /// entry is the network's own gateway, so two hosts share their path
  /// suffix iff they share an allocation.
  std::vector<std::string> router_path;
  /// Non-empty only for kIspResale: the customer domains hosts rotate
  /// through instead of `domain`.
  std::vector<std::string> customer_domains;
  /// Probability that a host in this allocation has a PTR record at all
  /// (0 for firewall/unregistered-ISP allocations).
  double dns_coverage = 1.0;
};

/// One registry-dump row: the org-level super-block.
struct RegistryOrg {
  std::uint32_t index = 0;
  net::Prefix block;
  bgp::AsNumber as_number = 0;
  bool national_gateway = false;
  bool us_based = true;
  /// Geographic region: 0-2 US (east/central/west), 3+ other continents.
  int region = 0;
  /// Allocated after the (stale) NLANR dump was taken.
  bool post_1997 = false;
  /// Never announced by any BGP vantage point — reachable only through a
  /// default route. Clients here are clusterable only via registry dumps,
  /// the paper's "99% -> 99.9%" gap (§3.1.1).
  bool bgp_dark = false;
  /// Additionally absent from the registry dumps: the paper's ~0.1%
  /// unclusterable clients.
  bool unregistered = false;
  std::string name;  // e.g. "univ17.edu"
  std::vector<std::uint32_t> allocations;
};

struct InternetConfig {
  std::uint64_t seed = 1;
  /// Target number of leaf allocations (the paper-era default-free zone
  /// has ~29k visible prefixes; scale this down for fast tests).
  std::size_t allocation_count = 29000;
  /// Fraction of orgs that sit behind a national gateway.
  double national_gateway_org_fraction = 0.02;
  /// Fraction of allocations that are ISP-resale blocks.
  double isp_resale_fraction = 0.02;
  /// Fraction of allocations whose hosts never resolve (firewalls, ISPs
  /// with no PTR records).
  double unresolvable_allocation_fraction = 0.25;
  /// Per-host PTR probability within a resolvable allocation. Combined
  /// with the above this yields the paper's ~50% nslookup success.
  double host_dns_coverage = 0.66;
  /// Number of transit ASes in the synthetic core.
  int transit_as_count = 12;
  /// Fraction of orgs invisible to every BGP table (dump-only coverage).
  double bgp_dark_org_fraction = 0.012;
  /// Of the dark orgs, the fraction also missing from the registry dumps.
  double unregistered_fraction = 0.1;
};

/// The generated ground truth. Immutable after generation.
class Internet {
 public:
  Internet(InternetConfig config, std::vector<Allocation> allocations,
           std::vector<RegistryOrg> orgs);

  [[nodiscard]] const InternetConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Allocation>& allocations() const {
    return allocations_;
  }
  [[nodiscard]] const std::vector<RegistryOrg>& orgs() const { return orgs_; }

  /// The allocation containing `address`, or nullptr for unallocated space.
  [[nodiscard]] const Allocation* Locate(net::IpAddress address) const;

  /// The `host_index`-th usable host address of `allocation`
  /// (host_index < allocation.prefix.size() - 2; network/broadcast skipped).
  [[nodiscard]] net::IpAddress HostAddress(const Allocation& allocation,
                                           std::uint64_t host_index) const;

  /// Ground-truth DNS PTR lookup. nullopt ≈ NXDOMAIN/timeout, which the
  /// paper observed for ~50% of clients.
  [[nodiscard]] std::optional<std::string> ResolveName(
      net::IpAddress address) const;

  /// Whether the host itself answers the final traceroute probe (~50%:
  /// firewalled hosts yield only the path).
  [[nodiscard]] bool HostAnswersProbe(net::IpAddress address) const;

  /// Router-level path from the measurement core towards `address`
  /// (excludes the host). nullptr for unallocated space.
  [[nodiscard]] const std::vector<std::string>* RouterPath(
      net::IpAddress address) const;

  /// Number of geographic regions (0-2 are US).
  static constexpr int kRegionCount = 6;

  /// Round-trip time in milliseconds from a server in `from_region` to
  /// `address`: a per-region-pair base (intra-region tens of ms,
  /// cross-continent hundreds) with stable per-host jitter. Unallocated
  /// space answers at worst-case distance.
  [[nodiscard]] double RttMs(net::IpAddress address,
                             int from_region = 0) const;

 private:
  InternetConfig config_;
  std::vector<Allocation> allocations_;
  std::vector<RegistryOrg> orgs_;
  trie::PatriciaTrie<std::uint32_t> locator_;
};

/// Generates a ground-truth Internet from `config`. Deterministic in
/// `config.seed`.
Internet GenerateInternet(const InternetConfig& config);

/// The Figure 1(b) prefix-length histogram (Mae-West, 7/3/1999), used as
/// the target distribution for allocation leaf lengths. Index = prefix
/// length 0..32; zero where the paper reports no entries.
const std::vector<double>& PaperPrefixLengthHistogram();

}  // namespace netclust::synth
