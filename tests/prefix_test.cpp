#include "net/prefix.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace netclust::net {
namespace {

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix prefix(IpAddress(12, 65, 147, 94), 19);
  EXPECT_EQ(prefix.ToString(), "12.65.128.0/19");
  EXPECT_EQ(prefix.network(), IpAddress(12, 65, 128, 0));
  EXPECT_EQ(prefix, Prefix(IpAddress(12, 65, 128, 0), 19));
}

TEST(Prefix, MaskForLengthEdges) {
  EXPECT_EQ(MaskForLength(0), 0u);
  EXPECT_EQ(MaskForLength(1), 0x80000000u);
  EXPECT_EQ(MaskForLength(8), 0xFF000000u);
  EXPECT_EQ(MaskForLength(19), 0xFFFFE000u);
  EXPECT_EQ(MaskForLength(32), 0xFFFFFFFFu);
}

TEST(Prefix, SizeIsBlockWidth) {
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 8).size(), 1u << 24);
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 24).size(), 256u);
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 32).size(), 1u);
  EXPECT_EQ(Prefix().size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ContainsAddress) {
  // The §3.2.1 worked example: the first four clients match 12.65.128.0/19.
  const auto block = Prefix::Parse("12.65.128.0/19").value();
  for (const char* client : {"12.65.147.94", "12.65.147.149", "12.65.146.207",
                             "12.65.144.247"}) {
    EXPECT_TRUE(block.Contains(IpAddress::Parse(client).value())) << client;
  }
  EXPECT_FALSE(block.Contains(IpAddress(12, 65, 160, 1)));
  EXPECT_FALSE(block.Contains(IpAddress(24, 48, 3, 87)));
}

TEST(Prefix, ContainsPrefixIsPartialOrder) {
  const auto wide = Prefix::Parse("12.0.0.0/8").value();
  const auto mid = Prefix::Parse("12.65.128.0/19").value();
  const auto narrow = Prefix::Parse("12.65.144.0/22").value();
  EXPECT_TRUE(wide.Contains(mid));
  EXPECT_TRUE(mid.Contains(narrow));
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(mid.Contains(wide));
  EXPECT_TRUE(mid.Contains(mid));
  const auto sibling = Prefix::Parse("12.65.160.0/19").value();
  EXPECT_FALSE(mid.Contains(sibling));
  EXPECT_FALSE(sibling.Contains(mid));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  const Prefix any;
  EXPECT_TRUE(any.Contains(IpAddress(0, 0, 0, 0)));
  EXPECT_TRUE(any.Contains(IpAddress(255, 255, 255, 255)));
  EXPECT_TRUE(any.Contains(Prefix(IpAddress(12, 0, 0, 0), 8)));
}

TEST(Prefix, ParentWalksTowardRoot) {
  Prefix p = Prefix::Parse("192.168.192.0/18").value();
  p = p.Parent();
  EXPECT_EQ(p.ToString(), "192.168.128.0/17");
  p = p.Parent();
  EXPECT_EQ(p.ToString(), "192.168.0.0/16");
  const Prefix root;
  EXPECT_EQ(root.Parent(), root);
}

TEST(Prefix, FirstAndLastAddress) {
  const auto block = Prefix::Parse("24.48.2.0/23").value();
  EXPECT_EQ(block.first_address(), IpAddress(24, 48, 2, 0));
  EXPECT_EQ(block.last_address(), IpAddress(24, 48, 3, 255));
}

TEST(Prefix, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3.4", "1.2.3.4/", "1.2.3.4/33",
                           "1.2.3.4/-1", "1.2.3.4/2x", "bad/8"}) {
    EXPECT_FALSE(Prefix::Parse(text).ok()) << "accepted: '" << text << "'";
  }
}

TEST(Prefix, DottedMaskString) {
  EXPECT_EQ(Prefix::Parse("12.65.128.0/19").value().ToDottedMaskString(),
            "12.65.128.0/255.255.224.0");
  EXPECT_EQ(Prefix::Parse("151.198.194.16/28").value().ToDottedMaskString(),
            "151.198.194.16/255.255.255.240");
}

TEST(Prefix, ClassfulLogic) {
  // §2: Class A /8, Class B /16, Class C /24.
  EXPECT_EQ(ClassOf(IpAddress(18, 0, 0, 1)), AddressClass::kA);
  EXPECT_EQ(ClassOf(IpAddress(151, 198, 194, 17)), AddressClass::kB);
  EXPECT_EQ(ClassOf(IpAddress(199, 1, 1, 1)), AddressClass::kC);
  EXPECT_EQ(ClassOf(IpAddress(224, 0, 0, 1)), AddressClass::kD);
  EXPECT_EQ(ClassOf(IpAddress(241, 0, 0, 1)), AddressClass::kE);

  EXPECT_EQ(ClassfulNetwork(IpAddress(18, 26, 0, 100)).ToString(),
            "18.0.0.0/8");
  EXPECT_EQ(ClassfulNetwork(IpAddress(151, 198, 194, 17)).ToString(),
            "151.198.0.0/16");
  EXPECT_EQ(ClassfulNetwork(IpAddress(199, 5, 6, 7)).ToString(),
            "199.5.6.0/24");
}

TEST(Prefix, ClassBoundaries) {
  EXPECT_EQ(ClassfulPrefixLength(IpAddress(127, 255, 255, 255)), 8);
  EXPECT_EQ(ClassfulPrefixLength(IpAddress(128, 0, 0, 0)), 16);
  EXPECT_EQ(ClassfulPrefixLength(IpAddress(191, 255, 0, 0)), 16);
  EXPECT_EQ(ClassfulPrefixLength(IpAddress(192, 0, 0, 0)), 24);
  EXPECT_EQ(ClassfulPrefixLength(IpAddress(223, 255, 255, 255)), 24);
}

TEST(Prefix, HashDistinguishesLengths) {
  // 10.0.0.0/8 and 10.0.0.0/9 share a network address; the hash (and the
  // table built on it) must keep them apart.
  std::unordered_set<Prefix> set;
  for (int length = 8; length <= 24; ++length) {
    set.insert(Prefix(IpAddress(10, 0, 0, 0), length));
  }
  EXPECT_EQ(set.size(), 17u);
}

}  // namespace
}  // namespace netclust::net
