// Real-time cluster monitoring (§3.5's "real-time client cluster
// identification results").
//
//   $ ./realtime_monitor
//
// Simulates a live deployment: the clusterer is seeded from a RIB dump,
// then consumes the server's request stream in five-minute windows while
// a BGP feed delivers UPDATE messages between windows. After each window
// it prints the operator's view — top clusters by demand in that window —
// the "global view of where their customers are located and how their
// demands change from time to time" the paper promises providers.
#include <cstdio>
#include <map>

#include "bgp/update.h"
#include "core/streaming.h"
#include "synth/internet.h"
#include "synth/vantage.h"
#include "synth/workload.h"

int main() {
  using namespace netclust;

  synth::InternetConfig net_config;
  net_config.seed = 47;
  net_config.allocation_count = 3000;
  const synth::Internet internet = synth::GenerateInternet(net_config);
  const synth::VantageGenerator vantages(internet,
                                         synth::DefaultVantageProfiles());

  synth::WorkloadConfig workload;
  workload.seed = 48;
  workload.target_clients = 4000;
  workload.target_requests = 120000;
  workload.url_count = 3000;
  workload.duration_seconds = 4 * 3600;  // a busy four-hour event window
  const weblog::ServerLog log = synth::GenerateLog(internet, workload).log;

  core::StreamingClusterer clusterer("event-live");
  int feed_source = -1;
  for (std::size_t s = 0; s < vantages.profiles().size(); ++s) {
    const int id = clusterer.SeedSnapshot(vantages.MakeSnapshot(s, 0));
    if (vantages.profiles()[s].info.name == "OREGON") feed_source = id;
  }
  const auto feed = vantages.MakeUpdateStream(9 /*OREGON*/, 0, 0, 0, 4);
  std::printf("seeded %zu-prefix table; live feed carries %zu UPDATEs\n",
              clusterer.table().size(), feed.size());

  // Replay in 30-minute windows.
  const auto& requests = log.requests();
  const std::int64_t window_len = 1800;
  std::size_t cursor = 0;
  std::size_t feed_cursor = 0;
  int window = 0;
  for (std::int64_t window_start = log.start_time();
       window_start <= log.end_time(); window_start += window_len, ++window) {
    const std::int64_t window_end = window_start + window_len;
    // Per-window demand, attributed by the *current* table.
    std::map<net::Prefix, std::uint64_t> demand;
    while (cursor < requests.size() &&
           requests[cursor].timestamp < window_end) {
      const auto& request = requests[cursor++];
      clusterer.Observe(request.client, request.url_id,
                        request.response_bytes, request.timestamp);
      const auto match = clusterer.table().LongestMatch(request.client);
      if (match.has_value()) ++demand[match->prefix];
    }

    // The busiest communities this window.
    const net::Prefix* top_prefix = nullptr;
    std::uint64_t top_requests = 0;
    std::uint64_t window_total = 0;
    for (const auto& [prefix, count] : demand) {
      window_total += count;
      if (count > top_requests) {
        top_requests = count;
        top_prefix = &prefix;
      }
    }
    std::printf("window %2d: %7llu requests, %4zu active clusters, "
                "hottest %-18s (%llu requests)\n",
                window, static_cast<unsigned long long>(window_total),
                demand.size(),
                top_prefix ? top_prefix->ToString().c_str() : "-",
                static_cast<unsigned long long>(top_requests));

    // Between windows, the routing feed ticks.
    const std::size_t until =
        static_cast<std::size_t>(window + 1) * feed.size() / 8;
    for (; feed_cursor < std::min(until, feed.size()); ++feed_cursor) {
      clusterer.ApplyUpdate(feed[feed_cursor], feed_source);
    }
  }

  const auto& stats = clusterer.stats();
  std::printf("\ntotals: %llu requests into %zu clusters; churn moved %zu "
              "clients across clusters; %zu clients currently unclustered\n",
              static_cast<unsigned long long>(stats.requests),
              clusterer.cluster_count(), stats.reassignments,
              clusterer.unclustered_count());
  return 0;
}
