// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang's `capability` attributes when the compiler
// supports them (any recent Clang) and to nothing elsewhere, so the
// annotated tree stays a plain C++20 build under GCC/MSVC while Clang
// builds get `-Wthread-safety` checking (promoted to an error by the
// top-level CMakeLists when the compiler is Clang). The macro set and
// spellings follow the Clang documentation / Abseil conventions:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// Two kinds of capability are used in this codebase:
//   * real locks — base::Mutex in base/sync.h, checked end to end;
//   * thread roles — zero-byte base::ThreadRole capabilities that encode
//     "this member / function belongs to the producer (or consumer, or
//     publisher) thread". Roles cannot be verified across threads by the
//     analysis, but they force every access to role-owned state to be
//     explicitly marked with the role, turning silent contract breaches
//     into compile errors. See DESIGN.md "Static analysis".
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define NETCLUST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NETCLUST_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable / role) type.
#define CAPABILITY(x) NETCLUST_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY NETCLUST_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be accessed while holding the given capability.
#define GUARDED_BY(x) NETCLUST_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointed-to* data is protected by the capability.
#define PT_GUARDED_BY(x) NETCLUST_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (exclusively) on entry, and does not
/// release it.
#define REQUIRES(...) \
  NETCLUST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) access on entry.
#define REQUIRES_SHARED(...) \
  NETCLUST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  NETCLUST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires shared (reader) access and holds it past return.
#define ACQUIRE_SHARED(...) \
  NETCLUST_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define RELEASE(...) \
  NETCLUST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases shared (reader) access.
#define RELEASE_SHARED(...) \
  NETCLUST_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is the
/// return value that indicates success.
#define TRY_ACQUIRE(...) \
  NETCLUST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (anti-deadlock annotation).
#define EXCLUDES(...) NETCLUST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a required acquisition order between capabilities.
#define ACQUIRED_BEFORE(...) \
  NETCLUST_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NETCLUST_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability; lets call sites
/// name a private capability through an accessor (the GetMu() pattern from
/// the Clang docs).
#define RETURN_CAPABILITY(x) NETCLUST_THREAD_ANNOTATION(lock_returned(x))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to believe it from here on.
#define ASSERT_CAPABILITY(x) \
  NETCLUST_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must carry
/// a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  NETCLUST_THREAD_ANNOTATION(no_thread_safety_analysis)
