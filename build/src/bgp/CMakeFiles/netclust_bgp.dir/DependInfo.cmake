
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/aggregate.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/aggregate.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/aggregate.cc.o.d"
  "/root/repo/src/bgp/dynamics.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/dynamics.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/dynamics.cc.o.d"
  "/root/repo/src/bgp/io.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/io.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/io.cc.o.d"
  "/root/repo/src/bgp/mrt.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/mrt.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/mrt.cc.o.d"
  "/root/repo/src/bgp/prefix_table.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/prefix_table.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/prefix_table.cc.o.d"
  "/root/repo/src/bgp/table_stats.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/table_stats.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/table_stats.cc.o.d"
  "/root/repo/src/bgp/text_parser.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/text_parser.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/text_parser.cc.o.d"
  "/root/repo/src/bgp/update.cc" "src/bgp/CMakeFiles/netclust_bgp.dir/update.cc.o" "gcc" "src/bgp/CMakeFiles/netclust_bgp.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netclust_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
