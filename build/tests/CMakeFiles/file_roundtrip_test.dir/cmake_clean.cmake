file(REMOVE_RECURSE
  "CMakeFiles/file_roundtrip_test.dir/file_roundtrip_test.cpp.o"
  "CMakeFiles/file_roundtrip_test.dir/file_roundtrip_test.cpp.o.d"
  "file_roundtrip_test"
  "file_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
