file(REMOVE_RECURSE
  "libnetclust_weblog.a"
)
