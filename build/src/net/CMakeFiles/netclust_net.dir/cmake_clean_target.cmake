file(REMOVE_RECURSE
  "libnetclust_net.a"
)
