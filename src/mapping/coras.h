// Analytical LRU hit-ratio prediction (Coras et al., "An Analytical
// Model for Loc/ID Mappings Caches").
//
// For an LRU cache of C entries serving independent requests drawn from a
// fixed popularity distribution p_1..p_n (the IRM), Che's approximation —
// the working-set form Coras et al. validate for mapping caches — gives
// the hit ratio in closed form up to one scalar: the characteristic time
// T solves
//
//     C = sum_i (1 - e^{-p_i T})
//
// (each item occupies the cache iff it was requested within the last T
// requests), and then
//
//     h = sum_i p_i (1 - e^{-p_i T}).
//
// T is found by bisection: the right-hand side is strictly increasing in
// T, from 0 toward n. The mapping_test compares this prediction against
// the hit ratio the server's mapping tier actually observes for a
// Zipf-replayed trace.
#pragma once

#include <cstddef>
#include <vector>

namespace netclust::mapping {

/// Normalized Zipf popularity over `n` items: P(i) proportional to
/// 1/(i+1)^alpha, matching synth::ZipfSampler's mass function so the
/// model and the trace generator describe the same workload.
[[nodiscard]] std::vector<double> ZipfPopularity(std::size_t n, double alpha);

/// Che-approximation hit ratio for an LRU cache of `capacity` entries
/// under IRM requests with the given popularity vector (need not be
/// normalized; it is normalized internally). Returns 0 when the cache
/// cannot hold anything and 1 when it holds every item.
[[nodiscard]] double PredictedHitRatio(const std::vector<double>& popularity,
                                       std::size_t capacity);

}  // namespace netclust::mapping
