#include "validate/oracles.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace netclust::validate {
namespace {

const synth::Internet& World() {
  return netclust::testing::GetSmallWorld().internet;
}

net::IpAddress SomeHost(std::size_t allocation, std::uint64_t index = 0) {
  return World().HostAddress(World().allocations()[allocation], index);
}

TEST(SynthNameOracle, MirrorsGroundTruthDns) {
  const SynthNameOracle oracle(World());
  std::size_t checked = 0;
  for (std::size_t a = 0; a < 200; ++a) {
    const net::IpAddress host = SomeHost(a);
    EXPECT_EQ(oracle.Resolve(host), World().ResolveName(host));
    ++checked;
  }
  EXPECT_EQ(checked, 200u);
}

TEST(Traceroutes, BothVariantsSeeTheSamePath) {
  const ClassicTraceroute classic(World());
  const OptimizedTraceroute optimized(World());
  for (std::size_t a = 0; a < 100; ++a) {
    const net::IpAddress host = SomeHost(a);
    const auto classic_observation = classic.Trace(host);
    const auto optimized_observation = optimized.Trace(host);
    EXPECT_EQ(classic_observation.path, optimized_observation.path);
    EXPECT_EQ(classic_observation.host_name.has_value(),
              optimized_observation.host_name.has_value());
  }
}

TEST(Traceroutes, EveryRoutableHostResolvesNameOrPath) {
  // §3.3: "resolvability (either name or path) ... improved from 50% to
  // 100%" with the optimized traceroute.
  const OptimizedTraceroute optimized(World());
  for (std::size_t a = 0; a < 300; ++a) {
    const auto observation = optimized.Trace(SomeHost(a));
    EXPECT_TRUE(observation.host_name.has_value() ||
                !observation.path.empty());
  }
}

TEST(Traceroutes, AboutHalfTheHostsAnswerDirectly) {
  const OptimizedTraceroute optimized(World());
  std::size_t answered = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < World().allocations().size(); ++a) {
    for (std::uint64_t i = 0; i < 2; ++i) {
      const auto observation = optimized.Trace(SomeHost(a, i));
      ++total;
      if (observation.probes_sent == 1) ++answered;
    }
  }
  const double rate = static_cast<double>(answered) /
                      static_cast<double>(total);
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.6);
}

TEST(Traceroutes, OptimizedSavesMostProbesAndWaiting) {
  // The paper: "we can save 90% of the probes and 80% of the waiting time".
  const ClassicTraceroute classic(World());
  const OptimizedTraceroute optimized(World());

  std::uint64_t classic_probes = 0;
  std::uint64_t optimized_probes = 0;
  double classic_seconds = 0;
  double optimized_seconds = 0;
  for (std::size_t a = 0; a < 500; ++a) {
    const net::IpAddress host = SomeHost(a, a);
    const auto c = classic.Trace(host);
    const auto o = optimized.Trace(host);
    classic_probes += static_cast<std::uint64_t>(c.probes_sent);
    optimized_probes += static_cast<std::uint64_t>(o.probes_sent);
    classic_seconds += c.seconds;
    optimized_seconds += o.seconds;
  }
  const double probe_saving =
      1.0 - static_cast<double>(optimized_probes) /
                static_cast<double>(classic_probes);
  const double time_saving = 1.0 - optimized_seconds / classic_seconds;
  EXPECT_GT(probe_saving, 0.85);
  EXPECT_GT(time_saving, 0.75);
}

TEST(Traceroutes, UnroutedSpaceTimesOutWithoutAPath) {
  const ClassicTraceroute classic(World());
  const OptimizedTraceroute optimized(World());
  const net::IpAddress nowhere(127, 1, 2, 3);
  const auto c = classic.Trace(nowhere);
  const auto o = optimized.Trace(nowhere);
  EXPECT_TRUE(c.path.empty());
  EXPECT_TRUE(o.path.empty());
  EXPECT_FALSE(c.host_name.has_value());
  EXPECT_GT(c.probes_sent, o.probes_sent);
}

TEST(CachingNameOracle, MemoizesBothHitsAndNxdomains) {
  const SynthNameOracle inner(World());
  const CachingNameOracle cached(inner);

  std::size_t resolved = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t a = 0; a < 100; ++a) {
      const net::IpAddress host = SomeHost(a);
      const auto name = cached.Resolve(host);
      EXPECT_EQ(name, inner.Resolve(host));
      if (round == 0 && name.has_value()) ++resolved;
    }
  }
  EXPECT_EQ(cached.misses(), 100u);   // one real lookup per address
  EXPECT_EQ(cached.hits(), 200u);     // both NXDOMAIN and names cached
  EXPECT_GT(resolved, 10u);
  EXPECT_LT(resolved, 90u);
}

TEST(Traceroutes, NamesComeWithPaths) {
  const OptimizedTraceroute optimized(World());
  std::size_t named = 0;
  for (std::size_t a = 0; a < 300; ++a) {
    const auto observation = optimized.Trace(SomeHost(a, 3));
    if (observation.host_name.has_value()) {
      ++named;
      EXPECT_FALSE(observation.path.empty());
      EXPECT_FALSE(observation.host_name->empty());
    }
  }
  EXPECT_GT(named, 50u);  // ~25-33% have both probe answer and PTR record
}

}  // namespace
}  // namespace netclust::validate
