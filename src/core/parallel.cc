#include "core/parallel.h"

#include <algorithm>
#include <climits>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace netclust::core {

void ParallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  // Never spawn idle or zero-work threads: degenerate inputs (empty range,
  // threads >> n) clamp to [1, n], which also keeps the chunks balanced.
  const auto cap = static_cast<int>(
      std::min<std::size_t>(n, static_cast<std::size_t>(INT_MAX)));
  threads = std::clamp(threads, 1, cap);
  const std::size_t chunk =
      (n + static_cast<std::size_t>(threads) - 1) /
      static_cast<std::size_t>(threads);
  if (threads == 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (std::thread& worker : workers) worker.join();
}

Clustering ClusterNetworkAwareParallel(const weblog::ServerLog& log,
                                       const bgp::PrefixTable& table,
                                       int threads) {
  Clustering result;
  result.approach = "network-aware";
  result.log_name = log.name();
  result.total_requests = log.request_count();

  const auto& order = log.clients();
  result.clients.reserve(order.size());
  for (const net::IpAddress address : order) {
    result.clients.push_back(ClientStats{address, 0, 0});
  }

  // Phase 1 (parallel): one LPM per distinct client, into a pre-sized
  // slot array — no synchronization beyond ParallelFor's join.
  std::vector<std::optional<bgp::PrefixTable::Match>> matches(order.size());
  ParallelFor(order.size(), threads,
              [&order, &table, &matches](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  matches[i] = table.LongestMatch(order[i]);
                }
              });

  // Phase 2 (serial): grouping in client order — identical to the batch
  // clusterer's assignment order, hence identical cluster numbering.
  std::unordered_map<net::IpAddress, std::uint32_t> client_index;
  client_index.reserve(order.size());
  std::unordered_map<net::Prefix, std::uint32_t> cluster_index;
  std::vector<std::uint32_t> client_cluster(order.size(), UINT32_MAX);
  for (std::uint32_t id = 0; id < order.size(); ++id) {
    client_index.emplace(order[id], id);
    const auto& match = matches[id];
    if (!match.has_value()) {
      result.unclustered.push_back(id);
      continue;
    }
    auto [it, inserted] = cluster_index.emplace(
        match->prefix, static_cast<std::uint32_t>(result.clusters.size()));
    if (inserted) {
      Cluster cluster;
      cluster.key = match->prefix;
      cluster.from_network_dump =
          match->kind == bgp::SourceKind::kNetworkDump;
      result.clusters.push_back(std::move(cluster));
    }
    client_cluster[id] = it->second;
    result.clusters[it->second].members.push_back(id);
  }

  // Phase 3 (serial): request tallies, as in the batch path.
  std::vector<std::unordered_set<std::uint32_t>> cluster_urls(
      result.clusters.size());
  for (const weblog::CompactRequest& request : log.requests()) {
    const std::uint32_t id = client_index.at(request.client);
    result.clients[id].requests += 1;
    result.clients[id].bytes += request.response_bytes;
    const std::uint32_t cluster = client_cluster[id];
    if (cluster == UINT32_MAX) continue;
    Cluster& c = result.clusters[cluster];
    c.requests += 1;
    c.bytes += request.response_bytes;
    cluster_urls[cluster].insert(request.url_id);
  }
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    result.clusters[i].unique_urls = cluster_urls[i].size();
  }
  return result;
}

}  // namespace netclust::core
