// CIDR route aggregation (the mechanism §2 footnote 2 describes: "the
// routing table can be shrunk by aggregating routing entries with adjacent
// IP address blocks and same routing path").
//
// Two operations real routers perform, both of which shape what the
// clustering sees:
//   * sibling aggregation — two adjacent blocks whose union is exactly
//     their parent collapse into the parent when their attributes match;
//   * covered-route suppression — a more-specific entry disappears when a
//     less-specific entry with the same attributes already covers it.
#pragma once

#include <vector>

#include "bgp/route_entry.h"
#include "net/prefix.h"

namespace netclust::bgp {

/// Aggregates bare prefixes (attribute-blind): repeatedly merges sibling
/// pairs into their parent and drops prefixes covered by a present
/// ancestor. The result is the minimal prefix set covering exactly the
/// same addresses. Output is sorted.
std::vector<net::Prefix> AggregatePrefixes(std::vector<net::Prefix> prefixes);

/// Attribute-aware aggregation over route entries: siblings merge and
/// covered routes are suppressed only when next hop and AS path agree
/// (descriptions are not compared; the survivor keeps the parent's).
/// Entries with distinct attributes are left untouched.
std::vector<RouteEntry> AggregateRoutes(std::vector<RouteEntry> routes);

/// True when `prefixes` covers exactly the same address set as `other`
/// (order/duplicates ignored) — the invariant AggregatePrefixes preserves.
bool CoverSameAddresses(const std::vector<net::Prefix>& prefixes,
                        const std::vector<net::Prefix>& other);

}  // namespace netclust::bgp
