#include "core/streaming.h"

#include <gtest/gtest.h>

#include <map>

#include "test_fixtures.h"

namespace netclust::core {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

// Canonical (key -> sorted member addresses) form for comparisons.
std::map<Prefix, std::vector<IpAddress>> Membership(
    const Clustering& clustering) {
  std::map<Prefix, std::vector<IpAddress>> out;
  for (const Cluster& cluster : clustering.clusters) {
    auto& members = out[cluster.key];
    for (const std::uint32_t member : cluster.members) {
      members.push_back(clustering.clients[member].address);
    }
    std::sort(members.begin(), members.end());
  }
  return out;
}

TEST(Streaming, MatchesBatchClusteringWithoutChurn) {
  const auto& world = netclust::testing::GetSmallWorld();

  StreamingClusterer streaming("smallworld");
  const synth::VantageGenerator vantages(world.internet,
                                         synth::DefaultVantageProfiles());
  for (const auto& snapshot : vantages.AllSnapshots(0)) {
    streaming.SeedSnapshot(snapshot);
  }
  streaming.ObserveLog(world.generated.log);

  const Clustering batch =
      ClusterNetworkAware(world.generated.log, world.table);
  const Clustering live = streaming.ToClustering();

  EXPECT_EQ(live.cluster_count(), batch.cluster_count());
  EXPECT_EQ(live.client_count(), batch.client_count());
  EXPECT_EQ(live.total_requests, batch.total_requests);
  EXPECT_EQ(live.unclustered.size(), batch.unclustered.size());
  EXPECT_EQ(Membership(live), Membership(batch));

  // Per-cluster tallies agree too (no churn, so attribution is exact).
  std::map<Prefix, std::uint64_t> batch_requests;
  for (const Cluster& cluster : batch.clusters) {
    batch_requests[cluster.key] = cluster.requests;
  }
  for (const Cluster& cluster : live.clusters) {
    EXPECT_EQ(cluster.requests, batch_requests.at(cluster.key))
        << cluster.key.ToString();
  }
  EXPECT_EQ(streaming.stats().reassignments, 0u);
}

class StreamingChurn : public ::testing::Test {
 protected:
  StreamingChurn() : streaming_("churn") {
    source_ = streaming_.AddSource(
        {"TEST", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
    streaming_.Announce(P("12.0.0.0/8"), source_);
    // Three clients under 12/8.
    Observe("12.65.147.94");
    Observe("12.65.146.207");
    Observe("12.1.1.1");
  }

  void Observe(const char* address, int times = 1) {
    for (int i = 0; i < times; ++i) {
      streaming_.Observe(IpAddress::Parse(address).value(), 1, 100, 0);
    }
  }

  StreamingClusterer streaming_;
  int source_ = 0;
};

TEST_F(StreamingChurn, AnnounceSplitsAffectedClientsOnly) {
  ASSERT_EQ(streaming_.cluster_count(), 1u);
  streaming_.Announce(P("12.65.128.0/19"), source_);

  const Clustering clustering = streaming_.ToClustering();
  const auto membership = Membership(clustering);
  ASSERT_TRUE(membership.contains(P("12.65.128.0/19")));
  EXPECT_EQ(membership.at(P("12.65.128.0/19")).size(), 2u);
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 1u);
  EXPECT_EQ(streaming_.stats().reassignments, 2u);
}

TEST_F(StreamingChurn, WithdrawFallsBackToCoveringPrefix) {
  streaming_.Announce(P("12.65.128.0/19"), source_);
  streaming_.Withdraw(P("12.65.128.0/19"));

  const Clustering clustering = streaming_.ToClustering();
  const auto membership = Membership(clustering);
  ASSERT_TRUE(membership.contains(P("12.0.0.0/8")));
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 3u);
  EXPECT_EQ(clustering.cluster_count(), 1u);
  EXPECT_TRUE(clustering.unclustered.empty());
}

TEST_F(StreamingChurn, WithdrawLastRouteUnclustersClients) {
  streaming_.Withdraw(P("12.0.0.0/8"));
  EXPECT_EQ(streaming_.unclustered_count(), 3u);
  EXPECT_EQ(streaming_.cluster_count(), 0u);

  // Re-announcement adopts them back.
  streaming_.Announce(P("12.0.0.0/8"), source_);
  EXPECT_EQ(streaming_.unclustered_count(), 0u);
  EXPECT_EQ(streaming_.cluster_count(), 1u);
}

TEST_F(StreamingChurn, TalliesMoveWithClients) {
  Observe("12.65.147.94", 9);  // now 10 requests on this client
  streaming_.Announce(P("12.65.128.0/19"), source_);

  const Clustering clustering = streaming_.ToClustering();
  for (const Cluster& cluster : clustering.clusters) {
    if (cluster.key == P("12.65.128.0/19")) {
      EXPECT_EQ(cluster.requests, 11u);  // 10 + 1 sibling request
    }
    if (cluster.key == P("12.0.0.0/8")) {
      EXPECT_EQ(cluster.requests, 1u);
    }
  }
  // Per-client stats are authoritative.
  for (const ClientStats& client : clustering.clients) {
    if (client.address == IpAddress::Parse("12.65.147.94").value()) {
      EXPECT_EQ(client.requests, 10u);
    }
  }
}

TEST_F(StreamingChurn, RedundantAnnounceIsANoop) {
  const auto before = streaming_.stats().reassignments;
  streaming_.Announce(P("12.0.0.0/8"), source_);  // already present
  EXPECT_EQ(streaming_.stats().reassignments, before);
}

TEST_F(StreamingChurn, ApplyUpdateDrivesBothDirections) {
  bgp::UpdateMessage update;
  update.withdrawn = {P("12.0.0.0/8")};
  update.announced = {P("12.65.128.0/19")};
  update.as_path = {7018};
  update.next_hop = IpAddress(1, 1, 1, 1);
  streaming_.ApplyUpdate(update, source_);

  EXPECT_EQ(streaming_.cluster_count(), 1u);
  EXPECT_EQ(streaming_.unclustered_count(), 1u);  // 12.1.1.1 lost its route
  const Clustering clustering = streaming_.ToClustering();
  EXPECT_EQ(Membership(clustering).at(P("12.65.128.0/19")).size(), 2u);
}

TEST_F(StreamingChurn, WithdrawOnlyRouteFallsBackToRegistryDump) {
  // A secondary (registry dump) super-block must catch clients whose only
  // BGP route disappears — §3.1's 99% → 99.9% coverage rule, live.
  const int dump = streaming_.AddSource(
      {"ARIN", "1/1/2000", bgp::SourceKind::kNetworkDump, ""});
  streaming_.Announce(P("12.0.0.0/6"), dump);
  streaming_.Withdraw(P("12.0.0.0/8"));

  EXPECT_EQ(streaming_.unclustered_count(), 0u);
  const auto membership = Membership(streaming_.ToClustering());
  ASSERT_TRUE(membership.contains(P("12.0.0.0/6")));
  EXPECT_EQ(membership.at(P("12.0.0.0/6")).size(), 3u);
  for (const Cluster& cluster : streaming_.ToClustering().clusters) {
    if (cluster.key == P("12.0.0.0/6")) {
      EXPECT_TRUE(cluster.from_network_dump);
    }
  }
}

TEST_F(StreamingChurn, ReAnnounceSamePrefixWithNewOriginAs) {
  streaming_.Withdraw(P("12.0.0.0/8"));
  ASSERT_EQ(streaming_.unclustered_count(), 3u);

  // Same prefix comes back from a different origin AS: the cluster key is
  // identical, members return, and the table records the new origin.
  streaming_.Announce(P("12.0.0.0/8"), source_, 1239);
  EXPECT_EQ(streaming_.unclustered_count(), 0u);
  EXPECT_EQ(streaming_.cluster_count(), 1u);
  EXPECT_EQ(streaming_.table().OriginAs(P("12.0.0.0/8")), 1239u);
  const auto membership = Membership(streaming_.ToClustering());
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 3u);
  // 3 moves out + 3 moves back.
  EXPECT_EQ(streaming_.stats().reassignments, 6u);
}

TEST_F(StreamingChurn, InterleavedNestedAnnounceWithdraw) {
  // Build a 3-deep nest under churn and peel it back layer by layer:
  // every step must re-resolve exactly the clients under the changed
  // prefix to the next-best (or no) match.
  streaming_.Announce(P("12.65.128.0/19"), source_);  // takes .147.94/.146.207
  streaming_.Announce(P("12.65.147.0/24"), source_);  // takes .147.94
  auto membership = Membership(streaming_.ToClustering());
  EXPECT_EQ(membership.at(P("12.65.147.0/24")).size(), 1u);
  EXPECT_EQ(membership.at(P("12.65.128.0/19")).size(), 1u);
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 1u);

  streaming_.Withdraw(P("12.0.0.0/8"));  // only 12.1.1.1 is exposed
  EXPECT_EQ(streaming_.unclustered_count(), 1u);

  streaming_.Withdraw(P("12.65.128.0/19"));  // .146.207 falls two levels
  EXPECT_EQ(streaming_.unclustered_count(), 2u);
  membership = Membership(streaming_.ToClustering());
  ASSERT_TRUE(membership.contains(P("12.65.147.0/24")));
  EXPECT_EQ(membership.at(P("12.65.147.0/24")).size(), 1u);

  streaming_.Announce(P("12.0.0.0/8"), source_);  // re-adopts the fallen two
  EXPECT_EQ(streaming_.unclustered_count(), 0u);
  membership = Membership(streaming_.ToClustering());
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 2u);
  EXPECT_EQ(membership.at(P("12.65.147.0/24")).size(), 1u);

  streaming_.Withdraw(P("12.65.147.0/24"));  // last nest level collapses
  membership = Membership(streaming_.ToClustering());
  EXPECT_EQ(membership.at(P("12.0.0.0/8")).size(), 3u);
  EXPECT_EQ(streaming_.cluster_count(), 1u);
}

TEST(Streaming, ConvergesToBatchUnderChurn) {
  // Stream traffic interleaved with a day's worth of routing updates; the
  // final membership must equal batch clustering against the final table.
  const auto& world = netclust::testing::GetSmallWorld();
  const synth::VantageGenerator vantages(world.internet,
                                         synth::DefaultVantageProfiles());

  StreamingClusterer streaming("churny");
  const int source = streaming.SeedSnapshot(vantages.MakeSnapshot(0, 0));

  const auto& requests = world.generated.log.requests();
  const std::size_t half = requests.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    streaming.Observe(requests[i].client, requests[i].url_id,
                      requests[i].response_bytes, requests[i].timestamp);
  }
  for (const auto& update : vantages.MakeUpdateStream(0, 0, 0, 1, 0)) {
    streaming.ApplyUpdate(update, source);
  }
  for (std::size_t i = half; i < requests.size(); ++i) {
    streaming.Observe(requests[i].client, requests[i].url_id,
                      requests[i].response_bytes, requests[i].timestamp);
  }

  // Batch reference: day-1 AADS table only.
  bgp::PrefixTable reference;
  reference.AddSnapshot(vantages.MakeSnapshot(0, 1));
  const Clustering batch =
      ClusterNetworkAware(world.generated.log, reference);
  const Clustering live = streaming.ToClustering();

  EXPECT_EQ(Membership(live), Membership(batch));
  EXPECT_EQ(live.unclustered.size(), batch.unclustered.size());
  EXPECT_GT(streaming.stats().announce_events +
                streaming.stats().withdraw_events,
            0u);
}

}  // namespace
}  // namespace netclust::core
