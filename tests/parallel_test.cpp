#include "core/parallel.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace netclust::core {
namespace {

// The parallel clusterer promises bit-identical output to the serial one.
void ExpectIdentical(const Clustering& a, const Clustering& b) {
  ASSERT_EQ(a.cluster_count(), b.cluster_count());
  ASSERT_EQ(a.client_count(), b.client_count());
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.unclustered, b.unclustered);
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].key, b.clusters[c].key) << c;
    EXPECT_EQ(a.clusters[c].members, b.clusters[c].members) << c;
    EXPECT_EQ(a.clusters[c].requests, b.clusters[c].requests) << c;
    EXPECT_EQ(a.clusters[c].bytes, b.clusters[c].bytes) << c;
    EXPECT_EQ(a.clusters[c].unique_urls, b.clusters[c].unique_urls) << c;
    EXPECT_EQ(a.clusters[c].from_network_dump,
              b.clusters[c].from_network_dump)
        << c;
  }
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_EQ(a.clients[i].address, b.clients[i].address);
    EXPECT_EQ(a.clients[i].requests, b.clients[i].requests);
    EXPECT_EQ(a.clients[i].bytes, b.clients[i].bytes);
  }
}

class ParallelThreadsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelThreadsSweep, MatchesSerialExactly) {
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering serial =
      ClusterNetworkAware(world.generated.log, world.table);
  const Clustering parallel = ClusterNetworkAwareParallel(
      world.generated.log, world.table, GetParam());
  ExpectIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreadsSweep,
                         ::testing::Values(0, 1, 2, 3, 8, 64));

TEST(Parallel, EmptyLog) {
  const auto& world = netclust::testing::GetSmallWorld();
  weblog::ServerLog empty("empty");
  const Clustering clustering =
      ClusterNetworkAwareParallel(empty, world.table, 4);
  EXPECT_EQ(clustering.cluster_count(), 0u);
  EXPECT_EQ(clustering.client_count(), 0u);
}

// Degenerate inputs must clamp the thread count rather than spawn idle or
// zero-work threads, and stay bit-identical to the serial path.
TEST(Parallel, ThreadClampOnDegenerateInputs) {
  const auto& world = netclust::testing::GetSmallWorld();

  // Empty log with an absurd thread request: no crash, empty result.
  weblog::ServerLog empty("empty");
  const Clustering none =
      ClusterNetworkAwareParallel(empty, world.table, 4096);
  EXPECT_EQ(none.client_count(), 0u);
  EXPECT_EQ(none.cluster_count(), 0u);

  // Three distinct clients, 64 threads requested: identical to serial.
  weblog::ServerLog tiny("tiny");
  for (int i = 0; i < 3; ++i) {
    weblog::LogRecord record;
    record.client = world.internet.HostAddress(
        world.internet.allocations()[static_cast<std::size_t>(i)], 0);
    record.timestamp = 100 + i;
    record.url = "/x";
    tiny.Append(record);
  }
  ExpectIdentical(ClusterNetworkAware(tiny, world.table),
                  ClusterNetworkAwareParallel(tiny, world.table, 64));
}

TEST(Parallel, MoreThreadsThanClients) {
  const auto& world = netclust::testing::GetSmallWorld();
  weblog::ServerLog tiny("tiny");
  weblog::LogRecord record;
  record.client = world.internet.HostAddress(
      world.internet.allocations()[0], 0);
  record.timestamp = 100;
  record.url = "/x";
  tiny.Append(record);
  const Clustering clustering =
      ClusterNetworkAwareParallel(tiny, world.table, 16);
  EXPECT_EQ(clustering.client_count(), 1u);
  EXPECT_EQ(clustering.cluster_count(), 1u);
}

}  // namespace
}  // namespace netclust::core
