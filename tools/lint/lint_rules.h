// netclust_lint — repo-specific, dependency-free static checks.
//
// A token-level checker for the project rules that clang-tidy and
// -Wthread-safety cannot express (see DESIGN.md "Static analysis" for the
// rule catalog and rationale). The rule engine is a pure function of
// (path, file content) so the self-test can feed it snippets directly;
// netclust_lint.cc wraps it in a filesystem walk + suppression file.
//
// Rules (ids are stable; the suppression file references them):
//   order-comment   every memory_order_* use carries an adjacent
//                   `// order:` rationale comment (same line or within
//                   the preceding comment block).
//   parser-int      no atoi / std::stoi / sscanf / strtol-family in
//                   parser code (src/bgp/, src/weblog/) — use
//                   std::from_chars; locale- and overflow-unsafe parsing
//                   was the PR 2 bug class.
//   naked-thread    no std::thread outside src/engine/,
//                   src/server/server.{h,cc} and src/core/parallel.cc —
//                   thread management goes through the engine's
//                   ShardWorker, the server's reactor spawn (the one
//                   vetted spawn site in the service layer) or
//                   core::ParallelFor.
//   raw-io          no raw POSIX I/O calls (read / write / accept /
//                   recv / send and friends) in library code — every
//                   syscall goes through the EINTR-safe, deadline-aware
//                   wrappers in src/server/io_util.*; that file itself is
//                   the single vetted suppression.
//   iostream-include no #include <iostream> in library code under src/
//                   (iostream pulls in static init + locale machinery;
//                   CLI tools are vetted via the suppression file).
//   header-guard    every header under src/ uses #pragma once (the repo
//                   convention), not #ifndef guards.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace netclust::lint {

struct Finding {
  std::string file;  // repo-relative path, e.g. "src/engine/shard.h"
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// Runs every rule over one file. `path` must be repo-relative with '/'
/// separators — rule scoping (parser dirs, engine allowance) matches on it.
std::vector<Finding> LintFile(std::string_view path,
                              std::string_view content);

/// One suppression: exempts `rule` findings in `file` (exact
/// repo-relative path match).
struct Suppression {
  std::string rule;
  std::string file;
};

/// Parses the suppression file format: one `rule:path` per line,
/// '#' comments and blank lines ignored.
std::vector<Suppression> ParseSuppressions(std::string_view text);

/// True when `finding` is covered by an entry in `suppressions`.
bool IsSuppressed(const Finding& finding,
                  const std::vector<Suppression>& suppressions);

}  // namespace netclust::lint
