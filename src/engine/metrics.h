// Embedded observability for the real-time engine.
//
// Everything here is wait-free and safe to bump from any thread: counters
// are relaxed atomics, histograms are fixed arrays of relaxed atomics
// (geometric nanosecond buckets, ×4 per step from 64ns to ~1s). Readers
// get a monotonic-but-unsynchronized view, which is the standard contract
// for scrape-style metrics. Exposition() dumps the whole set in the
// plain-text `name value` / `name_bucket{le="..."}` format scrapers expect.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

namespace netclust::engine {

/// Monotonic counter; Inc from any thread, relaxed ordering.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    // order: relaxed — a pure statistic; no reader derives cross-thread
    // invariants from it, and scrape reads tolerate any interleaving.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    // order: relaxed — scrape-style read; monotonic-but-unsynchronized is
    // the documented contract for the whole metrics layer.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket i holds samples with
/// ns <= 64·4^i (13 finite buckets, 64ns … ~1.07s), plus one overflow
/// bucket; sum and count allow mean computation.
class LatencyHistogram {
 public:
  static constexpr std::size_t kFiniteBuckets = 13;
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;

  static constexpr std::uint64_t BucketBound(std::size_t i) {
    return std::uint64_t{64} << (2 * i);
  }

  void Record(std::uint64_t ns) {
    std::size_t bucket = 0;
    while (bucket < kFiniteBuckets && ns > BucketBound(bucket)) ++bucket;
    // order: relaxed ×3 — the three adds are not a transaction; a scraper
    // may observe bucket/count/sum mid-update, which the exposition format
    // explicitly tolerates (counts are each individually monotonic).
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    // order: relaxed — scrape read; see Record().
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    // order: relaxed — scrape read; see Record().
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    // order: relaxed — scrape read; see Record().
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Steady-clock nanoseconds, for Record() deltas.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The engine's metric set, wired into the ingest, lookup, swap and
/// reassignment paths.
struct EngineMetrics {
  Counter requests_ingested;   // accepted into a shard ring
  Counter requests_dropped;    // rejected by drop-policy backpressure
  Counter requests_processed;  // resolved + accounted by a worker
  Counter updates_ingested;    // routing events offered to the engine
  Counter updates_noop;        // updates that changed nothing (no publish)
  Counter update_batches;      // ApplyUpdateBatch() calls (bursts)
  Counter swaps_published;     // table snapshots published (RCU swaps)
  Counter delta_publishes;     // snapshots compiled incrementally
  Counter full_publishes;      // snapshots compiled from scratch (seeds)
  Counter reassignments;       // clients moved between clusters by churn
  Counter lookups_served;      // serving-plane lookups (single + batched)
  Counter batch_lookups;       // LookupBatch() calls (batches, not lookups)
  Counter drains;              // Drain() barriers completed
  LatencyHistogram ingest_ns;      // producer-side ring push
  LatencyHistogram lookup_ns;      // worker-side resolve + account
  LatencyHistogram swap_build_ns;  // clone + publish of a new snapshot
  LatencyHistogram swap_apply_ns;  // per-shard adoption incl. re-resolution

  /// Plain-text exposition of every counter and histogram.
  [[nodiscard]] std::string Exposition() const {
    std::ostringstream out;
    const auto counter = [&out](const char* name, const Counter& c) {
      out << "netclust_engine_" << name << "_total " << c.value() << "\n";
    };
    counter("requests_ingested", requests_ingested);
    counter("requests_dropped", requests_dropped);
    counter("requests_processed", requests_processed);
    counter("updates_ingested", updates_ingested);
    counter("updates_noop", updates_noop);
    counter("update_batches", update_batches);
    counter("swaps_published", swaps_published);
    counter("delta_publishes", delta_publishes);
    counter("full_publishes", full_publishes);
    counter("reassignments", reassignments);
    counter("lookups_served", lookups_served);
    counter("batch_lookups", batch_lookups);
    counter("drains", drains);
    const auto histogram = [&out](const char* name,
                                  const LatencyHistogram& h) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
        cumulative += h.bucket(i);
        out << "netclust_engine_" << name << "_ns_bucket{le=\""
            << LatencyHistogram::BucketBound(i) << "\"} " << cumulative
            << "\n";
      }
      cumulative += h.bucket(LatencyHistogram::kFiniteBuckets);
      out << "netclust_engine_" << name << "_ns_bucket{le=\"+Inf\"} "
          << cumulative << "\n";
      out << "netclust_engine_" << name << "_ns_sum " << h.sum() << "\n";
      out << "netclust_engine_" << name << "_ns_count " << h.count() << "\n";
    };
    histogram("ingest", ingest_ns);
    histogram("lookup", lookup_ns);
    histogram("swap_build", swap_build_ns);
    histogram("swap_apply", swap_apply_ns);
    return out.str();
  }
};

}  // namespace netclust::engine
