#include "bgp/io.h"

#include <fstream>
#include <iterator>
#include <vector>

#include "bgp/mrt.h"
#include "bgp/text_parser.h"

namespace netclust::bgp {
namespace {

// Format sniffing reads the type halfword at bytes[4..5]; anything
// shorter cannot carry it. Callers reject such files before sniffing.
constexpr std::size_t kSniffBytes = 6;

// MRT records open with a 4-byte timestamp and a big-endian type that is
// 12 (TABLE_DUMP) or 13 (TABLE_DUMP_V2); text dumps start with printable
// characters, so this sniff cannot misfire on either. Requires at least
// kSniffBytes of input.
bool LooksLikeMrt(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 12) return false;
  const std::uint16_t type =
      static_cast<std::uint16_t>((bytes[4] << 8) | bytes[5]);
  return type == 12 || type == 13;
}

}  // namespace

Result<LoadedSnapshot> LoadSnapshotFile(const std::string& path,
                                        std::string name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail("cannot open " + path);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < kSniffBytes) {
    // Too short to even sniff the format (the type halfword sits at
    // bytes[4..5]): a clean parse error, never an out-of-bounds read and
    // never a silently-empty snapshot.
    return Fail(path + ": file too short to be a routing snapshot (" +
                std::to_string(bytes.size()) + " bytes)");
  }

  LoadedSnapshot loaded;
  const SnapshotInfo info{name.empty() ? path : std::move(name), "",
                          SourceKind::kBgpTable, ""};
  if (LooksLikeMrt(bytes)) {
    MrtStats stats;
    auto snapshot = ReadMrt(bytes, info, &stats);
    if (!snapshot.ok()) return Fail(path + ": " + snapshot.error());
    loaded.snapshot = std::move(snapshot).value();
    // A truncated tail record is survivable (the reader keeps everything
    // before it) but still a record the caller did not get.
    loaded.skipped = stats.skipped_records + stats.truncated_records;
    // V2 files open with a PEER_INDEX_TABLE (type 13); V1 with a route.
    loaded.format = bytes[5] == 13 ? SnapshotFileFormat::kMrtV2
                                   : SnapshotFileFormat::kMrtV1;
    return loaded;
  }

  ParseStats stats;
  loaded.snapshot = ParseSnapshotText(
      std::string(bytes.begin(), bytes.end()), info, &stats);
  loaded.skipped = stats.malformed_lines;
  loaded.format = SnapshotFileFormat::kText;
  return loaded;
}

Result<bool> SaveSnapshotFile(const Snapshot& snapshot,
                              const std::string& path,
                              SnapshotFileFormat format,
                              net::PrefixStyle style,
                              std::uint32_t timestamp) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail("cannot create " + path);
  switch (format) {
    case SnapshotFileFormat::kText: {
      const std::string text = WriteSnapshotText(snapshot, style);
      out.write(text.data(), static_cast<std::streamsize>(text.size()));
      break;
    }
    case SnapshotFileFormat::kMrtV1: {
      const auto bytes = WriteMrtV1(snapshot, timestamp);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      break;
    }
    case SnapshotFileFormat::kMrtV2: {
      const auto bytes = WriteMrt(snapshot, timestamp);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      break;
    }
  }
  if (!out.good()) return Fail("short write to " + path);
  return true;
}

}  // namespace netclust::bgp
