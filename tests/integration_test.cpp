// End-to-end pipeline test: ground truth -> vantage tables (via text AND
// MRT serialization) -> merged prefix table -> clustering -> validation ->
// detection -> thresholding -> cache simulation, asserting the paper's
// qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include "bgp/dynamics.h"
#include "bgp/mrt.h"
#include "bgp/prefix_table.h"
#include "bgp/text_parser.h"
#include "cache/simulation.h"
#include "core/cluster.h"
#include "core/detect.h"
#include "core/metrics.h"
#include "core/self_correct.h"
#include "core/threshold.h"
#include "synth/internet.h"
#include "synth/vantage.h"
#include "synth/workload.h"
#include "validate/oracles.h"
#include "validate/validation.h"

namespace netclust {
namespace {

class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::InternetConfig config;
    config.seed = 101;
    config.allocation_count = 6000;
    internet_ = new synth::Internet(synth::GenerateInternet(config));

    vantages_ = new synth::VantageGenerator(
        *internet_, synth::DefaultVantageProfiles());

    // Round-trip every snapshot through its wire format before merging:
    // text for most sources, MRT for OREGON and AT&T-BGP, exactly as a
    // deployment would consume them.
    table_ = new bgp::PrefixTable();
    for (std::size_t s = 0; s < vantages_->profiles().size(); ++s) {
      const bgp::Snapshot direct = vantages_->MakeSnapshot(s, 0);
      bgp::Snapshot decoded;
      if (direct.info.name == "OREGON" || direct.info.name == "AT&T-BGP") {
        const auto bytes = bgp::WriteMrt(direct, 944524800);
        auto result = bgp::ReadMrt(bytes, direct.info);
        ASSERT_TRUE(result.ok()) << result.error();
        decoded = std::move(result).value();
      } else {
        const auto style = vantages_->profiles()[s].style;
        bgp::ParseStats stats;
        decoded = bgp::ParseSnapshotText(
            bgp::WriteSnapshotText(direct, style), direct.info, &stats);
        ASSERT_EQ(stats.malformed_lines, 0u) << direct.info.name;
      }
      ASSERT_EQ(decoded.entries.size(), direct.entries.size());
      table_->AddSnapshot(decoded);
    }

    synth::WorkloadConfig workload;
    workload.seed = 103;
    workload.log_name = "nagano-mini";
    workload.target_clients = 9000;
    workload.target_requests = 200000;
    workload.url_count = 6000;
    workload.duration_seconds = 86400;
    workload.spider_count = 1;
    workload.spider_request_fraction = 0.05;
    workload.proxy_count = 1;
    workload.proxy_request_fraction = 0.03;
    generated_ = new synth::GeneratedLog(
        synth::GenerateLog(*internet_, workload));

    clustering_ = new core::Clustering(
        core::ClusterNetworkAware(generated_->log, *table_));
  }

  static void TearDownTestSuite() {
    delete clustering_;
    delete generated_;
    delete table_;
    delete vantages_;
    delete internet_;
  }

  static const synth::Internet* internet_;
  static const synth::VantageGenerator* vantages_;
  static bgp::PrefixTable* table_;
  static const synth::GeneratedLog* generated_;
  static const core::Clustering* clustering_;
};

const synth::Internet* Pipeline::internet_ = nullptr;
const synth::VantageGenerator* Pipeline::vantages_ = nullptr;
bgp::PrefixTable* Pipeline::table_ = nullptr;
const synth::GeneratedLog* Pipeline::generated_ = nullptr;
const core::Clustering* Pipeline::clustering_ = nullptr;

TEST_F(Pipeline, HeadlineCoverageIsNinetyNinePointNine) {
  EXPECT_GT(clustering_->coverage(), 0.995);
  // Registry dumps contribute under ~2% of clustered clients (§3.1.1
  // reports <1% at full scale).
  EXPECT_LT(static_cast<double>(clustering_->dump_clustered_clients()),
            0.03 * static_cast<double>(clustering_->client_count()));
}

TEST_F(Pipeline, ClusterCountsMatchPaperShape) {
  const core::Clustering simple = core::ClusterSimple(generated_->log);
  // Nagano: 9,853 network-aware vs 23,523 simple clusters (~2.4x).
  EXPECT_GT(simple.cluster_count(), clustering_->cluster_count());
  const double ratio = static_cast<double>(simple.cluster_count()) /
                       static_cast<double>(clustering_->cluster_count());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 5.0);
  // And the largest simple cluster is capped at 256 clients.
  const auto simple_summary = core::Summarize(simple);
  EXPECT_LE(simple_summary.max_cluster_clients, 256u);
  const auto aware_summary = core::Summarize(*clustering_);
  EXPECT_GT(aware_summary.max_cluster_clients,
            simple_summary.max_cluster_clients);
}

TEST_F(Pipeline, ValidationPassesLikeTableThree) {
  const validate::SynthNameOracle dns(*internet_);
  const validate::OptimizedTraceroute traceroute(*internet_);
  validate::ValidationConfig config;
  config.sample_fraction = 0.2;
  const auto report =
      validate::ValidateClustering(*clustering_, dns, traceroute, config);
  ASSERT_GT(report.sampled_clusters, 100u);
  EXPECT_GT(report.NslookupPassRate(), 0.88);
  EXPECT_GT(report.TraceroutePassRate(), 0.85);
  EXPECT_EQ(report.traceroute_resolved_clients, report.sampled_clients);
  // ~half the sampled clusters are /24 — the simple approach's ceiling.
  const double len24 = static_cast<double>(report.length24_clusters) /
                       static_cast<double>(report.sampled_clusters);
  EXPECT_GT(len24, 0.3);
  EXPECT_LT(len24, 0.7);
}

TEST_F(Pipeline, DetectionFindsInjectedActors) {
  const auto report =
      core::DetectSpidersAndProxies(generated_->log, *clustering_);
  EXPECT_TRUE(report.SpiderAddresses().contains(
      *generated_->truth.spiders.begin()));
  EXPECT_TRUE(report.ProxyAddresses().contains(
      *generated_->truth.proxies.begin()));
}

TEST_F(Pipeline, ThresholdingMatchesTableFiveShape) {
  const auto detection =
      core::DetectSpidersAndProxies(generated_->log, *clustering_);
  const weblog::ServerLog cleaned =
      core::RemoveClients(generated_->log, detection.AllAddresses());
  const core::Clustering cleaned_clustering =
      core::ClusterNetworkAware(cleaned, *table_);
  const auto report =
      core::ThresholdBusyClusters(cleaned_clustering, 0.7);

  // Nagano: 717 busy of 9,853 (7.3%) hold 70% of requests.
  const double busy_fraction =
      static_cast<double>(report.busy.size()) /
      static_cast<double>(cleaned_clustering.cluster_count());
  EXPECT_LT(busy_fraction, 0.25);
  EXPECT_GT(report.busy_clients, 0u);
  EXPECT_GE(report.threshold_requests, report.less_busy_max_requests);
}

TEST_F(Pipeline, DynamicsAffectFewClustersLikeTableFour) {
  // AADS over a two-week window.
  std::vector<std::vector<net::Prefix>> snapshots;
  for (const int day : {0, 1, 4, 7, 14}) {
    std::vector<net::Prefix> prefixes;
    for (const auto& entry : vantages_->MakeSnapshot(0, day).entries) {
      prefixes.push_back(entry.prefix);
    }
    snapshots.push_back(std::move(prefixes));
  }
  const auto dynamic = bgp::DynamicPrefixSet(snapshots);

  std::vector<net::Prefix> used;
  for (const core::Cluster& cluster : clustering_->clusters) {
    used.push_back(cluster.key);
  }
  const std::size_t affected = bgp::CountAffected(used, dynamic);
  // "overall BGP dynamics affects less than 3% of client clusters" — with
  // a single source's dynamic set, stay under a loose 10%.
  EXPECT_LT(static_cast<double>(affected),
            0.1 * static_cast<double>(used.size()));
  EXPECT_GT(affected, 0u);
}

TEST_F(Pipeline, SelfCorrectionClustersEveryone) {
  const validate::OptimizedTraceroute traceroute(*internet_);
  const auto [corrected, report] =
      core::SelfCorrect(*clustering_, traceroute);
  EXPECT_TRUE(corrected.unclustered.empty());
  EXPECT_EQ(report.adopted, clustering_->unclustered.size());

  const auto before = validate::ValidateAgainstTruth(*clustering_,
                                                     *internet_);
  const auto after = validate::ValidateAgainstTruth(corrected, *internet_);
  EXPECT_GE(after.ExactRate(), before.ExactRate());
  EXPECT_LE(after.too_large, before.too_large);
}

TEST_F(Pipeline, CachingShowsTheFigureElevenGap) {
  const core::Clustering simple = core::ClusterSimple(generated_->log);
  cache::SimulationConfig config;
  config.proxy.ttl_seconds = 3600;
  config.proxy.capacity_bytes = 0;

  const auto aware = cache::SimulateProxyCaching(
      generated_->log, *clustering_, config);
  const auto fragmented = cache::SimulateProxyCaching(
      generated_->log, simple, config);
  EXPECT_GT(aware.ServerHitRatio(), fragmented.ServerHitRatio());
  // Absolute level depends on scale (re-access density grows with the
  // request count); at this mini scale ~0.2-0.6 is the expected band.
  EXPECT_GT(aware.ServerHitRatio(), 0.2);
  EXPECT_LT(aware.ServerHitRatio(), 0.9);
}

}  // namespace
}  // namespace netclust
