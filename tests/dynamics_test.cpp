#include "bgp/dynamics.h"

#include <gtest/gtest.h>

namespace netclust::bgp {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

TEST(Dynamics, EmptyInput) {
  const DynamicsReport report = AnalyzeDynamics({});
  EXPECT_EQ(report.maximum_effect, 0u);
  EXPECT_EQ(report.union_size, 0u);
  EXPECT_TRUE(DynamicPrefixSet({}).empty());
}

TEST(Dynamics, StableTableHasNoDynamicPrefixes) {
  const std::vector<Prefix> day = {P("12.0.0.0/8"), P("18.0.0.0/8")};
  const DynamicsReport report = AnalyzeDynamics({day, day, day});
  EXPECT_EQ(report.maximum_effect, 0u);
  EXPECT_EQ(report.union_size, 2u);
  EXPECT_EQ(report.intersection_size, 2u);
}

TEST(Dynamics, DynamicSetIsUnionMinusIntersection) {
  const std::vector<Prefix> day0 = {P("12.0.0.0/8"), P("18.0.0.0/8"),
                                    P("24.48.2.0/23")};
  const std::vector<Prefix> day1 = {P("12.0.0.0/8"), P("18.0.0.0/8"),
                                    P("151.198.0.0/16")};
  const std::vector<Prefix> day2 = {P("12.0.0.0/8"), P("24.48.2.0/23"),
                                    P("151.198.0.0/16")};

  const PrefixSet dynamic = DynamicPrefixSet({day0, day1, day2});
  // Only 12.0.0.0/8 is in every snapshot.
  EXPECT_EQ(dynamic.size(), 3u);
  EXPECT_TRUE(dynamic.contains(P("18.0.0.0/8")));
  EXPECT_TRUE(dynamic.contains(P("24.48.2.0/23")));
  EXPECT_TRUE(dynamic.contains(P("151.198.0.0/16")));
  EXPECT_FALSE(dynamic.contains(P("12.0.0.0/8")));

  const DynamicsReport report = AnalyzeDynamics({day0, day1, day2});
  EXPECT_EQ(report.first_snapshot_size, 3u);
  EXPECT_EQ(report.last_snapshot_size, 3u);
  EXPECT_EQ(report.union_size, 4u);
  EXPECT_EQ(report.intersection_size, 1u);
  EXPECT_EQ(report.maximum_effect, 3u);
}

TEST(Dynamics, DuplicateEntriesWithinOneSnapshotCollapse) {
  const std::vector<Prefix> day0 = {P("12.0.0.0/8"), P("12.0.0.0/8")};
  const std::vector<Prefix> day1 = {P("12.0.0.0/8")};
  EXPECT_TRUE(DynamicPrefixSet({day0, day1}).empty());
}

TEST(Dynamics, GrowingWindowOnlyGrowsTheDynamicSet) {
  // More snapshots can only move prefixes out of the intersection — the
  // reason Table 4's maximum effect increases with the period.
  std::vector<std::vector<Prefix>> snapshots;
  std::size_t previous = 0;
  for (int day = 0; day < 6; ++day) {
    std::vector<Prefix> snapshot = {P("12.0.0.0/8"), P("18.0.0.0/8")};
    // A rotating extra prefix differs every day.
    snapshot.push_back(Prefix(IpAddress(static_cast<std::uint32_t>(
                                  0x20000000u + (day << 16))),
                              16));
    snapshots.push_back(snapshot);
    const std::size_t effect = DynamicPrefixSet(snapshots).size();
    EXPECT_GE(effect, previous);
    previous = effect;
  }
  EXPECT_EQ(previous, 6u);
}

TEST(Dynamics, CountAffectedChecksMembership) {
  const PrefixSet dynamic = {P("18.0.0.0/8"), P("24.48.2.0/23")};
  const std::vector<Prefix> used = {P("12.0.0.0/8"), P("18.0.0.0/8"),
                                    P("99.0.0.0/8")};
  EXPECT_EQ(CountAffected(used, dynamic), 1u);
  EXPECT_EQ(CountAffected({}, dynamic), 0u);
  EXPECT_EQ(CountAffected(used, {}), 0u);
}

}  // namespace
}  // namespace netclust::bgp
