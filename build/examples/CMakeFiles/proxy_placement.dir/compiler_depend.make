# Empty compiler generated dependencies file for proxy_placement.
# This may be replaced when dependencies are built.
