#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace netclust::bench {

const Scenario& GetScenario() {
  static const Scenario* scenario = [] {
    const double scale = synth::ScaleFromEnv();
    synth::InternetConfig config;
    config.seed = 1999;
    // Larger than any preset log's cluster demand (Apache activates ~37k
    // allocations at full scale), so each log touches a strict subset of
    // the address space — as against the real Internet.
    config.allocation_count = static_cast<std::size_t>(
        std::max(2000.0, 48000.0 * scale));
    // At small scales the default unregistered-org rate often rounds to
    // zero orgs, hiding the paper's ~0.1% unclusterable clients; keep the
    // expected count comfortably above zero.
    config.bgp_dark_org_fraction = 0.015;
    config.unregistered_fraction = 0.12;
    auto* s = new Scenario{
        .scale = scale,
        .internet = synth::GenerateInternet(config),
        .table = {},
        .vantages_ = {},
    };
    s->vantages_.emplace(s->internet, synth::DefaultVantageProfiles());
    for (const auto& snapshot : s->vantages().AllSnapshots(0)) {
      s->table.AddSnapshot(snapshot);
    }
    return s;
  }();
  return *scenario;
}

synth::GeneratedLog MakeLog(LogPreset preset) {
  const Scenario& scenario = GetScenario();
  synth::WorkloadConfig config;
  switch (preset) {
    case LogPreset::kNagano:
      config = synth::NaganoConfig(scenario.scale);
      break;
    case LogPreset::kApache:
      config = synth::ApacheConfig(scenario.scale);
      break;
    case LogPreset::kEw3:
      config = synth::Ew3Config(scenario.scale);
      break;
    case LogPreset::kSun:
      config = synth::SunConfig(scenario.scale);
      break;
  }
  return synth::GenerateLog(scenario.internet, config);
}

const char* PresetName(LogPreset preset) {
  switch (preset) {
    case LogPreset::kNagano:
      return "Nagano";
    case LogPreset::kApache:
      return "Apache";
    case LogPreset::kEw3:
      return "EW3";
    case LogPreset::kSun:
      return "Sun";
  }
  return "?";
}

void PrintHeader(const std::string& artifact, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("scale: %.2f of paper size (set NETCLUST_SCALE to change)\n",
              GetScenario().scale);
  std::printf("================================================================\n");
}

void PrintSeries(const std::string& name, const std::string& x_label,
                 const std::string& y_label,
                 const std::vector<std::pair<double, double>>& series,
                 std::size_t max_points) {
  std::printf("\n-- %s --\n", name.c_str());
  std::printf("%16s  %16s\n", x_label.c_str(), y_label.c_str());
  if (series.empty()) {
    std::printf("          (empty)\n");
    return;
  }
  // Log-spaced subsample of row indices (figures use log-log axes).
  std::vector<std::size_t> picks;
  const double n = static_cast<double>(series.size());
  for (std::size_t k = 0; k < max_points; ++k) {
    const double fraction =
        max_points == 1
            ? 0.0
            : static_cast<double>(k) / static_cast<double>(max_points - 1);
    const auto index = static_cast<std::size_t>(
        std::min(n - 1.0, std::pow(n, fraction) - 1.0));
    if (picks.empty() || picks.back() != index) picks.push_back(index);
  }
  for (const std::size_t index : picks) {
    std::printf("%16.6g  %16.6g\n", series[index].first,
                series[index].second);
  }
}

std::string Fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4g", value);
  return buffer;
}

}  // namespace netclust::bench
