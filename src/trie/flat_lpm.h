// Flat, snapshot-compiled longest-prefix match.
//
// PatriciaTrie is the right structure for a table that mutates, but every
// lookup walks heap nodes — a chain of dependent cache misses. Snapshots
// published through bgp::RcuTableSlot are immutable, so each one can be
// compiled ONCE into a multibit directory the way a router's FIB is:
//
//   level 1   root_[addr >> 16]          2^16 slots, covers /0../16
//   level 2   256-slot block             covers /17../24 of one /16
//   level 3   256-slot block             covers /25../32 of one /24
//
// (DIR-24-8 with the first level split 16+8 so an empty or small table
// costs 256 KiB, not 64 MiB — compilation runs on every RCU publish.)
//
// A slot either holds a result id (direct) or, with the high bit set, the
// id of a child block. A lookup is therefore at most three array reads of
// contiguous memory — no heap nodes, no per-lookup pointer chasing — and
// LookupBatch() software-prefetches each level across the whole batch so
// the misses of independent addresses overlap.
//
// Longest-prefix semantics are compiled in by PAINTING: entries are
// sorted by (priority class, prefix length) ascending and written over
// the address ranges they cover, so the last write anywhere is the
// highest-class, longest prefix covering that address. The priority class
// generalizes plain LPM to bgp::PrefixTable's primary/secondary rule (a
// BGP prefix of any length beats every network-dump prefix) without this
// layer knowing anything about BGP.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::trie {

/// Portable read-prefetch hint; a no-op where unavailable.
inline void PrefetchForRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

/// Immutable flat LPM over payloads of type T. Build with Compile(); the
/// structure cannot be mutated afterwards, which is exactly the contract
/// of an RCU-published snapshot.
template <typename T>
class FlatLpm {
 public:
  /// Mirrors PatriciaTrie<T>::Match: the winning prefix plus a pointer to
  /// the stored payload (stable for the lifetime of the FlatLpm).
  struct Match {
    net::Prefix prefix;
    const T* value;
  };

  /// One input entry. Higher `priority` wins over ANY length of a lower
  /// priority; within a priority the longest covering prefix wins (plain
  /// LPM is "all entries priority 0"). Prefixes must be distinct.
  struct Entry {
    net::Prefix prefix;
    int priority = 0;
    T value;
  };

  /// Matches nothing (the state of a table before any snapshot).
  FlatLpm() : root_(kRootSlots, 0) {}

  /// One-pass build: sort by (priority, length) ascending, then paint each
  /// entry's range; the last paint at any address is its winner.
  static FlatLpm Compile(std::vector<Entry> entries) {
    FlatLpm flat;
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.priority != b.priority) {
                         return a.priority < b.priority;
                       }
                       return a.prefix.length() < b.prefix.length();
                     });
    flat.stored_.reserve(entries.size());
    for (Entry& entry : entries) {
      flat.stored_.push_back(
          Stored{entry.prefix, std::move(entry.value)});
      // Result ids are 1-based (0 = no match) and must fit in 31 bits
      // beside the indirect flag; 2^31 entries is far past any IPv4 table.
      const auto id = static_cast<std::uint32_t>(flat.stored_.size());
      assert((id & kIndirectBit) == 0);
      flat.Paint(entry.prefix, id);
    }
    return flat;
  }

  /// One delta-recompile work unit: a touched root (/16) slot plus EVERY
  /// entry whose painted range intersects it — both covering prefixes of
  /// length <= 16 and interior prefixes inside the /16. The caller (the
  /// table layer) gathers candidates; this layer only repaints.
  struct RootPatch {
    std::uint32_t root_index = 0;
    std::vector<Entry> entries;
  };

  /// Incremental rebuild: copies `prev`'s directory, then repaints ONLY
  /// the root slots named in `patches`. Each touched slot is reset and its
  /// candidate entries replayed in the same (priority, length) order
  /// Compile() uses, so the repainted slot is slot-for-slot equivalent to
  /// a from-scratch compile (ResolvesIdentically() checks exactly that).
  ///
  /// The copy is the double-buffer: `prev` is never written, and child
  /// blocks it shares with the copy are replaced — not mutated — by the
  /// repaint (a reset root slot re-allocates fresh blocks, orphaning the
  /// stale ones inside the new table). Readers of the previous snapshot
  /// therefore never observe a torn directory. Orphans accumulate across
  /// repeated deltas; the table layer bounds them by falling back to a
  /// full compile when the garbage ratio grows.
  static FlatLpm CompileDelta(const FlatLpm& prev,
                              std::vector<RootPatch> patches) {
    FlatLpm next;
    next.root_ = prev.root_;
    next.blocks_ = prev.blocks_;
    next.stored_ = prev.stored_;
    for (RootPatch& patch : patches) {
      std::stable_sort(patch.entries.begin(), patch.entries.end(),
                       [](const Entry& a, const Entry& b) {
                         if (a.priority != b.priority) {
                           return a.priority < b.priority;
                         }
                         return a.prefix.length() < b.prefix.length();
                       });
      next.root_[patch.root_index] = 0;
      for (Entry& entry : patch.entries) {
        next.stored_.push_back(Stored{entry.prefix, std::move(entry.value)});
        const auto id = static_cast<std::uint32_t>(next.stored_.size());
        assert((id & kIndirectBit) == 0);
        if (entry.prefix.length() <= 16) {
          // Covers this whole root slot. Restrict the repaint to it: the
          // full-span Paint() would stomp sibling roots that were NOT
          // invalidated and still hold longer-prefix blocks.
          next.PaintSlot(next.root_[patch.root_index], id);
        } else {
          next.Paint(entry.prefix, id);
        }
      }
    }
    return next;
  }

  /// True when every address resolves to the same (prefix, value) in both
  /// tables. Structural: expands a slot pair only where either side has
  /// finer blocks, so the walk is proportional to directory size, not to
  /// 2^32 addresses. Requires T to be equality-comparable.
  [[nodiscard]] bool ResolvesIdentically(const FlatLpm& other) const {
    for (std::size_t i = 0; i < kRootSlots; ++i) {
      if (!SlotsEquivalent(*this, root_[i], other, other.root_[i])) {
        return false;
      }
    }
    return true;
  }

  /// Longest-prefix match (under priority classes) for `address`.
  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const {
    const std::uint32_t id = Resolve(address.bits());
    if (id == 0) return std::nullopt;
    const Stored& stored = stored_[id - 1];
    return Match{stored.prefix, &stored.value};
  }

  /// LongestMatch plus a cacheability signal: `*uniform24` is set true
  /// exactly when the resolution never consulted a level-3 block, which
  /// by the directory structure means every address in the same /24
  /// resolves to this same result — the mapping tier may cache the answer
  /// keyed by `bits >> 8`. A level-3 descent means prefixes longer than
  /// /24 split the /24, so the answer must not be shared.
  [[nodiscard]] std::optional<Match> LongestMatchUniform24(
      net::IpAddress address, bool* uniform24) const {
    const std::uint32_t bits = address.bits();
    *uniform24 = true;
    std::uint32_t slot = root_[bits >> 16];
    if ((slot & kIndirectBit) != 0) {
      slot = blocks_[BlockBase(slot) + ((bits >> 8) & 0xFF)];
      if ((slot & kIndirectBit) != 0) {
        *uniform24 = false;
        slot = blocks_[BlockBase(slot) + (bits & 0xFF)];
      }
    }
    if (slot == 0) return std::nullopt;
    const Stored& stored = stored_[slot - 1];
    return Match{stored.prefix, &stored.value};
  }

  /// Batched lookup: resolves min(addresses.size(), out.size()) addresses;
  /// out[i].value == nullptr means no match. Each directory level is
  /// prefetched across a chunk before any element needs it, so the cache
  /// misses of independent addresses overlap instead of serializing.
  void LookupBatch(std::span<const net::IpAddress> addresses,
                   std::span<Match> out) const {
    const std::size_t count = std::min(addresses.size(), out.size());
    constexpr std::size_t kChunk = 16;
    std::uint32_t slots[kChunk];
    for (std::size_t base = 0; base < count; base += kChunk) {
      const std::size_t n = std::min(kChunk, count - base);
      for (std::size_t i = 0; i < n; ++i) {
        PrefetchForRead(&root_[addresses[base + i].bits() >> 16]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t bits = addresses[base + i].bits();
        const std::uint32_t slot = root_[bits >> 16];
        if ((slot & kIndirectBit) != 0) {
          PrefetchForRead(&blocks_[BlockBase(slot) + ((bits >> 8) & 0xFF)]);
        }
        slots[i] = slot;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t bits = addresses[base + i].bits();
        std::uint32_t slot = slots[i];
        if ((slot & kIndirectBit) != 0) {
          slot = blocks_[BlockBase(slot) + ((bits >> 8) & 0xFF)];
          if ((slot & kIndirectBit) != 0) {
            slot = blocks_[BlockBase(slot) + (bits & 0xFF)];
          }
        }
        if (slot == 0) {
          out[base + i] = Match{net::Prefix{}, nullptr};
        } else {
          const Stored& stored = stored_[slot - 1];
          out[base + i] = Match{stored.prefix, &stored.value};
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return stored_.size(); }
  [[nodiscard]] bool empty() const { return stored_.empty(); }

  /// Footprint of the directory itself (root + child blocks + payload
  /// records), for the memory/space trade-off accounting in DESIGN.md.
  [[nodiscard]] std::size_t directory_bytes() const {
    return root_.size() * sizeof(std::uint32_t) +
           blocks_.size() * sizeof(std::uint32_t) +
           stored_.size() * sizeof(Stored);
  }
  [[nodiscard]] std::size_t block_count() const {
    return blocks_.size() / kBlockSlots;
  }

 private:
  static constexpr std::size_t kRootSlots = 1u << 16;
  static constexpr std::size_t kBlockSlots = 256;
  static constexpr std::uint32_t kIndirectBit = 0x80000000u;

  struct Stored {
    net::Prefix prefix;
    T value;
  };

  [[nodiscard]] std::size_t BlockBase(std::uint32_t slot) const {
    return static_cast<std::size_t>(slot & ~kIndirectBit) * kBlockSlots;
  }

  /// Direct ids resolve to the same answer when the stored records they
  /// name are equal — ids themselves may differ between a delta-compiled
  /// table and a from-scratch one (deltas append duplicates).
  static bool SameResult(const FlatLpm& a, std::uint32_t ida,
                         const FlatLpm& b, std::uint32_t idb) {
    if ((ida == 0) != (idb == 0)) return false;
    if (ida == 0) return true;
    const Stored& sa = a.stored_[ida - 1];
    const Stored& sb = b.stored_[idb - 1];
    return sa.prefix == sb.prefix && sa.value == sb.value;
  }

  /// Compares what two slots resolve to. A direct slot stands in for all
  /// 256 children when the other side is indirect; recursion depth is
  /// bounded by the level structure (level-3 slots are never indirect).
  static bool SlotsEquivalent(const FlatLpm& a, std::uint32_t slot_a,
                              const FlatLpm& b, std::uint32_t slot_b) {
    const bool indirect_a = (slot_a & kIndirectBit) != 0;
    const bool indirect_b = (slot_b & kIndirectBit) != 0;
    if (!indirect_a && !indirect_b) return SameResult(a, slot_a, b, slot_b);
    for (std::size_t i = 0; i < kBlockSlots; ++i) {
      const std::uint32_t child_a =
          indirect_a ? a.blocks_[a.BlockBase(slot_a) + i] : slot_a;
      const std::uint32_t child_b =
          indirect_b ? b.blocks_[b.BlockBase(slot_b) + i] : slot_b;
      if (!SlotsEquivalent(a, child_a, b, child_b)) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint32_t Resolve(std::uint32_t bits) const {
    std::uint32_t slot = root_[bits >> 16];
    if ((slot & kIndirectBit) != 0) {
      slot = blocks_[BlockBase(slot) + ((bits >> 8) & 0xFF)];
      if ((slot & kIndirectBit) != 0) {
        slot = blocks_[BlockBase(slot) + (bits & 0xFF)];
      }
    }
    return slot;
  }

  /// Appends a fresh child block whose slots all start as `fill`, and
  /// returns its indirect slot encoding.
  std::uint32_t AllocBlock(std::uint32_t fill) {
    const auto id = static_cast<std::uint32_t>(blocks_.size() / kBlockSlots);
    assert((id & kIndirectBit) == 0);
    blocks_.insert(blocks_.end(), kBlockSlots, fill);
    return id | kIndirectBit;
  }

  /// Writes `id` over one slot, descending into child blocks so that
  /// every address under the slot adopts the new result. Depth is bounded
  /// by the level structure: level-3 slots are never indirect.
  void PaintSlot(std::uint32_t& slot, std::uint32_t id) {
    if ((slot & kIndirectBit) == 0) {
      slot = id;
      return;
    }
    const std::size_t base = BlockBase(slot);
    for (std::size_t i = 0; i < kBlockSlots; ++i) {
      PaintSlot(blocks_[base + i], id);
    }
  }

  /// Paints result `id` over every address `prefix` covers.
  void Paint(const net::Prefix& prefix, std::uint32_t id) {
    const std::uint32_t network = prefix.network().bits();
    const int length = prefix.length();
    if (length <= 16) {
      const std::size_t first = network >> 16;
      const std::size_t span = std::size_t{1} << (16 - length);
      for (std::size_t i = 0; i < span; ++i) {
        PaintSlot(root_[first + i], id);
      }
      return;
    }
    // Ensure the /16 root slot points at a level-2 block.
    std::uint32_t& root_slot = root_[network >> 16];
    if ((root_slot & kIndirectBit) == 0) {
      root_slot = AllocBlock(root_slot);
    }
    const std::size_t level2 = BlockBase(root_slot);
    if (length <= 24) {
      const std::size_t first = (network >> 8) & 0xFF;
      const std::size_t span = std::size_t{1} << (24 - length);
      for (std::size_t i = 0; i < span; ++i) {
        PaintSlot(blocks_[level2 + first + i], id);
      }
      return;
    }
    // Ensure the /24 slot points at a level-3 block; its slots are final.
    // Indexed (not held by reference): AllocBlock may reallocate blocks_.
    const std::size_t mid = level2 + ((network >> 8) & 0xFF);
    if ((blocks_[mid] & kIndirectBit) == 0) {
      const std::uint32_t indirect = AllocBlock(blocks_[mid]);
      blocks_[mid] = indirect;
    }
    const std::size_t level3 = BlockBase(blocks_[mid]);
    const std::size_t first = network & 0xFF;
    const std::size_t span = std::size_t{1} << (32 - length);
    for (std::size_t i = 0; i < span; ++i) {
      blocks_[level3 + first + i] = id;
    }
  }

  std::vector<std::uint32_t> root_;    // 2^16 slots, top 16 address bits
  std::vector<std::uint32_t> blocks_;  // 256-slot child blocks, flattened
  std::vector<Stored> stored_;         // result id - 1 -> payload
};

}  // namespace netclust::trie
