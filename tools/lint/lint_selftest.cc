// Self-test for the netclust_lint rule engine: feeds each rule a known-bad
// snippet and asserts the rule fires (with the right rule id and line),
// and a known-good variant and asserts silence. Runs as the
// `lint.selftest` ctest; dependency-free on purpose (no gtest) so the
// lint toolchain stays buildable in minimal environments.

#include <cstdio>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace {

int g_failures = 0;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++g_failures;                                                       \
    }                                                                     \
  } while (0)

using netclust::lint::Finding;
using netclust::lint::LintFile;

/// Findings for `rule` only (other rules may legitimately fire on the
/// same snippet, e.g. header-guard on .h test inputs).
std::vector<Finding> Of(const std::vector<Finding>& findings,
                        const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

void TestOrderComment() {
  // Bad: relaxed load with no rationale.
  const auto bad = Of(LintFile("src/x/a.cc",
                               "int f(std::atomic<int>& a) {\n"
                               "  return a.load(std::memory_order_relaxed);\n"
                               "}\n"),
                      "order-comment");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 2);

  // Good: same-line and preceding-comment rationales.
  CHECK(Of(LintFile("src/x/a.cc",
                    "int f(std::atomic<int>& a) {\n"
                    "  // order: counter is advisory.\n"
                    "  return a.load(std::memory_order_relaxed);\n"
                    "}\n"),
           "order-comment")
            .empty());
  CHECK(Of(LintFile("src/x/a.cc",
                    "int v = a.load(std::memory_order_acquire);"
                    "  // order: pairs with release in Push\n"),
           "order-comment")
            .empty());

  // A memory_order token inside a string literal is not a use.
  CHECK(Of(LintFile("src/x/a.cc",
                    "const char* s = \"memory_order_relaxed\";\n"),
           "order-comment")
            .empty());
  // ... but a commented rationale more than the window away does not count.
  std::string far = "// order: too far away\n";
  for (int i = 0; i < 8; ++i) far += "int pad" + std::to_string(i) + ";\n";
  far += "int v = a.load(std::memory_order_relaxed);\n";
  CHECK(Of(LintFile("src/x/a.cc", far), "order-comment").size() == 1);
}

void TestParserInt() {
  // Bad: stoi in parser code.
  const auto bad = Of(LintFile("src/bgp/p.cc",
                               "int v = std::stoi(field);\n"),
                      "parser-int");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 1);
  CHECK(Of(LintFile("src/weblog/q.cc", "sscanf(buf, \"%d\", &v);\n"),
           "parser-int")
            .size() == 1);
  // Good: from_chars, and the same token outside parser dirs.
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "auto r = std::from_chars(b, e, v);\n"),
           "parser-int")
            .empty());
  CHECK(Of(LintFile("src/core/p.cc", "int v = std::stoi(field);\n"),
           "parser-int")
            .empty());
  // Substrings of longer identifiers are not matches.
  CHECK(Of(LintFile("src/bgp/p.cc", "int my_atoi_count = 0;\n"),
           "parser-int")
            .empty());
}

void TestNakedThread() {
  const auto bad = Of(LintFile("src/core/streaming.cc",
                               "std::thread t([] {});\n"),
                      "naked-thread");
  CHECK(bad.size() == 1);
  // Allowed homes.
  CHECK(Of(LintFile("src/engine/shard.h", "std::thread thread_;\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/core/parallel.cc",
                    "std::vector<std::thread> workers;\n"),
           "naked-thread")
            .empty());
  // Nested names are not spawns.
  CHECK(Of(LintFile("src/core/streaming.cc",
                    "int n = std::thread::hardware_concurrency();\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/core/streaming.cc",
                    "std::this_thread::yield();\n"),
           "naked-thread")
            .empty());
  // The reactor spawn site is the one allowed home in the service layer…
  CHECK(Of(LintFile("src/server/server.cc",
                    "std::vector<std::thread> reactors_;\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/server/server.h", "std::thread thread;\n"),
           "naked-thread")
            .empty());
  // …and only that site: the rest of src/server/ is NOT exempt.
  CHECK(Of(LintFile("src/server/client.cc", "std::thread helper([] {});\n"),
           "naked-thread")
            .size() == 1);
}

void TestRawIo() {
  // Bad: free calls to the POSIX syscalls, bare or ::-qualified.
  const auto bad = Of(LintFile("src/core/x.cc",
                               "ssize_t n = ::read(fd, buf, len);\n"),
                      "raw-io");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 1);
  CHECK(Of(LintFile("src/core/x.cc", "write(fd, buf, len);\n"), "raw-io")
            .size() == 1);
  CHECK(Of(LintFile("src/core/x.cc",
                    "int c = accept4(fd, nullptr, nullptr, 0);\n"),
           "raw-io")
            .size() == 1);
  CHECK(Of(LintFile("src/core/x.cc", "send(fd, buf, len, 0);\n"), "raw-io")
            .size() == 1);
  // Good: member calls are someone else's API, not syscalls.
  CHECK(Of(LintFile("src/core/x.cc", "out.write(buf, len);\n"), "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "sock->send(frame);\n"), "raw-io")
            .empty());
  // Good: the token without a call, and longer identifiers.
  CHECK(Of(LintFile("src/core/x.cc", "bool send = true;\n"), "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "RetryRead(fd, buf, len);\n"),
           "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "// call read(2) to drain\n"),
           "raw-io")
            .empty());
}

void TestIostreamInclude() {
  const auto bad = Of(LintFile("src/net/x.cc",
                               "#include <iostream>\n"),
                      "iostream-include");
  CHECK(bad.size() == 1);
  CHECK(Of(LintFile("src/net/x.cc", "#include <ostream>\n"),
           "iostream-include")
            .empty());
  CHECK(Of(LintFile("src/net/x.cc", "// #include <iostream>\n"),
           "iostream-include")
            .empty());
  // Whitespace variants still match.
  CHECK(Of(LintFile("src/net/x.cc", "#  include <iostream>\n"),
           "iostream-include")
            .size() == 1);
}

void TestHeaderGuard() {
  CHECK(Of(LintFile("src/net/x.h", "#pragma once\nint f();\n"),
           "header-guard")
            .empty());
  // Missing pragma once.
  CHECK(Of(LintFile("src/net/x.h", "int f();\n"), "header-guard").size() ==
        1);
  // #ifndef-style guard: flagged twice (missing pragma + guard style).
  CHECK(Of(LintFile("src/net/x.h",
                    "#ifndef NET_X_H_\n#define NET_X_H_\n#endif\n"),
           "header-guard")
            .size() == 2);
  // Rule only applies to headers.
  CHECK(Of(LintFile("src/net/x.cc", "int f() { return 0; }\n"),
           "header-guard")
            .empty());
}

void TestSuppressions() {
  const auto suppressions = netclust::lint::ParseSuppressions(
      "# vetted exceptions\n"
      "iostream-include:src/fuzz/make_corpus.cc\n"
      "\n"
      "malformed line without colon\n");
  CHECK(suppressions.size() == 1);
  Finding hit{"src/fuzz/make_corpus.cc", 13, "iostream-include", ""};
  Finding other_file{"src/net/x.cc", 1, "iostream-include", ""};
  Finding other_rule{"src/fuzz/make_corpus.cc", 13, "parser-int", ""};
  CHECK(netclust::lint::IsSuppressed(hit, suppressions));
  CHECK(!netclust::lint::IsSuppressed(other_file, suppressions));
  CHECK(!netclust::lint::IsSuppressed(other_rule, suppressions));
}

void TestCommentAndStringScanner() {
  // Rules must ignore code inside block comments and raw strings.
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "/* std::stoi(field) is banned here */\n"),
           "parser-int")
            .empty());
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "const char* s = R\"(std::stoi(x))\";\n"),
           "parser-int")
            .empty());
  // A block comment spanning lines does not hide following code.
  const auto after_block = Of(LintFile("src/bgp/p.cc",
                                       "/* banner\n"
                                       "   banner */\n"
                                       "int v = std::stoi(s);\n"),
                              "parser-int");
  CHECK(after_block.size() == 1);
  CHECK(!after_block.empty() && after_block[0].line == 3);
}

}  // namespace

int main() {
  TestOrderComment();
  TestParserInt();
  TestNakedThread();
  TestRawIo();
  TestIostreamInclude();
  TestHeaderGuard();
  TestSuppressions();
  TestCommentAndStringScanner();
  if (g_failures != 0) {
    std::fprintf(stderr, "lint_selftest: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("lint_selftest: all rules fire and stay silent as expected\n");
  return 0;
}
