#include "core/cluster.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_fixtures.h"
#include "weblog/record.h"

namespace netclust::core {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }
IpAddress A(const char* text) { return IpAddress::Parse(text).value(); }

weblog::LogRecord Rec(const char* client, std::int64_t t, const char* url,
                      std::uint64_t bytes = 100) {
  weblog::LogRecord record;
  record.client = A(client);
  record.timestamp = t;
  record.url = url;
  record.response_bytes = bytes;
  return record;
}

// The §3.2.1 worked example as a full pipeline test.
class WorkedExample : public ::testing::Test {
 protected:
  WorkedExample() : log_("worked-example") {
    const int bgp = table_.AddSource(
        {"TEST", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
    table_.Insert(P("12.65.128.0/19"), bgp);
    table_.Insert(P("24.48.2.0/23"), bgp);

    std::int64_t t = 0;
    for (const char* client :
         {"12.65.147.94", "12.65.147.149", "12.65.146.207", "12.65.144.247",
          "24.48.3.87", "24.48.2.166"}) {
      log_.Append(Rec(client, ++t, "/index.html"));
    }
  }

  bgp::PrefixTable table_;
  weblog::ServerLog log_;
};

TEST_F(WorkedExample, NetworkAwareGroupsPerPaper) {
  const Clustering clustering = ClusterNetworkAware(log_, table_);
  EXPECT_EQ(clustering.approach, "network-aware");
  ASSERT_EQ(clustering.cluster_count(), 2u);
  EXPECT_EQ(clustering.client_count(), 6u);
  EXPECT_TRUE(clustering.unclustered.empty());
  EXPECT_DOUBLE_EQ(clustering.coverage(), 1.0);

  const Cluster* att = nullptr;
  const Cluster* cable = nullptr;
  for (const Cluster& cluster : clustering.clusters) {
    if (cluster.key == P("12.65.128.0/19")) att = &cluster;
    if (cluster.key == P("24.48.2.0/23")) cable = &cluster;
  }
  ASSERT_NE(att, nullptr);
  ASSERT_NE(cable, nullptr);
  EXPECT_EQ(att->members.size(), 4u);
  EXPECT_EQ(att->requests, 4u);
  EXPECT_EQ(cable->members.size(), 2u);
  EXPECT_EQ(cable->unique_urls, 1u);
}

TEST_F(WorkedExample, UnmatchedClientsAreReported) {
  log_.Append(Rec("99.99.99.99", 100, "/index.html"));
  const Clustering clustering = ClusterNetworkAware(log_, table_);
  ASSERT_EQ(clustering.unclustered.size(), 1u);
  EXPECT_EQ(clustering.clients[clustering.unclustered[0]].address,
            A("99.99.99.99"));
  EXPECT_LT(clustering.coverage(), 1.0);
}

TEST_F(WorkedExample, SimpleApproachSplitsThe19) {
  const Clustering clustering = ClusterSimple(log_);
  EXPECT_EQ(clustering.approach, "simple");
  // 12.65.147.x, 12.65.146.x, 12.65.144.x, 24.48.3.x, 24.48.2.x: 5 keys.
  EXPECT_EQ(clustering.cluster_count(), 5u);
  EXPECT_TRUE(clustering.unclustered.empty());
  for (const Cluster& cluster : clustering.clusters) {
    EXPECT_EQ(cluster.key.length(), 24);
  }
}

TEST_F(WorkedExample, ClassfulUsesClassBoundaries) {
  const Clustering clustering = ClusterClassful(log_);
  // 12.x is class A (/8), 24.x is class A (/8): 2 clusters.
  ASSERT_EQ(clustering.cluster_count(), 2u);
  for (const Cluster& cluster : clustering.clusters) {
    EXPECT_EQ(cluster.key.length(), 8);
  }
}

TEST_F(WorkedExample, PerClientAndPerClusterTalliesAgree) {
  log_.Append(Rec("12.65.147.94", 50, "/big", 5000));
  const Clustering clustering = ClusterNetworkAware(log_, table_);

  std::uint64_t cluster_requests = 0;
  std::uint64_t client_requests = 0;
  for (const Cluster& cluster : clustering.clusters) {
    cluster_requests += cluster.requests;
  }
  for (const ClientStats& client : clustering.clients) {
    client_requests += client.requests;
  }
  EXPECT_EQ(cluster_requests, log_.request_count());
  EXPECT_EQ(client_requests, log_.request_count());
  EXPECT_EQ(clustering.total_requests, log_.request_count());

  for (const ClientStats& client : clustering.clients) {
    if (client.address == A("12.65.147.94")) {
      EXPECT_EQ(client.requests, 2u);
      EXPECT_EQ(client.bytes, 5100u);
    }
  }
}

TEST_F(WorkedExample, DumpClusteredClientsAreFlagged) {
  const int dump = table_.AddSource(
      {"ARIN", "10/1999", bgp::SourceKind::kNetworkDump, ""});
  table_.Insert(P("99.0.0.0/8"), dump);
  log_.Append(Rec("99.99.99.99", 100, "/index.html"));

  const Clustering clustering = ClusterNetworkAware(log_, table_);
  EXPECT_EQ(clustering.dump_clustered_clients(), 1u);
  EXPECT_TRUE(clustering.unclustered.empty());
}

TEST_F(WorkedExample, ClusterIndexFindsMembers) {
  const Clustering clustering = ClusterNetworkAware(log_, table_);
  const ClusterIndex index(clustering);
  const auto c1 = index.ClusterOf(A("12.65.147.94"));
  const auto c2 = index.ClusterOf(A("12.65.144.247"));
  const auto c3 = index.ClusterOf(A("24.48.3.87"));
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(*c1, *c2);
  EXPECT_NE(*c1, *c3);
  EXPECT_FALSE(index.ClusterOf(A("8.8.8.8")).has_value());
}

TEST(ClusterAddresses, WeightedServerClustering) {
  bgp::PrefixTable table;
  const int bgp = table.AddSource(
      {"TEST", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  table.Insert(P("12.65.128.0/19"), bgp);

  const std::vector<AddressLoad> loads = {
      {A("12.65.147.94"), 100, 1000},
      {A("12.65.146.207"), 50, 500},
      {A("99.1.1.1"), 7, 70},
  };
  const Clustering clustering = ClusterAddresses("proxy-trace", loads, table);
  ASSERT_EQ(clustering.cluster_count(), 1u);
  EXPECT_EQ(clustering.clusters[0].requests, 150u);
  EXPECT_EQ(clustering.clusters[0].bytes, 1500u);
  EXPECT_EQ(clustering.unclustered.size(), 1u);
  EXPECT_EQ(clustering.total_requests, 157u);
}

TEST(ClusteringProperty, ClustersPartitionTheClusteredClients) {
  const auto& world = testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);

  std::unordered_set<std::uint32_t> seen;
  for (const Cluster& cluster : clustering.clusters) {
    EXPECT_FALSE(cluster.members.empty());
    for (const std::uint32_t member : cluster.members) {
      EXPECT_TRUE(seen.insert(member).second) << "client in two clusters";
      // Every member's address is inside the cluster's keying prefix.
      EXPECT_TRUE(cluster.key.Contains(clustering.clients[member].address));
    }
  }
  for (const std::uint32_t member : clustering.unclustered) {
    EXPECT_TRUE(seen.insert(member).second);
  }
  EXPECT_EQ(seen.size(), clustering.client_count());
}

TEST(ClusteringProperty, NetworkAwareNeverSplitsAnAllocationAcrossClusters) {
  // LPM with a fixed table maps all hosts of one allocation to the same
  // cluster key unless the table has sub-allocation prefixes, which the
  // vantage generator never emits: so network-aware clusters must be
  // allocation-aligned or coarser.
  const auto& world = testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  const ClusterIndex index(clustering);

  std::unordered_map<std::uint32_t, std::uint32_t> allocation_cluster;
  for (const auto& [address, allocation] :
       world.generated.truth.client_allocation) {
    const auto cluster = index.ClusterOf(address);
    if (!cluster.has_value()) continue;
    const auto [it, inserted] =
        allocation_cluster.emplace(allocation, *cluster);
    EXPECT_EQ(it->second, *cluster)
        << "allocation " << allocation << " split across clusters";
  }
}

}  // namespace
}  // namespace netclust::core
