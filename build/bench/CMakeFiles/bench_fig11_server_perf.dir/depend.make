# Empty dependencies file for bench_fig11_server_perf.
# This may be replaced when dependencies are built.
