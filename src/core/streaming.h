// Real-time (streaming) client clustering.
//
// §3.5: "Self-correction and adaptation is also very important to generate
// client clusters using real-time routing information and producing
// real-time client cluster identification results. By real-time cluster
// identifying we mean application of cluster identifying techniques to
// very recent server log data (within the last few minutes)."
//
// StreamingClusterer consumes two event streams incrementally:
//   * data plane — one Observe() per request, as the server logs it;
//   * routing plane — Announce/Withdraw (or whole BGP UPDATE messages),
//     as a route collector feeds them.
// Cluster membership is kept consistent with the *current* table: a route
// change re-resolves exactly the clients it can affect (those under the
// changed prefix), not the whole population. The assignment machinery
// itself lives in core/assignment.h, shared with the sharded concurrent
// engine (src/engine), which runs the same state machine per shard against
// RCU-published table snapshots.
//
// Accounting semantics under routing churn: per-client request/byte
// tallies are exact and move with the client; per-cluster unique-URL sets
// are not split on reassignment (they remain a property of the traffic the
// cluster actually absorbed while it existed).
//
// Thread safety: every public method is safe to call concurrently — a
// route-collector thread may feed the routing plane while a log-tailing
// thread feeds the data plane. One base::Mutex guards the table, the
// assignment state and the stats (annotated GUARDED_BY, enforced at
// compile time on Clang builds); the sharded engine (src/engine) is the
// lock-free path for workloads where this coarse lock would contend.
// table()/assignment() return references and are the exception: they are
// only meaningful once mutators have quiesced.
#pragma once

#include <cstdint>
#include <string>

#include "base/sync.h"
#include "bgp/prefix_table.h"
#include "bgp/update.h"
#include "core/assignment.h"
#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::core {

class StreamingClusterer {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::size_t announce_events = 0;
    std::size_t withdraw_events = 0;
    /// Clients moved between clusters by routing churn.
    std::size_t reassignments = 0;
  };

  explicit StreamingClusterer(std::string log_name);

  // --- routing plane ---

  /// Registers a source (mirrors bgp::PrefixTable::AddSource).
  int AddSource(const bgp::SnapshotInfo& info);

  /// Seeds the table from a full snapshot before any traffic (no
  /// reassignment needed). Returns the source id.
  int SeedSnapshot(const bgp::Snapshot& snapshot);

  /// Announces `prefix`: clients inside it whose current match is shorter
  /// are re-resolved.
  void Announce(const net::Prefix& prefix, int source_id,
                bgp::AsNumber origin_as = 0);

  /// Withdraws `prefix`: its cluster's members are re-resolved to the
  /// next-best match (possibly unclustered).
  void Withdraw(const net::Prefix& prefix);

  /// Applies a decoded BGP UPDATE (withdrawals then announcements).
  void ApplyUpdate(const bgp::UpdateMessage& update, int source_id);

  // --- data plane ---

  /// Feeds one request.
  void Observe(net::IpAddress client, std::uint32_t url_id,
               std::uint32_t bytes, std::int64_t timestamp);

  /// Feeds a whole log (convenience for replay).
  void ObserveLog(const weblog::ServerLog& log);

  // --- views (each takes the lock; consistent point-in-time reads) ---

  [[nodiscard]] std::size_t cluster_count() const {
    base::MutexLock lock(&mu_);
    return state_.live_cluster_count();
  }
  [[nodiscard]] std::size_t client_count() const {
    base::MutexLock lock(&mu_);
    return state_.client_count();
  }
  [[nodiscard]] std::size_t unclustered_count() const {
    base::MutexLock lock(&mu_);
    return state_.unclustered_count();
  }
  /// Snapshot of the event/reassignment counters (by value: the caller's
  /// copy stays consistent even while mutators keep running).
  [[nodiscard]] Stats stats() const {
    base::MutexLock lock(&mu_);
    return stats_;
  }
  /// Direct reference to the live table. Only meaningful once mutators
  /// have quiesced; concurrent Announce/Withdraw invalidate the view.
  [[nodiscard]] const bgp::PrefixTable& table() const {
    base::MutexLock lock(&mu_);
    return table_;
  }
  /// Direct reference to the live assignment state (same quiescence
  /// contract as table()).
  [[nodiscard]] const AssignmentState& assignment() const {
    base::MutexLock lock(&mu_);
    return state_;
  }

  /// Materializes the current state as a batch-compatible Clustering, in
  /// the canonical order of AssignmentState::Merge — so it compares
  /// bit-identically against engine::Engine::Snapshot() of the same event
  /// sequence.
  [[nodiscard]] Clustering ToClustering() const;

 private:
  /// Announce/Withdraw logic shared by the public routing-plane methods;
  /// ApplyUpdate batches both under one lock acquisition.
  void AnnounceLocked(const net::Prefix& prefix, int source_id,
                      bgp::AsNumber origin_as) REQUIRES(mu_);
  void WithdrawLocked(const net::Prefix& prefix) REQUIRES(mu_);

  mutable base::Mutex mu_;
  bgp::PrefixTable table_ GUARDED_BY(mu_);
  AssignmentState state_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  std::string log_name_;  // immutable after construction
};

}  // namespace netclust::core
