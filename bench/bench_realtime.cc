// Real-time clustering (§3.5 / §4): streaming the Nagano log through the
// incremental clusterer while a live BGP feed churns the table.
//
// Paper: "Real-time client clustering information ... gives the service
// provider a global view of where their customers are located and how
// their demands change from time to time", and the method must be
// "computationally non-intensive" enough to run while a Web event is in
// progress.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "bgp/update.h"
#include "core/cluster.h"
#include "core/compare.h"
#include "core/streaming.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "§3.5/§4 — real-time clustering under a live BGP feed",
      "clusters stay consistent with the current table; only clients under "
      "a changed prefix are re-resolved");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const auto& requests = generated.log.requests();

  core::StreamingClusterer streaming("nagano-live");
  int source = -1;
  for (std::size_t s = 0; s < scenario.vantages().profiles().size(); ++s) {
    const int id = streaming.SeedSnapshot(scenario.vantages().MakeSnapshot(s, 0));
    if (s == 0) source = id;  // AADS will be the live feed
  }

  // The AADS day-0 -> day-1 churn as a wire-encoded UPDATE stream,
  // interleaved with the traffic in 8 bursts.
  const auto updates = scenario.vantages().MakeUpdateStream(0, 0, 0, 1, 0);
  std::size_t update_bytes = 0;
  for (const auto& update : updates) {
    update_bytes += bgp::EncodeUpdate(update).size();
  }
  std::printf("\nBGP feed: %zu UPDATE messages (%zu bytes on the wire)\n",
              updates.size(), update_bytes);

  const auto start = std::chrono::steady_clock::now();
  const std::size_t bursts = 8;
  std::size_t next_update = 0;
  for (std::size_t burst = 0; burst < bursts; ++burst) {
    const std::size_t from = burst * requests.size() / bursts;
    const std::size_t to = (burst + 1) * requests.size() / bursts;
    for (std::size_t i = from; i < to; ++i) {
      streaming.Observe(requests[i].client, requests[i].url_id,
                        requests[i].response_bytes, requests[i].timestamp);
    }
    const std::size_t until = (burst + 1) * updates.size() / bursts;
    for (; next_update < until; ++next_update) {
      streaming.ApplyUpdate(updates[next_update], source);
    }
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto& stats = streaming.stats();
  std::printf("\nprocessed %llu requests + %zu announces + %zu withdraws "
              "in %.2fs (%.2fM events/s)\n",
              static_cast<unsigned long long>(stats.requests),
              stats.announce_events, stats.withdraw_events, elapsed,
              static_cast<double>(stats.requests) / elapsed / 1e6);
  std::printf("clusters: %zu   clients: %zu   unclustered: %zu\n",
              streaming.cluster_count(), streaming.client_count(),
              streaming.unclustered_count());
  std::printf("clients re-resolved by churn: %zu (%.3f%% of clients — the "
              "paper's <3%% exposure, Table 4)\n",
              stats.reassignments,
              100.0 * static_cast<double>(stats.reassignments) /
                  static_cast<double>(streaming.client_count()));

  // Cross-check against batch clustering of the same log.
  const core::Clustering batch =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const core::Clustering live = streaming.ToClustering();
  const core::ClusteringComparison agreement =
      core::CompareClusterings(live, batch);
  std::printf("\nbatch reference: %zu clusters / %zu unclustered "
              "(streaming: %zu / %zu)\n",
              batch.cluster_count(), batch.unclustered.size(),
              live.cluster_count(), live.unclustered.size());
  std::printf("agreement with batch: B-cubed F1 %.4f, Rand index %.4f "
              "(the residual is exactly the day-1 routes the batch table "
              "never saw)\n",
              agreement.BCubedF1(), agreement.rand_index);
  return 0;
}
