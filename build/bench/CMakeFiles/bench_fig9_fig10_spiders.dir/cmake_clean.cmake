file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fig10_spiders.dir/bench_fig9_fig10_spiders.cc.o"
  "CMakeFiles/bench_fig9_fig10_spiders.dir/bench_fig9_fig10_spiders.cc.o.d"
  "bench_fig9_fig10_spiders"
  "bench_fig9_fig10_spiders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fig10_spiders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
