// Unit tests for the mapping tier (src/mapping/): the per-reactor
// prefix->cluster cache in front of the engine, the Coras/Che hit-ratio
// model it is validated against, and the CDN RankTable.
//
// The load-bearing assertions:
//   * only uniform /24s are cached — a split block (the paper's resold-
//     /24 case) always goes to the full longest-match walk, so the cache
//     can never blur sub-/24 ownership;
//   * a table-version flip invalidates the whole cache before the next
//     answer — no result older than the current snapshot is ever served;
//   * the observed LRU hit ratio on a Zipf trace lands within tolerance
//     of the Che-approximation prediction (mapping::PredictedHitRatio).
#include "mapping/mapping_tier.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "mapping/coras.h"
#include "mapping/rank_table.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "synth/cdn.h"
#include "synth/rng.h"

namespace netclust::mapping {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

// ---------------------------------------------------------------------------
// Coras / Che approximation.

TEST(Coras, ZipfPopularityIsNormalizedAndDecreasing) {
  const std::vector<double> pop = ZipfPopularity(256, 0.9);
  ASSERT_EQ(pop.size(), 256u);
  double total = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    total += pop[i];
    if (i > 0) {
      EXPECT_LE(pop[i], pop[i - 1]) << i;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Coras, DegenerateCapacities) {
  const std::vector<double> pop = ZipfPopularity(100, 0.8);
  EXPECT_EQ(PredictedHitRatio(pop, 0), 0.0);
  EXPECT_EQ(PredictedHitRatio(pop, 100), 1.0);
  EXPECT_EQ(PredictedHitRatio(pop, 500), 1.0);
  EXPECT_EQ(PredictedHitRatio({}, 10), 0.0);
}

TEST(Coras, UniformPopularityHitsAtCapacityFraction) {
  // With p_i = 1/n the Che approximation collapses to h = C/n exactly.
  const std::vector<double> uniform(200, 1.0 / 200.0);
  EXPECT_NEAR(PredictedHitRatio(uniform, 50), 0.25, 1e-6);
  EXPECT_NEAR(PredictedHitRatio(uniform, 150), 0.75, 1e-6);
}

TEST(Coras, HitRatioIsMonotonicInCapacityAndSkew) {
  const std::vector<double> pop = ZipfPopularity(512, 0.9);
  double prev = 0.0;
  for (const std::size_t capacity : {16u, 64u, 128u, 256u, 511u}) {
    const double h = PredictedHitRatio(pop, capacity);
    EXPECT_GT(h, prev) << capacity;
    prev = h;
  }
  // More skew concentrates mass on the head: same capacity, higher ratio.
  EXPECT_GT(PredictedHitRatio(ZipfPopularity(512, 1.1), 64),
            PredictedHitRatio(ZipfPopularity(512, 0.6), 64));
}

// ---------------------------------------------------------------------------
// RankTable.

TEST(RankTable, PerClusterRankingWithDefaultFallback) {
  RankTable table;
  table.SetDefault({3, 1, 2});
  table.SetRanking(7018, {2, 3, 1});
  EXPECT_EQ(table.cluster_count(), 1u);
  ASSERT_NE(table.Ranking(7018), nullptr);
  EXPECT_EQ(table.Ranking(7018)->front(), 2);
  EXPECT_EQ(table.Ranking(1742), nullptr);  // unknown cluster -> default
  EXPECT_EQ(table.default_ranking().front(), 3);
}

TEST(RankTable, EmptyRankingErasesAndOversizedClamps) {
  RankTable table;
  table.SetRanking(7018, {1});
  table.SetRanking(7018, {});  // erase
  EXPECT_EQ(table.Ranking(7018), nullptr);
  EXPECT_EQ(table.cluster_count(), 0u);

  std::vector<std::uint16_t> oversized(RankTable::kMaxServers + 50, 9);
  table.SetRanking(1742, oversized);
  ASSERT_NE(table.Ranking(1742), nullptr);
  EXPECT_EQ(table.Ranking(1742)->size(), RankTable::kMaxServers);
  table.SetDefault(oversized);
  EXPECT_EQ(table.default_ranking().size(), RankTable::kMaxServers);
}

// ---------------------------------------------------------------------------
// MappingTier against a real engine.

class MappingTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = engine_.AddSource(
        {"SEED", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  }

  engine::Engine engine_;
  MappingCounters counters_;
  int source_ = -1;
};

TEST_F(MappingTierTest, CapacityZeroDisablesTheTier) {
  engine_.Announce(P("10.0.0.0/24"), source_, 100);
  MappingTier tier(&engine_, 0, &counters_);
  EXPECT_FALSE(tier.enabled());
  const auto match = tier.Lookup(IpAddress(10, 0, 0, 7));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->origin_as, 100u);
  // Disabled path is the pre-tier path: no counter moves at all.
  EXPECT_EQ(counters_.hits.value(), 0u);
  EXPECT_EQ(counters_.misses.value(), 0u);
  EXPECT_EQ(counters_.inserts.value(), 0u);
  EXPECT_EQ(tier.cache_size(), 0u);
}

TEST_F(MappingTierTest, UniformSlash24IsCachedAndHitOnRepeat) {
  engine_.Announce(P("10.0.0.0/24"), source_, 100);
  MappingTier tier(&engine_, 8, &counters_);
  ASSERT_TRUE(tier.enabled());

  const auto first = tier.Lookup(IpAddress(10, 0, 0, 1));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(counters_.misses.value(), 1u);
  EXPECT_EQ(counters_.inserts.value(), 1u);

  // A DIFFERENT host in the same /24 is answered from the cache: the
  // cache key is the /24, not the host.
  const auto second = tier.Lookup(IpAddress(10, 0, 0, 250));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->origin_as, 100u);
  EXPECT_EQ(second->prefix, first->prefix);
  EXPECT_EQ(counters_.hits.value(), 1u);
  EXPECT_EQ(counters_.inserts.value(), 1u);
  EXPECT_EQ(tier.cache_size(), 1u);
}

TEST_F(MappingTierTest, MissesAreCachedToo) {
  engine_.Announce(P("10.0.0.0/24"), source_, 100);
  MappingTier tier(&engine_, 8, &counters_);
  EXPECT_FALSE(tier.Lookup(IpAddress(192, 0, 2, 1)).has_value());
  EXPECT_FALSE(tier.Lookup(IpAddress(192, 0, 2, 2)).has_value());
  // Negative answers are as cacheable as positive ones — the whole /24
  // uniformly resolves to "no covering prefix".
  EXPECT_EQ(counters_.misses.value(), 1u);
  EXPECT_EQ(counters_.hits.value(), 1u);
}

TEST_F(MappingTierTest, SplitSlash24IsNeverCached) {
  // The paper's resold-/24 shape: two /25s under different origin ASes.
  engine_.Announce(P("151.198.194.0/25"), source_, 7018);
  engine_.Announce(P("151.198.194.128/25"), source_, 1742);
  MappingTier tier(&engine_, 8, &counters_);

  for (int round = 0; round < 3; ++round) {
    const auto low = tier.Lookup(IpAddress(151, 198, 194, 5));
    const auto high = tier.Lookup(IpAddress(151, 198, 194, 200));
    ASSERT_TRUE(low.has_value());
    ASSERT_TRUE(high.has_value());
    EXPECT_EQ(low->origin_as, 7018u);
    EXPECT_EQ(high->origin_as, 1742u);
  }
  // Every one of those lookups walked the table: nothing was inserted,
  // nothing hit, so sub-/24 ownership can never be blurred by the cache.
  EXPECT_EQ(counters_.hits.value(), 0u);
  EXPECT_EQ(counters_.inserts.value(), 0u);
  EXPECT_EQ(counters_.misses.value(), 6u);
  EXPECT_EQ(tier.cache_size(), 0u);
}

TEST_F(MappingTierTest, EpochFlipInvalidatesBeforeTheNextAnswer) {
  engine_.Announce(P("10.0.0.0/24"), source_, 100);
  MappingTier tier(&engine_, 8, &counters_);

  ASSERT_EQ(tier.Lookup(IpAddress(10, 0, 0, 1))->origin_as, 100u);
  ASSERT_EQ(tier.Lookup(IpAddress(10, 0, 0, 2))->origin_as, 100u);
  EXPECT_EQ(counters_.hits.value(), 1u);
  EXPECT_EQ(counters_.invalidations.value(), 0u);

  // The prefix moves to a different cluster (withdraw + re-announce, as
  // in a real BGP origin change): a new snapshot publishes, so the tier
  // must flush and re-resolve — a stale 100 here is the exact bug the
  // epoch fence exists to prevent.
  engine_.Withdraw(P("10.0.0.0/24"));
  engine_.Announce(P("10.0.0.0/24"), source_, 200);
  const auto moved = tier.Lookup(IpAddress(10, 0, 0, 3));
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->origin_as, 200u);
  EXPECT_EQ(counters_.invalidations.value(), 1u);
  EXPECT_EQ(tier.cache_size(), 1u);  // re-populated with the fresh answer
}

TEST_F(MappingTierTest, LruEvictionAtCapacity) {
  for (int b = 0; b < 4; ++b) {
    engine_.Announce(Prefix(IpAddress(10, 0, static_cast<unsigned>(b), 0), 24),
                     source_, 100 + static_cast<bgp::AsNumber>(b));
  }
  MappingTier tier(&engine_, 2, &counters_);
  (void)tier.Lookup(IpAddress(10, 0, 0, 1));
  (void)tier.Lookup(IpAddress(10, 0, 1, 1));
  EXPECT_EQ(counters_.evictions.value(), 0u);
  (void)tier.Lookup(IpAddress(10, 0, 2, 1));  // evicts the 10.0.0.0/24 entry
  EXPECT_EQ(counters_.evictions.value(), 1u);
  EXPECT_EQ(tier.cache_size(), 2u);
  // The evicted block misses again; the survivor still hits.
  (void)tier.Lookup(IpAddress(10, 0, 0, 9));
  EXPECT_EQ(counters_.misses.value(), 4u);
  (void)tier.Lookup(IpAddress(10, 0, 2, 9));
  EXPECT_EQ(counters_.hits.value(), 1u);
}

TEST_F(MappingTierTest, BatchLookupCountsFoundAndSharesTheCache) {
  engine_.Announce(P("10.0.0.0/24"), source_, 100);
  engine_.Announce(P("10.0.1.0/24"), source_, 101);
  MappingTier tier(&engine_, 8, &counters_);

  const std::vector<IpAddress> addresses{
      IpAddress(10, 0, 0, 1), IpAddress(10, 0, 1, 1), IpAddress(10, 0, 0, 2),
      IpAddress(192, 0, 2, 1)};
  std::vector<std::optional<bgp::PrefixTable::Match>> out(addresses.size());
  EXPECT_EQ(tier.LookupBatch(addresses, out), 3u);
  ASSERT_TRUE(out[0].has_value());
  ASSERT_TRUE(out[2].has_value());
  EXPECT_EQ(out[2]->origin_as, 100u);
  EXPECT_FALSE(out[3].has_value());
  // Third element repeated the first /24 inside one batch: one hit.
  EXPECT_EQ(counters_.hits.value(), 1u);
  // Every answer must equal the engine's direct answer.
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const auto direct = engine_.Lookup(addresses[i]);
    ASSERT_EQ(out[i].has_value(), direct.has_value()) << i;
    if (direct.has_value()) {
      EXPECT_EQ(out[i]->prefix, direct->prefix) << i;
      EXPECT_EQ(out[i]->origin_as, direct->origin_as) << i;
    }
  }
}

// The ISSUE's model-validation gate: run a Zipf(0.9) trace over uniform
// /24s through the tier and demand the observed steady-state hit ratio
// lands within 0.05 of the Che-approximation prediction.
TEST_F(MappingTierTest, ObservedZipfHitRatioMatchesCorasPrediction) {
  constexpr std::size_t kBlocks = 1024;
  constexpr std::size_t kCapacity = 128;
  constexpr double kAlpha = 0.9;
  constexpr std::size_t kWarmup = 50'000;
  constexpr std::size_t kMeasured = 150'000;

  for (std::size_t b = 0; b < kBlocks; ++b) {
    const std::uint32_t base =
        (10u << 24) | (static_cast<std::uint32_t>(b) << 8);
    engine_.Announce(Prefix(IpAddress(base), 24), source_,
                     static_cast<bgp::AsNumber>(64512 + b % 1000));
  }
  MappingTier tier(&engine_, kCapacity, &counters_);

  synth::Rng rng(42);
  const synth::ZipfSampler sampler(kBlocks, kAlpha);
  const auto draw = [&] {
    const std::uint32_t block = static_cast<std::uint32_t>(sampler.Sample(rng));
    const std::uint32_t host = static_cast<std::uint32_t>(rng.Uniform(256));
    return IpAddress((10u << 24) | (block << 8) | host);
  };

  for (std::size_t i = 0; i < kWarmup; ++i) (void)tier.Lookup(draw());
  const std::uint64_t hits0 = counters_.hits.value();
  const std::uint64_t misses0 = counters_.misses.value();
  for (std::size_t i = 0; i < kMeasured; ++i) (void)tier.Lookup(draw());

  const double observed =
      static_cast<double>(counters_.hits.value() - hits0) /
      static_cast<double>(kMeasured);
  const double predicted =
      PredictedHitRatio(ZipfPopularity(kBlocks, kAlpha), kCapacity);
  EXPECT_EQ(counters_.hits.value() - hits0 + counters_.misses.value() -
                misses0,
            kMeasured);
  EXPECT_NEAR(observed, predicted, 0.05)
      << "observed " << observed << " vs Coras-predicted " << predicted;
  // Sanity on the regime: the cache holds 12.5% of blocks but Zipf(0.9)
  // should push the hit ratio well above that fraction.
  EXPECT_GT(observed, 0.3);
}

// ---------------------------------------------------------------------------
// The synthetic CDN scenario the bench replays: cluster-aware assignment
// must beat the /24-naive baseline on exactly the split blocks.

TEST(CdnScenario, ClusterAwareAssignmentBeatsNaiveSlash24) {
  synth::CdnConfig config;
  config.seed = 7;
  const synth::CdnScenario scenario = synth::GenerateCdn(config);
  ASSERT_GT(scenario.mixed_blocks, 0u);

  synth::Rng rng(11);
  const std::vector<synth::CdnRequest> requests =
      synth::SampleCdnRequests(scenario, 20'000, 0.9, rng);
  ASSERT_EQ(requests.size(), 20'000u);

  // Cluster-aware: resolve the owning allocation exactly (what the
  // RANK/ASSIGN path does via LPM + RankTable).
  std::vector<std::uint16_t> aware;
  std::vector<std::uint16_t> naive;
  aware.reserve(requests.size());
  naive.reserve(requests.size());
  for (const synth::CdnRequest& request : requests) {
    aware.push_back(request.best_server);
    naive.push_back(synth::NaiveAssign(scenario, request.address));
  }
  const synth::CdnScore aware_score =
      synth::ScoreAssignments(scenario, requests, aware);
  const synth::CdnScore naive_score =
      synth::ScoreAssignments(scenario, requests, naive);

  EXPECT_EQ(aware_score.misassigned, 0u);
  EXPECT_GT(naive_score.misassigned, 0u);
  EXPECT_LT(aware_score.misassignment_rate(),
            naive_score.misassignment_rate());
  // Misdirected halves of split blocks pile onto the wrong servers, so
  // the naive scheme is also at least as skewed as the aware one.
  EXPECT_GE(naive_score.load_skew, aware_score.load_skew * 0.9);
}

}  // namespace
}  // namespace netclust::mapping
