// Uncompressed binary (bit-at-a-time) trie for longest-prefix match.
//
// One node per prefix bit. Simple and obviously correct; used as the
// reference structure in tests and as the baseline in the LPM ablation
// benchmark against the path-compressed PatriciaTrie.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/ip_address.h"
#include "net/prefix.h"
#include "trie/bit_ops.h"

namespace netclust::trie {

template <typename T>
class BinaryTrie {
 public:
  struct Match {
    net::Prefix prefix;
    const T* value;
  };

  BinaryTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the entry at `prefix`. Returns true if new.
  bool Insert(const net::Prefix& prefix, T value) {
    Node* node = root_.get();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = BitAt(prefix.network(), depth);
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool inserted = !node->value.has_value();
    node->value = std::move(value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Removes the entry at exactly `prefix`. Returns true if it existed.
  /// Empty branches are pruned so memory tracks the live entry set.
  bool Remove(const net::Prefix& prefix) {
    return RemoveRec(root_.get(), prefix, 0);
  }

  /// Value stored at exactly `prefix`, if any.
  [[nodiscard]] const T* Find(const net::Prefix& prefix) const {
    const Node* node = root_.get();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = node->children[BitAt(prefix.network(), depth)].get();
      if (node == nullptr) return nullptr;
    }
    return node->value.has_value() ? &*node->value : nullptr;
  }

  /// Longest-prefix match for `address`, like a router's FIB lookup.
  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const {
    std::optional<Match> best;
    const Node* node = root_.get();
    int depth = 0;
    while (node != nullptr) {
      if (node->value.has_value()) {
        best = Match{net::Prefix(address, depth), &*node->value};
      }
      if (depth == 32) break;
      node = node->children[BitAt(address, depth)].get();
      ++depth;
    }
    return best;
  }

  /// All matching entries for `address`, shortest prefix first.
  /// `visit(prefix, value)` is called for each.
  void AllMatches(net::IpAddress address,
                  const std::function<void(const net::Prefix&, const T&)>&
                      visit) const {
    const Node* node = root_.get();
    int depth = 0;
    while (node != nullptr) {
      if (node->value.has_value()) {
        visit(net::Prefix(address, depth), *node->value);
      }
      if (depth == 32) break;
      node = node->children[BitAt(address, depth)].get();
      ++depth;
    }
  }

  /// In-order traversal of all entries (ascending network, then length).
  void Visit(const std::function<void(const net::Prefix&, const T&)>& visit)
      const {
    VisitRec(root_.get(), 0u, 0, visit);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Total allocated nodes — the ablation benchmark reports this to contrast
  /// with the Patricia trie's node count.
  [[nodiscard]] std::size_t node_count() const { return CountRec(root_.get()); }

 private:
  struct Node {
    std::unique_ptr<Node> children[2];
    std::optional<T> value;
  };

  bool RemoveRec(Node* node, const net::Prefix& prefix, int depth) {
    if (depth == prefix.length()) {
      if (!node->value.has_value()) return false;
      node->value.reset();
      --size_;
      return true;
    }
    const int bit = BitAt(prefix.network(), depth);
    Node* child = node->children[bit].get();
    if (child == nullptr) return false;
    const bool removed = RemoveRec(child, prefix, depth + 1);
    if (removed && !child->value.has_value() && !child->children[0] &&
        !child->children[1]) {
      node->children[bit].reset();
    }
    return removed;
  }

  void VisitRec(const Node* node, std::uint32_t bits, int depth,
                const std::function<void(const net::Prefix&, const T&)>&
                    visit) const {
    if (node == nullptr) return;
    if (node->value.has_value()) {
      visit(net::Prefix(net::IpAddress(bits), depth), *node->value);
    }
    if (depth == 32) return;
    VisitRec(node->children[0].get(), bits, depth + 1, visit);
    VisitRec(node->children[1].get(), bits | (1u << (31 - depth)), depth + 1,
             visit);
  }

  std::size_t CountRec(const Node* node) const {
    if (node == nullptr) return 0;
    return 1 + CountRec(node->children[0].get()) +
           CountRec(node->children[1].get());
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace netclust::trie
