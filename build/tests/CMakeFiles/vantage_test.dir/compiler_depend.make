# Empty compiler generated dependencies file for vantage_test.
# This may be replaced when dependencies are built.
