// Table 4: the effect of AADS routing-table dynamics on cluster
// identification over 0/1/4/7/14-day periods, for the four server logs.
//
// Paper: AADS grows 16,595 -> 17,288 over 14 days with a maximum effect
// (prefixes not in the intersection of all snapshots) of 711 -> 1,404;
// the prefixes actually keying each log's clusters are far less exposed
// (e.g. Nagano: 663 AADS-keyed clusters, effect 22 -> 85; busy clusters:
// 93, effect 2 -> 14). Overall <3% of clusters are affected.
#include <cstdio>

#include <unordered_set>

#include "bench_common.h"
#include "bgp/dynamics.h"
#include "core/cluster.h"
#include "core/threshold.h"

namespace {

using namespace netclust;

std::vector<net::Prefix> SnapshotPrefixes(const bgp::Snapshot& snapshot) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(snapshot.entries.size());
  for (const auto& entry : snapshot.entries) {
    prefixes.push_back(entry.prefix);
  }
  return prefixes;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 4 — effect of AADS dynamics on cluster identification",
      "AADS 16,595 -> 17,288 entries over 14 days, max effect 711 -> 1,404; "
      "<3% of any log's clusters are ever affected");

  const auto& scenario = bench::GetScenario();
  const std::size_t aads = 0;  // source index in DefaultVantageProfiles()
  const int periods[] = {0, 1, 4, 7, 14};

  // Snapshot sets per period: period 0 is intraday (the real AADS dumps
  // every 2 hours); longer periods accumulate daily snapshots.
  std::vector<std::vector<std::vector<net::Prefix>>> period_snapshots;
  for (const int period : periods) {
    std::vector<std::vector<net::Prefix>> snapshots;
    for (const int slot : {0, 4, 8}) {
      snapshots.push_back(
          SnapshotPrefixes(scenario.vantages().MakeSnapshot(aads, 0, slot)));
    }
    for (int day = 1; day <= period; ++day) {
      snapshots.push_back(
          SnapshotPrefixes(scenario.vantages().MakeSnapshot(aads, day)));
    }
    period_snapshots.push_back(std::move(snapshots));
  }

  std::printf("\n%-36s", "Period (days)");
  for (const int period : periods) std::printf("  %8d", period);
  std::printf("\n%-36s", "AADS prefix");
  for (std::size_t p = 0; p < std::size(periods); ++p) {
    std::printf("  %8zu", bgp::PrefixSet(period_snapshots[p].back().begin(),
                                         period_snapshots[p].back().end())
                              .size());
  }
  std::printf("\n%-36s", "Maximum effect");
  std::vector<bgp::PrefixSet> dynamic_sets;
  for (std::size_t p = 0; p < std::size(periods); ++p) {
    dynamic_sets.push_back(bgp::DynamicPrefixSet(period_snapshots[p]));
    std::printf("  %8zu", dynamic_sets.back().size());
  }
  std::printf("\n");

  for (const auto preset :
       {bench::LogPreset::kApache, bench::LogPreset::kEw3,
        bench::LogPreset::kNagano, bench::LogPreset::kSun}) {
    const auto generated = bench::MakeLog(preset);
    const core::Clustering clustering =
        core::ClusterNetworkAware(generated.log, scenario.table);
    const auto threshold = core::ThresholdBusyClusters(clustering, 0.7);

    // Cluster keys present in the AADS table as of each period's end.
    std::vector<std::vector<net::Prefix>> keyed_per_period;
    std::vector<std::vector<net::Prefix>> busy_keyed_per_period;
    for (std::size_t p = 0; p < std::size(periods); ++p) {
      const bgp::PrefixSet aads_now(period_snapshots[p].back().begin(),
                                    period_snapshots[p].back().end());
      std::vector<net::Prefix> keyed;
      for (const core::Cluster& cluster : clustering.clusters) {
        if (aads_now.contains(cluster.key)) keyed.push_back(cluster.key);
      }
      std::vector<net::Prefix> busy_keyed;
      for (const std::size_t index : threshold.busy) {
        if (aads_now.contains(clustering.clusters[index].key)) {
          busy_keyed.push_back(clustering.clusters[index].key);
        }
      }
      keyed_per_period.push_back(std::move(keyed));
      busy_keyed_per_period.push_back(std::move(busy_keyed));
    }

    char label[64];
    std::snprintf(label, sizeof label, "%s prefix (total %zu)",
                  bench::PresetName(preset), clustering.cluster_count());
    std::printf("%-36s", label);
    for (std::size_t p = 0; p < std::size(periods); ++p) {
      std::printf("  %8zu", keyed_per_period[p].size());
    }
    std::printf("\n%-36s", "  Maximum effect");
    for (std::size_t p = 0; p < std::size(periods); ++p) {
      std::printf("  %8zu",
                  bgp::CountAffected(keyed_per_period[p], dynamic_sets[p]));
    }
    std::printf("\n");
    std::snprintf(label, sizeof label, "  busy clusters (total %zu)",
                  threshold.busy.size());
    std::printf("%-36s", label);
    for (std::size_t p = 0; p < std::size(periods); ++p) {
      std::printf("  %8zu", busy_keyed_per_period[p].size());
    }
    std::printf("\n%-36s", "  Maximum effect");
    for (std::size_t p = 0; p < std::size(periods); ++p) {
      std::printf("  %8zu", bgp::CountAffected(busy_keyed_per_period[p],
                                               dynamic_sets[p]));
    }
    std::printf("\n");

    const double affected_fraction =
        clustering.cluster_count() == 0
            ? 0.0
            : static_cast<double>(bgp::CountAffected(
                  keyed_per_period.back(), dynamic_sets.back())) /
                  static_cast<double>(clustering.cluster_count());
    std::printf("  -> %.2f%% of %s clusters affected at 14 days "
                "(paper: <3%%)\n",
                100.0 * affected_fraction, bench::PresetName(preset));
  }
  return 0;
}
