// Parallel network-aware clustering.
//
// Clustering a paper-scale log is dominated by millions of independent
// longest-prefix matches; this entry point shards the *distinct clients*
// across worker threads (the table is immutable and safe to share), then
// performs the grouping and tallying passes single-threaded so the result
// is bit-identical to ClusterNetworkAware.
//
// ParallelFor is the repo's one sanctioned place (together with the
// engine's shard workers) that spawns raw std::threads — netclust_lint
// enforces that rule — so other modules (core/session.cc) parallelize
// through it instead of rolling their own thread management.
#pragma once

#include <cstddef>
#include <functional>

#include "bgp/prefix_table.h"
#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::core {

/// Runs `body(begin, end)` over disjoint contiguous chunks of [0, n) on
/// up to `threads` worker threads and joins them all before returning.
/// `threads` <= 0 selects the hardware concurrency; the effective count is
/// clamped to [1, n] so no idle or zero-work thread is ever spawned
/// (threads == 1 or n <= 1 runs inline). `body` must be safe to invoke
/// concurrently on disjoint ranges; writes to shared state must target
/// per-index slots (the callers here pre-size result arrays).
void ParallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// Identical output to ClusterNetworkAware(log, table); `threads` <= 0
/// selects the hardware concurrency.
Clustering ClusterNetworkAwareParallel(const weblog::ServerLog& log,
                                       const bgp::PrefixTable& table,
                                       int threads = 0);

}  // namespace netclust::core
