#include "validate/suffix.h"

#include <algorithm>

namespace netclust::validate {
namespace {

// The last `n` components of `name`, or the full name when it has fewer.
std::string_view LastComponents(std::string_view name, std::size_t n) {
  std::size_t pos = name.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t dot = name.rfind('.', pos == 0 ? 0 : pos - 1);
    if (dot == std::string_view::npos) return name;
    pos = dot;
  }
  return name.substr(pos + 1);
}

std::size_t SuffixDepth(std::size_t components) {
  return components >= 4 ? 3 : 2;
}

}  // namespace

std::size_t ComponentCount(std::string_view name) {
  if (name.empty()) return 0;
  return static_cast<std::size_t>(
             std::count(name.begin(), name.end(), '.')) +
         1;
}

std::string NonTrivialSuffix(std::string_view name) {
  return std::string(LastComponents(name, SuffixDepth(ComponentCount(name))));
}

bool SharesNonTrivialSuffix(std::string_view a, std::string_view b) {
  const std::size_t depth =
      std::min(SuffixDepth(ComponentCount(a)), SuffixDepth(ComponentCount(b)));
  return LastComponents(a, depth) == LastComponents(b, depth);
}

bool LooksUsBased(std::string_view name) {
  const std::size_t dot = name.rfind('.');
  const std::string_view tld =
      dot == std::string_view::npos ? name : name.substr(dot + 1);
  if (tld.size() != 2) return true;  // .com/.edu/... or malformed
  return tld == "us";
}

}  // namespace netclust::validate
