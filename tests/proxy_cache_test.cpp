#include "cache/proxy_cache.h"

#include <gtest/gtest.h>

namespace netclust::cache {
namespace {

// An origin whose every resource changes exactly every `interval` seconds
// would make tests brittle; instead pick URLs whose hashed intervals are
// known long/short relative to the TTL.
class ProxyCacheTest : public ::testing::Test {
 protected:
  ProxyCacheTest() : origin_(99, 240.0) {  // very slow mean update: 240h
    config_.capacity_bytes = 0;
    config_.ttl_seconds = 3600;
    config_.piggyback_validation = true;
  }

  ProxyConfig config_;
  OriginServer origin_;
};

TEST_F(ProxyCacheTest, ColdMissThenFreshHit) {
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(1, 1000, 0);
  proxy.HandleRequest(1, 1000, 10);
  const ProxyStats& stats = proxy.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bytes_requested, 2000u);
  EXPECT_EQ(stats.bytes_from_server, 1000u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.5);
  EXPECT_DOUBLE_EQ(stats.ByteHitRatio(), 0.5);
}

TEST_F(ProxyCacheTest, StaleUnmodifiedResourceRevalidatesWithoutBody) {
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(1, 1000, 0);
  // Past the TTL but (with a ~240h update interval) almost surely
  // unmodified: If-Modified-Since returns 304.
  proxy.HandleRequest(1, 1000, 4000);
  const ProxyStats& stats = proxy.stats();
  EXPECT_EQ(stats.validated_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_from_server, 1000u);  // no second body
  // The 304 renewed the entry: a request within the new TTL is a hit.
  proxy.HandleRequest(1, 1000, 4100);
  EXPECT_EQ(proxy.stats().hits, 1u);
}

TEST_F(ProxyCacheTest, ModifiedResourceIsRefetched) {
  // Find a URL that changes between t=0 and t=5000.
  std::uint32_t churning = 0;
  bool found = false;
  for (std::uint32_t url = 0; url < 100000; ++url) {
    if (origin_.VersionAt(url, 0) != origin_.VersionAt(url, 5000)) {
      churning = url;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(churning, 1000, 0);
  proxy.HandleRequest(churning, 1000, 5000);
  const ProxyStats& stats = proxy.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.bytes_from_server, 2000u);
  EXPECT_EQ(stats.validated_hits, 0u);
}

TEST_F(ProxyCacheTest, OversizedRevalidationKeepsSmallerCachedCopy) {
  // Regression (PR 5): a stale revalidation whose body grew past the whole
  // cache capacity is rejected from admission — but the rejection must not
  // destroy the smaller copy the proxy still holds. Before the fix,
  // LruByteCache::Insert erased the key on the oversized path, so one
  // oversized 200 emptied the cache of a still-servable resource.
  config_.capacity_bytes = 300;
  config_.ttl_seconds = 100;
  // Piggyback off: it would legitimately drop the modified copy afterwards
  // and hide the admission-path behaviour under test.
  config_.piggyback_validation = false;
  // Find a URL that changes between t=0 and t=5000 (forces the 200 path).
  std::uint32_t churning = 0;
  bool found = false;
  for (std::uint32_t url = 0; url < 100000; ++url) {
    if (origin_.VersionAt(url, 0) != origin_.VersionAt(url, 5000)) {
      churning = url;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(churning, 200, 0);  // cold miss, 200-byte copy cached
  ASSERT_EQ(proxy.cache().size(), 1u);
  // Stale + modified + now larger than the whole cache: the refetch cannot
  // be admitted, and the old copy must survive.
  proxy.HandleRequest(churning, 500, 5000);
  EXPECT_EQ(proxy.cache().size(), 1u);
  EXPECT_EQ(proxy.cache().used_bytes(), 200u);
}

TEST_F(ProxyCacheTest, PiggybackRenewsStaleEntriesForFree) {
  ProxyCache proxy(config_, &origin_);
  // Warm three resources, let them all expire, then touch a fourth: the
  // server contact piggybacks validations that renew the stale three.
  proxy.HandleRequest(1, 100, 0);
  proxy.HandleRequest(2, 100, 1);
  proxy.HandleRequest(3, 100, 2);
  proxy.HandleRequest(4, 100, 5000);  // cold miss -> piggyback window
  const ProxyStats& after_contact = proxy.stats();
  EXPECT_EQ(after_contact.piggyback_checks, 3u);
  EXPECT_EQ(after_contact.piggyback_renewals, 3u);

  // All three are fresh again: pure hits, no server traffic.
  proxy.HandleRequest(1, 100, 5001);
  proxy.HandleRequest(2, 100, 5002);
  proxy.HandleRequest(3, 100, 5003);
  EXPECT_EQ(proxy.stats().hits, 3u);
  EXPECT_EQ(proxy.stats().validated_hits, 0u);
}

TEST_F(ProxyCacheTest, PiggybackDisabledLeavesStaleEntries) {
  config_.piggyback_validation = false;
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(1, 100, 0);
  proxy.HandleRequest(4, 100, 5000);
  EXPECT_EQ(proxy.stats().piggyback_checks, 0u);
  // Resource 1 is still stale: the next access costs an IMS round-trip.
  proxy.HandleRequest(1, 100, 5001);
  EXPECT_EQ(proxy.stats().validated_hits, 1u);
  EXPECT_EQ(proxy.stats().hits, 0u);
}

TEST_F(ProxyCacheTest, PiggybackBudgetIsBounded) {
  config_.piggyback_limit = 2;
  ProxyCache proxy(config_, &origin_);
  for (std::uint32_t url = 1; url <= 5; ++url) {
    proxy.HandleRequest(url, 100, static_cast<std::int64_t>(url));
  }
  proxy.HandleRequest(9, 100, 9000);
  EXPECT_EQ(proxy.stats().piggyback_checks, 2u);  // limit, not all 5
}

TEST_F(ProxyCacheTest, EvictionDefeatsCaching) {
  config_.capacity_bytes = 150;  // fits one 100-byte body only
  ProxyCache proxy(config_, &origin_);
  proxy.HandleRequest(1, 100, 0);
  proxy.HandleRequest(2, 100, 1);  // evicts 1
  proxy.HandleRequest(1, 100, 2);  // miss again
  const ProxyStats& stats = proxy.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST_F(ProxyCacheTest, HitRatioGrowsWithCacheSize) {
  // A fundamental sanity property the Figure 11 bench depends on.
  const auto run = [&](std::uint64_t capacity) {
    ProxyConfig config = config_;
    config.capacity_bytes = capacity;
    ProxyCache proxy(config, &origin_);
    std::int64_t t = 0;
    for (int round = 0; round < 50; ++round) {
      for (std::uint32_t url = 0; url < 20; ++url) {
        proxy.HandleRequest(url, 400, t += 2);
      }
    }
    return proxy.stats().HitRatio();
  };
  const double tiny = run(800);     // 2 resources fit
  const double medium = run(4000);  // 10 fit
  const double large = run(0);      // everything fits
  EXPECT_LE(tiny, medium);
  EXPECT_LE(medium, large);
  EXPECT_GT(large, 0.9);
}

}  // namespace
}  // namespace netclust::cache
