#include "core/threshold.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace netclust::core {
namespace {

Clustering MakeClustering(const std::vector<std::uint64_t>& requests) {
  Clustering clustering;
  std::uint32_t next_client = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Cluster cluster;
    cluster.key = net::Prefix(
        net::IpAddress(static_cast<std::uint32_t>(0x0A000000 + (i << 8))), 24);
    cluster.requests = requests[i];
    cluster.members = {next_client};
    clustering.clients.push_back(ClientStats{
        net::IpAddress(static_cast<std::uint32_t>(0x0A000000 + (i << 8) + 1)),
        requests[i], 0});
    ++next_client;
    clustering.total_requests += requests[i];
    clustering.clusters.push_back(std::move(cluster));
  }
  return clustering;
}

TEST(Threshold, RetainsBusiestClustersCoveringTargetFraction) {
  // 100+50 = 150 >= 0.7 * 200; the two busiest clusters suffice.
  const Clustering clustering = MakeClustering({100, 50, 30, 15, 5});
  const ThresholdReport report = ThresholdBusyClusters(clustering, 0.7);
  ASSERT_EQ(report.busy.size(), 2u);
  EXPECT_EQ(clustering.clusters[report.busy[0]].requests, 100u);
  EXPECT_EQ(clustering.clusters[report.busy[1]].requests, 50u);
  EXPECT_EQ(report.busy_requests, 150u);
  EXPECT_EQ(report.threshold_requests, 50u);
  EXPECT_EQ(report.busy_clients, 2u);
  EXPECT_EQ(report.less_busy_max_requests, 30u);
  EXPECT_EQ(report.less_busy_min_requests, 5u);
}

TEST(Threshold, FullFractionTakesEverything) {
  const Clustering clustering = MakeClustering({10, 10, 10});
  const ThresholdReport report = ThresholdBusyClusters(clustering, 1.0);
  EXPECT_EQ(report.busy.size(), 3u);
  EXPECT_EQ(report.less_busy_max_requests, 0u);
}

TEST(Threshold, ZeroFractionTakesNothing) {
  const Clustering clustering = MakeClustering({10, 10, 10});
  const ThresholdReport report = ThresholdBusyClusters(clustering, 0.0);
  EXPECT_TRUE(report.busy.empty());
  EXPECT_EQ(report.busy_requests, 0u);
}

TEST(Threshold, EmptyClustering) {
  const ThresholdReport report = ThresholdBusyClusters(Clustering{}, 0.7);
  EXPECT_TRUE(report.busy.empty());
}

TEST(Threshold, SingleClusterDominates) {
  const Clustering clustering = MakeClustering({1000, 1, 1});
  const ThresholdReport report = ThresholdBusyClusters(clustering, 0.7);
  ASSERT_EQ(report.busy.size(), 1u);
  EXPECT_EQ(report.busy_max_requests, 1000u);
  EXPECT_EQ(report.busy_min_requests, 1000u);
}

TEST(Threshold, BusyFractionIsSharpOnRealisticData) {
  // The busy set must cover >= 70% but over-cover only by at most the
  // smallest busy cluster (it is the minimal prefix of the sorted order).
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  const ThresholdReport report = ThresholdBusyClusters(clustering, 0.7);

  std::uint64_t clustered = 0;
  for (const Cluster& cluster : clustering.clusters) {
    clustered += cluster.requests;
  }
  const double fraction = static_cast<double>(report.busy_requests) /
                          static_cast<double>(clustered);
  EXPECT_GE(fraction, 0.7);
  EXPECT_LT(report.busy_requests - report.threshold_requests,
            static_cast<std::uint64_t>(0.7 * static_cast<double>(clustered)));

  // Far fewer busy clusters than clusters (Table 5: 717 of 9,853).
  EXPECT_LT(report.busy.size(), clustering.cluster_count() / 4);
  // Every busy cluster is at least as busy as every less-busy one.
  EXPECT_GE(report.threshold_requests, report.less_busy_max_requests);
}

}  // namespace
}  // namespace netclust::core
