#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_fixtures.h"

namespace netclust::core {
namespace {

Clustering ToyClustering() {
  // Three clusters: sizes 3/1/2 members, requests 10/100/20.
  Clustering clustering;
  clustering.approach = "toy";
  clustering.total_requests = 130;
  for (int i = 0; i < 6; ++i) {
    clustering.clients.push_back(
        ClientStats{net::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i)),
                    1, 0});
  }
  Cluster a;
  a.key = net::Prefix::Parse("10.0.0.0/30").value();
  a.members = {0, 1, 2};
  a.requests = 10;
  a.unique_urls = 5;
  Cluster b;
  b.key = net::Prefix::Parse("10.0.0.4/30").value();
  b.members = {3};
  b.requests = 100;
  b.unique_urls = 50;
  Cluster c;
  c.key = net::Prefix::Parse("10.0.0.8/30").value();
  c.members = {4, 5};
  c.requests = 20;
  c.unique_urls = 2;
  clustering.clusters = {a, b, c};
  return clustering;
}

TEST(Order, ByClientsDescending) {
  const Clustering clustering = ToyClustering();
  const auto order = OrderByClients(clustering);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(clustering.clusters[order[0]].members.size(), 3u);
  EXPECT_EQ(clustering.clusters[order[1]].members.size(), 2u);
  EXPECT_EQ(clustering.clusters[order[2]].members.size(), 1u);
}

TEST(Order, ByRequestsDescending) {
  const Clustering clustering = ToyClustering();
  const auto order = OrderByRequests(clustering);
  EXPECT_EQ(clustering.clusters[order[0]].requests, 100u);
  EXPECT_EQ(clustering.clusters[order[1]].requests, 20u);
  EXPECT_EQ(clustering.clusters[order[2]].requests, 10u);
}

TEST(Order, TiesAreDeterministic) {
  Clustering clustering = ToyClustering();
  clustering.clusters[0].requests = 100;  // tie with cluster 1
  const auto once = OrderByRequests(clustering);
  const auto twice = OrderByRequests(clustering);
  EXPECT_EQ(once, twice);
}

TEST(Cdf, StepsThroughDistinctValues) {
  const auto cdf = CumulativeDistribution({1, 1, 2, 5, 5, 5});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].cumulative, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_NEAR(cdf[1].cumulative, 3.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5.0);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
}

TEST(Cdf, EmptyAndFractionLookup) {
  EXPECT_TRUE(CumulativeDistribution({}).empty());
  const auto cdf = CumulativeDistribution({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(FractionAtMost(cdf, 5), 0.0);
  EXPECT_DOUBLE_EQ(FractionAtMost(cdf, 10), 0.25);
  EXPECT_DOUBLE_EQ(FractionAtMost(cdf, 25), 0.5);
  EXPECT_DOUBLE_EQ(FractionAtMost(cdf, 100), 1.0);
}

TEST(Summary, MinMaxAcrossClusters) {
  const ClusteringSummary summary = Summarize(ToyClustering());
  EXPECT_EQ(summary.clusters, 3u);
  EXPECT_EQ(summary.clients, 6u);
  EXPECT_EQ(summary.min_cluster_clients, 1u);
  EXPECT_EQ(summary.max_cluster_clients, 3u);
  EXPECT_EQ(summary.min_cluster_requests, 10u);
  EXPECT_EQ(summary.max_cluster_requests, 100u);
  EXPECT_EQ(summary.max_cluster_urls, 50u);
}

TEST(Summary, EmptyClustering) {
  const ClusteringSummary summary = Summarize(Clustering{});
  EXPECT_EQ(summary.clusters, 0u);
  EXPECT_EQ(summary.max_cluster_clients, 0u);
}

TEST(Histogram, BucketsRequestsOverTime) {
  weblog::ServerLog log("hist");
  for (int i = 0; i < 10; ++i) {
    weblog::LogRecord record;
    record.client = net::IpAddress(1, 2, 3, 4);
    record.timestamp = i < 7 ? 100 : 4000;  // two buckets at width 3600
    record.url = "/x";
    log.Append(record);
  }
  const auto histogram = RequestHistogram(log, 3600);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], 7u);
  EXPECT_EQ(histogram[1], 3u);
}

TEST(Histogram, SubsetFiltering) {
  weblog::ServerLog log("hist");
  for (int i = 0; i < 6; ++i) {
    weblog::LogRecord record;
    record.client = net::IpAddress(1, 2, 3, i % 2 == 0 ? 4 : 5);
    record.timestamp = 100;
    record.url = "/x";
    log.Append(record);
  }
  const std::unordered_set<net::IpAddress> subset = {
      net::IpAddress(1, 2, 3, 4)};
  const auto histogram = RequestHistogram(log, 3600, &subset);
  EXPECT_EQ(histogram[0], 3u);
}

TEST(Correlation, PerfectAndInverse) {
  const std::vector<std::uint64_t> a = {1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> scaled = {10, 20, 30, 40, 50};
  const std::vector<std::uint64_t> inverse = {5, 4, 3, 2, 1};
  EXPECT_NEAR(HistogramCorrelation(a, scaled), 1.0, 1e-12);
  EXPECT_NEAR(HistogramCorrelation(a, inverse), -1.0, 1e-12);
}

TEST(Correlation, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(HistogramCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(HistogramCorrelation({3, 3, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(HistogramCorrelation({}, {}), 0.0);
}

TEST(ZipfFit, RecoversKnownExponent) {
  // Perfect Zipf with alpha = 1.2.
  std::vector<double> values;
  for (int rank = 1; rank <= 2000; ++rank) {
    values.push_back(1e6 / std::pow(rank, 1.2));
  }
  const ZipfFit fit = EstimateZipfExponent(std::move(values));
  EXPECT_NEAR(fit.alpha, 1.2, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(ZipfFit, OrderAndZerosDoNotMatter) {
  std::vector<double> values = {0.0, 100, 25, 50, -3, 12.5};
  const ZipfFit fit = EstimateZipfExponent(std::move(values));
  EXPECT_GT(fit.alpha, 0.5);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(ZipfFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(EstimateZipfExponent({}).alpha, 0.0);
  EXPECT_DOUBLE_EQ(EstimateZipfExponent({5.0, 5.0}).alpha, 0.0);
  // Constant values: slope 0, perfect fit to a flat line.
  const ZipfFit flat = EstimateZipfExponent({7.0, 7.0, 7.0, 7.0});
  EXPECT_NEAR(flat.alpha, 0.0, 1e-12);
}

TEST(ZipfFit, ClusterRequestsAreZipfLike) {
  // The paper: "such Zipf-like distributions are common in a variety of
  // Web measurements".
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  std::vector<double> requests;
  for (const Cluster& cluster : clustering.clusters) {
    requests.push_back(static_cast<double>(cluster.requests));
  }
  const ZipfFit fit = EstimateZipfExponent(std::move(requests));
  EXPECT_GT(fit.alpha, 0.5);
  EXPECT_LT(fit.alpha, 3.0);
  EXPECT_GT(fit.r_squared, 0.8);
}

TEST(FigureThreeShape, MostClustersAreSmallRequestsHeavierTailed) {
  // §3.2.2: ">95% of client clusters contain less than 100 clients", and
  // the request distribution is more heavy-tailed than the client one.
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);

  std::vector<double> client_counts;
  std::vector<double> request_counts;
  for (const Cluster& cluster : clustering.clusters) {
    client_counts.push_back(static_cast<double>(cluster.members.size()));
    request_counts.push_back(static_cast<double>(cluster.requests));
  }
  const auto client_cdf = CumulativeDistribution(std::move(client_counts));
  EXPECT_GT(FractionAtMost(client_cdf, 100.0), 0.95);

  // Heavy tail: the busiest cluster's request share far exceeds the
  // biggest cluster's client share.
  const ClusteringSummary summary = Summarize(clustering);
  const double max_request_share =
      static_cast<double>(summary.max_cluster_requests) /
      static_cast<double>(clustering.total_requests);
  const double max_client_share =
      static_cast<double>(summary.max_cluster_clients) /
      static_cast<double>(clustering.client_count());
  EXPECT_GT(max_request_share, max_client_share);
}

}  // namespace
}  // namespace netclust::core
