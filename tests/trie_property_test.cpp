// Property tests: on randomized prefix sets, both tries and the compiled
// flat directory must agree with the linear-scan oracle on every lookup,
// under inserts, removals and recompiles. The churn-equivalence suite at
// the bottom extends this to the incremental recompile: a chain of
// CompileFlatDelta() calls must stay indistinguishable from a from-scratch
// CompileFlat() under arbitrary announce/withdraw interleavings, and the
// delta publish must be safe against concurrent LookupBatch readers.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "bgp/prefix_table.h"
#include "bgp/table_handle.h"
#include "synth/rng.h"
#include "trie/binary_trie.h"
#include "trie/flat_lpm.h"
#include "trie/linear_lpm.h"
#include "trie/patricia_trie.h"

namespace netclust::trie {
namespace {

using net::IpAddress;
using net::Prefix;

struct SweepParams {
  std::uint64_t seed;
  int entries;
  int min_length;
  int max_length;
};

class LpmAgreementSweep : public ::testing::TestWithParam<SweepParams> {};

Prefix RandomPrefix(synth::Rng& rng, int min_length, int max_length) {
  const int length =
      min_length +
      static_cast<int>(rng.Uniform(
          static_cast<std::uint64_t>(max_length - min_length + 1)));
  const auto bits = static_cast<std::uint32_t>(rng.Uniform(1ull << 32));
  return Prefix(IpAddress(bits), length);
}

// Probe addresses biased towards the inserted prefixes (uniform probing
// would almost never hit a /28).
std::vector<IpAddress> ProbePoints(const std::vector<Prefix>& prefixes,
                                   synth::Rng& rng) {
  std::vector<IpAddress> probes;
  for (const Prefix& prefix : prefixes) {
    probes.push_back(prefix.first_address());
    probes.push_back(prefix.last_address());
    probes.push_back(IpAddress(static_cast<std::uint32_t>(
        prefix.network().bits() +
        rng.Uniform(std::max<std::uint64_t>(prefix.size(), 1)))));
    // Just outside the block.
    probes.push_back(IpAddress(prefix.network().bits() - 1));
    probes.push_back(IpAddress(static_cast<std::uint32_t>(
        prefix.network().bits() + prefix.size())));
  }
  for (int i = 0; i < 64; ++i) {
    probes.push_back(IpAddress(static_cast<std::uint32_t>(
        rng.Uniform(1ull << 32))));
  }
  return probes;
}

// Recompiles a FlatLpm from whatever the Patricia trie currently holds —
// the same one-pass Visit + Compile the RCU publish step performs.
FlatLpm<int> CompileFrom(const PatriciaTrie<int>& patricia) {
  std::vector<FlatLpm<int>::Entry> entries;
  patricia.Visit([&entries](const Prefix& prefix, const int& value) {
    entries.push_back(FlatLpm<int>::Entry{prefix, 0, value});
  });
  return FlatLpm<int>::Compile(std::move(entries));
}

TEST_P(LpmAgreementSweep, TriesMatchLinearOracle) {
  const SweepParams params = GetParam();
  synth::Rng rng(params.seed);

  LinearLpm<int> oracle;
  BinaryTrie<int> binary;
  PatriciaTrie<int> patricia;

  std::vector<Prefix> inserted;
  for (int i = 0; i < params.entries; ++i) {
    const Prefix prefix =
        RandomPrefix(rng, params.min_length, params.max_length);
    inserted.push_back(prefix);
    oracle.Insert(prefix, i);
    binary.Insert(prefix, i);
    patricia.Insert(prefix, i);
  }
  EXPECT_EQ(binary.size(), oracle.size());
  EXPECT_EQ(patricia.size(), oracle.size());
  const FlatLpm<int> flat = CompileFrom(patricia);
  EXPECT_EQ(flat.size(), oracle.size());

  const std::vector<IpAddress> probes = ProbePoints(inserted, rng);
  std::vector<FlatLpm<int>::Match> batched(probes.size());
  flat.LookupBatch(probes, batched);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const IpAddress probe = probes[i];
    const auto expected = oracle.LongestMatch(probe);
    const auto from_binary = binary.LongestMatch(probe);
    const auto from_patricia = patricia.LongestMatch(probe);
    const auto from_flat = flat.LongestMatch(probe);
    ASSERT_EQ(from_binary.has_value(), expected.has_value())
        << probe.ToString();
    ASSERT_EQ(from_patricia.has_value(), expected.has_value())
        << probe.ToString();
    ASSERT_EQ(from_flat.has_value(), expected.has_value())
        << probe.ToString();
    ASSERT_EQ(batched[i].value != nullptr, expected.has_value())
        << probe.ToString();
    if (!expected.has_value()) continue;
    EXPECT_EQ(from_binary->prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(*from_binary->value, *expected->value) << probe.ToString();
    EXPECT_EQ(from_patricia->prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(*from_patricia->value, *expected->value) << probe.ToString();
    EXPECT_EQ(from_flat->prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(*from_flat->value, *expected->value) << probe.ToString();
    // Batched answers are the same objects the single path returns.
    EXPECT_EQ(batched[i].prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(*batched[i].value, *expected->value) << probe.ToString();
  }
}

TEST_P(LpmAgreementSweep, AgreementSurvivesRemovals) {
  const SweepParams params = GetParam();
  synth::Rng rng(params.seed ^ 0xDEAD);

  LinearLpm<int> oracle;
  BinaryTrie<int> binary;
  PatriciaTrie<int> patricia;

  std::vector<Prefix> inserted;
  for (int i = 0; i < params.entries; ++i) {
    const Prefix prefix =
        RandomPrefix(rng, params.min_length, params.max_length);
    inserted.push_back(prefix);
    oracle.Insert(prefix, i);
    binary.Insert(prefix, i);
    patricia.Insert(prefix, i);
  }
  // Remove half the entries (some duplicates: second removal must fail).
  for (std::size_t i = 0; i < inserted.size(); i += 2) {
    const bool expected = oracle.Remove(inserted[i]);
    EXPECT_EQ(binary.Remove(inserted[i]), expected);
    EXPECT_EQ(patricia.Remove(inserted[i]), expected);
  }
  EXPECT_EQ(binary.size(), oracle.size());
  EXPECT_EQ(patricia.size(), oracle.size());
  // A post-removal recompile must reflect exactly the surviving entries.
  const FlatLpm<int> flat = CompileFrom(patricia);
  EXPECT_EQ(flat.size(), oracle.size());

  for (const IpAddress probe : ProbePoints(inserted, rng)) {
    const auto expected = oracle.LongestMatch(probe);
    const auto from_binary = binary.LongestMatch(probe);
    const auto from_patricia = patricia.LongestMatch(probe);
    const auto from_flat = flat.LongestMatch(probe);
    ASSERT_EQ(from_binary.has_value(), expected.has_value())
        << probe.ToString();
    ASSERT_EQ(from_patricia.has_value(), expected.has_value())
        << probe.ToString();
    ASSERT_EQ(from_flat.has_value(), expected.has_value())
        << probe.ToString();
    if (!expected.has_value()) continue;
    EXPECT_EQ(from_binary->prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(from_patricia->prefix, expected->prefix) << probe.ToString();
    EXPECT_EQ(from_flat->prefix, expected->prefix) << probe.ToString();
  }
}

TEST_P(LpmAgreementSweep, FlatRecompileSurvivesChurn) {
  // The engine recompiles the flat directory at every publish, so it must
  // stay bit-identical to the mutating structures through arbitrary
  // insert/remove interleavings — not just a single build.
  const SweepParams params = GetParam();
  synth::Rng rng(params.seed ^ 0xC4E7);

  LinearLpm<int> oracle;
  PatriciaTrie<int> patricia;
  std::vector<Prefix> touched;
  // Always-interesting edges: the default route and a /32 host. The
  // default route paints every root slot; the host paints exactly one
  // level-3 entry.
  touched.push_back(Prefix(IpAddress(0u), 0));
  touched.push_back(Prefix(IpAddress(0xC0A80101u), 32));

  int next_value = 0;
  for (int phase = 0; phase < 6; ++phase) {
    // Insert a batch...
    for (int i = 0; i < params.entries / 4 + 1; ++i) {
      const Prefix prefix =
          RandomPrefix(rng, params.min_length, params.max_length);
      touched.push_back(prefix);
      oracle.Insert(prefix, next_value);
      patricia.Insert(prefix, next_value);
      ++next_value;
    }
    if (phase % 2 == 0) {
      oracle.Insert(touched[0], next_value);
      patricia.Insert(touched[0], next_value);
      ++next_value;
      oracle.Insert(touched[1], next_value);
      patricia.Insert(touched[1], next_value);
      ++next_value;
    }
    // ...remove a pseudo-random third of everything ever touched (repeat
    // removals must agree on failure too)...
    for (std::size_t i = phase % 3; i < touched.size(); i += 3) {
      EXPECT_EQ(patricia.Remove(touched[i]), oracle.Remove(touched[i]));
    }
    // ...then recompile and compare — exactly what a publish does.
    const FlatLpm<int> flat = CompileFrom(patricia);
    ASSERT_EQ(flat.size(), oracle.size());
    for (const IpAddress probe : ProbePoints(touched, rng)) {
      const auto expected = oracle.LongestMatch(probe);
      const auto from_flat = flat.LongestMatch(probe);
      ASSERT_EQ(from_flat.has_value(), expected.has_value())
          << "phase " << phase << " " << probe.ToString();
      if (!expected.has_value()) continue;
      ASSERT_EQ(from_flat->prefix, expected->prefix)
          << "phase " << phase << " " << probe.ToString();
      ASSERT_EQ(*from_flat->value, *expected->value)
          << "phase " << phase << " " << probe.ToString();
    }
  }
}

TEST(FlatLpm, DefaultRouteAndHostRouteEdges) {
  // 0.0.0.0/0 answers everything; a /32 overrides exactly one address.
  std::vector<FlatLpm<int>::Entry> entries;
  entries.push_back(FlatLpm<int>::Entry{Prefix(IpAddress(0u), 0), 0, 1});
  entries.push_back(
      FlatLpm<int>::Entry{Prefix(IpAddress(0xC0A80101u), 32), 0, 2});
  const FlatLpm<int> flat = FlatLpm<int>::Compile(std::move(entries));
  ASSERT_TRUE(flat.LongestMatch(IpAddress(0u)).has_value());
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0u))->value, 1);
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0xFFFFFFFFu))->value, 1);
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0xC0A80101u))->value, 2);
  EXPECT_EQ(flat.LongestMatch(IpAddress(0xC0A80101u))->prefix.length(), 32);
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0xC0A80100u))->value, 1);
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0xC0A80102u))->value, 1);
}

TEST(FlatLpm, PriorityClassBeatsLength) {
  // The primary/secondary rule the bgp layer compiles in: a higher
  // priority class wins even against a longer lower-class prefix.
  std::vector<FlatLpm<int>::Entry> entries;
  entries.push_back(
      FlatLpm<int>::Entry{Prefix(IpAddress(0x0C410000u), 16), 1, 10});
  entries.push_back(
      FlatLpm<int>::Entry{Prefix(IpAddress(0x0C418000u), 19), 0, 20});
  const FlatLpm<int> flat = FlatLpm<int>::Compile(std::move(entries));
  // Inside the /19: the /16 still wins (higher class).
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0x0C418123u))->value, 10);
  EXPECT_EQ(flat.LongestMatch(IpAddress(0x0C418123u))->prefix.length(), 16);
  // Outside the /19 but inside the /16: unchanged.
  EXPECT_EQ(*flat.LongestMatch(IpAddress(0x0C410001u))->value, 10);
  // Same class, longer wins.
  entries.clear();
  entries.push_back(
      FlatLpm<int>::Entry{Prefix(IpAddress(0x0C410000u), 16), 1, 10});
  entries.push_back(
      FlatLpm<int>::Entry{Prefix(IpAddress(0x0C418000u), 19), 1, 30});
  const FlatLpm<int> same = FlatLpm<int>::Compile(std::move(entries));
  EXPECT_EQ(*same.LongestMatch(IpAddress(0x0C418123u))->value, 30);
}

TEST(FlatLpm, EmptyTableMatchesNothing) {
  const FlatLpm<int> flat;
  EXPECT_FALSE(flat.LongestMatch(IpAddress(0x01020304u)).has_value());
  EXPECT_TRUE(flat.empty());
  const std::vector<IpAddress> probes(5, IpAddress(0x01020304u));
  std::vector<FlatLpm<int>::Match> out(5);
  flat.LookupBatch(probes, out);
  for (const auto& match : out) EXPECT_EQ(match.value, nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweeps, LpmAgreementSweep,
    ::testing::Values(SweepParams{1, 16, 1, 32}, SweepParams{2, 64, 8, 24},
                      SweepParams{3, 256, 8, 30}, SweepParams{4, 512, 0, 32},
                      SweepParams{5, 1024, 16, 24},
                      SweepParams{6, 128, 24, 32},
                      SweepParams{7, 512, 1, 8},
                      SweepParams{8, 2048, 8, 32}));

// ---------------------------------------------------------------------------
// Churn equivalence: the incremental recompile the live-update path uses
// must be indistinguishable from a from-scratch compile after ANY
// interleaving of announces and withdraws. Deltas are CHAINED the way the
// engine chains them (each built from the previous delta's output, never
// from a fresh full compile), and every phase forces the edges that break
// directory painters: default-route flips (repaints every root slot),
// /32 host routes (a single level-3 slot), and sub-/16 prefixes spanning
// many root slots.

class ChurnEquivalenceSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(ChurnEquivalenceSweep, DeltaChainMatchesFullCompileAndOracle) {
  const SweepParams params = GetParam();
  synth::Rng rng(params.seed ^ 0x5EEDu);

  bgp::PrefixTable table;
  const int source = table.AddSource(
      {"CHURN", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  ASSERT_GE(source, 0);

  bgp::PrefixTable::Flat flat;  // the chained delta output
  std::vector<Prefix> ever;     // everything ever announced
  const Prefix default_route(IpAddress(0u), 0);
  const Prefix host(IpAddress(0xC0A80101u), 32);

  bgp::AsNumber as = 64500;
  for (int phase = 0; phase < 8; ++phase) {
    std::vector<Prefix> changed;
    // A batch of random announces (some overwrite attempts — only actual
    // table changes enter `changed`, matching what the engine reports).
    for (int i = 0; i < params.entries / 4 + 1; ++i) {
      const Prefix prefix =
          RandomPrefix(rng, params.min_length, params.max_length);
      if (table.Insert(prefix, source, ++as)) changed.push_back(prefix);
      ever.push_back(prefix);
    }
    // Withdraw a pseudo-random third of everything ever announced (many
    // are repeats: a withdraw of an absent prefix must stay OUT of the
    // changed set, like the engine's counted no-op).
    for (std::size_t i = phase % 3; i < ever.size(); i += 3) {
      if (table.Remove(ever[i])) changed.push_back(ever[i]);
    }
    // Flip the always-interesting edges on alternating phases.
    if (phase % 2 == 0) {
      if (table.Insert(default_route, source, 64000)) {
        changed.push_back(default_route);
      }
      if (table.Insert(host, source, 64001)) changed.push_back(host);
    } else {
      if (table.Remove(default_route)) changed.push_back(default_route);
      if (table.Remove(host)) changed.push_back(host);
    }

    flat = table.CompileFlatDelta(flat, changed);
    const bgp::PrefixTable::Flat full = table.CompileFlat();
    ASSERT_EQ(flat.ResolvesIdentically(full), true) << "phase " << phase;
    ASSERT_EQ(full.ResolvesIdentically(flat), true) << "phase " << phase;

    // Spot-probe against the mutating table (the Patricia-backed oracle):
    // the structural equivalence above and the behavioural check here
    // must agree or ResolvesIdentically itself is wrong.
    for (const IpAddress probe : ProbePoints(ever, rng)) {
      const auto expected = table.LongestMatch(probe);
      const auto got = flat.LongestMatch(probe);
      ASSERT_EQ(got.has_value(), expected.has_value())
          << "phase " << phase << " " << probe.ToString();
      if (!expected.has_value()) continue;
      ASSERT_EQ(got->prefix, expected->prefix)
          << "phase " << phase << " " << probe.ToString();
      ASSERT_EQ(got->value->origin_as, expected->origin_as)
          << "phase " << phase << " " << probe.ToString();
      ASSERT_EQ(got->value->source_mask, expected->source_mask)
          << "phase " << phase << " " << probe.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomChurn, ChurnEquivalenceSweep,
    ::testing::Values(SweepParams{11, 32, 0, 32},   // default routes in band
                      SweepParams{12, 128, 8, 24},
                      SweepParams{13, 256, 1, 15},  // sub-/16, spans roots
                      SweepParams{14, 256, 24, 32}, // deep, level-3 heavy
                      SweepParams{15, 512, 8, 32}));

// The delta publish's double-buffer contract, raced for real: LookupBatch
// readers hammer snapshots acquired from an RcuTableSlot while the
// publisher chains delta publishes through it. Every answer must be
// coherent — the winning prefix covers the probe, is one of the prefixes
// that can legally cover it at any point of the churn, and the stored
// payload agrees with the winning prefix (a torn directory would break
// one of these, and TSan — which runs this file in CI — would flag the
// racing access itself).
TEST(FlatChurn, ConcurrentLookupBatchSurvivesDeltaPublishes) {
  bgp::RcuTableSlot slot;
  base::AssumeThreadRole publisher(slot.publisher_role());

  bgp::PrefixTable master;
  const int source = master.AddSource(
      {"LIVE", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  ASSERT_GE(source, 0);
  const Prefix covering(IpAddress(10, 0, 0, 0), 8);
  ASSERT_TRUE(master.Insert(covering, source, 65000));
  {
    const std::vector<Prefix> seeded = {covering};
    slot.Publish(master, seeded);
  }

  // One churning /24 in each of 16 distinct /16 root slots.
  std::vector<Prefix> churning;
  for (std::uint32_t i = 0; i < 16; ++i) {
    churning.push_back(
        Prefix(IpAddress(0x0A000000u | (i << 16) | (i << 8)), 24));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> incoherent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&churning, &slot, &stop, &incoherent, covering] {
      std::vector<IpAddress> probes;
      for (const Prefix& prefix : churning) {
        probes.push_back(prefix.first_address());
        probes.push_back(prefix.last_address());
      }
      std::vector<bgp::PrefixTable::Flat::Match> out(probes.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const bgp::TableHandle handle = slot.Acquire();
        handle.flat().LookupBatch(probes, out);
        for (std::size_t i = 0; i < probes.size(); ++i) {
          // The covering /8 is never withdrawn, so a miss is a tear.
          if (out[i].value == nullptr) {
            incoherent.fetch_add(1);
            continue;
          }
          const Prefix& won = out[i].prefix;
          if (!(won == covering || won == churning[i / 2])) {
            incoherent.fetch_add(1);
          }
          if (out[i].value->prefix != won) incoherent.fetch_add(1);
        }
      }
    });
  }

  for (int round = 0; round < 400; ++round) {
    const Prefix& flip = churning[static_cast<std::size_t>(round) %
                                  churning.size()];
    if (master.Contains(flip)) {
      ASSERT_TRUE(master.Remove(flip));
    } else {
      ASSERT_TRUE(master.Insert(
          flip, source, 64512 + static_cast<bgp::AsNumber>(round % 7)));
    }
    const std::vector<Prefix> changed = {flip};
    slot.Publish(master, changed);
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(incoherent.load(), 0)
      << "a LookupBatch observed a torn or stale-mixed directory";
}

}  // namespace
}  // namespace netclust::trie
