// Proxy placement study (§4.1.3-4.1.5).
//
//   $ ./proxy_placement
//
// End-to-end: synthesize a busy day log, cluster it, eliminate spiders/
// proxies, keep the busy clusters that carry 70% of requests, place one
// PCV+LRU proxy cache per busy cluster and report what the origin server
// saves — contrasted against the naive /24 clustering.
#include <cstdio>

#include "cache/simulation.h"
#include "core/cluster.h"
#include "core/detect.h"
#include "core/proxy_placement.h"
#include "core/threshold.h"
#include "synth/internet.h"
#include "synth/vantage.h"
#include "synth/workload.h"

int main() {
  using namespace netclust;

  synth::InternetConfig net_config;
  net_config.seed = 27;
  net_config.allocation_count = 4000;
  const synth::Internet internet = synth::GenerateInternet(net_config);
  const synth::VantageGenerator vantages(internet,
                                         synth::DefaultVantageProfiles());
  bgp::PrefixTable table;
  for (const auto& snapshot : vantages.AllSnapshots(0)) {
    table.AddSnapshot(snapshot);
  }

  synth::WorkloadConfig workload;
  workload.seed = 28;
  workload.target_clients = 6000;
  workload.target_requests = 400000;
  workload.url_count = 3500;
  workload.proxy_count = 1;
  const weblog::ServerLog raw_log =
      synth::GenerateLog(internet, workload).log;

  // 1. Cluster and clean the log.
  const core::Clustering raw = core::ClusterNetworkAware(raw_log, table);
  const auto detection = core::DetectSpidersAndProxies(raw_log, raw);
  const weblog::ServerLog log =
      core::RemoveClients(raw_log, detection.AllAddresses());
  std::printf("log: %zu requests after eliminating %zu suspect hosts\n",
              log.request_count(), detection.suspects.size());

  const core::Clustering clustering = core::ClusterNetworkAware(log, table);

  // 2. Threshold busy clusters (70% of requests).
  const core::ThresholdReport busy =
      core::ThresholdBusyClusters(clustering, 0.7);
  std::printf("busy clusters: %zu of %zu hold %llu requests "
              "(threshold: %llu requests/cluster)\n",
              busy.busy.size(), clustering.cluster_count(),
              static_cast<unsigned long long>(busy.busy_requests),
              static_cast<unsigned long long>(busy.threshold_requests));
  // §4.1.4's two placement flavours: per-cluster proxy pools, then the
  // AS-level co-operating proxy clusters.
  const auto assignments = core::AssignProxies(clustering, busy);
  int proxies = 0;
  for (const auto& assignment : assignments) proxies += assignment.proxies;
  const auto groups = core::GroupProxiesByAs(clustering, assignments, table);
  std::printf("-> %d proxies (load-sized) serving %zu clients, grouped "
              "into %zu AS-level proxy clusters\n",
              proxies, busy.busy_clients, groups.size());
  if (!groups.empty()) {
    std::printf("   largest proxy cluster: AS%u with %d proxies over %zu "
                "client clusters (%llu requests)\n",
                groups.front().as_number, groups.front().proxies,
                groups.front().clusters.size(),
                static_cast<unsigned long long>(groups.front().requests));
  }

  // 3. Simulate proxy caching at a few cache sizes, both approaches.
  const core::Clustering simple = core::ClusterSimple(log);
  std::printf("\n%12s  %22s  %22s\n", "cache", "network-aware", "simple");
  std::printf("%12s  %10s %10s  %10s %10s\n", "", "hit", "byte-hit", "hit",
              "byte-hit");
  for (const std::uint64_t megabytes : {1ull, 10ull, 0ull}) {
    cache::SimulationConfig config;
    config.proxy.capacity_bytes = megabytes << 20;
    config.proxy.ttl_seconds = 3600;
    config.min_url_accesses = 10;
    const auto aware = cache::SimulateProxyCaching(log, clustering, config);
    const auto naive = cache::SimulateProxyCaching(log, simple, config);
    char label[32];
    if (megabytes == 0) {
      std::snprintf(label, sizeof label, "infinite");
    } else {
      std::snprintf(label, sizeof label, "%lluMB",
                    static_cast<unsigned long long>(megabytes));
    }
    std::printf("%12s  %9.1f%% %9.1f%%  %9.1f%% %9.1f%%\n", label,
                100.0 * aware.ServerHitRatio(),
                100.0 * aware.ServerByteHitRatio(),
                100.0 * naive.ServerHitRatio(),
                100.0 * naive.ServerByteHitRatio());
  }

  std::printf("\nreading: every request absorbed by a proxy is latency the "
              "clients never see and load the origin never carries;\n"
              "the /24 approximation fragments sharing communities and "
              "under-estimates both.\n");
  return 0;
}
