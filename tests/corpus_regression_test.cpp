// Replays every checked-in fuzz corpus file (tests/corpus/) through every
// fuzz harness entry point. The harnesses abort on any violated decode or
// round-trip property, so this test keeps the whole bug crop fixed in the
// default ctest run even on toolchains without libFuzzer.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/harness.h"

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(
           fs::path(NETCLUST_CORPUS_DIR))) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

using Harness = void (*)(const std::uint8_t*, std::size_t);

// Every file goes through every harness: the harnesses must be robust to
// foreign-format bytes (an MRT stream fed to the CLF parser is just a
// malformed log), and cross-replay has caught real over-strict asserts.
void ReplayAll(Harness harness) {
  const std::vector<fs::path> files = CorpusFiles();
  ASSERT_GT(files.size(), 10u) << "corpus missing; regenerate with make_corpus";
  for (const auto& file : files) {
    SCOPED_TRACE(file.string());
    const std::vector<std::uint8_t> bytes = ReadAll(file);
    harness(bytes.data(), bytes.size());
  }
}

TEST(CorpusRegressionTest, Mrt) { ReplayAll(netclust::fuzz::FuzzMrt); }

TEST(CorpusRegressionTest, TextParser) {
  ReplayAll(netclust::fuzz::FuzzTextParser);
}

TEST(CorpusRegressionTest, Clf) { ReplayAll(netclust::fuzz::FuzzClf); }

TEST(CorpusRegressionTest, Roundtrip) {
  ReplayAll(netclust::fuzz::FuzzRoundtrip);
}

TEST(CorpusRegressionTest, Proto) { ReplayAll(netclust::fuzz::FuzzProto); }

}  // namespace
