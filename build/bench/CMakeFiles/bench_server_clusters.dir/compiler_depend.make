# Empty compiler generated dependencies file for bench_server_clusters.
# This may be replaced when dependencies are built.
