#include "synth/workload.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/metrics.h"

namespace netclust::synth {
namespace {

const Internet& TestInternet() {
  static const Internet internet = [] {
    InternetConfig config;
    config.seed = 21;
    config.allocation_count = 3000;
    return GenerateInternet(config);
  }();
  return internet;
}

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.seed = 5;
  config.log_name = "small";
  config.target_clients = 3000;
  config.target_requests = 60000;
  config.url_count = 2000;
  config.duration_seconds = 86400;
  return config;
}

TEST(Workload, HitsTargetsApproximately) {
  const GeneratedLog generated = GenerateLog(TestInternet(), SmallConfig());
  const auto& log = generated.log;
  EXPECT_NEAR(static_cast<double>(log.unique_clients()), 3000.0, 450.0);
  EXPECT_NEAR(static_cast<double>(log.request_count()), 60000.0, 9000.0);
  EXPECT_GT(log.unique_urls(), 500u);
  EXPECT_LE(log.unique_urls(), 2000u);
  EXPECT_EQ(log.name(), "small");
}

TEST(Workload, IsDeterministic) {
  const GeneratedLog a = GenerateLog(TestInternet(), SmallConfig());
  const GeneratedLog b = GenerateLog(TestInternet(), SmallConfig());
  ASSERT_EQ(a.log.request_count(), b.log.request_count());
  EXPECT_EQ(a.log.requests()[0].client, b.log.requests()[0].client);
  EXPECT_EQ(a.log.requests()[100].timestamp, b.log.requests()[100].timestamp);
}

TEST(Workload, RequestsAreTimeSortedWithinDuration) {
  const WorkloadConfig config = SmallConfig();
  const GeneratedLog generated = GenerateLog(TestInternet(), config);
  std::int64_t previous = 0;
  for (const auto& request : generated.log.requests()) {
    EXPECT_GE(request.timestamp, previous);
    previous = request.timestamp;
    EXPECT_GE(request.timestamp, config.start_time);
    EXPECT_LT(request.timestamp, config.start_time + config.duration_seconds);
  }
}

TEST(Workload, EveryClientBelongsToItsTrueAllocation) {
  const GeneratedLog generated = GenerateLog(TestInternet(), SmallConfig());
  std::size_t checked = 0;
  for (const auto& [address, allocation_index] :
       generated.truth.client_allocation) {
    const Allocation* located = TestInternet().Locate(address);
    ASSERT_NE(located, nullptr) << address.ToString();
    EXPECT_EQ(located->index, allocation_index) << address.ToString();
    ++checked;
  }
  EXPECT_EQ(checked, generated.log.unique_clients());
}

TEST(Workload, ArrivalsAreDiurnal) {
  const GeneratedLog generated = GenerateLog(TestInternet(), SmallConfig());
  const auto histogram =
      core::RequestHistogram(generated.log, 3600, nullptr);
  std::uint64_t peak = 0;
  std::uint64_t trough = UINT64_MAX;
  for (const std::uint64_t count : histogram) {
    peak = std::max(peak, count);
    trough = std::min(trough, count);
  }
  // diurnal_amplitude 0.65 -> peak/trough well above 2x.
  EXPECT_GT(peak, 2 * std::max<std::uint64_t>(trough, 1));
}

TEST(Workload, SpiderSweepsUrlsInABurst) {
  WorkloadConfig config = SmallConfig();
  config.spider_count = 1;
  config.spider_request_fraction = 0.1;
  config.spider_url_fraction = 0.5;
  const GeneratedLog generated = GenerateLog(TestInternet(), config);

  ASSERT_EQ(generated.truth.spiders.size(), 1u);
  const net::IpAddress spider = *generated.truth.spiders.begin();

  std::uint64_t spider_requests = 0;
  std::unordered_set<std::uint32_t> spider_urls;
  std::int64_t first = INT64_MAX;
  std::int64_t last = INT64_MIN;
  for (const auto& request : generated.log.requests()) {
    if (request.client != spider) continue;
    ++spider_requests;
    spider_urls.insert(request.url_id);
    first = std::min(first, request.timestamp);
    last = std::max(last, request.timestamp);
  }
  EXPECT_NEAR(static_cast<double>(spider_requests), 6000.0, 900.0);
  EXPECT_GT(spider_urls.size(), 800u);              // swept half of 2000
  EXPECT_LE(last - first, 6 * 3600);                // tight burst window
}

TEST(Workload, ProxyMimicsGlobalPattern) {
  WorkloadConfig config = SmallConfig();
  config.proxy_count = 1;
  config.proxy_request_fraction = 0.08;
  const GeneratedLog generated = GenerateLog(TestInternet(), config);

  ASSERT_EQ(generated.truth.proxies.size(), 1u);
  const net::IpAddress proxy = *generated.truth.proxies.begin();
  const std::unordered_set<net::IpAddress> just_proxy = {proxy};

  const auto log_histogram =
      core::RequestHistogram(generated.log, 3600, nullptr);
  const auto proxy_histogram =
      core::RequestHistogram(generated.log, 3600, &just_proxy);
  EXPECT_GT(core::HistogramCorrelation(log_histogram, proxy_histogram), 0.6);

  // Many distinct User-Agents — §4.1.2's proxy tell.
  std::unordered_set<std::uint8_t> agents;
  for (const auto& request : generated.log.requests()) {
    if (request.client == proxy) agents.insert(request.agent_id);
  }
  EXPECT_GE(agents.size(), 8u);
}

TEST(Workload, PresetsScaleLinearly) {
  const WorkloadConfig full = NaganoConfig(1.0);
  const WorkloadConfig tenth = NaganoConfig(0.1);
  EXPECT_EQ(full.target_requests, 11665713u);
  EXPECT_EQ(full.target_clients, 59582u);
  EXPECT_EQ(full.url_count, 33875u);
  EXPECT_NEAR(static_cast<double>(tenth.target_requests), 1166571.0, 1.0);
  EXPECT_EQ(full.spider_count, 0);  // no spiders in the Nagano log
  EXPECT_EQ(SunConfig(1.0).spider_count, 1);
  EXPECT_GT(ApacheConfig(1.0).duration_seconds, full.duration_seconds);
}

TEST(Workload, ScaleFromEnvParsesAndClamps) {
  ::unsetenv("NETCLUST_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.1);
  ::setenv("NETCLUST_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.5);
  ::setenv("NETCLUST_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  ::setenv("NETCLUST_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.01);
  ::unsetenv("NETCLUST_SCALE");
}

TEST(Workload, ClusterSizesAreHeavyTailed) {
  const GeneratedLog generated = GenerateLog(TestInternet(), SmallConfig());
  std::unordered_map<std::uint32_t, std::size_t> sizes;
  for (const auto& [address, allocation] :
       generated.truth.client_allocation) {
    ++sizes[allocation];
  }
  std::size_t biggest = 0;
  for (const auto& [allocation, size] : sizes) {
    biggest = std::max(biggest, size);
  }
  const double mean = static_cast<double>(
                          generated.truth.client_allocation.size()) /
                      static_cast<double>(sizes.size());
  EXPECT_GT(static_cast<double>(biggest), 8.0 * mean);
}

}  // namespace
}  // namespace netclust::synth
