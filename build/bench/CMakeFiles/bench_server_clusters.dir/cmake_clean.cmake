file(REMOVE_RECURSE
  "CMakeFiles/bench_server_clusters.dir/bench_server_clusters.cc.o"
  "CMakeFiles/bench_server_clusters.dir/bench_server_clusters.cc.o.d"
  "bench_server_clusters"
  "bench_server_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
