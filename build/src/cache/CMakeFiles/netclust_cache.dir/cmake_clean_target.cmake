file(REMOVE_RECURSE
  "libnetclust_cache.a"
)
