#include "bgp/table_stats.h"

#include <cstdio>
#include <unordered_set>

#include "bgp/aggregate.h"

namespace netclust::bgp {

TableStats ComputeTableStats(const Snapshot& snapshot) {
  TableStats stats;
  stats.entries = snapshot.entries.size();

  std::unordered_set<net::Prefix> unique;
  std::unordered_set<AsNumber> origins;
  bool first = true;
  for (const RouteEntry& entry : snapshot.entries) {
    if (!unique.insert(entry.prefix).second) continue;
    const int length = entry.prefix.length();
    ++stats.length_histogram[static_cast<std::size_t>(length)];
    if (first) {
      stats.min_length = stats.max_length = length;
      first = false;
    } else {
      stats.min_length = std::min(stats.min_length, length);
      stats.max_length = std::max(stats.max_length, length);
    }
    if (!entry.as_path.empty()) origins.insert(entry.as_path.back());
  }
  stats.unique_prefixes = unique.size();
  stats.origin_as_count = origins.size();
  if (stats.unique_prefixes > 0) {
    stats.slash24_share =
        static_cast<double>(stats.length_histogram[24]) /
        static_cast<double>(stats.unique_prefixes);
  }

  // Coverage and aggregability via the minimal disjoint cover.
  const std::vector<net::Prefix> aggregated =
      AggregatePrefixes({unique.begin(), unique.end()});
  for (const net::Prefix& prefix : aggregated) {
    stats.covered_addresses += prefix.size();
  }
  if (stats.unique_prefixes > 0) {
    stats.aggregability = static_cast<double>(aggregated.size()) /
                          static_cast<double>(stats.unique_prefixes);
  }
  return stats;
}

std::string FormatTableStats(const TableStats& stats) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "entries: %zu (%zu unique prefixes, lengths %d-%d)\n",
                stats.entries, stats.unique_prefixes, stats.min_length,
                stats.max_length);
  out += line;
  std::snprintf(line, sizeof line,
                "/24 share: %.1f%%   origin ASes: %zu   covered: %.2fM "
                "addresses\n",
                100.0 * stats.slash24_share, stats.origin_as_count,
                static_cast<double>(stats.covered_addresses) / 1e6);
  out += line;
  std::snprintf(line, sizeof line,
                "aggregability: %.2f (minimal cover / table size)\n",
                stats.aggregability);
  out += line;
  out += "length histogram:\n";
  for (int l = 0; l <= 32; ++l) {
    const std::size_t count =
        stats.length_histogram[static_cast<std::size_t>(l)];
    if (count == 0) continue;
    std::snprintf(line, sizeof line, "  /%-3d %8zu\n", l, count);
    out += line;
  }
  return out;
}

}  // namespace netclust::bgp
