#include "cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "cluster/partitioner.h"
#include "engine/metrics.h"

namespace netclust::cluster {

namespace {

/// Quantile bound over a merged wire-format histogram — same contract as
/// server::HistogramQuantileNs, but on the bucket array a rollup sums.
std::uint64_t MergedQuantileNs(
    const std::array<std::uint64_t, server::kStatsLatencyBuckets>& buckets,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5);
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  constexpr std::size_t finite = server::kStatsLatencyBuckets - 1;
  for (std::size_t i = 0; i < finite; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return engine::LatencyHistogram::BucketBound(i);
    }
  }
  return engine::LatencyHistogram::BucketBound(finite - 1);
}

}  // namespace

Result<ClusterClient> ClusterClient::Create(server::Topology initial,
                                            ClusterClientConfig config) {
  // The creating thread is the owner until the instance is handed to its
  // driving thread (single-owner contract in the header).
  base::AssumeThreadRole owner(owner_role_);
  auto valid = server::ValidateTopology(initial);
  if (!valid.ok()) return Fail(valid.error());
  ClusterClient client;
  client.config_ = config;
  client.Adopt(std::move(initial));
  return client;
}

void ClusterClient::Adopt(server::Topology topo) {
  std::vector<server::Client> conns(topo.nodes.size());
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const int old_index = server::NodeIndexOf(topo_, topo.nodes[i].id);
    if (old_index >= 0) {
      conns[i] = std::move(conns_[static_cast<std::size_t>(old_index)]);
    }
  }
  // Departed nodes' connections die here; keep their retry accounting.
  for (server::Client& conn : conns_) {
    busy_absorbed_closed_ += conn.busy_absorbed();
  }
  conns_ = std::move(conns);
  owner_ = server::CompileOwners(topo);
  topo_ = std::move(topo);
}

Result<server::Client*> ClusterClient::Conn(std::size_t i) {
  if (!conns_[i].connected()) {
    // A dead connection is replaced wholesale; fold its absorbed-BUSY
    // count into the closed tally first so busy_absorbed() stays exact.
    busy_absorbed_closed_ += conns_[i].busy_absorbed();
    const server::NodeInfo& node = topo_.nodes[i];
    auto dialed = server::Client::Connect(node.host.ToString(), node.port,
                                          config_.timeout_ms);
    if (!dialed.ok()) return Fail(dialed.error());
    conns_[i] = std::move(dialed).value();
    conns_[i].set_retry_policy(config_.retry_policy);
  }
  return &conns_[i];
}

std::uint64_t ClusterClient::busy_absorbed() const {
  base::AssumeThreadRole owner(owner_role_);
  std::uint64_t total = busy_absorbed_closed_;
  for (const server::Client& conn : conns_) total += conn.busy_absorbed();
  return total;
}

Result<bool> ClusterClient::RefreshTopology() {
  base::AssumeThreadRole owner(owner_role_);
  std::string last_error = "fleet is empty";
  for (std::size_t k = 0; k < topo_.nodes.size(); ++k) {
    const std::size_t i = (refresh_cursor_ + k) % topo_.nodes.size();
    auto conn = Conn(i);
    if (!conn.ok()) {
      last_error = conn.error();
      continue;
    }
    auto fetched = conn.value()->FetchTopology();
    if (!fetched.ok()) {
      last_error = fetched.error();
      continue;
    }
    refresh_cursor_ = i + 1;
    if (fetched.value().epoch > topo_.epoch) {
      Adopt(std::move(fetched).value());
      return true;
    }
    return false;  // reachable, but nothing newer than what we hold
  }
  return Fail("no node answered a topology probe: " + last_error);
}

void ClusterClient::FollowRedirect(const server::RedirectReply& redirect,
                                   std::size_t from_idx) {
  ++redirects_followed_;
  if (redirect.epoch > topo_.epoch) {
    // The redirecting node is ahead: it has the topology we need.
    auto conn = Conn(from_idx);
    if (conn.ok()) {
      auto fetched = conn.value()->FetchTopology();
      if (fetched.ok() && fetched.value().epoch > topo_.epoch) {
        Adopt(std::move(fetched).value());
        return;
      }
    }
  }
  // The node is behind us (mid-push straggler) or the fetch raced a
  // close: poll the rest of the fleet after a short pause.
  BackoffAndRefresh();
}

void ClusterClient::BackoffAndRefresh() {
  if (config_.retry_backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.retry_backoff_ms));
  }
  (void)RefreshTopology();  // best effort; the caller's loop re-routes
}

Result<server::LookupRecord> ClusterClient::Lookup(net::IpAddress address) {
  base::AssumeThreadRole owner(owner_role_);
  std::string last_error;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const std::uint16_t shard = OwnerOf(address);
    auto conn = Conn(shard);
    if (!conn.ok()) {
      last_error = conn.error();
      BackoffAndRefresh();
      continue;
    }
    auto reply = conn.value()->ClusterLookup(topo_.epoch, {address});
    if (!reply.ok()) {
      last_error = reply.error();
      BackoffAndRefresh();
      continue;
    }
    if (reply.value().redirect.has_value()) {
      last_error = "redirected";
      FollowRedirect(*reply.value().redirect, shard);
      continue;
    }
    return reply.value().result.records.at(0);
  }
  return Fail("cluster lookup failed after " +
              std::to_string(config_.max_attempts) +
              " attempts: " + last_error);
}

Result<std::vector<server::LookupRecord>> ClusterClient::BatchLookup(
    const std::vector<net::IpAddress>& addresses) {
  base::AssumeThreadRole owner(owner_role_);
  std::vector<server::LookupRecord> records(addresses.size());
  if (addresses.empty()) return records;
  std::string last_error;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    // Scatter: group request indices by owning shard under the current
    // topology. Regrouped from scratch every attempt — the topology may
    // have changed under us.
    std::vector<std::vector<std::size_t>> groups(topo_.nodes.size());
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      groups[OwnerOf(addresses[i])].push_back(i);
    }
    bool retry = false;
    for (std::size_t shard = 0; shard < groups.size() && !retry; ++shard) {
      const std::vector<std::size_t>& group = groups[shard];
      for (std::size_t offset = 0; offset < group.size();) {
        const std::size_t chunk =
            std::min<std::size_t>(server::kMaxBatch, group.size() - offset);
        std::vector<net::IpAddress> slice;
        slice.reserve(chunk);
        for (std::size_t j = 0; j < chunk; ++j) {
          slice.push_back(addresses[group[offset + j]]);
        }
        auto conn = Conn(shard);
        if (!conn.ok()) {
          last_error = conn.error();
          BackoffAndRefresh();
          retry = true;
          break;
        }
        auto reply = conn.value()->ClusterLookup(topo_.epoch, slice);
        if (!reply.ok()) {
          last_error = reply.error();
          BackoffAndRefresh();
          retry = true;
          break;
        }
        if (reply.value().redirect.has_value()) {
          last_error = "redirected";
          FollowRedirect(*reply.value().redirect, shard);
          retry = true;
          break;
        }
        // Gather: chunk answers land at their original request indices,
        // so the assembled vector is in request order by construction.
        for (std::size_t j = 0; j < chunk; ++j) {
          records[group[offset + j]] = reply.value().result.records[j];
        }
        offset += chunk;
      }
    }
    if (!retry) return records;
  }
  return Fail("cluster batch lookup failed after " +
              std::to_string(config_.max_attempts) +
              " attempts: " + last_error);
}

Result<server::AssignReply> ClusterClient::Assign(net::IpAddress address) {
  base::AssumeThreadRole owner(owner_role_);
  std::string last_error;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const std::uint16_t shard = OwnerOf(address);
    auto conn = Conn(shard);
    if (!conn.ok()) {
      last_error = conn.error();
      BackoffAndRefresh();
      continue;
    }
    auto reply = conn.value()->Assign(topo_.epoch, address);
    if (!reply.ok()) {
      last_error = reply.error();
      BackoffAndRefresh();
      continue;
    }
    if (reply.value().redirect.has_value()) {
      last_error = "redirected";
      FollowRedirect(*reply.value().redirect, shard);
      continue;
    }
    return reply.value().reply;
  }
  return Fail("cluster assign failed after " +
              std::to_string(config_.max_attempts) +
              " attempts: " + last_error);
}

Result<std::uint64_t> ClusterClient::IngestUpdate(
    std::uint32_t source_id, const bgp::UpdateMessage& update) {
  base::AssumeThreadRole owner(owner_role_);
  // Replication, not routing: every node applies every update so any node
  // can answer for any range the moment ownership flips to it.
  std::uint64_t min_version = 0;
  bool first = true;
  for (std::size_t i = 0; i < topo_.nodes.size(); ++i) {
    auto conn = Conn(i);
    if (!conn.ok()) {
      return Fail("replicating to node " + std::to_string(topo_.nodes[i].id) +
                  " failed: " + conn.error());
    }
    auto ack = conn.value()->IngestUpdate(source_id, update);
    if (!ack.ok()) {
      return Fail("replicating to node " + std::to_string(topo_.nodes[i].id) +
                  " failed: " + ack.error());
    }
    if (first || ack.value().table_version < min_version) {
      min_version = ack.value().table_version;
      first = false;
    }
  }
  return min_version;
}

Result<StatsRollup> ClusterClient::Stats() {
  base::AssumeThreadRole owner(owner_role_);
  StatsRollup rollup;
  rollup.epoch = topo_.epoch;
  std::string last_error = "fleet is empty";
  for (std::size_t i = 0; i < topo_.nodes.size(); ++i) {
    auto conn = Conn(i);
    if (!conn.ok()) {
      last_error = conn.error();
      continue;
    }
    auto record = conn.value()->ClusterStats();
    if (!record.ok()) {
      last_error = record.error();
      continue;
    }
    const server::ClusterStatsRecord& r = record.value();
    ++rollup.nodes_reporting;
    rollup.frames_decoded += r.frames_decoded;
    rollup.lookups_served += r.lookups_served;
    rollup.cluster_lookups_served += r.cluster_lookups_served;
    rollup.ingests_applied += r.ingests_applied;
    rollup.busy_replies += r.busy_replies;
    rollup.errors_sent += r.errors_sent;
    rollup.redirects_sent += r.redirects_sent;
    rollup.connections_active += r.connections_active;
    rollup.latency_sum_ns += r.latency_sum_ns;
    for (std::size_t b = 0; b < server::kStatsLatencyBuckets; ++b) {
      rollup.latency_buckets[b] += r.latency_buckets[b];
      rollup.latency_count += r.latency_buckets[b];
    }
    rollup.per_node.push_back(r);
  }
  if (rollup.nodes_reporting == 0) {
    return Fail("no node answered a stats probe: " + last_error);
  }
  rollup.latency_p50_ns =
      MergedQuantileNs(rollup.latency_buckets, rollup.latency_count, 0.50);
  rollup.latency_p99_ns =
      MergedQuantileNs(rollup.latency_buckets, rollup.latency_count, 0.99);
  return rollup;
}

Result<bool> ClusterClient::PushTopology(const server::Topology& topo) {
  base::AssumeThreadRole owner(owner_role_);
  auto valid = server::ValidateTopology(topo);
  if (!valid.ok()) return Fail(valid.error());
  if (topo.epoch <= topo_.epoch) {
    return Fail("pushed topology must advance the epoch");
  }
  const server::Topology departing = topo_;
  // Adopt first so conns_ has a slot (and an address) for every NEW
  // member; the push below goes through those connections.
  Adopt(topo);
  for (std::size_t i = 0; i < topo_.nodes.size(); ++i) {
    auto conn = Conn(i);
    if (!conn.ok()) {
      return Fail("pushing topology to node " +
                  std::to_string(topo_.nodes[i].id) +
                  " failed: " + conn.error());
    }
    auto acked = conn.value()->PushTopology(topo_);
    if (!acked.ok()) {
      return Fail("pushing topology to node " +
                  std::to_string(topo_.nodes[i].id) +
                  " failed: " + acked.error());
    }
  }
  // Best-effort push to departing members so a still-alive drained node
  // learns the new epoch and redirects stragglers instead of answering.
  for (const server::NodeInfo& node : departing.nodes) {
    if (server::NodeIndexOf(topo_, node.id) >= 0) continue;
    auto dialed = server::Client::Connect(node.host.ToString(), node.port,
                                          config_.timeout_ms);
    if (!dialed.ok()) continue;  // likely dead — that is why it departed
    server::Client client = std::move(dialed).value();
    client.set_retry_policy(config_.retry_policy);
    (void)client.PushTopology(topo_);
  }
  return true;
}

Result<bool> ClusterClient::RemoveNode(std::uint32_t node_id) {
  base::AssumeThreadRole owner(owner_role_);
  auto rebalanced = RebalanceAfterLeave(topo_, node_id);
  if (!rebalanced.ok()) return Fail(rebalanced.error());
  return PushTopology(rebalanced.value());
}

Result<bool> ClusterClient::AddNode(const server::NodeInfo& node) {
  base::AssumeThreadRole owner(owner_role_);
  auto rebalanced = RebalanceAfterJoin(topo_, node);
  if (!rebalanced.ok()) return Fail(rebalanced.error());
  return PushTopology(rebalanced.value());
}

}  // namespace netclust::cluster
