file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vantages.dir/bench_ablation_vantages.cc.o"
  "CMakeFiles/bench_ablation_vantages.dir/bench_ablation_vantages.cc.o.d"
  "bench_ablation_vantages"
  "bench_ablation_vantages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vantages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
