// Ablation: TTL and piggyback validation in the cache simulation.
//
// §4.1.5: "we set ttl to be 1 hour ... Varying ttl to 5, 10, and 15
// minutes yields similar results." This bench verifies that claim and
// isolates what PCV contributes at each TTL.
#include <cstdio>

#include "bench_common.h"
#include "cache/simulation.h"
#include "core/cluster.h"
#include "core/detect.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "Ablation — cache TTL and piggyback validation (Nagano)",
      "ttl of 5/10/15/60 minutes yields similar results; PCV renews stale "
      "entries for free on server contacts");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const core::Clustering raw =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const auto detection = core::DetectSpidersAndProxies(generated.log, raw);
  const weblog::ServerLog log =
      core::RemoveClients(generated.log, detection.AllAddresses());
  const core::Clustering clustering =
      core::ClusterNetworkAware(log, scenario.table);

  std::printf("\n%8s  %6s  %10s  %10s  %14s  %14s\n", "ttl", "pcv",
              "hit", "byte-hit", "pcv-checks", "pcv-renewals");
  for (const int minutes : {5, 10, 15, 60}) {
    for (const bool pcv : {true, false}) {
      cache::SimulationConfig config;
      config.proxy.ttl_seconds = minutes * 60;
      config.proxy.capacity_bytes = 8 << 20;
      config.proxy.piggyback_validation = pcv;
      config.min_url_accesses = 10;
      const auto result =
          cache::SimulateProxyCaching(log, clustering, config);
      std::uint64_t checks = 0;
      std::uint64_t renewals = 0;
      for (const auto& proxy : result.proxies) {
        checks += proxy.piggyback_checks;
        renewals += proxy.piggyback_renewals;
      }
      std::printf("%6dmin  %6s  %9.1f%%  %9.1f%%  %14llu  %14llu\n",
                  minutes, pcv ? "on" : "off",
                  100.0 * result.ServerHitRatio(),
                  100.0 * result.ServerByteHitRatio(),
                  static_cast<unsigned long long>(checks),
                  static_cast<unsigned long long>(renewals));
    }
  }
  std::printf("\nexpected shape: hit ratios vary only mildly across TTLs "
              "(the paper's observation); PCV keeps hit ratios near the "
              "longer-TTL level by renewing entries opportunistically.\n");
  return 0;
}
