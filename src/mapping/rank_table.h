// Per-cluster CDN server rankings.
//
// The paper's headline application: server selection should key on the
// client's network-aware CLUSTER (the origin AS of its longest routing
// match), not on its /24. A RankTable holds, per cluster, the
// preference-ordered list of content-server ids — the output of Gürsun's
// routing-aware server-ranking pipeline — plus one table-wide default
// ranking for clients whose cluster has no measurement yet.
//
// The table is built once (by the operator / the synth CDN scenario) and
// installed on the server as a shared_ptr<const RankTable> before
// Serve(); reactors only ever read it, so there is nothing to lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/prefix_table.h"

namespace netclust::mapping {

class RankTable {
 public:
  /// Ranking length bound; mirrors server::kMaxRankServers (static_assert
  /// in server.cc) so every installed ranking fits a RANK_REPLY.
  static constexpr std::size_t kMaxServers = 256;

  /// Installs the fallback ranking used when a cluster has no entry.
  /// Rankings longer than kMaxServers are truncated to the bound.
  void SetDefault(std::vector<std::uint16_t> servers) {
    Clamp(&servers);
    default_ = std::move(servers);
  }

  /// Installs (or, with an empty list, removes) the ranking for one
  /// cluster. Rankings longer than kMaxServers are truncated.
  void SetRanking(bgp::AsNumber cluster_as,
                  std::vector<std::uint16_t> servers) {
    if (servers.empty()) {
      per_cluster_.erase(cluster_as);
      return;
    }
    Clamp(&servers);
    per_cluster_[cluster_as] = std::move(servers);
  }

  /// The ranking for `cluster_as`, or nullptr when the cluster has none
  /// (the caller falls back to default_ranking()).
  [[nodiscard]] const std::vector<std::uint16_t>* Ranking(
      bgp::AsNumber cluster_as) const {
    const auto it = per_cluster_.find(cluster_as);
    return it == per_cluster_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::vector<std::uint16_t>& default_ranking() const {
    return default_;
  }
  [[nodiscard]] std::size_t cluster_count() const {
    return per_cluster_.size();
  }

 private:
  static void Clamp(std::vector<std::uint16_t>* servers) {
    if (servers->size() > kMaxServers) servers->resize(kMaxServers);
  }

  std::vector<std::uint16_t> default_;
  std::unordered_map<bgp::AsNumber, std::vector<std::uint16_t>> per_cluster_;
};

}  // namespace netclust::mapping
