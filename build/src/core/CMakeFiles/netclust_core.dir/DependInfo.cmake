
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/netclust_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/compare.cc" "src/core/CMakeFiles/netclust_core.dir/compare.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/compare.cc.o.d"
  "/root/repo/src/core/detect.cc" "src/core/CMakeFiles/netclust_core.dir/detect.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/detect.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/netclust_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/network_cluster.cc" "src/core/CMakeFiles/netclust_core.dir/network_cluster.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/network_cluster.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/netclust_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/proxy_placement.cc" "src/core/CMakeFiles/netclust_core.dir/proxy_placement.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/proxy_placement.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/netclust_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/report.cc.o.d"
  "/root/repo/src/core/self_correct.cc" "src/core/CMakeFiles/netclust_core.dir/self_correct.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/self_correct.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/netclust_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/session.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/netclust_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/streaming.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/core/CMakeFiles/netclust_core.dir/threshold.cc.o" "gcc" "src/core/CMakeFiles/netclust_core.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netclust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/netclust_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/weblog/CMakeFiles/netclust_weblog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
