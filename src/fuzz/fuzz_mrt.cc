// libFuzzer target: bgp::ReadMrt over arbitrary bytes, plus the
// re-encode/re-decode property (see harness.h). Built by NETCLUST_FUZZERS=ON;
// links libFuzzer under Clang and standalone_main.cc elsewhere.
#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  netclust::fuzz::FuzzMrt(data, size);
  return 0;
}
