#include "core/session.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "test_fixtures.h"

namespace netclust::core {
namespace {

TEST(Sessions, PartitionPreservesEveryRequest) {
  const auto& world = netclust::testing::GetSmallWorld();
  const auto slices = PartitionIntoSessions(world.generated.log, 4);
  ASSERT_EQ(slices.size(), 4u);

  std::size_t total = 0;
  for (const auto& slice : slices) total += slice.request_count();
  EXPECT_EQ(total, world.generated.log.request_count());
  EXPECT_EQ(slices[0].name(), "smallworld.session0");
}

TEST(Sessions, SlicesAreTimeDisjointAndOrdered) {
  const auto& world = netclust::testing::GetSmallWorld();
  const auto slices = PartitionIntoSessions(world.generated.log, 4);
  for (std::size_t s = 1; s < slices.size(); ++s) {
    if (slices[s - 1].request_count() == 0 ||
        slices[s].request_count() == 0) {
      continue;
    }
    EXPECT_LE(slices[s - 1].end_time(), slices[s].start_time());
  }
}

TEST(Sessions, EachSessionShowsTheSameClusteringShape) {
  // §3.6: "observations on client cluster distributions obtained from the
  // entire server log still hold for each session".
  const auto& world = netclust::testing::GetSmallWorld();
  const auto slices = PartitionIntoSessions(world.generated.log, 4);
  for (const auto& slice : slices) {
    if (slice.request_count() < 1000) continue;
    const Clustering clustering = ClusterNetworkAware(slice, world.table);
    EXPECT_GT(clustering.coverage(), 0.99);
    std::vector<double> sizes;
    for (const Cluster& cluster : clustering.clusters) {
      sizes.push_back(static_cast<double>(cluster.members.size()));
    }
    const auto cdf = CumulativeDistribution(std::move(sizes));
    EXPECT_GT(FractionAtMost(cdf, 100.0), 0.9);
  }
}

TEST(Sessions, ParallelPartitioningIsDeterministic) {
  // The slice-build fan-out must be invisible: any thread count yields the
  // same sessions, request for request, as the single-threaded walk.
  const auto& world = netclust::testing::GetSmallWorld();
  const auto sequential = PartitionIntoSessions(world.generated.log, 5, 1);
  const auto parallel = PartitionIntoSessions(world.generated.log, 5, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t s = 0; s < sequential.size(); ++s) {
    EXPECT_EQ(sequential[s].name(), parallel[s].name());
    const auto& a = sequential[s].requests();
    const auto& b = parallel[s].requests();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].client, b[i].client);
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      EXPECT_EQ(a[i].url_id, b[i].url_id);
    }
  }
}

TEST(Sessions, DegenerateCounts) {
  const auto& world = netclust::testing::GetSmallWorld();
  EXPECT_TRUE(PartitionIntoSessions(world.generated.log, 0).empty());
  const auto one = PartitionIntoSessions(world.generated.log, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].request_count(), world.generated.log.request_count());
}

TEST(ServerClustering, ProxyTraceServersCluster) {
  // §3.6: server clustering of a proxy log; most servers clusterable and
  // a few busy server clusters dominate the requests.
  const auto& world = netclust::testing::GetSmallWorld();
  std::vector<AddressLoad> servers;
  const auto& allocations = world.internet.allocations();
  for (std::size_t i = 0; i < allocations.size(); i += 3) {
    // Heavy-tailed request counts across server addresses.
    const std::uint64_t requests = 1 + (i % 7 == 0 ? i * 11 : i % 5);
    servers.push_back(AddressLoad{
        world.internet.HostAddress(allocations[i], 9), requests, 0});
  }
  const Clustering clustering = ClusterServers(servers, world.table);
  EXPECT_EQ(clustering.approach, "server-clustering");
  EXPECT_GT(clustering.coverage(), 0.99);
  EXPECT_LE(clustering.cluster_count(), servers.size());
}

}  // namespace
}  // namespace netclust::core
