# Empty dependencies file for network_cluster_test.
# This may be replaced when dependencies are built.
