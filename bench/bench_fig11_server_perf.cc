// Figure 11: web-server performance vs proxy cache size on the Nagano
// log — total hit ratio (a) and byte hit ratio (b) observed at the
// server, for clusters identified by the network-aware and the simple
// approach.
//
// Paper: both ratios rise with cache size; the simple approach
// under-estimates both by ~10% once caches exceed ~700KB; network-aware
// hit ratios reach 60-75% (proxies are dedicated to one server).
#include <cstdio>

#include "bench_common.h"
#include "cache/simulation.h"
#include "core/cluster.h"
#include "core/detect.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "Figure 11 — server hit/byte-hit ratio vs proxy cache size (Nagano)",
      "ratios grow with cache size; simple approach under-estimates by "
      "~10% beyond ~700KB; network-aware reaches 60-75% hit ratio");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);

  // §4.1: spiders/proxies eliminated, cold resources filtered (footnote 9).
  const core::Clustering raw =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const auto detection = core::DetectSpidersAndProxies(generated.log, raw);
  const weblog::ServerLog log =
      core::RemoveClients(generated.log, detection.AllAddresses());

  const core::Clustering aware =
      core::ClusterNetworkAware(log, scenario.table);
  const core::Clustering simple = core::ClusterSimple(log);

  std::printf("\n%12s  %12s %12s  %12s %12s\n", "cache size", "aware-hit",
              "aware-bhit", "simple-hit", "simple-bhit");
  for (const std::uint64_t kilobytes :
       {100ull, 300ull, 700ull, 1000ull, 3000ull, 10000ull, 30000ull,
        100000ull}) {
    cache::SimulationConfig config;
    config.proxy.ttl_seconds = 3600;
    config.proxy.capacity_bytes = kilobytes << 10;
    config.min_url_accesses = 10;

    const auto aware_result =
        cache::SimulateProxyCaching(log, aware, config);
    const auto simple_result =
        cache::SimulateProxyCaching(log, simple, config);
    std::printf("%9lluKB  %11.1f%% %11.1f%%  %11.1f%% %11.1f%%\n",
                static_cast<unsigned long long>(kilobytes),
                100.0 * aware_result.ServerHitRatio(),
                100.0 * aware_result.ServerByteHitRatio(),
                100.0 * simple_result.ServerHitRatio(),
                100.0 * simple_result.ServerByteHitRatio());
  }

  std::printf("\nexpected shape: aware >= simple at every size, with the "
              "gap widening at large caches (paper: ~10%%).\n");
  return 0;
}
