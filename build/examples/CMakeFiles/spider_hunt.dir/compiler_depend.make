# Empty compiler generated dependencies file for spider_hunt.
# This may be replaced when dependencies are built.
