file(REMOVE_RECURSE
  "CMakeFiles/bench_traceroute_cost.dir/bench_traceroute_cost.cc.o"
  "CMakeFiles/bench_traceroute_cost.dir/bench_traceroute_cost.cc.o.d"
  "bench_traceroute_cost"
  "bench_traceroute_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traceroute_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
