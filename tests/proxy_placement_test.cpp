#include "core/proxy_placement.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_fixtures.h"
#include "validate/oracles.h"

namespace netclust::core {
namespace {

class PlacementOnSmallWorld : public ::testing::Test {
 protected:
  PlacementOnSmallWorld()
      : world_(netclust::testing::GetSmallWorld()),
        clustering_(ClusterNetworkAware(world_.generated.log, world_.table)),
        busy_(ThresholdBusyClusters(clustering_, 0.7)) {}

  const netclust::testing::SmallWorld& world_;
  Clustering clustering_;
  ThresholdReport busy_;
};

TEST_F(PlacementOnSmallWorld, EveryBusyClusterGetsAtLeastOneProxy) {
  const auto assignments = AssignProxies(clustering_, busy_);
  ASSERT_EQ(assignments.size(), busy_.busy.size());
  std::unordered_set<std::size_t> assigned;
  for (const ProxyAssignment& assignment : assignments) {
    EXPECT_GE(assignment.proxies, 1);
    EXPECT_LE(assignment.proxies, 8);
    assigned.insert(assignment.cluster);
  }
  for (const std::size_t index : busy_.busy) {
    EXPECT_TRUE(assigned.contains(index));
  }
}

TEST_F(PlacementOnSmallWorld, ProxyCountScalesWithLoad) {
  PlacementConfig config;
  config.load_per_proxy = 1000;  // low bar: busy clusters need several
  const auto assignments = AssignProxies(clustering_, busy_, config);
  int max_proxies = 0;
  for (const ProxyAssignment& assignment : assignments) {
    max_proxies = std::max(max_proxies, assignment.proxies);
    EXPECT_EQ(assignment.proxies,
              std::min<int>(8, static_cast<int>(
                                   1 + assignment.load /
                                           config.load_per_proxy)));
  }
  EXPECT_GT(max_proxies, 1);
}

TEST_F(PlacementOnSmallWorld, MetricSelectsLoadDefinition) {
  PlacementConfig by_clients;
  by_clients.metric = PlacementMetric::kClients;
  const auto assignments = AssignProxies(clustering_, busy_, by_clients);
  for (const ProxyAssignment& assignment : assignments) {
    EXPECT_EQ(assignment.load,
              clustering_.clusters[assignment.cluster].members.size());
  }
}

TEST_F(PlacementOnSmallWorld, AsGroupsPartitionTheAssignments) {
  const auto assignments = AssignProxies(clustering_, busy_);
  const auto groups =
      GroupProxiesByAs(clustering_, assignments, world_.table);
  ASSERT_FALSE(groups.empty());

  std::size_t grouped_clusters = 0;
  int grouped_proxies = 0;
  int assigned_proxies = 0;
  for (const ProxyAssignment& assignment : assignments) {
    assigned_proxies += assignment.proxies;
  }
  std::unordered_set<bgp::AsNumber> seen_as;
  for (const ProxyGroup& group : groups) {
    EXPECT_TRUE(seen_as.insert(group.as_number).second);
    grouped_clusters += group.clusters.size();
    grouped_proxies += group.proxies;
    // Every member cluster's prefix really originates in this AS.
    for (const std::size_t c : group.clusters) {
      EXPECT_EQ(world_.table.OriginAs(clustering_.clusters[c].key),
                group.as_number);
    }
  }
  EXPECT_EQ(grouped_clusters, assignments.size());
  EXPECT_EQ(grouped_proxies, assigned_proxies);
  // Grouping by AS is genuinely coarser than per-cluster placement.
  EXPECT_LT(groups.size(), assignments.size());
}

TEST_F(PlacementOnSmallWorld, GroupsSortedByRequests) {
  const auto groups = GroupProxiesByAs(
      clustering_, AssignProxies(clustering_, busy_), world_.table);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].requests, groups[i].requests);
  }
}

TEST_F(PlacementOnSmallWorld, RegionalizedGroupsAreFiner) {
  const auto assignments = AssignProxies(clustering_, busy_);
  const validate::SynthRegionOracle geo(world_.internet);
  const auto by_as =
      GroupProxiesByAs(clustering_, assignments, world_.table);
  const auto by_as_region =
      GroupProxiesByAs(clustering_, assignments, world_.table, &geo);

  // Splitting by geography can only refine the AS partition.
  EXPECT_GE(by_as_region.size(), by_as.size());
  std::size_t known_regions = 0;
  for (const ProxyGroup& group : by_as_region) {
    if (group.region >= 0) {
      ++known_regions;
      EXPECT_LT(group.region, synth::Internet::kRegionCount);
      // All clusters in the group really sit in that region.
      for (const std::size_t c : group.clusters) {
        EXPECT_EQ(geo.RegionOf(clustering_.clients[clustering_.clusters[c]
                                                       .members.front()]
                                   .address),
                  group.region);
      }
    }
  }
  EXPECT_GT(known_regions, 0u);
}

TEST(Placement, EmptyBusySetYieldsNothing) {
  Clustering clustering;
  ThresholdReport busy;
  EXPECT_TRUE(AssignProxies(clustering, busy).empty());
  bgp::PrefixTable table;
  EXPECT_TRUE(GroupProxiesByAs(clustering, {}, table).empty());
}

}  // namespace
}  // namespace netclust::core
