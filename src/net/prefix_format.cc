#include "net/prefix_format.h"

#include <bit>
#include <charconv>
#include <vector>

namespace netclust::net {
namespace {

// Parses a dotted sequence of 1..4 octets ("12.65.128"), padding dropped
// trailing octets with zero, as the routing-table dumps do. `octet_count`
// receives how many octets were explicitly present.
Result<IpAddress> ParseAbbreviatedQuad(std::string_view text,
                                       int* octet_count = nullptr) {
  std::uint32_t bits = 0;
  int count = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    const std::size_t len = pos - start;
    if (len == 0 || len > 3) {
      return Fail("bad octet in '" + std::string(text) + "'");
    }
    // Leading-zero forms ("012") are octal-spoof bait; IpAddress::Parse
    // rejects them, and both parsers must agree on the same dump token.
    if (len > 1 && text[start] == '0') {
      return Fail("leading zero octet in '" + std::string(text) + "'");
    }
    int value = 0;
    std::from_chars(text.data() + start, text.data() + pos, value);
    if (value > 255) return Fail("octet out of range in '" + std::string(text) + "'");
    bits = (bits << 8) | static_cast<std::uint32_t>(value);
    ++count;
    if (pos == text.size()) break;
    if (text[pos] != '.' || count == 4) {
      return Fail("malformed quad '" + std::string(text) + "'");
    }
    ++pos;
    if (pos == text.size()) {
      return Fail("trailing '.' in '" + std::string(text) + "'");
    }
  }
  bits <<= 8 * (4 - count);
  if (octet_count != nullptr) *octet_count = count;
  return IpAddress(bits);
}

}  // namespace

Result<int> NetmaskToLength(IpAddress mask) {
  // A valid netmask is a run of ones followed by zeros, so it must equal
  // the canonical mask for its own popcount.
  const std::uint32_t bits = mask.bits();
  const int ones = std::popcount(bits);
  if (bits != MaskForLength(ones)) {
    return Fail("non-contiguous netmask " + mask.ToString());
  }
  return ones;
}

Result<Prefix> ParsePrefixEntry(std::string_view text) {
  // Trim surrounding whitespace; dump lines are often space-padded.
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  if (text.empty()) return Fail("empty prefix entry");

  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    // Format (iii): bare classful network, possibly abbreviated.
    auto address = ParseAbbreviatedQuad(text);
    if (!address) return Fail(address.error());
    return ClassfulNetwork(address.value());
  }

  auto address = ParseAbbreviatedQuad(text.substr(0, slash));
  if (!address) return Fail(address.error());
  const std::string_view mask_text = text.substr(slash + 1);
  if (mask_text.empty()) {
    return Fail("empty mask in '" + std::string(text) + "'");
  }

  if (mask_text.find('.') != std::string_view::npos) {
    // Format (i): dotted netmask (itself possibly abbreviated).
    auto mask = ParseAbbreviatedQuad(mask_text);
    if (!mask) return Fail(mask.error());
    auto length = NetmaskToLength(mask.value());
    if (!length) return Fail(length.error());
    return Prefix(address.value(), length.value());
  }

  // Format (ii): CIDR length — but "x.y.z.w/255" style single-number masks
  // above 32 are dotted masks with all tail octets dropped ("/255" means
  // 255.0.0.0). Disambiguate by range, as real parsers do.
  int number = -1;
  const auto [ptr, ec] = std::from_chars(
      mask_text.data(), mask_text.data() + mask_text.size(), number);
  if (ec != std::errc{} || ptr != mask_text.data() + mask_text.size() ||
      number < 0 || number > 255) {
    return Fail("bad mask '" + std::string(text) + "'");
  }
  if (number <= 32) {
    return Prefix(address.value(), number);
  }
  auto length =
      NetmaskToLength(IpAddress(static_cast<std::uint32_t>(number) << 24));
  if (!length) return Fail(length.error());
  return Prefix(address.value(), length.value());
}

std::string FormatPrefixEntry(const Prefix& prefix, PrefixStyle style) {
  switch (style) {
    case PrefixStyle::kDottedMask: {
      // Drop trailing zero octets of both prefix and mask, per format (i).
      const auto drop_tail = [](IpAddress a) {
        std::string out;
        const auto o = a.octets();
        int keep = 4;
        while (keep > 1 && o[static_cast<std::size_t>(keep - 1)] == 0) --keep;
        for (int i = 0; i < keep; ++i) {
          if (i > 0) out.push_back('.');
          out.append(std::to_string(o[static_cast<std::size_t>(i)]));
        }
        return out;
      };
      return drop_tail(prefix.network()) + "/" +
             drop_tail(IpAddress(prefix.netmask()));
    }
    case PrefixStyle::kCidr:
      return prefix.ToString();
    case PrefixStyle::kClassful: {
      const int class_len = ClassfulPrefixLength(prefix.network());
      if (prefix.length() != class_len) {
        return prefix.ToString();  // Not expressible classfully.
      }
      const auto o = prefix.network().octets();
      std::string out;
      for (int i = 0; i < class_len / 8; ++i) {
        if (i > 0) out.push_back('.');
        out.append(std::to_string(o[static_cast<std::size_t>(i)]));
      }
      return out;
    }
  }
  return prefix.ToString();
}

}  // namespace netclust::net
