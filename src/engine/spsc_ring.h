// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The engine's ingest thread is the producer; one shard worker is the
// consumer. Each side owns one index and keeps a cached copy of the
// other's, so the steady-state push/pop touches no shared cache line at
// all; the atomics are only consulted when the cached view says
// full/empty. Capacity is rounded up to a power of two, with a floor of 2
// slots (a 0- or 1-slot ring would serialize producer and consumer).
//
// The single-producer/single-consumer contract is machine-checked on
// Clang builds: TryPush requires the producer ThreadRole, TryPop the
// consumer ThreadRole, and each side's index cache is ONLY_THREAD-guarded
// by its role. Callers assert the role once at their thread entry point
// (see base/sync.h and ShardWorker).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "base/sync.h"

namespace netclust::engine {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when the ring is full (the value is left
  /// intact so the caller may retry).
  bool TryPush(T&& value) REQUIRES(producer_role_) {
    // order: relaxed — head_ is producer-owned; only this thread writes it,
    // so its own last value needs no synchronization to re-read.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ > mask_) {
      // order: acquire — pairs with the consumer's release store of tail_;
      // makes the consumer's slot clear (payload release) visible before
      // we overwrite the slot it freed.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    // order: release — publishes the slot write above to the consumer's
    // acquire load of head_; the consumer must never read a half-written
    // slot.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T& out) REQUIRES(consumer_role_) {
    // order: relaxed — tail_ is consumer-owned; re-reading our own last
    // store needs no synchronization.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      // order: acquire — pairs with the producer's release store of head_;
      // makes the producer's slot write visible before we move from it.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    slots_[tail & mask_] = T{};  // drop payload refs (e.g. table handles) now
    // order: release — publishes the slot clear above to the producer's
    // acquire load of tail_, so the producer never overwrites a slot whose
    // payload is still being destroyed.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact when the other side is idle).
  [[nodiscard]] std::size_t size() const {
    // order: acquire ×2 — monotonic snapshot of both indices; acquire is
    // enough because the result is advisory (no payload is read from it).
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// The producer-side thread role: held by the one thread that pushes.
  [[nodiscard]] const base::ThreadRole& producer_role() const
      RETURN_CAPABILITY(producer_role_) {
    return producer_role_;
  }
  /// The consumer-side thread role: held by the one thread that pops.
  [[nodiscard]] const base::ThreadRole& consumer_role() const
      RETURN_CAPABILITY(consumer_role_) {
    return consumer_role_;
  }

 private:
  // slots_ is written by both sides, but never the same slot at the same
  // time: the head_/tail_ release/acquire protocol above hands each slot
  // back and forth. The analysis cannot express per-slot ownership, so
  // slots_ is deliberately unguarded.
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  base::ThreadRole producer_role_;  // the single ingest thread
  base::ThreadRole consumer_role_;  // the single worker thread
  alignas(64) std::atomic<std::size_t> head_{0};  // written by producer
  alignas(64) std::size_t tail_cache_
      ONLY_THREAD(producer_role_) = 0;  // producer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // written by consumer
  alignas(64) std::size_t head_cache_
      ONLY_THREAD(consumer_role_) = 0;  // consumer's view of head_
};

}  // namespace netclust::engine
