#include "weblog/clf.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace netclust::weblog {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Days from 1970-01-01 to civil date (Howard Hinnant's algorithm).
constexpr std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Civil date from days since 1970-01-01 (inverse of the above).
constexpr void CivilFromDays(std::int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

bool ParseInt(std::string_view text, int* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

// The dd/Mon/yyyy rendering holds years 1..9999 only; timestamps outside
// [01/Jan/0001:00:00:00, 31/Dec/9999:23:59:59] UTC cannot round-trip
// through FormatClfTimestamp, so the parser rejects them (a zone offset on
// a year-9999 date can otherwise push the instant into year 10000).
constexpr std::int64_t kMinClfSeconds = -62135596800;  // 01/Jan/0001:00:00:00
constexpr std::int64_t kMaxClfSeconds = 253402300799;  // 31/Dec/9999:23:59:59

}  // namespace

Result<std::int64_t> ParseClfTimestamp(std::string_view text) {
  // dd/Mon/yyyy:hh:mm:ss +zzzz  (zone optional)
  if (text.size() < 20) return Fail("timestamp too short: '" + std::string(text) + "'");
  int day = 0;
  int year = 0;
  int hh = 0;
  int mm = 0;
  int ss = 0;
  if (!ParseInt(text.substr(0, 2), &day) || text[2] != '/' ||
      text[6] != '/' || !ParseInt(text.substr(7, 4), &year) ||
      text[11] != ':' || !ParseInt(text.substr(12, 2), &hh) ||
      text[14] != ':' || !ParseInt(text.substr(15, 2), &mm) ||
      text[17] != ':' || !ParseInt(text.substr(18, 2), &ss)) {
    return Fail("malformed timestamp: '" + std::string(text) + "'");
  }
  const std::string_view month_name = text.substr(3, 3);
  int month = 0;
  for (int i = 0; i < 12; ++i) {
    if (kMonths[static_cast<std::size_t>(i)] == month_name) {
      month = i + 1;
      break;
    }
  }
  // from_chars accepts a leading '-', so "-1" fields parse; reject them
  // here (day < 1 already covers negative days).
  if (month == 0 || day < 1 || day > 31 || hh < 0 || hh > 23 || mm < 0 ||
      mm > 59 || ss < 0 || ss > 60) {
    return Fail("timestamp out of range: '" + std::string(text) + "'");
  }

  std::int64_t seconds =
      DaysFromCivil(year, month, day) * 86400 + hh * 3600 + mm * 60 + ss;

  // Optional zone: " +hhmm" / " -hhmm". Convert to UTC.
  std::string_view rest = text.substr(20);
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.size() == 5 && (rest[0] == '+' || rest[0] == '-')) {
    int zh = 0;
    int zm = 0;
    if (!ParseInt(rest.substr(1, 2), &zh) || !ParseInt(rest.substr(3, 2), &zm) ||
        zh < 0 || zm < 0) {
      return Fail("malformed zone: '" + std::string(text) + "'");
    }
    const std::int64_t offset = zh * 3600 + zm * 60;
    seconds += rest[0] == '+' ? -offset : offset;
  } else if (!rest.empty()) {
    return Fail("trailing junk in timestamp: '" + std::string(text) + "'");
  }
  if (seconds < kMinClfSeconds || seconds > kMaxClfSeconds) {
    return Fail("timestamp outside renderable range: '" + std::string(text) +
                "'");
  }
  return seconds;
}

std::string FormatClfTimestamp(std::int64_t seconds_since_epoch) {
  std::int64_t days = seconds_since_epoch / 86400;
  std::int64_t rem = seconds_since_epoch % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  int y = 0;
  int m = 0;
  int d = 0;
  CivilFromDays(days, &y, &m, &d);
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%02d/%s/%04d:%02d:%02d:%02d +0000", d,
                kMonths[static_cast<std::size_t>(m - 1)].data(), y,
                static_cast<int>(rem / 3600), static_cast<int>(rem / 60 % 60),
                static_cast<int>(rem % 60));
  return buffer;
}

namespace {

// Consumes the next CLF field from `line` at `pos`: a bare token, a
// [bracketed] field, or a "quoted" field. Returns false at end of line.
bool NextField(std::string_view line, std::size_t& pos,
               std::string_view* field) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;

  char closer = 0;
  if (line[pos] == '[') closer = ']';
  if (line[pos] == '"') closer = '"';
  if (closer != 0) {
    const std::size_t start = pos + 1;
    const std::size_t end = line.find(closer, start);
    if (end == std::string_view::npos) return false;
    // The closing delimiter must end the field: '"-"!"Mozilla..."' would
    // otherwise shift every later field boundary and let a quote character
    // into a field value, which FormatClfLine cannot re-serialize.
    if (end + 1 < line.size() && line[end + 1] != ' ') return false;
    *field = line.substr(start, end - start);
    pos = end + 1;
    return true;
  }
  const std::size_t start = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '"') ++pos;
  if (pos < line.size() && line[pos] == '"') return false;  // embedded quote
  *field = line.substr(start, pos - start);
  return true;
}

Method ParseMethod(std::string_view name) {
  if (name == "GET") return Method::kGet;
  if (name == "HEAD") return Method::kHead;
  if (name == "POST") return Method::kPost;
  return Method::kOther;
}

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPost:
      return "POST";
    case Method::kOther:
      return "OTHER";
  }
  return "GET";
}

}  // namespace

Result<LogRecord> ParseClfLine(std::string_view line) {
  LogRecord record;
  std::size_t pos = 0;
  std::string_view host;
  std::string_view ident;
  std::string_view user;
  std::string_view date;
  std::string_view request;
  std::string_view status;
  std::string_view bytes;
  if (!NextField(line, pos, &host) || !NextField(line, pos, &ident) ||
      !NextField(line, pos, &user) || !NextField(line, pos, &date) ||
      !NextField(line, pos, &request) || !NextField(line, pos, &status) ||
      !NextField(line, pos, &bytes)) {
    return Fail("CLF line has fewer than 7 fields");
  }

  auto client = net::IpAddress::Parse(host);
  if (!client) return Fail("bad client address: " + client.error());
  record.client = client.value();

  auto timestamp = ParseClfTimestamp(date);
  if (!timestamp) return Fail(timestamp.error());
  record.timestamp = timestamp.value();

  // "METHOD url HTTP/1.x" — version may be absent in HTTP/0.9-era lines.
  {
    const std::size_t sp1 = request.find(' ');
    if (sp1 == std::string_view::npos) {
      return Fail("malformed request field: '" + std::string(request) + "'");
    }
    record.method = ParseMethod(request.substr(0, sp1));
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    record.url = std::string(request.substr(
        sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                               : sp2 - sp1 - 1));
    if (record.url.empty()) return Fail("empty URL in request field");
  }

  if (!ParseInt(status, &record.status)) {
    return Fail("bad status: '" + std::string(status) + "'");
  }
  if (bytes == "-") {
    record.response_bytes = 0;
  } else {
    const auto [ptr, ec] = std::from_chars(
        bytes.data(), bytes.data() + bytes.size(), record.response_bytes);
    if (ec != std::errc{} || ptr != bytes.data() + bytes.size()) {
      return Fail("bad byte count: '" + std::string(bytes) + "'");
    }
  }

  // Combined format: "referer" "user-agent".
  std::string_view referer;
  std::string_view agent;
  if (NextField(line, pos, &referer) && NextField(line, pos, &agent)) {
    if (agent != "-") record.user_agent = std::string(agent);
  }
  return record;
}

std::string FormatClfLine(const LogRecord& record) {
  std::string out;
  out.reserve(96 + record.url.size() + record.user_agent.size());
  out += record.client.ToString();
  out += " - - [";
  out += FormatClfTimestamp(record.timestamp);
  out += "] \"";
  out += MethodName(record.method);
  out += ' ';
  out += record.url;
  out += " HTTP/1.0\" ";
  out += std::to_string(record.status);
  out += ' ';
  out += std::to_string(record.response_bytes);
  if (!record.user_agent.empty()) {
    out += " \"-\" \"";
    out += record.user_agent;
    out += '"';
  }
  return out;
}

}  // namespace netclust::weblog
