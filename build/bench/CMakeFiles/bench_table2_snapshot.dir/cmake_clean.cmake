file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_snapshot.dir/bench_table2_snapshot.cc.o"
  "CMakeFiles/bench_table2_snapshot.dir/bench_table2_snapshot.cc.o.d"
  "bench_table2_snapshot"
  "bench_table2_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
