// Figure 7 (plus the §3.3 comparison text): network-aware vs simple
// clustering of the Nagano log.
//
// Paper: 9,853 network-aware clusters vs 23,523 simple clusters; largest
// cluster 1,343 hosts / 134,963 requests (1.15%) vs 63 hosts / 9,662
// requests (0.08%); simple clusters are capped at 256 clients and have
// smaller mean and variance.
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/metrics.h"

namespace {

using namespace netclust;

std::vector<std::pair<double, double>> Ranked(
    const core::Clustering& clustering,
    const std::vector<std::size_t>& order, bool clients) {
  std::vector<std::pair<double, double>> series;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const core::Cluster& cluster = clustering.clusters[order[rank]];
    series.emplace_back(static_cast<double>(rank + 1),
                        clients
                            ? static_cast<double>(cluster.members.size())
                            : static_cast<double>(cluster.requests));
  }
  return series;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 7 — network-aware vs simple clustering (Nagano)",
      "simple approach: ~2.4x more clusters, max 256 clients, smaller mean "
      "and variance; largest network-aware cluster 1,343 hosts");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const core::Clustering aware =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const core::Clustering simple = core::ClusterSimple(generated.log);
  // §2 also sketches a classful (Class A/B/C) alternative baseline.
  const core::Clustering classful = core::ClusterClassful(generated.log);

  for (const auto* clustering : {&aware, &simple, &classful}) {
    const auto summary = core::Summarize(*clustering);
    const double mean_clients =
        static_cast<double>(summary.clients) /
        static_cast<double>(summary.clusters);
    std::printf("\n== %s ==\n", clustering->approach.c_str());
    std::printf("clusters: %zu   mean cluster size: %.2f clients   largest: "
                "%zu clients (%llu requests, %.2f%% of log)\n",
                summary.clusters, mean_clients, summary.max_cluster_clients,
                static_cast<unsigned long long>(summary.max_cluster_requests),
                100.0 * static_cast<double>(summary.max_cluster_requests) /
                    static_cast<double>(clustering->total_requests));

    bench::PrintSeries("Fig 7(a): clients per cluster, rank by clients",
                       "rank", "clients",
                       Ranked(*clustering, core::OrderByClients(*clustering),
                              true),
                       14);
    bench::PrintSeries("Fig 7(b): clients per cluster, rank by requests",
                       "rank", "clients",
                       Ranked(*clustering, core::OrderByRequests(*clustering),
                              true),
                       14);
    bench::PrintSeries("Fig 7(c): requests per cluster, rank by clients",
                       "rank", "requests",
                       Ranked(*clustering, core::OrderByClients(*clustering),
                              false),
                       14);
    bench::PrintSeries("Fig 7(d): requests per cluster, rank by requests",
                       "rank", "requests",
                       Ranked(*clustering, core::OrderByRequests(*clustering),
                              false),
                       14);
  }

  std::printf("\ncluster-count ratio simple/network-aware: %.2f "
              "(paper: 23,523/9,853 = 2.39)\n",
              static_cast<double>(simple.cluster_count()) /
                  static_cast<double>(aware.cluster_count()));
  return 0;
}
