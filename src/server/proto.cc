#include "server/proto.h"

namespace netclust::server {

bool IsRequestOpcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
    case Opcode::kLookup:
    case Opcode::kBatchLookup:
    case Opcode::kIngestUpdate:
    case Opcode::kStats:
    case Opcode::kClusterLookup:
    case Opcode::kTopology:
    case Opcode::kSetTopology:
    case Opcode::kClusterStats:
    case Opcode::kRank:
    case Opcode::kAssign:
      return true;
    default:
      return false;
  }
}

bool IsKnownOpcode(std::uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kPing:
    case Opcode::kLookup:
    case Opcode::kBatchLookup:
    case Opcode::kIngestUpdate:
    case Opcode::kStats:
    case Opcode::kClusterLookup:
    case Opcode::kTopology:
    case Opcode::kSetTopology:
    case Opcode::kClusterStats:
    case Opcode::kRank:
    case Opcode::kAssign:
    case Opcode::kPong:
    case Opcode::kLookupResult:
    case Opcode::kBatchResult:
    case Opcode::kIngestAck:
    case Opcode::kStatsText:
    case Opcode::kClusterResult:
    case Opcode::kTopologyReply:
    case Opcode::kSetTopologyAck:
    case Opcode::kClusterStatsReply:
    case Opcode::kRankReply:
    case Opcode::kAssignReply:
    case Opcode::kBusy:
    case Opcode::kError:
    case Opcode::kRedirect:
      return true;
  }
  return false;
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
      return "PING";
    case Opcode::kLookup:
      return "LOOKUP";
    case Opcode::kBatchLookup:
      return "BATCH_LOOKUP";
    case Opcode::kIngestUpdate:
      return "INGEST_UPDATE";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kClusterLookup:
      return "CLUSTER_LOOKUP";
    case Opcode::kTopology:
      return "TOPOLOGY";
    case Opcode::kSetTopology:
      return "SET_TOPOLOGY";
    case Opcode::kClusterStats:
      return "CLUSTER_STATS";
    case Opcode::kRank:
      return "RANK";
    case Opcode::kAssign:
      return "ASSIGN";
    case Opcode::kPong:
      return "PONG";
    case Opcode::kLookupResult:
      return "LOOKUP_RESULT";
    case Opcode::kBatchResult:
      return "BATCH_RESULT";
    case Opcode::kIngestAck:
      return "INGEST_ACK";
    case Opcode::kStatsText:
      return "STATS_TEXT";
    case Opcode::kClusterResult:
      return "CLUSTER_RESULT";
    case Opcode::kTopologyReply:
      return "TOPOLOGY_REPLY";
    case Opcode::kSetTopologyAck:
      return "SET_TOPOLOGY_ACK";
    case Opcode::kClusterStatsReply:
      return "CLUSTER_STATS_REPLY";
    case Opcode::kRankReply:
      return "RANK_REPLY";
    case Opcode::kAssignReply:
      return "ASSIGN_REPLY";
    case Opcode::kBusy:
      return "BUSY";
    case Opcode::kError:
      return "ERROR";
    case Opcode::kRedirect:
      return "REDIRECT";
  }
  return "UNKNOWN";
}

void PutU16(std::vector<std::uint8_t>* out, std::uint16_t value) {
  out->push_back(static_cast<std::uint8_t>(value >> 8));
  out->push_back(static_cast<std::uint8_t>(value));
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t value) {
  PutU16(out, static_cast<std::uint16_t>(value >> 16));
  PutU16(out, static_cast<std::uint16_t>(value));
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t value) {
  PutU32(out, static_cast<std::uint32_t>(value >> 32));
  PutU32(out, static_cast<std::uint32_t>(value));
}

std::uint16_t GetU16(const std::uint8_t* data) {
  return static_cast<std::uint16_t>((std::uint16_t{data[0]} << 8) | data[1]);
}

std::uint32_t GetU32(const std::uint8_t* data) {
  return (std::uint32_t{GetU16(data)} << 16) | GetU16(data + 2);
}

std::uint64_t GetU64(const std::uint8_t* data) {
  return (std::uint64_t{GetU32(data)} << 32) | GetU32(data + 4);
}

std::vector<std::uint8_t> EncodeFrame(
    Opcode opcode, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  PutU16(&out, kMagic);
  out.push_back(kProtoVersion);
  out.push_back(static_cast<std::uint8_t>(opcode));
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < kHeaderSize) return Fail("frame header truncated");
  if (GetU16(data) != kMagic) return Fail("bad frame magic");
  const std::uint8_t version = data[2];
  if (version != kProtoVersion) return Fail("unsupported protocol version");
  if (!IsKnownOpcode(data[3])) return Fail("unknown opcode");
  const std::uint32_t payload_size = GetU32(data + 4);
  if (payload_size > kMaxPayload) return Fail("payload length exceeds bound");
  return FrameHeader{version, static_cast<Opcode>(data[3]), payload_size};
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t size) {
  // Compact before growing: consumed_ bytes at the front are dead.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  auto view = NextView();
  if (!view.ok()) return Fail(view.error());
  if (!view.value().has_value()) return std::optional<Frame>{};
  Frame frame;
  frame.header = view.value()->header;
  frame.payload.assign(view.value()->payload,
                       view.value()->payload + frame.header.payload_size);
  return std::optional<Frame>{std::move(frame)};
}

Result<std::optional<FrameView>> FrameDecoder::NextView() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return std::optional<FrameView>{};
  const std::uint8_t* at = buffer_.data() + consumed_;
  auto header = DecodeFrameHeader(at, available);
  if (!header.ok()) return Fail(header.error());
  const std::size_t total = kHeaderSize + header.value().payload_size;
  if (available < total) return std::optional<FrameView>{};
  consumed_ += total;
  return std::optional<FrameView>{FrameView{header.value(), at + kHeaderSize}};
}

std::vector<std::uint8_t> EncodeLookup(const LookupRequest& req) {
  std::vector<std::uint8_t> out;
  PutU32(&out, req.address.bits());
  return out;
}

Result<LookupRequest> DecodeLookup(const std::uint8_t* data,
                                   std::size_t size) {
  if (size != 4) return Fail("LOOKUP payload must be exactly 4 bytes");
  return LookupRequest{net::IpAddress(GetU32(data))};
}

std::vector<std::uint8_t> EncodeBatchLookup(const BatchLookupRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 4 * req.addresses.size());
  PutU32(&out, static_cast<std::uint32_t>(req.addresses.size()));
  for (const net::IpAddress address : req.addresses) {
    PutU32(&out, address.bits());
  }
  return out;
}

Result<BatchLookupRequest> DecodeBatchLookup(const std::uint8_t* data,
                                             std::size_t size) {
  BatchLookupRequest req;
  auto count = DecodeBatchLookupInto(data, size, &req.addresses);
  if (!count.ok()) return Fail(count.error());
  return req;
}

Result<std::size_t> DecodeBatchLookupInto(const std::uint8_t* data,
                                          std::size_t size,
                                          std::vector<net::IpAddress>* out) {
  out->clear();
  if (size < 4) return Fail("BATCH_LOOKUP payload truncated");
  const std::uint32_t count = GetU32(data);
  if (count > kMaxBatch) return Fail("BATCH_LOOKUP count exceeds bound");
  if (size != 4 + std::size_t{count} * 4) {
    return Fail("BATCH_LOOKUP length disagrees with its count");
  }
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out->emplace_back(GetU32(data + 4 + std::size_t{i} * 4));
  }
  return std::size_t{count};
}

std::vector<std::uint8_t> EncodeIngest(const IngestRequest& req) {
  std::vector<std::uint8_t> out;
  PutU32(&out, req.source_id);
  const std::vector<std::uint8_t> update = bgp::EncodeUpdate(req.update);
  out.insert(out.end(), update.begin(), update.end());
  return out;
}

Result<IngestRequest> DecodeIngest(const std::uint8_t* data,
                                   std::size_t size) {
  if (size < 4) return Fail("INGEST_UPDATE payload truncated");
  IngestRequest req;
  req.source_id = GetU32(data);
  const std::vector<std::uint8_t> bytes(data + 4, data + size);
  std::size_t offset = 0;
  auto update = bgp::DecodeUpdate(bytes, &offset);
  if (!update.ok()) return Fail(update.error());
  if (offset != bytes.size()) {
    return Fail("trailing bytes after the embedded BGP UPDATE");
  }
  req.update = std::move(update).value();
  return req;
}

LookupRecord LookupRecord::FromMatch(
    const std::optional<bgp::PrefixTable::Match>& match) {
  LookupRecord record;
  if (!match.has_value()) return record;
  record.found = true;
  record.prefix = match->prefix;
  record.kind = match->kind;
  record.origin_as = match->origin_as;
  record.source_mask = match->source_mask;
  return record;
}

std::optional<bgp::PrefixTable::Match> LookupRecord::ToMatch() const {
  if (!found) return std::nullopt;
  return bgp::PrefixTable::Match{prefix, kind, source_mask, origin_as};
}

std::vector<std::uint8_t> EncodeLookupRecord(const LookupRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(kLookupRecordSize);
  out.push_back(record.found ? 1 : 0);
  out.push_back(
      record.found ? static_cast<std::uint8_t>(record.prefix.length()) : 0);
  out.push_back(record.found ? static_cast<std::uint8_t>(record.kind) : 0);
  out.push_back(0);  // reserved
  PutU32(&out, record.found ? record.prefix.network().bits() : 0);
  PutU32(&out, record.found ? record.origin_as : 0);
  PutU32(&out, record.found ? record.source_mask : 0);
  return out;
}

Result<LookupRecord> DecodeLookupRecord(const std::uint8_t* data,
                                        std::size_t size) {
  if (size != kLookupRecordSize) {
    return Fail("LOOKUP_RESULT record must be exactly 16 bytes");
  }
  if (data[0] > 1) return Fail("LOOKUP_RESULT found flag must be 0 or 1");
  if (data[3] != 0) return Fail("LOOKUP_RESULT reserved byte must be zero");
  LookupRecord record;
  record.found = data[0] == 1;
  const std::uint8_t length = data[1];
  const std::uint8_t kind = data[2];
  const std::uint32_t network = GetU32(data + 4);
  const std::uint32_t origin_as = GetU32(data + 8);
  const std::uint32_t source_mask = GetU32(data + 12);
  if (!record.found) {
    // Canonical absent record: all fields zero, so encode(decode(x)) == x.
    if (length != 0 || kind != 0 || network != 0 || origin_as != 0 ||
        source_mask != 0) {
      return Fail("absent LOOKUP_RESULT record carries non-zero fields");
    }
    return record;
  }
  if (length > 32) return Fail("LOOKUP_RESULT prefix length exceeds 32");
  if (kind > 1) return Fail("LOOKUP_RESULT source kind out of range");
  record.prefix = net::Prefix(net::IpAddress(network), length);
  if (record.prefix.network().bits() != network) {
    return Fail("LOOKUP_RESULT prefix has host bits set");
  }
  record.kind = static_cast<bgp::SourceKind>(kind);
  record.origin_as = origin_as;
  record.source_mask = source_mask;
  return record;
}

std::vector<std::uint8_t> EncodeBatchResult(
    const std::vector<LookupRecord>& records) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + kLookupRecordSize * records.size());
  PutU32(&out, static_cast<std::uint32_t>(records.size()));
  for (const LookupRecord& record : records) {
    const std::vector<std::uint8_t> encoded = EncodeLookupRecord(record);
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

void AppendBatchResultFrame(
    const std::optional<bgp::PrefixTable::Match>* matches, std::size_t count,
    std::vector<std::uint8_t>* out) {
  const std::size_t payload_size = 4 + kLookupRecordSize * count;
  out->reserve(out->size() + kHeaderSize + payload_size);
  PutU16(out, kMagic);
  out->push_back(kProtoVersion);
  out->push_back(static_cast<std::uint8_t>(Opcode::kBatchResult));
  PutU32(out, static_cast<std::uint32_t>(payload_size));
  PutU32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const std::optional<bgp::PrefixTable::Match>& match = matches[i];
    if (!match.has_value()) {
      // Canonical absent record: 16 zero bytes (see EncodeLookupRecord).
      out->insert(out->end(), kLookupRecordSize, 0);
      continue;
    }
    out->push_back(1);
    out->push_back(static_cast<std::uint8_t>(match->prefix.length()));
    out->push_back(static_cast<std::uint8_t>(match->kind));
    out->push_back(0);  // reserved
    PutU32(out, match->prefix.network().bits());
    PutU32(out, match->origin_as);
    PutU32(out, match->source_mask);
  }
}

Result<std::vector<LookupRecord>> DecodeBatchResult(const std::uint8_t* data,
                                                    std::size_t size) {
  if (size < 4) return Fail("BATCH_RESULT payload truncated");
  const std::uint32_t count = GetU32(data);
  if (count > kMaxBatch) return Fail("BATCH_RESULT count exceeds bound");
  if (size != 4 + std::size_t{count} * kLookupRecordSize) {
    return Fail("BATCH_RESULT length disagrees with its count");
  }
  std::vector<LookupRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto record = DecodeLookupRecord(
        data + 4 + std::size_t{i} * kLookupRecordSize, kLookupRecordSize);
    if (!record.ok()) return Fail(record.error());
    records.push_back(std::move(record).value());
  }
  return records;
}

std::vector<std::uint8_t> EncodeIngestAck(const IngestAck& ack) {
  std::vector<std::uint8_t> out;
  PutU64(&out, ack.table_version);
  return out;
}

Result<IngestAck> DecodeIngestAck(const std::uint8_t* data, std::size_t size) {
  if (size != 8) return Fail("INGEST_ACK payload must be exactly 8 bytes");
  return IngestAck{GetU64(data)};
}

std::vector<std::uint8_t> EncodeError(const ErrorReply& error) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + error.message.size());
  out.push_back(static_cast<std::uint8_t>(error.code));
  out.insert(out.end(), error.message.begin(), error.message.end());
  return out;
}

Result<ErrorReply> DecodeError(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return Fail("ERROR payload truncated");
  const std::uint8_t code = data[0];
  if (code < 1 || code > 4) return Fail("ERROR code out of range");
  ErrorReply error;
  error.code = static_cast<ErrorCode>(code);
  error.message.assign(reinterpret_cast<const char*>(data + 1), size - 1);
  return error;
}

// --- cluster-mode codecs ---

Result<bool> ValidateTopology(const Topology& topo) {
  if (topo.nodes.empty()) return Fail("topology has no nodes");
  if (topo.nodes.size() > kMaxClusterNodes) {
    return Fail("topology node count exceeds bound");
  }
  for (std::size_t i = 1; i < topo.nodes.size(); ++i) {
    if (topo.nodes[i].id <= topo.nodes[i - 1].id) {
      return Fail("topology node ids must be strictly increasing");
    }
  }
  if (topo.ranges.empty()) return Fail("topology has no shard ranges");
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < topo.ranges.size(); ++i) {
    const ShardRange& range = topo.ranges[i];
    if (range.block_count == 0) return Fail("empty shard range");
    if (range.first_block != covered) {
      return Fail("shard ranges must be sorted and gap-free");
    }
    if (range.node_index >= topo.nodes.size()) {
      return Fail("shard range names a node index out of bounds");
    }
    if (i > 0 && range.node_index == topo.ranges[i - 1].node_index) {
      return Fail("adjacent shard ranges with one owner must be merged");
    }
    covered += range.block_count;
    if (covered > kShardBlockCount) {
      return Fail("shard ranges overflow the block space");
    }
  }
  if (covered != kShardBlockCount) {
    return Fail("shard ranges must cover every /16 block");
  }
  return true;
}

std::vector<std::uint16_t> CompileOwners(const Topology& topo) {
  std::vector<std::uint16_t> owner(kShardBlockCount, 0);
  for (const ShardRange& range : topo.ranges) {
    for (std::uint32_t b = 0; b < range.block_count; ++b) {
      owner[range.first_block + b] = range.node_index;
    }
  }
  return owner;
}

int NodeIndexOf(const Topology& topo, std::uint32_t node_id) {
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    if (topo.nodes[i].id == node_id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::uint8_t> EncodeTopology(const Topology& topo) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 2 + 10 * topo.nodes.size() + 4 + 10 * topo.ranges.size());
  PutU64(&out, topo.epoch);
  PutU16(&out, static_cast<std::uint16_t>(topo.nodes.size()));
  for (const NodeInfo& node : topo.nodes) {
    PutU32(&out, node.id);
    PutU32(&out, node.host.bits());
    PutU16(&out, node.port);
  }
  PutU32(&out, static_cast<std::uint32_t>(topo.ranges.size()));
  for (const ShardRange& range : topo.ranges) {
    PutU32(&out, range.first_block);
    PutU32(&out, range.block_count);
    PutU16(&out, range.node_index);
  }
  return out;
}

Result<Topology> DecodeTopology(const std::uint8_t* data, std::size_t size) {
  if (size < 10) return Fail("topology payload truncated");
  Topology topo;
  topo.epoch = GetU64(data);
  const std::uint16_t node_count = GetU16(data + 8);
  std::size_t offset = 10;
  if (size < offset + std::size_t{node_count} * 10 + 4) {
    return Fail("topology payload truncated in the node list");
  }
  topo.nodes.reserve(node_count);
  for (std::uint16_t i = 0; i < node_count; ++i) {
    NodeInfo node;
    node.id = GetU32(data + offset);
    node.host = net::IpAddress(GetU32(data + offset + 4));
    node.port = GetU16(data + offset + 8);
    topo.nodes.push_back(node);
    offset += 10;
  }
  const std::uint32_t range_count = GetU32(data + offset);
  offset += 4;
  if (range_count > kShardBlockCount) {
    return Fail("topology range count exceeds the block space");
  }
  if (size != offset + std::size_t{range_count} * 10) {
    return Fail("topology length disagrees with its range count");
  }
  topo.ranges.reserve(range_count);
  for (std::uint32_t i = 0; i < range_count; ++i) {
    ShardRange range;
    range.first_block = GetU32(data + offset);
    range.block_count = GetU32(data + offset + 4);
    range.node_index = GetU16(data + offset + 8);
    topo.ranges.push_back(range);
    offset += 10;
  }
  auto valid = ValidateTopology(topo);
  if (!valid.ok()) return Fail(valid.error());
  return topo;
}

std::vector<std::uint8_t> EncodeClusterLookup(const ClusterLookupRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(12 + 4 * req.addresses.size());
  PutU64(&out, req.epoch);
  PutU32(&out, static_cast<std::uint32_t>(req.addresses.size()));
  for (const net::IpAddress address : req.addresses) {
    PutU32(&out, address.bits());
  }
  return out;
}

Result<ClusterLookupRequest> DecodeClusterLookup(const std::uint8_t* data,
                                                 std::size_t size) {
  if (size < 12) return Fail("CLUSTER_LOOKUP payload truncated");
  ClusterLookupRequest req;
  req.epoch = GetU64(data);
  const std::uint32_t count = GetU32(data + 8);
  if (count > kMaxBatch) return Fail("CLUSTER_LOOKUP count exceeds bound");
  if (size != 12 + std::size_t{count} * 4) {
    return Fail("CLUSTER_LOOKUP length disagrees with its count");
  }
  req.addresses.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    req.addresses.emplace_back(GetU32(data + 12 + std::size_t{i} * 4));
  }
  return req;
}

std::vector<std::uint8_t> EncodeClusterResult(const ClusterResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(12 + kLookupRecordSize * result.records.size());
  PutU64(&out, result.epoch);
  PutU32(&out, static_cast<std::uint32_t>(result.records.size()));
  for (const LookupRecord& record : result.records) {
    const std::vector<std::uint8_t> encoded = EncodeLookupRecord(record);
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

Result<ClusterResult> DecodeClusterResult(const std::uint8_t* data,
                                          std::size_t size) {
  if (size < 12) return Fail("CLUSTER_RESULT payload truncated");
  ClusterResult result;
  result.epoch = GetU64(data);
  const std::uint32_t count = GetU32(data + 8);
  if (count > kMaxBatch) return Fail("CLUSTER_RESULT count exceeds bound");
  if (size != 12 + std::size_t{count} * kLookupRecordSize) {
    return Fail("CLUSTER_RESULT length disagrees with its count");
  }
  result.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto record = DecodeLookupRecord(
        data + 12 + std::size_t{i} * kLookupRecordSize, kLookupRecordSize);
    if (!record.ok()) return Fail(record.error());
    result.records.push_back(std::move(record).value());
  }
  return result;
}

std::vector<std::uint8_t> EncodeRedirect(const RedirectReply& redirect) {
  std::vector<std::uint8_t> out;
  out.reserve(9);
  out.push_back(static_cast<std::uint8_t>(redirect.reason));
  PutU64(&out, redirect.epoch);
  return out;
}

Result<RedirectReply> DecodeRedirect(const std::uint8_t* data,
                                     std::size_t size) {
  if (size != 9) return Fail("REDIRECT payload must be exactly 9 bytes");
  if (data[0] < 1 || data[0] > 2) return Fail("REDIRECT reason out of range");
  RedirectReply redirect;
  redirect.reason = static_cast<RedirectReason>(data[0]);
  redirect.epoch = GetU64(data + 1);
  return redirect;
}

std::vector<std::uint8_t> EncodeClusterStats(const ClusterStatsRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(kClusterStatsRecordSize);
  PutU64(&out, record.epoch);
  PutU32(&out, record.node_id);
  PutU64(&out, record.frames_decoded);
  PutU64(&out, record.lookups_served);
  PutU64(&out, record.cluster_lookups_served);
  PutU64(&out, record.ingests_applied);
  PutU64(&out, record.busy_replies);
  PutU64(&out, record.errors_sent);
  PutU64(&out, record.redirects_sent);
  PutU64(&out, record.connections_active);
  PutU64(&out, record.latency_sum_ns);
  for (const std::uint64_t bucket : record.latency_buckets) {
    PutU64(&out, bucket);
  }
  return out;
}

Result<ClusterStatsRecord> DecodeClusterStats(const std::uint8_t* data,
                                              std::size_t size) {
  if (size != kClusterStatsRecordSize) {
    return Fail("CLUSTER_STATS_REPLY payload has the wrong size");
  }
  ClusterStatsRecord record;
  record.epoch = GetU64(data);
  record.node_id = GetU32(data + 8);
  std::size_t offset = 12;
  std::uint64_t* const counters[] = {
      &record.frames_decoded, &record.lookups_served,
      &record.cluster_lookups_served, &record.ingests_applied,
      &record.busy_replies, &record.errors_sent,
      &record.redirects_sent, &record.connections_active,
      &record.latency_sum_ns,
  };
  for (std::uint64_t* counter : counters) {
    *counter = GetU64(data + offset);
    offset += 8;
  }
  for (std::uint64_t& bucket : record.latency_buckets) {
    bucket = GetU64(data + offset);
    offset += 8;
  }
  return record;
}

// --- CDN assignment codecs (mapping tier) ---

std::vector<std::uint8_t> EncodeRank(const RankRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(12);
  PutU64(&out, req.epoch);
  PutU32(&out, req.address.bits());
  return out;
}

Result<RankRequest> DecodeRank(const std::uint8_t* data, std::size_t size) {
  if (size != 12) return Fail("RANK payload must be exactly 12 bytes");
  RankRequest req;
  req.epoch = GetU64(data);
  req.address = net::IpAddress(GetU32(data + 8));
  return req;
}

std::vector<std::uint8_t> EncodeRankReply(const RankReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(14 + 2 * reply.servers.size());
  PutU64(&out, reply.epoch);
  PutU32(&out, reply.cluster_as);
  PutU16(&out, static_cast<std::uint16_t>(reply.servers.size()));
  for (const std::uint16_t server : reply.servers) {
    PutU16(&out, server);
  }
  return out;
}

Result<RankReply> DecodeRankReply(const std::uint8_t* data, std::size_t size) {
  if (size < 14) return Fail("RANK_REPLY payload truncated");
  RankReply reply;
  reply.epoch = GetU64(data);
  reply.cluster_as = GetU32(data + 8);
  const std::uint16_t count = GetU16(data + 12);
  if (count > kMaxRankServers) return Fail("RANK_REPLY count exceeds bound");
  if (size != 14 + std::size_t{count} * 2) {
    return Fail("RANK_REPLY length disagrees with its count");
  }
  reply.servers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    reply.servers.push_back(GetU16(data + 14 + std::size_t{i} * 2));
  }
  return reply;
}

std::vector<std::uint8_t> EncodeAssign(const AssignRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(12);
  PutU64(&out, req.epoch);
  PutU32(&out, req.address.bits());
  return out;
}

Result<AssignRequest> DecodeAssign(const std::uint8_t* data,
                                   std::size_t size) {
  if (size != 12) return Fail("ASSIGN payload must be exactly 12 bytes");
  AssignRequest req;
  req.epoch = GetU64(data);
  req.address = net::IpAddress(GetU32(data + 8));
  return req;
}

std::vector<std::uint8_t> EncodeAssignReply(const AssignReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(kAssignReplySize);
  PutU64(&out, reply.epoch);
  out.push_back(static_cast<std::uint8_t>(reply.status));
  PutU16(&out, reply.server_id);
  PutU32(&out, reply.cluster_as);
  return out;
}

Result<AssignReply> DecodeAssignReply(const std::uint8_t* data,
                                      std::size_t size) {
  if (size != kAssignReplySize) {
    return Fail("ASSIGN_REPLY payload must be exactly 15 bytes");
  }
  const std::uint8_t status = data[8];
  if (status > 2) return Fail("ASSIGN_REPLY status out of range");
  AssignReply reply;
  reply.epoch = GetU64(data);
  reply.status = static_cast<AssignStatus>(status);
  reply.server_id = GetU16(data + 9);
  reply.cluster_as = GetU32(data + 11);
  if (reply.status == AssignStatus::kNoServer && reply.server_id != 0) {
    return Fail("ASSIGN_REPLY carries a server id without a ranking");
  }
  return reply;
}

std::vector<std::uint8_t> EncodeTopologyAck(std::uint64_t epoch) {
  std::vector<std::uint8_t> out;
  PutU64(&out, epoch);
  return out;
}

Result<std::uint64_t> DecodeTopologyAck(const std::uint8_t* data,
                                        std::size_t size) {
  if (size != 8) return Fail("SET_TOPOLOGY_ACK payload must be exactly 8 bytes");
  return GetU64(data);
}

}  // namespace netclust::server
