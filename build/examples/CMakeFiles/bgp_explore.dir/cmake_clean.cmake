file(REMOVE_RECURSE
  "CMakeFiles/bgp_explore.dir/bgp_explore.cpp.o"
  "CMakeFiles/bgp_explore.dir/bgp_explore.cpp.o.d"
  "bgp_explore"
  "bgp_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
