file(REMOVE_RECURSE
  "CMakeFiles/netclust_core.dir/cluster.cc.o"
  "CMakeFiles/netclust_core.dir/cluster.cc.o.d"
  "CMakeFiles/netclust_core.dir/compare.cc.o"
  "CMakeFiles/netclust_core.dir/compare.cc.o.d"
  "CMakeFiles/netclust_core.dir/detect.cc.o"
  "CMakeFiles/netclust_core.dir/detect.cc.o.d"
  "CMakeFiles/netclust_core.dir/metrics.cc.o"
  "CMakeFiles/netclust_core.dir/metrics.cc.o.d"
  "CMakeFiles/netclust_core.dir/network_cluster.cc.o"
  "CMakeFiles/netclust_core.dir/network_cluster.cc.o.d"
  "CMakeFiles/netclust_core.dir/parallel.cc.o"
  "CMakeFiles/netclust_core.dir/parallel.cc.o.d"
  "CMakeFiles/netclust_core.dir/proxy_placement.cc.o"
  "CMakeFiles/netclust_core.dir/proxy_placement.cc.o.d"
  "CMakeFiles/netclust_core.dir/report.cc.o"
  "CMakeFiles/netclust_core.dir/report.cc.o.d"
  "CMakeFiles/netclust_core.dir/self_correct.cc.o"
  "CMakeFiles/netclust_core.dir/self_correct.cc.o.d"
  "CMakeFiles/netclust_core.dir/session.cc.o"
  "CMakeFiles/netclust_core.dir/session.cc.o.d"
  "CMakeFiles/netclust_core.dir/streaming.cc.o"
  "CMakeFiles/netclust_core.dir/streaming.cc.o.d"
  "CMakeFiles/netclust_core.dir/threshold.cc.o"
  "CMakeFiles/netclust_core.dir/threshold.cc.o.d"
  "libnetclust_core.a"
  "libnetclust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
