// Busy-cluster thresholding (§4.1.3, Table 5).
//
// After spiders/proxies are removed, clusters are sorted in reverse order
// of requests and the busiest prefix retained until they jointly account
// for a target fraction (70% in the paper) of all requests. These "busy"
// clusters are where proxies get placed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster.h"

namespace netclust::core {

struct ThresholdReport {
  double fraction = 0.7;
  /// Busy cluster indices, in reverse order of requests.
  std::vector<std::size_t> busy;
  std::uint64_t busy_requests = 0;
  std::size_t busy_clients = 0;
  /// Requests issued by the smallest busy cluster — "the threshold".
  std::uint64_t threshold_requests = 0;
  std::uint64_t busy_min_requests = 0;
  std::uint64_t busy_max_requests = 0;
  std::size_t busy_min_clients = 0;
  std::size_t busy_max_clients = 0;
  std::uint64_t less_busy_min_requests = 0;
  std::uint64_t less_busy_max_requests = 0;
  std::size_t less_busy_min_clients = 0;
  std::size_t less_busy_max_clients = 0;
};

/// Retains the busiest clusters covering `fraction` of all clustered
/// requests.
ThresholdReport ThresholdBusyClusters(const Clustering& clustering,
                                      double fraction = 0.7);

}  // namespace netclust::core
