// Real-time (streaming) client clustering.
//
// §3.5: "Self-correction and adaptation is also very important to generate
// client clusters using real-time routing information and producing
// real-time client cluster identification results. By real-time cluster
// identifying we mean application of cluster identifying techniques to
// very recent server log data (within the last few minutes)."
//
// StreamingClusterer consumes two event streams incrementally:
//   * data plane — one Observe() per request, as the server logs it;
//   * routing plane — Announce/Withdraw (or whole BGP UPDATE messages),
//     as a route collector feeds them.
// Cluster membership is kept consistent with the *current* table: a route
// change re-resolves exactly the clients it can affect (those under the
// changed prefix), not the whole population. The assignment machinery
// itself lives in core/assignment.h, shared with the sharded concurrent
// engine (src/engine), which runs the same state machine per shard against
// RCU-published table snapshots.
//
// Accounting semantics under routing churn: per-client request/byte
// tallies are exact and move with the client; per-cluster unique-URL sets
// are not split on reassignment (they remain a property of the traffic the
// cluster actually absorbed while it existed).
#pragma once

#include <cstdint>
#include <string>

#include "bgp/prefix_table.h"
#include "bgp/update.h"
#include "core/assignment.h"
#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::core {

class StreamingClusterer {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::size_t announce_events = 0;
    std::size_t withdraw_events = 0;
    /// Clients moved between clusters by routing churn.
    std::size_t reassignments = 0;
  };

  explicit StreamingClusterer(std::string log_name);

  // --- routing plane ---

  /// Registers a source (mirrors bgp::PrefixTable::AddSource).
  int AddSource(const bgp::SnapshotInfo& info);

  /// Seeds the table from a full snapshot before any traffic (no
  /// reassignment needed). Returns the source id.
  int SeedSnapshot(const bgp::Snapshot& snapshot);

  /// Announces `prefix`: clients inside it whose current match is shorter
  /// are re-resolved.
  void Announce(const net::Prefix& prefix, int source_id,
                bgp::AsNumber origin_as = 0);

  /// Withdraws `prefix`: its cluster's members are re-resolved to the
  /// next-best match (possibly unclustered).
  void Withdraw(const net::Prefix& prefix);

  /// Applies a decoded BGP UPDATE (withdrawals then announcements).
  void ApplyUpdate(const bgp::UpdateMessage& update, int source_id);

  // --- data plane ---

  /// Feeds one request.
  void Observe(net::IpAddress client, std::uint32_t url_id,
               std::uint32_t bytes, std::int64_t timestamp);

  /// Feeds a whole log (convenience for replay).
  void ObserveLog(const weblog::ServerLog& log);

  // --- views ---

  [[nodiscard]] std::size_t cluster_count() const {
    return state_.live_cluster_count();
  }
  [[nodiscard]] std::size_t client_count() const {
    return state_.client_count();
  }
  [[nodiscard]] std::size_t unclustered_count() const {
    return state_.unclustered_count();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const bgp::PrefixTable& table() const { return table_; }
  [[nodiscard]] const AssignmentState& assignment() const { return state_; }

  /// Materializes the current state as a batch-compatible Clustering, in
  /// the canonical order of AssignmentState::Merge — so it compares
  /// bit-identically against engine::Engine::Snapshot() of the same event
  /// sequence.
  [[nodiscard]] Clustering ToClustering() const;

 private:
  bgp::PrefixTable table_;
  AssignmentState state_;
  Stats stats_;
  std::string log_name_;
};

}  // namespace netclust::core
