file(REMOVE_RECURSE
  "CMakeFiles/ip_address_test.dir/ip_address_test.cpp.o"
  "CMakeFiles/ip_address_test.dir/ip_address_test.cpp.o.d"
  "ip_address_test"
  "ip_address_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
