#include "server/io_util.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace netclust::server {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget of a deadline started `start_ms` with `timeout_ms`;
/// clamped to >= 0. A negative timeout means "no deadline" (-1 for poll).
int Remaining(std::int64_t start_ms, int timeout_ms) {
  if (timeout_ms < 0) return -1;
  const std::int64_t left = start_ms + timeout_ms - NowMs();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

ssize_t RetryRead(int fd, void* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, size);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t RetryWrite(int fd, const void* buffer, std::size_t size) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
    // not kill the process with SIGPIPE. Falls back to write(2) for
    // non-socket descriptors (ENOTSOCK), e.g. when a test points at a pipe.
    ssize_t n = ::send(fd, buffer, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buffer, size);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t RetryWritev(int fd, const struct iovec* iov, int iovcnt) {
  for (;;) {
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n >= 0 || errno != EINTR) return n;
  }
}

int RetryAccept(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

int PollOne(int fd, short events, int timeout_ms) {
  const std::int64_t start = NowMs();
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, Remaining(start, timeout_ms));
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

bool SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

void SetNoDelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSendBufferBytes(int fd, int bytes) {
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

void SetRecvBufferBytes(int fd, int bytes) {
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

Result<int> CreateListener(std::uint16_t port, int backlog,
                           std::uint32_t bind_address, bool reuse_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Fail(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    const std::string error = std::strerror(errno);
    CloseFd(fd);
    return Fail("setsockopt(SO_REUSEPORT): " + error);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(bind_address);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    CloseFd(fd);
    return Fail("bind: " + error);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string error = std::strerror(errno);
    CloseFd(fd);
    return Fail("listen: " + error);
  }
  if (!SetNonBlocking(fd, true)) {
    CloseFd(fd);
    return Fail("fcntl(O_NONBLOCK) on listener failed");
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, std::uint16_t port,
                       int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Fail("ConnectTcp needs a dotted-quad host, got '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Fail(std::string("socket: ") + std::strerror(errno));
  // Connect non-blocking so the deadline applies to the handshake too,
  // then flip back to blocking for the caller.
  if (!SetNonBlocking(fd, true)) {
    CloseFd(fd);
    return Fail("fcntl(O_NONBLOCK) failed");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      const std::string error = std::strerror(errno);
      CloseFd(fd);
      return Fail("connect: " + error);
    }
    if (PollOne(fd, POLLOUT, timeout_ms) <= 0) {
      CloseFd(fd);
      return Fail("connect: handshake timed out");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      CloseFd(fd);
      return Fail(std::string("connect: ") + std::strerror(soerr));
    }
  }
  if (!SetNonBlocking(fd, false)) {
    CloseFd(fd);
    return Fail("fcntl(clear O_NONBLOCK) failed");
  }
  SetNoDelay(fd);
  return fd;
}

Result<std::uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Fail(std::string("getsockname: ") + std::strerror(errno));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<IoStatus> ReadFull(int fd, void* buffer, std::size_t size,
                          int timeout_ms) {
  auto* at = static_cast<std::uint8_t*>(buffer);
  std::size_t done = 0;
  const std::int64_t start = NowMs();
  while (done < size) {
    // Poll BEFORE reading: on a blocking descriptor read(2) would never
    // return EAGAIN, so polling afterwards would let a stalled peer hang
    // the caller past its deadline.
    const int ready = PollOne(fd, POLLIN, Remaining(start, timeout_ms));
    if (ready == 0) return IoStatus::kTimedOut;
    if (ready < 0) return Fail(std::string("poll: ") + std::strerror(errno));
    const ssize_t n = RetryRead(fd, at + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return IoStatus::kClosed;
      return Fail("connection closed mid-frame");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Fail(std::string("read: ") + std::strerror(errno));
    }
    // EAGAIN after POLLIN is a spurious wakeup; re-poll with the budget.
  }
  return IoStatus::kOk;
}

Result<IoStatus> WriteFull(int fd, const void* buffer, std::size_t size,
                           int timeout_ms) {
  const auto* at = static_cast<const std::uint8_t*>(buffer);
  std::size_t done = 0;
  const std::int64_t start = NowMs();
  while (done < size) {
    // Same ordering as ReadFull: the deadline must bind even when the
    // descriptor is blocking and the peer's window is closed.
    const int ready = PollOne(fd, POLLOUT, Remaining(start, timeout_ms));
    if (ready == 0) return IoStatus::kTimedOut;
    if (ready < 0) return Fail(std::string("poll: ") + std::strerror(errno));
    const ssize_t n = RetryWrite(fd, at + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Fail(std::string("write: ") + std::strerror(errno));
    }
  }
  return IoStatus::kOk;
}

}  // namespace netclust::server
