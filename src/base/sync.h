// Annotated synchronization primitives.
//
// Thin wrappers over the std primitives that carry Clang Thread Safety
// Analysis capabilities (base/thread_annotations.h), so `-Wthread-safety
// -Werror=thread-safety` turns lock-contract violations into compile
// errors on Clang builds. Zero overhead over the std types on the lock
// path; the wrappers exist only to be annotatable (std::mutex itself
// cannot carry attributes).
//
// Two capability families:
//   * Mutex / MutexLock / CondVar — real locks, fully checked: a read of
//     a GUARDED_BY(mu_) member without holding mu_ is a compile error.
//   * ThreadRole / AssumeThreadRole / ONLY_THREAD — zero-byte "role"
//     capabilities for single-threaded ownership protocols (SPSC ring
//     producer/consumer sides, the RCU slot's single publisher). A role
//     has no runtime state: AssumeThreadRole is the *explicit, greppable
//     assertion* that the current scope is running on the role's thread
//     (or at a quiescent point that transfers the role, e.g. after
//     Engine::Drain()). The analysis then enforces that role-owned state
//     is never touched by code that has not made that assertion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace netclust::base {

/// std::mutex with thread-safety-analysis attributes. Lowercase
/// lock()/unlock() aliases keep it usable as a C++ Lockable (std::lock_guard,
/// std::condition_variable_any).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Lockable interface (same capabilities, std spelling).
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for a Mutex (the only way this codebase takes one; bare
/// Lock()/Unlock() pairs are reserved for adapters).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with base::Mutex. Wait() requires the mutex
/// held, like std::condition_variable_any — the analysis sees the REQUIRES
/// contract, the runtime sees a normal cv wait.
class CondVar {
 public:
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns false on timeout. Used where the wakeup signal is
  /// advisory (e.g. SPSC backpressure) so a lost notify costs one slice,
  /// never a deadlock.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A zero-byte capability standing for "code running on a particular
/// thread" (producer side, consumer side, publisher). Guard
/// single-thread-owned members with ONLY_THREAD(role); annotate functions
/// that must run on that thread with REQUIRES(role).
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Marks a data member as owned by one thread role: only code holding the
/// role (via AssumeThreadRole at a documented entry point) may touch it.
#define ONLY_THREAD(role) GUARDED_BY(role)

/// Scoped assertion that this code runs on the role's thread. Purely a
/// compile-time construct (no runtime effect): it must appear only at the
/// entry points where the threading contract is established — a worker
/// thread's main loop, the documented single-ingest-thread API surface,
/// or a quiescent point that hands ownership over (Engine::Drain()).
class SCOPED_CAPABILITY AssumeThreadRole {
 public:
  explicit AssumeThreadRole(const ThreadRole& role) ACQUIRE(role) {
    (void)role;
  }
  ~AssumeThreadRole() RELEASE() {}
  AssumeThreadRole(const AssumeThreadRole&) = delete;
  AssumeThreadRole& operator=(const AssumeThreadRole&) = delete;
};

}  // namespace netclust::base
