# Empty compiler generated dependencies file for bgp_explore.
# This may be replaced when dependencies are built.
