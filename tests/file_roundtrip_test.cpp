// On-disk round trips: save vantage tables (text + both MRT generations)
// and a CLF log to a temp directory, load everything back, and require
// the file-based pipeline to reproduce the in-memory clustering exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bgp/io.h"
#include "bgp/prefix_table.h"
#include "core/cluster.h"
#include "test_fixtures.h"

namespace netclust {
namespace {

namespace fs = std::filesystem;

class FileRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("netclust_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FileRoundTrip, SnapshotFilesInEveryFormat) {
  const auto& world = testing::GetSmallWorld();
  const synth::VantageGenerator vantages(world.internet,
                                         synth::DefaultVantageProfiles());
  const bgp::Snapshot original = vantages.MakeSnapshot(9, 0);  // OREGON

  const struct {
    bgp::SnapshotFileFormat format;
    const char* name;
  } cases[] = {
      {bgp::SnapshotFileFormat::kText, "table.txt"},
      {bgp::SnapshotFileFormat::kMrtV1, "table.v1.mrt"},
      {bgp::SnapshotFileFormat::kMrtV2, "table.v2.mrt"},
  };
  for (const auto& c : cases) {
    const std::string path = (dir_ / c.name).string();
    const auto saved = bgp::SaveSnapshotFile(
        original, path, c.format, net::PrefixStyle::kDottedMask, 42);
    ASSERT_TRUE(saved.ok()) << saved.error();

    const auto loaded = bgp::LoadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    EXPECT_EQ(loaded.value().format, c.format) << c.name;
    EXPECT_EQ(loaded.value().skipped, 0u);
    ASSERT_EQ(loaded.value().snapshot.entries.size(),
              original.entries.size())
        << c.name;
    for (std::size_t i = 0; i < original.entries.size(); ++i) {
      EXPECT_EQ(loaded.value().snapshot.entries[i].prefix,
                original.entries[i].prefix);
    }
  }
}

TEST_F(FileRoundTrip, LoadRejectsMissingFile) {
  const auto loaded = bgp::LoadSnapshotFile((dir_ / "absent.txt").string());
  EXPECT_FALSE(loaded.ok());
}

// Format sniffing reads the first 6 bytes; files shorter than that must
// come back as a clean parse error, not an out-of-bounds read of the
// sniff buffer. (The sniffer used to index bytes[5] unconditionally.)
TEST_F(FileRoundTrip, LoadRejectsEmptyFileCleanly) {
  const fs::path path = dir_ / "empty.mrt";
  { std::ofstream out(path, std::ios::binary); }
  const auto loaded = bgp::LoadSnapshotFile(path.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("too short"), std::string::npos)
      << loaded.error();
}

TEST_F(FileRoundTrip, LoadRejectsFiveByteFileCleanly) {
  const fs::path path = dir_ / "tiny.mrt";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("\x00\x00\x00\x00\x00", 5);
  }
  const auto loaded = bgp::LoadSnapshotFile(path.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("too short"), std::string::npos)
      << loaded.error();
}

TEST_F(FileRoundTrip, ClfLogRoundTripsLosslessly) {
  const auto& world = testing::GetSmallWorld();
  const auto& original = world.generated.log;

  const fs::path path = dir_ / "access.log";
  {
    std::ofstream out(path);
    EXPECT_EQ(original.WriteClfStream(out), original.request_count());
  }
  weblog::ServerLog reloaded("reloaded");
  {
    std::ifstream in(path);
    std::size_t malformed = 0;
    reloaded.AppendClfStream(in, &malformed);
    EXPECT_EQ(malformed, 0u);
  }
  ASSERT_EQ(reloaded.request_count(), original.request_count());
  EXPECT_EQ(reloaded.unique_clients(), original.unique_clients());
  EXPECT_EQ(reloaded.unique_urls(), original.unique_urls());
  EXPECT_EQ(reloaded.start_time(), original.start_time());
  EXPECT_EQ(reloaded.end_time(), original.end_time());
  for (std::size_t i = 0; i < original.requests().size(); i += 997) {
    const auto& a = original.requests()[i];
    const auto& b = reloaded.requests()[i];
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(original.url(a.url_id), reloaded.url(b.url_id));
    EXPECT_EQ(a.response_bytes, b.response_bytes);
    EXPECT_EQ(a.status, b.status);
  }
}

TEST_F(FileRoundTrip, FileBasedPipelineMatchesInMemoryClustering) {
  const auto& world = testing::GetSmallWorld();
  const synth::VantageGenerator vantages(world.internet,
                                         synth::DefaultVantageProfiles());

  // Persist four representative tables (two text styles, two MRT
  // generations) and the log.
  const struct {
    std::size_t source;
    bgp::SnapshotFileFormat format;
    const char* name;
  } tables[] = {
      {0, bgp::SnapshotFileFormat::kText, "aads.txt"},
      {1, bgp::SnapshotFileFormat::kText, "arin.txt"},
      {2, bgp::SnapshotFileFormat::kMrtV1, "att.mrt"},
      {9, bgp::SnapshotFileFormat::kMrtV2, "oregon.mrt"},
  };
  bgp::PrefixTable direct;
  bgp::PrefixTable via_files;
  for (const auto& t : tables) {
    bgp::Snapshot snapshot = vantages.MakeSnapshot(t.source, 0);
    // MRT carries no source-kind metadata; mirror the profile's kind.
    snapshot.info.kind = vantages.profiles()[t.source].info.kind;
    direct.AddSnapshot(snapshot);

    const std::string path = (dir_ / t.name).string();
    ASSERT_TRUE(bgp::SaveSnapshotFile(snapshot, path, t.format,
                                      vantages.profiles()[t.source].style)
                    .ok());
    auto loaded = bgp::LoadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    loaded.value().snapshot.info.kind = snapshot.info.kind;
    via_files.AddSnapshot(loaded.value().snapshot);
  }

  const fs::path log_path = dir_ / "access.log";
  {
    std::ofstream out(log_path);
    world.generated.log.WriteClfStream(out);
  }
  weblog::ServerLog log("from-file");
  {
    std::ifstream in(log_path);
    log.AppendClfStream(in);
  }

  const core::Clustering expected =
      core::ClusterNetworkAware(world.generated.log, direct);
  const core::Clustering actual = core::ClusterNetworkAware(log, via_files);
  ASSERT_EQ(actual.cluster_count(), expected.cluster_count());
  EXPECT_EQ(actual.client_count(), expected.client_count());
  EXPECT_EQ(actual.unclustered.size(), expected.unclustered.size());
  for (std::size_t c = 0; c < expected.clusters.size(); ++c) {
    EXPECT_EQ(actual.clusters[c].key, expected.clusters[c].key);
    EXPECT_EQ(actual.clusters[c].members.size(),
              expected.clusters[c].members.size());
    EXPECT_EQ(actual.clusters[c].requests, expected.clusters[c].requests);
  }
}

}  // namespace
}  // namespace netclust
