// LRU caches: the byte-capacity resource cache of the §4.1 proxy
// simulation, and the entry-count cache backing the server's mapping
// tier.
//
// LruByteCache is the replacement policy of every proxy in the §4.1
// simulation ("We use LRU as the cache replacement policy"). Keys are
// interned URL ids; each entry carries the resource size, the origin
// version it holds and its TTL expiry.
//
// NOTE the two classes give capacity 0 OPPOSITE meanings, each matching
// its workload: LruByteCache treats 0 as unbounded (the paper's "infinite
// cache" proxy experiment needs one), LruEntryCache treats 0 as disabled
// (a mapping tier configured off must cost nothing and cache nothing —
// the pre-fix code asserted instead; see the lru_cache_test regression).
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace netclust::cache {

struct CacheEntry {
  std::uint64_t size = 0;
  /// Origin version (modification epoch) this copy represents.
  std::uint64_t version = 0;
  /// Time at which the copy goes stale (fetch time + ttl).
  std::int64_t expires = 0;
};

/// LRU over bytes. capacity_bytes == 0 means unbounded (the paper's
/// "infinite cache" proxy experiment).
class LruByteCache {
 public:
  explicit LruByteCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Entry for `key`, touching it as most-recently-used. nullptr on miss.
  CacheEntry* Touch(std::uint32_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->entry;
  }

  /// Entry for `key` without promoting it (for inspection/piggybacking).
  CacheEntry* Peek(std::uint32_t key) {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->entry;
  }

  /// Inserts or replaces `key`, then evicts LRU entries until the cache
  /// fits. An entry larger than the whole capacity is not admitted — and
  /// the rejection leaves any existing copy under `key` untouched: a stale
  /// revalidation whose body outgrew the cache must not destroy the
  /// smaller, still-servable copy the proxy already holds (callers that
  /// really want it gone say so with Erase()).
  void Insert(std::uint32_t key, const CacheEntry& entry) {
    if (capacity_ != 0 && entry.size > capacity_) {
      return;
    }
    if (const auto it = index_.find(key); it != index_.end()) {
      used_ -= it->second->entry.size;
      it->second->entry = entry;
      used_ += entry.size;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Node{key, entry});
      index_.emplace(key, order_.begin());
      used_ += entry.size;
    }
    EvictToFit();
  }

  bool Erase(std::uint32_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    used_ -= it->second->entry.size;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }

  /// Least-recently-used key (only meaningful when !empty()).
  [[nodiscard]] std::uint32_t lru_key() const { return order_.back().key; }
  [[nodiscard]] bool empty() const { return order_.empty(); }

 private:
  struct Node {
    std::uint32_t key;
    CacheEntry entry;
  };

  void EvictToFit() {
    if (capacity_ == 0) return;
    while (used_ > capacity_ && !order_.empty()) {
      used_ -= order_.back().entry.size;
      index_.erase(order_.back().key);
      order_.pop_back();
    }
  }

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Node> order_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<Node>::iterator> index_;
};

/// Entry-count LRU over arbitrary values — the store behind the server's
/// per-reactor mapping tier (key = client /24, value = cached lookup
/// answer). Single-threaded by design: each reactor owns its own
/// instance, so there is no lock to take on the fast path.
///
/// capacity == 0 constructs a DISABLED cache: every Touch misses, every
/// Insert is refused, and no memory is held — mirroring the PR 2
/// `ring_capacity=0` floor fix instead of asserting in the constructor.
template <typename Value>
class LruEntryCache {
 public:
  explicit LruEntryCache(std::size_t capacity) : capacity_(capacity) {}

  /// True when the cache can ever hold an entry (capacity > 0).
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  /// Value for `key`, promoted to most-recently-used. nullptr on miss
  /// (always, when disabled).
  Value* Touch(std::uint32_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Inserts or replaces `key`. Returns false (and stores nothing) when
  /// the cache is disabled. At capacity, the LRU entry is evicted; the
  /// caller can observe that via size() staying flat.
  bool Insert(std::uint32_t key, Value value) {
    if (capacity_ == 0) return false;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (index_.size() >= capacity_) {
      assert(!order_.empty());
      index_.erase(order_.back().key);
      order_.pop_back();
    }
    order_.push_front(Node{key, std::move(value)});
    index_.emplace(key, order_.begin());
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return order_.empty(); }

 private:
  struct Node {
    std::uint32_t key;
    Value value;
  };

  std::size_t capacity_;
  std::list<Node> order_;  // front = most recent
  std::unordered_map<std::uint32_t, typename std::list<Node>::iterator>
      index_;
};

}  // namespace netclust::cache
