file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dynamics.dir/bench_table4_dynamics.cc.o"
  "CMakeFiles/bench_table4_dynamics.dir/bench_table4_dynamics.cc.o.d"
  "bench_table4_dynamics"
  "bench_table4_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
