#include "core/session.h"

#include <algorithm>

#include "core/parallel.h"

namespace netclust::core {

std::vector<weblog::ServerLog> PartitionIntoSessions(
    const weblog::ServerLog& log, int sessions, int threads) {
  std::vector<weblog::ServerLog> slices;
  if (sessions <= 0) return slices;
  slices.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    slices.emplace_back(log.name() + ".session" + std::to_string(s));
  }

  const std::int64_t span = log.end_time() - log.start_time() + 1;
  const std::int64_t slice_len =
      std::max<std::int64_t>(1, (span + sessions - 1) / sessions);

  // Each slice is built by one worker scanning the whole (shared, read-only)
  // log and appending only its own requests — no cross-thread writes, and
  // each slice preserves the log's time order, so the result is
  // bit-identical to a sequential partition.
  ParallelFor(
      slices.size(), threads,
      [&log, &slices, slice_len, sessions](std::size_t begin,
                                           std::size_t end) {
        for (const weblog::CompactRequest& request : log.requests()) {
          const auto slice = static_cast<std::size_t>(std::min<std::int64_t>(
              (request.timestamp - log.start_time()) / slice_len,
              sessions - 1));
          if (slice < begin || slice >= end) continue;
          weblog::LogRecord record;
          record.client = request.client;
          record.timestamp = request.timestamp;
          record.method = request.method;
          record.url = log.url(request.url_id);
          record.status = request.status;
          record.response_bytes = request.response_bytes;
          if (request.agent_id != 0) {
            record.user_agent =
                log.agent(static_cast<std::uint8_t>(request.agent_id - 1));
          }
          slices[slice].Append(record);
        }
      });
  return slices;
}

Clustering ClusterServers(const std::vector<AddressLoad>& servers,
                          const bgp::PrefixTable& table) {
  Clustering clustering = ClusterAddresses("servers", servers, table);
  clustering.approach = "server-clustering";
  return clustering;
}

}  // namespace netclust::core
