file(REMOVE_RECURSE
  "CMakeFiles/bench_network_clusters.dir/bench_network_clusters.cc.o"
  "CMakeFiles/bench_network_clusters.dir/bench_network_clusters.cc.o.d"
  "bench_network_clusters"
  "bench_network_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
