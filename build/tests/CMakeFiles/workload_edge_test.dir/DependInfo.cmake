
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_edge_test.cpp" "tests/CMakeFiles/workload_edge_test.dir/workload_edge_test.cpp.o" "gcc" "tests/CMakeFiles/workload_edge_test.dir/workload_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netclust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/netclust_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/weblog/CMakeFiles/netclust_weblog.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/netclust_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netclust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/netclust_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/netclust_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
