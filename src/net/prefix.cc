#include "net/prefix.h"

#include <charconv>
#include <ostream>

namespace netclust::net {

Result<Prefix> Prefix::Parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Fail("missing '/' in prefix: '" + std::string(text) + "'");
  }
  auto address = IpAddress::Parse(text.substr(0, slash));
  if (!address) return Fail(address.error());

  const std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return Fail("bad prefix length: '" + std::string(text) + "'");
  }
  return Prefix(address.value(), length);
}

std::string Prefix::ToString() const {
  return network().ToString() + "/" + std::to_string(length_);
}

std::string Prefix::ToDottedMaskString() const {
  return network().ToString() + "/" + IpAddress(netmask()).ToString();
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.ToString();
}

}  // namespace netclust::net
