// libFuzzer target: the netclustd wire-protocol decoder (server/proto.h)
// over arbitrary bytes — truncated frames, oversized lengths, bad
// version/opcode bytes — plus the chunking-independence and re-encode
// properties (see harness.h). Built by NETCLUST_FUZZERS=ON; links
// libFuzzer under Clang and standalone_main.cc elsewhere.
#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  netclust::fuzz::FuzzProto(data, size);
  return 0;
}
