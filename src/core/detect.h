// Spider and proxy identification (§4.1.1-4.1.2).
//
// The paper classifies clients as visible clients, hidden clients (behind
// proxies) and spiders, and identifies the suspects by combining:
//   * the share of its cluster's requests one host is responsible for
//     (Figure 10: the Sun spider issued 99.79% of its cluster's requests),
//   * the request arrival pattern: a proxy mimics the whole log's diurnal
//     wave, a spider's burst does not (Figure 9),
//   * the number of unique URLs accessed (spiders sweep the site),
//   * think time between consecutive requests, and
//   * the variety of User-Agent values a single host presents.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cluster.h"
#include "net/ip_address.h"
#include "weblog/log.h"

namespace netclust::core {

struct DetectionConfig {
  /// Arrival histograms use buckets of this width.
  int histogram_bucket_seconds = 3600;
  /// A candidate must issue at least this fraction of all log requests...
  double min_log_share = 0.002;
  /// ...and at least this share of its own cluster's requests.
  double min_cluster_share = 0.5;
  /// Arrival correlation below this suggests a spider...
  double spider_max_correlation = 0.5;
  /// ...at or above this (the diurnal mimic) suggests a proxy.
  double proxy_min_correlation = 0.5;
  /// A host active in at most this fraction of the log's time buckets is
  /// burst-like (spider crawls are tight sweeps, Figure 9(c)), even when
  /// the burst happens to overlap the diurnal peak.
  double spider_max_active_fraction = 0.5;
  /// A spider must have swept at least this many unique URLs.
  std::size_t spider_min_urls = 100;
  /// Hosts presenting at least this many distinct User-Agents are
  /// proxy-like regardless of correlation.
  std::size_t proxy_min_agents = 4;
  /// A diurnal-mimicking host only counts as a proxy if it also "has a
  /// shorter think time between requests than a client does" (§4.1.2) —
  /// otherwise it is just a busy ordinary client and is not flagged.
  double proxy_max_think_seconds = 10.0;
};

enum class SuspectKind { kSpider, kProxy };

struct Suspect {
  net::IpAddress client;
  std::uint32_t cluster = 0;  // index into the Clustering
  SuspectKind kind = SuspectKind::kSpider;
  std::uint64_t requests = 0;
  double cluster_request_share = 0.0;
  std::size_t unique_urls = 0;
  double arrival_correlation = 0.0;
  /// Fraction of the log's time buckets in which this host was active.
  double active_fraction = 0.0;
  std::size_t distinct_agents = 0;
  double mean_interarrival_seconds = 0.0;
};

struct DetectionReport {
  std::vector<Suspect> suspects;

  [[nodiscard]] std::unordered_set<net::IpAddress> SpiderAddresses() const;
  [[nodiscard]] std::unordered_set<net::IpAddress> ProxyAddresses() const;
  [[nodiscard]] std::unordered_set<net::IpAddress> AllAddresses() const;
};

/// Scans `log` (already clustered as `clustering`) for spider/proxy
/// suspects.
DetectionReport DetectSpidersAndProxies(const weblog::ServerLog& log,
                                        const Clustering& clustering,
                                        const DetectionConfig& config = {});

/// A copy of `log` without the requests of `clients` — the §4.1.1
/// elimination step before thresholding and cache simulation.
weblog::ServerLog RemoveClients(
    const weblog::ServerLog& log,
    const std::unordered_set<net::IpAddress>& clients);

}  // namespace netclust::core
