// Microbenchmarks (google-benchmark): the longest-prefix-match engines
// under a realistic merged table — the ablation behind the paper's claim
// that the method is "computationally non-intensive".
//
// Compares: path-compressed Patricia trie (production mutable structure),
// uncompressed binary trie, linear scan (oracle), the flat directory
// compiled at publish time (single and batched), and end-to-end
// clustering throughput.
//
// Besides the google-benchmark registrations, a hand-rolled section
// measures the serving-plane ladder — PrefixTable::LongestMatch (Patricia
// walk) vs FlatLpm single vs FlatLpm batched — writes it to
// BENCH_lpm.json, and enforces the floor the flat path exists for:
// batched flat lookups must clear 2x the Patricia single-lookup
// throughput. `--floor-only` skips the google-benchmark suite and runs
// just that section (CI's bench smoke).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/parallel.h"
#include "core/streaming.h"
#include "synth/rng.h"
#include "trie/binary_trie.h"
#include "trie/flat_lpm.h"
#include "trie/linear_lpm.h"
#include "trie/patricia_trie.h"

namespace {

using namespace netclust;

std::vector<net::Prefix> TablePrefixes() {
  static const std::vector<net::Prefix> prefixes =
      bench::GetScenario().table.AllPrefixes();
  return prefixes;
}

std::vector<net::IpAddress> ProbeAddresses(std::size_t count) {
  const auto& internet = bench::GetScenario().internet;
  synth::Rng rng(77);
  std::vector<net::IpAddress> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& allocation =
        internet.allocations()[rng.Uniform(internet.allocations().size())];
    probes.push_back(internet.HostAddress(allocation, rng.Uniform(4096)));
  }
  return probes;
}

void BM_PatriciaBuild(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  for (auto _ : state) {
    trie::PatriciaTrie<int> trie;
    for (const auto& prefix : prefixes) trie.Insert(prefix, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * prefixes.size()));
}
BENCHMARK(BM_PatriciaBuild);

void BM_BinaryBuild(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  for (auto _ : state) {
    trie::BinaryTrie<int> trie;
    for (const auto& prefix : prefixes) trie.Insert(prefix, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * prefixes.size()));
}
BENCHMARK(BM_BinaryBuild);

template <typename Lpm>
void LookupBench(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  Lpm lpm;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    lpm.Insert(prefixes[i], static_cast<int>(i));
  }
  const auto probes = ProbeAddresses(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm.LongestMatch(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_PatriciaLookup(benchmark::State& state) {
  LookupBench<trie::PatriciaTrie<int>>(state);
}
BENCHMARK(BM_PatriciaLookup);

void BM_BinaryLookup(benchmark::State& state) {
  LookupBench<trie::BinaryTrie<int>>(state);
}
BENCHMARK(BM_BinaryLookup);

void BM_LinearLookup(benchmark::State& state) {
  LookupBench<trie::LinearLpm<int>>(state);
}
BENCHMARK(BM_LinearLookup);

void BM_FlatCompile(benchmark::State& state) {
  // The cost every RCU publish pays to carry a compiled data plane.
  const auto& table = bench::GetScenario().table;
  for (auto _ : state) {
    const bgp::PrefixTable::Flat flat = table.CompileFlat();
    benchmark::DoNotOptimize(flat.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * table.size()));
}
BENCHMARK(BM_FlatCompile);

void BM_FlatLookup(benchmark::State& state) {
  static const bgp::PrefixTable::Flat flat =
      bench::GetScenario().table.CompileFlat();
  const auto probes = ProbeAddresses(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat.LongestMatch(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatLookup);

void BM_FlatLookupBatch(benchmark::State& state) {
  static const bgp::PrefixTable::Flat flat =
      bench::GetScenario().table.CompileFlat();
  const auto probes = ProbeAddresses(4096);
  std::vector<bgp::PrefixTable::Flat::Match> out(probes.size());
  for (auto _ : state) {
    flat.LookupBatch(probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * probes.size()));
}
BENCHMARK(BM_FlatLookupBatch);

void BM_PrefixTableLookup(benchmark::State& state) {
  // The production path: primary/secondary semantics over the full union.
  const auto& table = bench::GetScenario().table;
  const auto probes = ProbeAddresses(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LongestMatch(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixTableLookup);

void BM_StreamingObserve(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  const auto& requests = generated.log.requests();
  core::StreamingClusterer streaming("micro");
  for (std::size_t s = 0; s < scenario.vantages().profiles().size(); ++s) {
    streaming.SeedSnapshot(scenario.vantages().MakeSnapshot(s, 0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& request = requests[i];
    streaming.Observe(request.client, request.url_id,
                      request.response_bytes, request.timestamp);
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

void BM_ClusterLogParallel(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  for (auto _ : state) {
    const core::Clustering clustering = core::ClusterNetworkAwareParallel(
        generated.log, scenario.table, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(clustering.cluster_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * generated.log.request_count()));
}
BENCHMARK(BM_ClusterLogParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ClusterLog(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  for (auto _ : state) {
    const core::Clustering clustering =
        core::ClusterNetworkAware(generated.log, scenario.table);
    benchmark::DoNotOptimize(clustering.cluster_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * generated.log.request_count()));
}
BENCHMARK(BM_ClusterLog);

// ---------------------------------------------------------------------------
// The serving-plane ladder + BENCH_lpm.json + the 2x floor.

using Clock = std::chrono::steady_clock;

/// Runs `body(probe_index)` over the probe cycle until ~250ms have
/// elapsed (after one untimed warmup pass) and returns lookups/second.
template <typename Body>
double MeasureQps(std::size_t probe_count, const Body& body) {
  for (std::size_t i = 0; i < probe_count; ++i) body(i);  // warmup
  std::size_t done = 0;
  const Clock::time_point start = Clock::now();
  Clock::time_point now = start;
  while (now - start < std::chrono::milliseconds(250)) {
    for (std::size_t i = 0; i < probe_count; ++i) body(i);
    done += probe_count;
    now = Clock::now();
  }
  const double seconds =
      std::chrono::duration<double>(now - start).count();
  return static_cast<double>(done) / seconds;
}

int RunFloor() {
  const auto& table = bench::GetScenario().table;
  const bgp::PrefixTable::Flat flat = table.CompileFlat();
  const auto probes = ProbeAddresses(4096);

  std::printf("\nserving-plane ladder (%zu prefixes, %zu probe addresses)\n",
              table.size(), probes.size());
  std::printf("  flat directory: %s bytes, %zu child blocks\n",
              bench::Fmt(static_cast<double>(flat.directory_bytes())).c_str(),
              flat.block_count());

  const double patricia_single = MeasureQps(probes.size(), [&](std::size_t i) {
    benchmark::DoNotOptimize(table.LongestMatch(probes[i]));
  });
  const double flat_single = MeasureQps(probes.size(), [&](std::size_t i) {
    benchmark::DoNotOptimize(flat.LongestMatch(probes[i]));
  });
  // Batched: whole-probe-set batches, the Engine::LookupBatch shape.
  std::vector<bgp::PrefixTable::Flat::Match> out(probes.size());
  flat.LookupBatch(probes, out);  // warmup
  std::size_t batched_done = 0;
  const Clock::time_point start = Clock::now();
  Clock::time_point now = start;
  while (now - start < std::chrono::milliseconds(250)) {
    flat.LookupBatch(probes, out);
    benchmark::DoNotOptimize(out.data());
    batched_done += probes.size();
    now = Clock::now();
  }
  const double flat_batch =
      static_cast<double>(batched_done) /
      std::chrono::duration<double>(now - start).count();

  const double speedup = flat_batch / patricia_single;
  constexpr double kFloor = 2.0;
  const bool passed = speedup >= kFloor;

  std::printf("  %-28s %s lookups/s\n", "patricia single",
              bench::Fmt(patricia_single).c_str());
  std::printf("  %-28s %s lookups/s\n", "flat single",
              bench::Fmt(flat_single).c_str());
  std::printf("  %-28s %s lookups/s\n", "flat batched",
              bench::Fmt(flat_batch).c_str());
  std::printf("  %-28s %.2fx (floor %.1fx)\n", "batched vs patricia",
              speedup, kFloor);

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"table_prefixes\": %zu, \"probe_addresses\": %zu, "
      "\"directory_bytes\": %zu, \"patricia_single_qps\": %.0f, "
      "\"flat_single_qps\": %.0f, \"flat_batch_qps\": %.0f, "
      "\"speedup_batch_vs_patricia\": %.2f, \"floor\": %.1f, "
      "\"passed\": %s}",
      table.size(), probes.size(), flat.directory_bytes(), patricia_single,
      flat_single, flat_batch, speedup, kFloor, passed ? "true" : "false");
  std::FILE* file = std::fopen("BENCH_lpm.json", "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_micro_lpm: cannot write BENCH_lpm.json\n");
    return 1;
  }
  std::fprintf(file, "%s\n", json);
  std::fclose(file);
  std::printf("\nwrote BENCH_lpm.json: %s\n", json);

  if (!passed) {
    std::fprintf(stderr,
                 "bench_micro_lpm: flat batched is only %.2fx patricia "
                 "single — below the %.1fx floor\n",
                 speedup, kFloor);
    return 1;
  }
  std::printf("batched-lookup floor (%.1fx patricia single): cleared\n",
              kFloor);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool floor_only = false;
  // Strip our flag before google-benchmark sees the argument list.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--floor-only") == 0) {
      floor_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!floor_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return RunFloor();
}
