#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>

#include "server/io_util.h"

namespace netclust::server {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int EpollWait(int epoll_fd, epoll_event* events, int max_events) {
  for (;;) {
    const int n = ::epoll_wait(epoll_fd, events, max_events, -1);
    if (n >= 0 || errno != EINTR) return n;
  }
}

}  // namespace

Server::Server(engine::Engine* engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {}

Server::~Server() { Stop(); }

Result<std::uint16_t> Server::Serve() {
  if (serving_) return Fail("Serve() called twice");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Fail(std::string("epoll_create1: ") + std::strerror(errno));
  }
  auto listener = CreateListener(config_.port, config_.listen_backlog);
  if (!listener.ok()) {
    CloseFd(epoll_fd_);
    epoll_fd_ = -1;
    return Fail(listener.error());
  }
  listen_fd_ = listener.value();
  auto port = LocalPort(listen_fd_);
  if (!port.ok()) {
    Stop();
    return Fail(port.error());
  }
  port_ = port.value();

  // The wake descriptor is written once at Stop() and never read, so it
  // stays readable: every reader's epoll_wait returns, sees stopping_ and
  // exits — no per-thread wakeup bookkeeping.
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    Stop();
    return Fail(std::string("eventfd: ") + std::strerror(errno));
  }

  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.fd = wake_fd_;
  epoll_event listen_ev{};
  // EPOLLONESHOT on the listener too: exactly one reader runs the accept
  // loop at a time, rearming when it drains to EAGAIN.
  listen_ev.events = EPOLLIN | EPOLLONESHOT;
  listen_ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev) != 0 ||
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_ev) != 0) {
    Stop();
    return Fail(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }

  stopping_.store(false);
  serving_ = true;
  const int readers = config_.reader_threads > 0 ? config_.reader_threads : 2;
  readers_.reserve(static_cast<std::size_t>(readers));
  for (int i = 0; i < readers; ++i) {
    readers_.emplace_back([this] { ReaderLoop(); });
  }
  ingest_thread_ = std::thread([this] { IngestLoop(); });
  // The reaper enforces BOTH timeouts; disabling just the idle one must
  // not silently drop the mid-frame read cutoff (or vice versa).
  if (config_.idle_timeout_ms > 0 || config_.read_timeout_ms > 0) {
    reaper_thread_ = std::thread([this] { ReaperLoop(); });
  }
  return port_;
}

void Server::Stop() {
  if (!serving_) {
    // Partial Serve() failure cleanup: no threads were spawned yet.
    CloseFd(listen_fd_);
    CloseFd(wake_fd_);
    CloseFd(epoll_fd_);
    listen_fd_ = wake_fd_ = epoll_fd_ = -1;
    return;
  }
  serving_ = false;

  // 1. Stop accepting: pull the listener out of the interest set (its
  //    oneshot event may already be claimed — AcceptNew checks stopping_).
  stopping_.store(true);
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);

  // 2. Wake every reader. They finish the frames they have claimed
  //    (including waiting out queued ingest acks) and exit.
  const std::uint64_t one = 1;
  (void)RetryWrite(wake_fd_, &one, sizeof(one));
  for (std::thread& t : readers_) t.join();
  readers_.clear();

  // 3. With the readers gone, no job is left waiting: the ingest queue is
  //    empty or holds only jobs whose readers already got their acks.
  //    Signal shutdown and let the loop drain what remains.
  {
    base::MutexLock lock(&ingest_mu_);
    ingest_stopping_ = true;
  }
  ingest_cv_.NotifyAll();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // 4. Close whatever connections survived the drain.
  {
    base::MutexLock lock(&conn_mu_);
    for (auto& [fd, conn] : connections_) {
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      CloseFd(fd);
      metrics_.connections_closed.Inc();
      // order: relaxed — gauge bookkeeping only.
      metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    }
    connections_.clear();
  }

  CloseFd(listen_fd_);
  CloseFd(wake_fd_);
  CloseFd(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

std::string Server::StatsText() const {
  return metrics_.Exposition() + engine_->MetricsText();
}

// The wire-level stats record mirrors the engine histogram bucket-for-
// bucket so a client can merge fleets exactly.
static_assert(kStatsLatencyBuckets == engine::LatencyHistogram::kBuckets,
              "ClusterStatsRecord latency buckets must mirror the engine "
              "histogram layout");

Result<bool> Server::SetTopology(const Topology& topo) {
  if (config_.cluster_node_id < 0) {
    return Fail("standalone server cannot install a topology");
  }
  auto valid = ValidateTopology(topo);
  if (!valid.ok()) return Fail(valid.error());
  auto compiled = std::make_shared<CompiledTopology>();
  compiled->topo = topo;
  compiled->owner = CompileOwners(topo);
  compiled->self_index = NodeIndexOf(
      topo, static_cast<std::uint32_t>(config_.cluster_node_id));
  {
    base::MutexLock lock(&topo_mu_);
    if (topology_ != nullptr) {
      if (topo.epoch < topology_->topo.epoch) {
        return Fail("topology epoch must not regress");
      }
      if (topo.epoch == topology_->topo.epoch) {
        if (topo == topology_->topo) return true;  // idempotent re-push
        return Fail("conflicting topology at the installed epoch");
      }
    }
    topology_ = std::move(compiled);
  }
  metrics_.topology_installs.Inc();
  return true;
}

std::optional<Topology> Server::CurrentTopology() const {
  base::MutexLock lock(&topo_mu_);
  if (topology_ == nullptr) return std::nullopt;
  return topology_->topo;
}

std::shared_ptr<const Server::CompiledTopology> Server::AcquireTopology()
    const {
  base::MutexLock lock(&topo_mu_);
  return topology_;
}

ClusterStatsRecord Server::BuildClusterStats(
    const std::shared_ptr<const CompiledTopology>& topo) const {
  ClusterStatsRecord record;
  record.epoch = topo != nullptr ? topo->topo.epoch : 0;
  record.node_id = static_cast<std::uint32_t>(config_.cluster_node_id);
  record.frames_decoded = metrics_.frames_decoded.value();
  record.lookups_served = metrics_.lookups_served.value();
  record.cluster_lookups_served = metrics_.cluster_lookups_served.value();
  record.ingests_applied = metrics_.ingests_applied.value();
  record.busy_replies = metrics_.busy_replies.value();
  record.errors_sent = metrics_.errors_sent.value();
  record.redirects_sent = metrics_.redirects_sent.value();
  // order: relaxed — scrape-style read, same contract as the counters.
  record.connections_active = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, metrics_.connections_active.load(std::memory_order_relaxed)));
  record.latency_sum_ns = metrics_.lookup_service_ns.sum();
  for (std::size_t i = 0; i < kStatsLatencyBuckets; ++i) {
    record.latency_buckets[i] = metrics_.lookup_service_ns.bucket(i);
  }
  return record;
}

void Server::ReaderLoop() {
  constexpr int kMaxEvents = 32;
  epoll_event events[kMaxEvents];
  for (;;) {
    const int n = EpollWait(epoll_fd_, events, kMaxEvents);
    if (n < 0) return;  // epoll descriptor gone: shutdown
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) return;  // Stop() was called
      if (fd == listen_fd_) {
        if (!stopping_.load()) AcceptNew();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        base::MutexLock lock(&conn_mu_);
        auto it = connections_.find(fd);
        if (it != connections_.end()) conn = it->second;
      }
      if (!conn) continue;  // raced with a close; stale event
      bool expected = false;
      if (!conn->busy.compare_exchange_strong(expected, true)) {
        continue;  // the reaper claimed it first
      }
      ServiceConnection(conn);
    }
    if (stopping_.load()) return;
  }
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = RetryAccept(listen_fd_);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      break;  // transient accept error; the listener stays armed
    }
    bool over_limit = false;
    {
      base::MutexLock lock(&conn_mu_);
      over_limit = connections_.size() >= config_.max_connections;
    }
    if (over_limit || stopping_.load()) {
      // Explicit backpressure: tell the client we are full, then close.
      metrics_.connections_rejected.Inc();
      metrics_.busy_replies.Inc();
      const std::vector<std::uint8_t> busy = EncodeFrame(Opcode::kBusy, {});
      (void)WriteFull(fd, busy.data(), busy.size(), config_.write_timeout_ms);
      CloseFd(fd);
      continue;
    }
    if (!SetNonBlocking(fd, true)) {
      CloseFd(fd);
      continue;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_activity_ms.store(NowMs());
    {
      base::MutexLock lock(&conn_mu_);
      connections_.emplace(fd, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLONESHOT | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      base::MutexLock lock(&conn_mu_);
      connections_.erase(fd);
      CloseFd(fd);
      continue;
    }
    metrics_.connections_accepted.Inc();
    // order: relaxed — gauge bookkeeping only.
    metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
  }
  if (!stopping_.load()) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLONESHOT;
    ev.data.fd = listen_fd_;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev);
  }
}

void Server::ServiceConnection(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buffer[16384];
  for (;;) {
    const ssize_t n = RetryRead(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      metrics_.bytes_read.Inc(static_cast<std::uint64_t>(n));
      conn->last_activity_ms.store(NowMs());
      conn->decoder.Feed(buffer, static_cast<std::size_t>(n));
      for (;;) {
        auto next = conn->decoder.Next();
        if (!next.ok()) {
          // The stream is unsynchronized; report and hang up.
          metrics_.frames_rejected.Inc();
          (void)SendError(conn, ErrorCode::kMalformedFrame, next.error());
          CloseConnection(conn, nullptr);
          return;
        }
        if (!next.value().has_value()) break;  // partial frame; read more
        if (!DispatchFrame(conn, *next.value())) {
          CloseConnection(conn, nullptr);
          return;
        }
      }
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConnection(conn, nullptr);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn, nullptr);  // hard socket error
    return;
  }
  // Drained to EAGAIN: release the claim, then rearm for the next event.
  // Release-before-rearm, or a new event could land while busy is still
  // set and be dropped by the CAS (oneshot events are not redelivered).
  conn->busy.store(false);
  if (!RearmIfCurrent(conn)) {
    // Benign race with the reaper closing the descriptor under us.
    return;
  }
}

bool Server::RearmIfCurrent(const std::shared_ptr<Connection>& conn) {
  // Between the busy release and this rearm the reaper can close and erase
  // the connection and the kernel can recycle the fd number for a newly
  // accepted one; a stale MOD would then rearm the new connection's
  // oneshot and make its reader lose the busy CAS (dropping an event).
  // Close-and-erase and accept-and-insert both happen under conn_mu_, so
  // validating pointer identity and issuing the MOD under the same lock
  // guarantees the descriptor cannot be recycled in between.
  base::MutexLock lock(&conn_mu_);
  auto it = connections_.find(conn->fd);
  if (it == connections_.end() || it->second != conn) return false;
  return RearmConnection(*conn);
}

bool Server::RearmConnection(const Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLONESHOT | EPOLLRDHUP;
  ev.data.fd = conn.fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0;
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn,
                             engine::Counter* reason) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    base::MutexLock lock(&conn_mu_);
    connections_.erase(conn->fd);
  }
  CloseFd(conn->fd);
  metrics_.connections_closed.Inc();
  if (reason != nullptr) reason->Inc();
  // order: relaxed — gauge bookkeeping only.
  metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::SendFrame(const std::shared_ptr<Connection>& conn, Opcode opcode,
                       const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> wire = EncodeFrame(opcode, payload);
  auto written =
      WriteFull(conn->fd, wire.data(), wire.size(), config_.write_timeout_ms);
  if (!written.ok() || written.value() != IoStatus::kOk) return false;
  metrics_.bytes_written.Inc(wire.size());
  conn->last_activity_ms.store(NowMs());
  return true;
}

bool Server::SendError(const std::shared_ptr<Connection>& conn, ErrorCode code,
                       const std::string& message) {
  metrics_.errors_sent.Inc();
  return SendFrame(conn, Opcode::kError,
                   EncodeError(ErrorReply{code, message}));
}

bool Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const Frame& frame) {
  metrics_.frames_decoded.Inc();
  const std::uint64_t start_ns = engine::NowNs();
  // order: relaxed ×2 — approximate load-shedding threshold; an off-by-one
  // under contention only shifts where BUSY kicks in.
  const std::int64_t inflight =
      inflight_frames_.fetch_add(1, std::memory_order_relaxed) + 1;
  struct InflightGuard {
    std::atomic<std::int64_t>* counter;
    ~InflightGuard() {
      counter->fetch_sub(1, std::memory_order_relaxed);  // order: relaxed
    }
  } guard{&inflight_frames_};

  if (inflight > static_cast<std::int64_t>(config_.max_inflight_frames)) {
    metrics_.busy_replies.Inc();
    return SendFrame(conn, Opcode::kBusy, {});
  }

  switch (frame.header.opcode) {
    case Opcode::kPing: {
      if (frame.payload.size() > kMaxPingEcho) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "PING echo payload too large");
      }
      metrics_.pings_served.Inc();
      return SendFrame(conn, Opcode::kPong, frame.payload);
    }

    case Opcode::kLookup: {
      auto req = DecodeLookup(frame.payload.data(), frame.payload.size());
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload, req.error());
      }
      const LookupRecord record =
          LookupRecord::FromMatch(engine_->Lookup(req.value().address));
      if (!SendFrame(conn, Opcode::kLookupResult, EncodeLookupRecord(record))) {
        return false;
      }
      metrics_.lookups_served.Inc();
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kBatchLookup: {
      auto req = DecodeBatchLookup(frame.payload.data(), frame.payload.size());
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload, req.error());
      }
      // One engine batch call: single RCU acquire + prefetched flat-LPM
      // resolution, and every record answers from the same table version.
      const std::vector<net::IpAddress>& addresses = req.value().addresses;
      std::vector<std::optional<bgp::PrefixTable::Match>> matches(
          addresses.size());
      engine_->LookupBatch(addresses, matches);
      std::vector<LookupRecord> records;
      records.reserve(addresses.size());
      for (const auto& match : matches) {
        records.push_back(LookupRecord::FromMatch(match));
      }
      if (!SendFrame(conn, Opcode::kBatchResult, EncodeBatchResult(records))) {
        return false;
      }
      metrics_.lookups_served.Inc(records.size());
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kIngestUpdate: {
      auto req = DecodeIngest(frame.payload.data(), frame.payload.size());
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload, req.error());
      }
      if (req.value().source_id >=
          static_cast<std::uint32_t>(
              config_.source_count < 0 ? 0 : config_.source_count)) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "unknown ingest source id");
      }
      IngestJob job;
      job.request = std::move(req).value();
      {
        base::MutexLock lock(&ingest_mu_);
        if (ingest_stopping_) {
          return SendError(conn, ErrorCode::kShuttingDown,
                           "server is draining");
        }
        if (ingest_queue_.size() >= config_.max_inflight_frames) {
          metrics_.busy_replies.Inc();
          return SendFrame(conn, Opcode::kBusy, {});
        }
        ingest_queue_.push_back(&job);
      }
      ingest_cv_.NotifyOne();
      std::uint64_t version = 0;
      {
        base::MutexLock lock(&job.mu);
        while (!job.done) job.cv.Wait(job.mu);
        version = job.table_version;
      }
      if (!SendFrame(conn, Opcode::kIngestAck,
                     EncodeIngestAck(IngestAck{version}))) {
        return false;
      }
      metrics_.ingests_applied.Inc();
      return true;
    }

    case Opcode::kStats: {
      if (!frame.payload.empty()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "STATS takes no payload");
      }
      const std::string text = StatsText();
      metrics_.stats_served.Inc();
      return SendFrame(
          conn, Opcode::kStatsText,
          std::vector<std::uint8_t>(text.begin(), text.end()));
    }

    case Opcode::kClusterLookup: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kUnsupportedOpcode,
                         "CLUSTER_LOOKUP requires cluster mode");
      }
      auto req =
          DecodeClusterLookup(frame.payload.data(), frame.payload.size());
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload, req.error());
      }
      const auto topo = AcquireTopology();
      if (topo == nullptr) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "no topology installed");
      }
      // A redirect is the protocol's "ask again with fresher routing":
      // never answer for blocks this node does not own at the client's
      // epoch, or a mid-rebalance client could read a stale shard.
      if (req.value().epoch != topo->topo.epoch || topo->self_index < 0) {
        metrics_.redirects_sent.Inc();
        return SendFrame(conn, Opcode::kRedirect,
                         EncodeRedirect(RedirectReply{
                             RedirectReason::kStaleEpoch, topo->topo.epoch}));
      }
      const std::vector<net::IpAddress>& addresses = req.value().addresses;
      for (const net::IpAddress address : addresses) {
        if (topo->owner[address.bits() >> 16] !=
            static_cast<std::uint16_t>(topo->self_index)) {
          metrics_.redirects_sent.Inc();
          return SendFrame(conn, Opcode::kRedirect,
                           EncodeRedirect(RedirectReply{
                               RedirectReason::kNotOwner, topo->topo.epoch}));
        }
      }
      std::vector<std::optional<bgp::PrefixTable::Match>> matches(
          addresses.size());
      engine_->LookupBatch(addresses, matches);
      ClusterResult result;
      result.epoch = topo->topo.epoch;
      result.records.reserve(addresses.size());
      for (const auto& match : matches) {
        result.records.push_back(LookupRecord::FromMatch(match));
      }
      if (!SendFrame(conn, Opcode::kClusterResult,
                     EncodeClusterResult(result))) {
        return false;
      }
      metrics_.cluster_lookups_served.Inc(result.records.size());
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kTopology: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kUnsupportedOpcode,
                         "TOPOLOGY requires cluster mode");
      }
      if (!frame.payload.empty()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "TOPOLOGY takes no payload");
      }
      const auto topo = AcquireTopology();
      if (topo == nullptr) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "no topology installed");
      }
      return SendFrame(conn, Opcode::kTopologyReply,
                       EncodeTopology(topo->topo));
    }

    case Opcode::kSetTopology: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kUnsupportedOpcode,
                         "SET_TOPOLOGY requires cluster mode");
      }
      auto topo = DecodeTopology(frame.payload.data(), frame.payload.size());
      if (!topo.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload, topo.error());
      }
      auto installed = SetTopology(topo.value());
      if (!installed.ok()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         installed.error());
      }
      return SendFrame(conn, Opcode::kSetTopologyAck,
                       EncodeTopologyAck(topo.value().epoch));
    }

    case Opcode::kClusterStats: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kUnsupportedOpcode,
                         "CLUSTER_STATS requires cluster mode");
      }
      if (!frame.payload.empty()) {
        metrics_.frames_rejected.Inc();
        return SendError(conn, ErrorCode::kMalformedPayload,
                         "CLUSTER_STATS takes no payload");
      }
      const ClusterStatsRecord record = BuildClusterStats(AcquireTopology());
      metrics_.cluster_stats_served.Inc();
      return SendFrame(conn, Opcode::kClusterStatsReply,
                       EncodeClusterStats(record));
    }

    default: {
      metrics_.frames_rejected.Inc();
      return SendError(conn, ErrorCode::kUnsupportedOpcode,
                       std::string("not a request opcode: ") +
                           OpcodeName(frame.header.opcode));
    }
  }
}

void Server::IngestLoop() {
  for (;;) {
    IngestJob* job = nullptr;
    {
      base::MutexLock lock(&ingest_mu_);
      while (ingest_queue_.empty() && !ingest_stopping_) {
        ingest_cv_.Wait(ingest_mu_);
      }
      if (ingest_queue_.empty()) return;  // stopping and fully drained
      job = ingest_queue_.front();
      ingest_queue_.pop_front();
    }
    // This thread is the engine's single routing-plane caller while the
    // server runs (Engine's documented ingest-thread contract).
    engine_->ApplyUpdate(job->request.update,
                         static_cast<int>(job->request.source_id));
    const std::uint64_t version = engine_->table_version();
    {
      base::MutexLock lock(&job->mu);
      job->done = true;
      job->table_version = version;
      // Notify while still holding job->mu: the job lives on the waiting
      // reader's stack, and the reader cannot return from Wait() (and
      // destroy the job) until this mutex is released — signalling after
      // unlocking would race the job's destruction.
      job->cv.NotifyAll();
    }
  }
}

void Server::ReaperLoop() {
  // A non-positive timeout means "never": the thread runs whenever either
  // timeout is active, so disabling one leaves the other enforced.
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
  const std::int64_t read_limit =
      config_.read_timeout_ms > 0 ? config_.read_timeout_ms : kNever;
  const std::int64_t idle_limit =
      config_.idle_timeout_ms > 0 ? config_.idle_timeout_ms : kNever;
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const std::int64_t now = NowMs();
    std::vector<std::shared_ptr<Connection>> victims;
    {
      base::MutexLock lock(&conn_mu_);
      for (auto& [fd, conn] : connections_) {
        // Cheap pre-filter on the shorter threshold (the decoder cannot be
        // inspected before claiming the connection).
        if (now - conn->last_activity_ms.load() <
            std::min(read_limit, idle_limit)) {
          continue;
        }
        bool expected = false;
        // Claiming makes the inspection and close exclusive: a reader that
        // loses this CAS drops its event, so the descriptor cannot be
        // mid-service underneath us.
        if (!conn->busy.compare_exchange_strong(expected, true)) continue;
        // A stalled mid-frame peer is cut off on the (shorter) read
        // timeout; a merely quiet one on the idle timeout.
        const std::int64_t limit =
            conn->decoder.buffered() > 0 ? read_limit : idle_limit;
        if (now - conn->last_activity_ms.load() >= limit) {
          victims.push_back(conn);
          continue;
        }
        // Not expired after all: release the claim and rearm, recovering
        // any oneshot event a reader dropped while we held the claim.
        conn->busy.store(false);
        (void)RearmConnection(*conn);
      }
    }
    for (const auto& conn : victims) {
      CloseConnection(conn, &metrics_.connections_reaped);
    }
  }
}

}  // namespace netclust::server
