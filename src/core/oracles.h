// Measurement oracle interfaces.
//
// Validation (§3.3) and self-correction (§3.5) interrogate the network via
// nslookup and traceroute. The algorithms are written against these two
// interfaces; src/validate provides implementations backed by the synthetic
// ground truth (and, in a deployment, they would wrap the real tools).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/ip_address.h"

namespace netclust::core {

/// Reverse-DNS oracle. nullopt models NXDOMAIN/timeouts — which the paper
/// hit for ~50% of clients.
class NameOracle {
 public:
  virtual ~NameOracle() = default;
  [[nodiscard]] virtual std::optional<std::string> Resolve(
      net::IpAddress address) const = 0;
};

/// One traceroute observation.
struct TraceObservation {
  /// The destination's name, when the final hop answered and resolved.
  std::optional<std::string> host_name;
  /// Router names on the discovered path (excluding the host), core→edge.
  /// Never empty for a routable address: even firewalled hosts reveal the
  /// path up to their gateway, which is why the paper's optimized
  /// traceroute reaches 100% resolvability (name *or* path).
  std::vector<std::string> path;
  /// Probe/latency accounting for the §3.3 cost comparison.
  int probes_sent = 0;
  double seconds = 0.0;
};

/// Traceroute oracle.
class PathOracle {
 public:
  virtual ~PathOracle() = default;
  [[nodiscard]] virtual TraceObservation Trace(
      net::IpAddress address) const = 0;
};

/// Geolocation oracle (§4.1.4 groups proxies by AS *and* geography). In a
/// deployment this wraps a geo-IP database; the synthetic implementation
/// reads the ground truth.
class RegionOracle {
 public:
  virtual ~RegionOracle() = default;
  /// Coarse region id of `address` (negative = unknown).
  [[nodiscard]] virtual int RegionOf(net::IpAddress address) const = 0;
};

}  // namespace netclust::core
