// Table-free incremental client→cluster assignment.
//
// AssignmentState is the reassignment machinery of the streaming clusterer
// (§3.5) factored out from table ownership, so two consumers can share it:
//   * StreamingClusterer — one instance, resolving against its own mutable
//     PrefixTable;
//   * engine::ShardWorker — N instances over disjoint client sets, each
//     resolving against the current RCU-published immutable snapshot.
// Every method takes the table to resolve against explicitly; the state
// machine itself only tracks memberships and tallies.
//
// Accounting semantics match StreamingClusterer exactly: per-client
// request/byte tallies move with the client on reassignment; per-cluster
// unique-URL sets do not split (they are a property of the traffic the
// cluster absorbed while it existed).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/prefix_table.h"
#include "core/cluster.h"
#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::core {

class AssignmentState {
 public:
  static constexpr std::uint32_t kUnclustered = 0xFFFFFFFFu;

  /// Feeds one request; a first-seen client is resolved against `table`.
  void Observe(net::IpAddress client, std::uint32_t url_id,
               std::uint32_t bytes, const bgp::PrefixTable& table);

  /// A prefix newly appeared in `table`: re-resolves exactly the clients it
  /// can affect (members of ancestor-keyed clusters inside it, plus
  /// unclustered clients inside it). Returns the number of clients moved.
  std::size_t OnAnnounced(const net::Prefix& prefix,
                          const bgp::PrefixTable& table);

  /// A prefix left `table`: its cluster's members re-resolve to the
  /// next-best match (possibly unclustered). Returns the number moved.
  std::size_t OnWithdrawn(const net::Prefix& prefix,
                          const bgp::PrefixTable& table);

  [[nodiscard]] std::size_t live_cluster_count() const {
    return live_clusters_;
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] std::size_t unclustered_count() const {
    return unclustered_.size();
  }
  /// Requests observed (one per Observe call).
  [[nodiscard]] std::uint64_t request_count() const { return requests_; }

  /// Materializes one or more states (with pairwise-disjoint client sets —
  /// the engine's shards, or just {this}) as a single batch-compatible
  /// Clustering in *canonical* order: clients ascending by address, clusters
  /// ascending by key, member/unclustered indices ascending. Because the
  /// order is canonical, a sharded run merges bit-identically to a
  /// sequential replay of the same event sequence.
  static Clustering Merge(std::string approach, std::string log_name,
                          const std::vector<const AssignmentState*>& shards);

 private:
  struct ClientState {
    std::uint32_t cluster = kUnclustered;  // index into clusters_
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
  };
  struct StreamCluster {
    net::Prefix key;
    bool from_dump = false;
    bool live = false;  // false once withdrawn/emptied
    std::unordered_set<net::IpAddress> members;
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
    std::unordered_set<std::uint32_t> urls;
  };

  /// Cluster index for `prefix`, creating an empty live cluster if new.
  std::uint32_t ClusterFor(const net::Prefix& prefix, bool from_dump);

  /// Re-resolves one client against `table`, moving its tallies.
  /// Returns true if the assignment changed.
  bool Reassign(net::IpAddress client, const bgp::PrefixTable& table);

  /// Detaches `client` from its current cluster (if any).
  void Detach(net::IpAddress client, ClientState& state);

  std::vector<StreamCluster> clusters_;
  std::unordered_map<net::Prefix, std::uint32_t> cluster_index_;
  std::unordered_map<net::IpAddress, ClientState> clients_;
  std::unordered_set<net::IpAddress> unclustered_;
  std::size_t live_clusters_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace netclust::core
