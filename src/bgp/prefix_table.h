// The merged prefix/netmask table of §3.1: the union of entries from every
// routing-table snapshot, indexed for longest-prefix match.
//
// Source semantics follow the paper: BGP tables are the *primary* source
// and registry network dumps (ARIN/NLANR) the *secondary* one — a client is
// clustered by a network-dump prefix only when no BGP prefix matches it at
// all. This is what lifts coverage "from 99% to 99.9%" without letting the
// registries' coarse super-blocks shadow real routes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route_entry.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "trie/flat_lpm.h"
#include "trie/patricia_trie.h"

namespace netclust::bgp {

/// The merged table. Add snapshots, then issue LongestMatch queries.
class PrefixTable {
 public:
  static constexpr int kMaxSources = 32;
  /// AddSource() return value when the source-id space is exhausted.
  /// Insert() with it (or any other out-of-range id) is a counted no-op,
  /// so a 33rd source can never shift past the 32-bit source_mask.
  static constexpr int kInvalidSource = -1;

  struct Match {
    net::Prefix prefix;
    /// Which kind of source supplied the winning prefix — kNetworkDump only
    /// when no BGP prefix matched the address (secondary-source rule).
    SourceKind kind;
    /// Bitmask of source ids that contributed the winning prefix.
    std::uint32_t source_mask;
    /// Origin AS (last element of the AS path) of the winning prefix, or 0
    /// when unknown. §4.1.4 groups proxies by it.
    AsNumber origin_as;

    /// Field-wise equality, so Flat::ResolvesIdentically can compare what
    /// two compiled directories resolve to (the churn-equivalence bar for
    /// the incremental recompile).
    friend bool operator==(const Match&, const Match&) = default;
  };

  /// Per-source accounting (one row of Table 1 plus merge stats).
  struct SourceStats {
    SnapshotInfo info;
    std::size_t entries = 0;         // entries inserted from this source
    std::size_t unique_prefixes = 0; // distinct prefixes it contributed
    std::size_t new_prefixes = 0;    // prefixes no earlier source had
  };

  /// Registers a source and returns its id, or kInvalidSource once
  /// kMaxSources are registered (the id space is a 32-bit mask; a 33rd
  /// registration must fail detectably, not shift into undefined
  /// behaviour). Callers that cannot continue without the source should
  /// treat a negative id as an error.
  [[nodiscard]] int AddSource(const SnapshotInfo& info);

  /// Inserts one prefix attributed to `source_id`, optionally annotated
  /// with its origin AS (0 = unknown; the first known origin wins).
  /// An out-of-range source id (e.g. a propagated kInvalidSource) drops
  /// the insert and bumps rejected_inserts() instead of corrupting masks.
  /// Returns true when the table's lookup-visible state changed — a new
  /// prefix, or an existing one whose origin record was updated. A re-
  /// announce that changes nothing returns false, which is what lets the
  /// engine skip recompiling (and re-publishing) for duplicate updates.
  bool Insert(const net::Prefix& prefix, int source_id,
              AsNumber origin_as = 0);

  /// Inserts dropped because their source id was invalid.
  [[nodiscard]] std::size_t rejected_inserts() const {
    return rejected_inserts_;
  }

  /// Origin AS recorded for `prefix`, or 0.
  [[nodiscard]] AsNumber OriginAs(const net::Prefix& prefix) const;

  /// Removes `prefix` entirely (all sources) — a route withdrawal in the
  /// real-time pipeline. Per-source historical stats are not rewound.
  /// Returns true if the prefix was present.
  bool Remove(const net::Prefix& prefix) { return trie_.Remove(prefix); }

  /// Registers `snapshot.info` and inserts all its entries. Returns the
  /// source id, or kInvalidSource (inserting nothing) when the source
  /// space is exhausted.
  int AddSnapshot(const Snapshot& snapshot);

  /// Longest-prefix match under the primary/secondary rule. nullopt when no
  /// prefix at all covers `address` (the paper's ~0.1% unclusterable case).
  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const;

  /// The flat, immutable lookup structure compiled from one table state.
  /// Priority classes encode the primary/secondary rule, so
  /// Flat::LongestMatch is bit-identical to PrefixTable::LongestMatch
  /// (the *value pointed at is the complete Match, prefix included).
  using Flat = trie::FlatLpm<Match>;

  /// Compiles the current table into its flat form — one pass over the
  /// trie plus the directory paint. Called by RcuTableSlot::Publish so
  /// every published snapshot carries its compiled data plane.
  [[nodiscard]] Flat CompileFlat() const;

  /// Incremental recompile: copies `prev`'s directory and repaints only
  /// the root (/16) ranges a prefix in `changed` covers, gathering each
  /// touched range's candidate entries from the trie (covering prefixes
  /// via AllMatches, interior ones via VisitUnder). The result resolves
  /// every address identically to CompileFlat() — the churn equivalence
  /// suite asserts exactly that — at a cost proportional to the touched
  /// ranges, not the table.
  ///
  /// Repeated deltas orphan replaced blocks inside the copy; once the
  /// accumulated garbage would double the directory (prev holds more than
  /// 2x the live entries, plus slack for small tables) this falls back to
  /// a from-scratch CompileFlat(), which is the compaction step.
  [[nodiscard]] Flat CompileFlatDelta(
      const Flat& prev, std::span<const net::Prefix> changed) const;

  /// Number of distinct prefixes in the merged table.
  [[nodiscard]] std::size_t size() const { return trie_.size(); }

  [[nodiscard]] const std::vector<SourceStats>& sources() const {
    return sources_;
  }

  /// All distinct prefixes (any source), for dynamics analysis.
  [[nodiscard]] std::vector<net::Prefix> AllPrefixes() const;

  /// True if `prefix` is present in the table.
  [[nodiscard]] bool Contains(const net::Prefix& prefix) const;

 private:
  struct Origin {
    std::uint32_t source_mask = 0;
    bool from_bgp = false;
    bool from_dump = false;
    AsNumber origin_as = 0;
  };

  trie::PatriciaTrie<Origin> trie_;
  std::vector<SourceStats> sources_;
  std::size_t rejected_inserts_ = 0;
};

}  // namespace netclust::bgp
