// Real-time cluster monitoring (§3.5's "real-time client cluster
// identification results").
//
//   $ ./realtime_monitor
//
// Simulates a live deployment on the concurrent engine: shard workers are
// seeded from a RIB dump, then consume the server's request stream in
// half-hour windows while a BGP feed delivers UPDATE messages between
// windows (each one an RCU snapshot swap). Per-window demand is attributed
// with the lock-free serving-plane Lookup() — the path a production
// front-end would call from any thread. After each window it prints the
// operator's view — top clusters by demand in that window — the "global
// view of where their customers are located and how their demands change
// from time to time" the paper promises providers.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "bgp/update.h"
#include "engine/engine.h"
#include "synth/internet.h"
#include "synth/vantage.h"
#include "synth/workload.h"

int main() {
  using namespace netclust;

  synth::InternetConfig net_config;
  net_config.seed = 47;
  net_config.allocation_count = 3000;
  const synth::Internet internet = synth::GenerateInternet(net_config);
  const synth::VantageGenerator vantages(internet,
                                         synth::DefaultVantageProfiles());

  synth::WorkloadConfig workload;
  workload.seed = 48;
  workload.target_clients = 4000;
  workload.target_requests = 120000;
  workload.url_count = 3000;
  workload.duration_seconds = 4 * 3600;  // a busy four-hour event window
  const weblog::ServerLog log = synth::GenerateLog(internet, workload).log;

  engine::EngineConfig config;
  config.shards = 4;
  config.log_name = "event-live";
  engine::Engine engine(config);
  int feed_source = -1;
  for (std::size_t s = 0; s < vantages.profiles().size(); ++s) {
    const int id = engine.SeedSnapshot(vantages.MakeSnapshot(s, 0));
    if (vantages.profiles()[s].info.name == "OREGON") feed_source = id;
  }
  engine.Start();
  const auto feed = vantages.MakeUpdateStream(9 /*OREGON*/, 0, 0, 0, 4);
  std::printf("seeded %zu-prefix table (version %llu) across %d shards; "
              "live feed carries %zu UPDATEs\n",
              engine.AcquireTable()->size(),
              static_cast<unsigned long long>(engine.table_version()),
              engine.shard_count(), feed.size());

  // Replay in 30-minute windows.
  const auto& requests = log.requests();
  const std::int64_t window_len = 1800;
  std::size_t cursor = 0;
  std::size_t feed_cursor = 0;
  int window = 0;
  for (std::int64_t window_start = log.start_time();
       window_start <= log.end_time(); window_start += window_len, ++window) {
    const std::int64_t window_end = window_start + window_len;
    // Per-window demand, attributed by the currently published snapshot
    // via the lock-free serving plane.
    std::map<net::Prefix, std::uint64_t> demand;
    while (cursor < requests.size() &&
           requests[cursor].timestamp < window_end) {
      const auto& request = requests[cursor++];
      engine.Observe(request.client, request.url_id, request.response_bytes,
                     request.timestamp);
      const auto match = engine.Lookup(request.client);
      if (match.has_value()) ++demand[match->prefix];
    }

    // The busiest communities this window.
    const net::Prefix* top_prefix = nullptr;
    std::uint64_t top_requests = 0;
    std::uint64_t window_total = 0;
    for (const auto& [prefix, count] : demand) {
      window_total += count;
      if (count > top_requests) {
        top_requests = count;
        top_prefix = &prefix;
      }
    }
    std::printf("window %2d: %7llu requests, %4zu active clusters, "
                "hottest %-18s (%llu requests)\n",
                window, static_cast<unsigned long long>(window_total),
                demand.size(),
                top_prefix ? top_prefix->ToString().c_str() : "-",
                static_cast<unsigned long long>(top_requests));

    // Between windows, the routing feed ticks; each UPDATE is one RCU
    // table swap broadcast to the shards.
    const std::size_t until =
        static_cast<std::size_t>(window + 1) * feed.size() / 8;
    for (; feed_cursor < std::min(until, feed.size()); ++feed_cursor) {
      engine.ApplyUpdate(feed[feed_cursor], feed_source);
    }
  }

  const core::Clustering view = engine.Snapshot();
  const engine::EngineMetrics& metrics = engine.metrics();
  std::printf("\ntotals: %llu requests into %zu clusters; churn moved %llu "
              "clients across clusters; %zu clients currently "
              "unclustered\n",
              static_cast<unsigned long long>(
                  metrics.requests_processed.value()),
              view.cluster_count(),
              static_cast<unsigned long long>(metrics.reassignments.value()),
              view.unclustered.size());
  std::printf("table version %llu after %llu swaps; %llu lock-free lookups "
              "served\n",
              static_cast<unsigned long long>(engine.table_version()),
              static_cast<unsigned long long>(
                  metrics.swaps_published.value()),
              static_cast<unsigned long long>(metrics.lookups_served.value()));
  engine.Stop();

  // The counter section of the embedded exposition, as a scrape would see
  // it (histogram buckets elided for brevity).
  std::printf("\nmetrics exposition (counters):\n");
  std::istringstream exposition(engine.MetricsText());
  for (std::string line; std::getline(exposition, line);) {
    if (line.find("_total ") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}
