// Randomized round-trip properties for every wire/text codec in the
// library: CLF log lines, snapshot text in all three prefix styles, MRT
// (both generations) and BGP UPDATE messages. Each sweep is deterministic
// in its seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgp/mrt.h"
#include "bgp/text_parser.h"
#include "bgp/update.h"
#include "synth/rng.h"
#include "weblog/clf.h"

namespace netclust {
namespace {

using net::IpAddress;
using net::Prefix;

class CodecSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  synth::Rng rng_{GetParam()};

  IpAddress RandomAddress() {
    return IpAddress(static_cast<std::uint32_t>(rng_.Uniform(1ull << 32)));
  }

  Prefix RandomPrefix(int min_len = 0, int max_len = 32) {
    const int length =
        min_len + static_cast<int>(rng_.Uniform(
                      static_cast<std::uint64_t>(max_len - min_len + 1)));
    return Prefix(RandomAddress(), length);
  }

  std::vector<bgp::AsNumber> RandomAsPath(bgp::AsNumber cap) {
    std::vector<bgp::AsNumber> path;
    const std::size_t hops = rng_.Uniform(6);
    for (std::size_t i = 0; i < hops; ++i) {
      path.push_back(1 + static_cast<bgp::AsNumber>(rng_.Uniform(cap)));
    }
    return path;
  }

  bgp::Snapshot RandomSnapshot(std::size_t entries, bgp::AsNumber as_cap) {
    bgp::Snapshot snapshot;
    snapshot.info = {"FUZZ", "1/1/2000", bgp::SourceKind::kBgpTable, ""};
    for (std::size_t i = 0; i < entries; ++i) {
      bgp::RouteEntry entry;
      entry.prefix = RandomPrefix();
      entry.next_hop = RandomAddress();
      entry.as_path = RandomAsPath(as_cap);
      snapshot.entries.push_back(std::move(entry));
    }
    return snapshot;
  }
};

TEST_P(CodecSweep, ClfLinesRoundTrip) {
  const char* urls[] = {"/", "/index.html", "/a/b/c?q=1&r=2",
                        "/p%20q.html", "/results/speed_skating.html"};
  const char* agents[] = {"", "Mozilla/4.0 (compatible; MSIE 4.01)",
                          "Lynx/2.8.1rel.2 libwww-FM/2.14"};
  for (int i = 0; i < 200; ++i) {
    weblog::LogRecord record;
    record.client = RandomAddress();
    if (record.client.IsUnspecified()) continue;
    // Era-plausible timestamps (1995..2005).
    record.timestamp = 788918400 + static_cast<std::int64_t>(
                                       rng_.Uniform(10ull * 365 * 86400));
    record.method = static_cast<weblog::Method>(rng_.Uniform(4));
    record.url = urls[rng_.Uniform(std::size(urls))];
    record.status = 100 + static_cast<int>(rng_.Uniform(500));
    record.response_bytes = rng_.Uniform(1ull << 32);
    record.user_agent = agents[rng_.Uniform(std::size(agents))];

    const std::string line = weblog::FormatClfLine(record);
    const auto parsed = weblog::ParseClfLine(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.error();
    EXPECT_EQ(parsed.value(), record) << line;
  }
}

TEST_P(CodecSweep, SnapshotTextRoundTripsInEveryStyle) {
  for (const auto style :
       {net::PrefixStyle::kDottedMask, net::PrefixStyle::kCidr,
        net::PrefixStyle::kClassful}) {
    const bgp::Snapshot original = RandomSnapshot(100, 60000);
    bgp::ParseStats stats;
    const bgp::Snapshot decoded = bgp::ParseSnapshotText(
        bgp::WriteSnapshotText(original, style), original.info, &stats);
    ASSERT_EQ(stats.malformed_lines, 0u);
    ASSERT_EQ(decoded.entries.size(), original.entries.size());
    for (std::size_t i = 0; i < original.entries.size(); ++i) {
      EXPECT_EQ(decoded.entries[i].prefix, original.entries[i].prefix);
      EXPECT_EQ(decoded.entries[i].next_hop, original.entries[i].next_hop);
      EXPECT_EQ(decoded.entries[i].as_path, original.entries[i].as_path);
    }
  }
}

TEST_P(CodecSweep, MrtBothGenerationsRoundTrip) {
  // v2 carries 4-byte ASNs; v1 is tested with 2-byte-safe paths.
  const bgp::Snapshot wide = RandomSnapshot(80, 100000);
  const auto v2 = bgp::ReadMrt(bgp::WriteMrt(wide, 42), wide.info);
  ASSERT_TRUE(v2.ok()) << v2.error();
  ASSERT_EQ(v2.value().entries.size(), wide.entries.size());
  for (std::size_t i = 0; i < wide.entries.size(); ++i) {
    EXPECT_EQ(v2.value().entries[i].prefix, wide.entries[i].prefix);
    EXPECT_EQ(v2.value().entries[i].as_path, wide.entries[i].as_path);
  }

  const bgp::Snapshot narrow = RandomSnapshot(80, 60000);
  const auto v1 = bgp::ReadMrt(bgp::WriteMrtV1(narrow, 42), narrow.info);
  ASSERT_TRUE(v1.ok()) << v1.error();
  ASSERT_EQ(v1.value().entries.size(), narrow.entries.size());
  for (std::size_t i = 0; i < narrow.entries.size(); ++i) {
    EXPECT_EQ(v1.value().entries[i].prefix, narrow.entries[i].prefix);
    EXPECT_EQ(v1.value().entries[i].as_path, narrow.entries[i].as_path);
  }
}

TEST_P(CodecSweep, UpdateMessagesRoundTrip) {
  for (int i = 0; i < 50; ++i) {
    bgp::UpdateMessage update;
    const std::size_t withdrawn = rng_.Uniform(20);
    for (std::size_t w = 0; w < withdrawn; ++w) {
      update.withdrawn.push_back(RandomPrefix());
    }
    const std::size_t announced = rng_.Uniform(20);
    if (announced > 0) {
      update.as_path = RandomAsPath(60000);
      update.next_hop = RandomAddress();
      for (std::size_t a = 0; a < announced; ++a) {
        update.announced.push_back(RandomPrefix());
      }
    }
    const auto bytes = bgp::EncodeUpdate(update);
    std::size_t offset = 0;
    const auto decoded = bgp::DecodeUpdate(bytes, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), update);
    EXPECT_EQ(offset, bytes.size());
  }
}

TEST_P(CodecSweep, TruncatedUpdatesNeverDecode) {
  bgp::UpdateMessage update;
  update.announced = {RandomPrefix(8, 28), RandomPrefix(8, 28)};
  update.as_path = {7018};
  update.next_hop = RandomAddress();
  const auto bytes = bgp::EncodeUpdate(update);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    std::size_t offset = 0;
    EXPECT_FALSE(bgp::DecodeUpdate(truncated, &offset).ok())
        << "decoded at cut " << cut;
  }
}

TEST_P(CodecSweep, TruncatedMrtNeverCrashes) {
  const bgp::Snapshot snapshot = RandomSnapshot(8, 60000);
  const auto bytes = bgp::WriteMrt(snapshot, 7);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    // Must return an error or a shorter snapshot — never crash/UB.
    const auto decoded = bgp::ReadMrt(truncated, snapshot.info);
    if (decoded.ok()) {
      EXPECT_LE(decoded.value().entries.size(), snapshot.entries.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace netclust
