#include "core/network_cluster.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "test_fixtures.h"
#include "validate/oracles.h"

namespace netclust::core {
namespace {

TEST(NetworkClusters, GroupsClientClustersByUpstreamBorder) {
  // In the ground truth, every allocation's path is
  // [core, core, br<org>, gw<alloc>]: with skip_edge_hops=1 and
  // suffix_hops=1 the suffix is the org border router, so network
  // clusters must correspond to orgs.
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  const validate::OptimizedTraceroute oracle(world.internet);

  const NetworkClusteringResult result =
      ClusterClusters(clustering, oracle);
  EXPECT_FALSE(result.network_clusters.empty());
  EXPECT_LT(result.network_clusters.size(), clustering.cluster_count());
  EXPECT_GT(result.probes, 0u);

  // Every client cluster lands in exactly one network cluster.
  std::size_t placed = 0;
  for (const NetworkCluster& network : result.network_clusters) {
    placed += network.clusters.size();
  }
  EXPECT_EQ(placed + result.unresolved.size(), clustering.cluster_count());

  // Cross-check against ground truth: all client clusters inside one
  // network cluster belong to one org (unless the clusters themselves are
  // already too large — skip those).
  std::size_t checked = 0;
  for (const NetworkCluster& network : result.network_clusters) {
    std::optional<std::uint32_t> org;
    bool mixed_cluster = false;
    for (const std::size_t c : network.clusters) {
      const Cluster& cluster = clustering.clusters[c];
      const synth::Allocation* allocation = world.internet.Locate(
          clustering.clients[cluster.members.front()].address);
      if (allocation == nullptr) {
        mixed_cluster = true;
        break;
      }
      if (!org.has_value()) org = allocation->org;
    }
    if (mixed_cluster || !org.has_value()) continue;
    for (const std::size_t c : network.clusters) {
      const synth::Allocation* allocation = world.internet.Locate(
          clustering.clients[clustering.clusters[c].members.front()]
              .address);
      ASSERT_NE(allocation, nullptr);
      EXPECT_EQ(allocation->org, *org)
          << "network cluster mixes orgs: " << network.path_suffix;
    }
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(NetworkClusters, AggregatesStatsAndSortsByRequests) {
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);
  const validate::OptimizedTraceroute oracle(world.internet);
  const NetworkClusteringResult result =
      ClusterClusters(clustering, oracle);

  std::uint64_t total_requests = 0;
  std::size_t total_clients = 0;
  for (const NetworkCluster& network : result.network_clusters) {
    std::uint64_t requests = 0;
    std::size_t clients = 0;
    for (const std::size_t c : network.clusters) {
      requests += clustering.clusters[c].requests;
      clients += clustering.clusters[c].members.size();
    }
    EXPECT_EQ(network.requests, requests);
    EXPECT_EQ(network.clients, clients);
    total_requests += requests;
    total_clients += clients;
  }
  for (std::size_t i = 1; i < result.network_clusters.size(); ++i) {
    EXPECT_GE(result.network_clusters[i - 1].requests,
              result.network_clusters[i].requests);
  }
  EXPECT_GT(total_clients, 0u);
  EXPECT_GT(total_requests, 0u);
}

TEST(NetworkClusters, SampleCountIsBoundedByMembers) {
  // One-member clusters must not trip the sampling index logic.
  Clustering clustering;
  clustering.clients.push_back(
      ClientStats{net::IpAddress(10, 0, 0, 1), 5, 0});
  Cluster cluster;
  cluster.key = net::Prefix::Parse("10.0.0.0/24").value();
  cluster.members = {0};
  cluster.requests = 5;
  clustering.clusters.push_back(cluster);

  class FixedOracle final : public PathOracle {
   public:
    [[nodiscard]] TraceObservation Trace(net::IpAddress) const override {
      TraceObservation observation;
      observation.path = {"core", "br", "gw"};
      observation.probes_sent = 1;
      return observation;
    }
  } oracle;

  NetworkClusterConfig config;
  config.samples_per_cluster = 5;
  const auto result = ClusterClusters(clustering, oracle, config);
  ASSERT_EQ(result.network_clusters.size(), 1u);
  EXPECT_EQ(result.network_clusters[0].path_suffix, "br");
  EXPECT_EQ(result.probes, 1u);
}

TEST(NetworkClusters, UnresolvableClustersAreReported) {
  Clustering clustering;
  clustering.clients.push_back(
      ClientStats{net::IpAddress(10, 0, 0, 1), 5, 0});
  Cluster cluster;
  cluster.key = net::Prefix::Parse("10.0.0.0/24").value();
  cluster.members = {0};
  clustering.clusters.push_back(cluster);

  class DeadOracle final : public PathOracle {
   public:
    [[nodiscard]] TraceObservation Trace(net::IpAddress) const override {
      return {};  // no path at all
    }
  } oracle;

  const auto result = ClusterClusters(clustering, oracle);
  EXPECT_TRUE(result.network_clusters.empty());
  ASSERT_EQ(result.unresolved.size(), 1u);
  EXPECT_EQ(result.unresolved[0], 0u);
}

}  // namespace
}  // namespace netclust::core
