#include "core/streaming.h"

namespace netclust::core {

StreamingClusterer::StreamingClusterer(std::string log_name)
    : log_name_(std::move(log_name)) {}

int StreamingClusterer::AddSource(const bgp::SnapshotInfo& info) {
  base::MutexLock lock(&mu_);
  return table_.AddSource(info);
}

int StreamingClusterer::SeedSnapshot(const bgp::Snapshot& snapshot) {
  base::MutexLock lock(&mu_);
  return table_.AddSnapshot(snapshot);
}

void StreamingClusterer::AnnounceLocked(const net::Prefix& prefix,
                                        int source_id,
                                        bgp::AsNumber origin_as) {
  ++stats_.announce_events;
  const bool existed = table_.Contains(prefix);
  table_.Insert(prefix, source_id, origin_as);
  if (existed) return;  // attribute refresh: assignments unchanged
  stats_.reassignments += state_.OnAnnounced(prefix, table_);
}

void StreamingClusterer::WithdrawLocked(const net::Prefix& prefix) {
  ++stats_.withdraw_events;
  if (!table_.Remove(prefix)) return;
  stats_.reassignments += state_.OnWithdrawn(prefix, table_);
}

void StreamingClusterer::Announce(const net::Prefix& prefix, int source_id,
                                  bgp::AsNumber origin_as) {
  base::MutexLock lock(&mu_);
  AnnounceLocked(prefix, source_id, origin_as);
}

void StreamingClusterer::Withdraw(const net::Prefix& prefix) {
  base::MutexLock lock(&mu_);
  WithdrawLocked(prefix);
}

void StreamingClusterer::ApplyUpdate(const bgp::UpdateMessage& update,
                                     int source_id) {
  // One lock acquisition for the whole UPDATE, so a concurrent reader
  // never observes a half-applied message.
  base::MutexLock lock(&mu_);
  for (const net::Prefix& prefix : update.withdrawn) {
    WithdrawLocked(prefix);
  }
  const bgp::AsNumber origin =
      update.as_path.empty() ? 0 : update.as_path.back();
  for (const net::Prefix& prefix : update.announced) {
    AnnounceLocked(prefix, source_id, origin);
  }
}

void StreamingClusterer::Observe(net::IpAddress client, std::uint32_t url_id,
                                 std::uint32_t bytes,
                                 std::int64_t /*timestamp*/) {
  base::MutexLock lock(&mu_);
  ++stats_.requests;
  state_.Observe(client, url_id, bytes, table_);
}

void StreamingClusterer::ObserveLog(const weblog::ServerLog& log) {
  for (const weblog::CompactRequest& request : log.requests()) {
    Observe(request.client, request.url_id, request.response_bytes,
            request.timestamp);
  }
}

Clustering StreamingClusterer::ToClustering() const {
  base::MutexLock lock(&mu_);
  return AssignmentState::Merge("network-aware-streaming", log_name_,
                                {&state_});
}

}  // namespace netclust::core
