#include "core/compare.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "validate/oracles.h"

#include "core/self_correct.h"

namespace netclust::core {
namespace {

using net::IpAddress;
using net::Prefix;

Clustering Make(const std::vector<std::vector<const char*>>& groups,
                const std::vector<const char*>& loose = {}) {
  Clustering clustering;
  std::uint32_t id = 0;
  std::uint32_t block = 0;
  for (const auto& group : groups) {
    Cluster cluster;
    cluster.key = Prefix(IpAddress(10, 0, static_cast<std::uint8_t>(block++), 0), 24);
    for (const char* address : group) {
      clustering.clients.push_back(
          ClientStats{IpAddress::Parse(address).value(), 1, 0});
      cluster.members.push_back(id++);
    }
    clustering.clusters.push_back(std::move(cluster));
  }
  for (const char* address : loose) {
    clustering.clients.push_back(
        ClientStats{IpAddress::Parse(address).value(), 1, 0});
    clustering.unclustered.push_back(id++);
  }
  return clustering;
}

TEST(Compare, IdenticalClusteringsScorePerfect) {
  const Clustering a =
      Make({{"1.1.1.1", "1.1.1.2"}, {"2.2.2.1", "2.2.2.2", "2.2.2.3"}});
  const ClusteringComparison c = CompareClusterings(a, a);
  EXPECT_EQ(c.shared_clients, 5u);
  EXPECT_DOUBLE_EQ(c.bcubed_precision, 1.0);
  EXPECT_DOUBLE_EQ(c.bcubed_recall, 1.0);
  EXPECT_DOUBLE_EQ(c.rand_index, 1.0);
  EXPECT_DOUBLE_EQ(c.BCubedF1(), 1.0);
}

TEST(Compare, SplitLowersRecallNotPrecision) {
  // Reference: one 4-client cluster. Left: split into two pairs.
  const Clustering reference =
      Make({{"1.1.1.1", "1.1.1.2", "1.1.1.3", "1.1.1.4"}});
  const Clustering split =
      Make({{"1.1.1.1", "1.1.1.2"}, {"1.1.1.3", "1.1.1.4"}});
  const ClusteringComparison c = CompareClusterings(split, reference);
  EXPECT_DOUBLE_EQ(c.bcubed_precision, 1.0);  // siblings are true siblings
  EXPECT_DOUBLE_EQ(c.bcubed_recall, 0.5);     // half the true siblings lost
  // Rand: pairs 6 total, 2 in-pair agreements, 4 cross-pair disagreements.
  EXPECT_NEAR(c.rand_index, 1.0 - 4.0 / 6.0, 1e-12);
}

TEST(Compare, MergeLowersPrecisionNotRecall) {
  const Clustering reference =
      Make({{"1.1.1.1", "1.1.1.2"}, {"1.1.1.3", "1.1.1.4"}});
  const Clustering merged =
      Make({{"1.1.1.1", "1.1.1.2", "1.1.1.3", "1.1.1.4"}});
  const ClusteringComparison c = CompareClusterings(merged, reference);
  EXPECT_DOUBLE_EQ(c.bcubed_precision, 0.5);
  EXPECT_DOUBLE_EQ(c.bcubed_recall, 1.0);
}

TEST(Compare, UnclusteredClientsAreSingletons) {
  const Clustering a = Make({{"1.1.1.1", "1.1.1.2"}}, {"9.9.9.9"});
  const Clustering b = Make({{"1.1.1.1", "1.1.1.2"}, {"9.9.9.9"}});
  const ClusteringComparison c = CompareClusterings(a, b);
  EXPECT_EQ(c.shared_clients, 3u);
  EXPECT_DOUBLE_EQ(c.rand_index, 1.0);  // singleton == singleton cluster
}

TEST(Compare, DisjointClientSetsAreReported) {
  const Clustering a = Make({{"1.1.1.1"}});
  const Clustering b = Make({{"2.2.2.2", "2.2.2.3"}});
  const ClusteringComparison c = CompareClusterings(a, b);
  EXPECT_EQ(c.shared_clients, 0u);
  EXPECT_EQ(c.only_in_left, 1u);
  EXPECT_EQ(c.only_in_right, 2u);
}

TEST(Compare, SimpleApproachScoresWorseThanSelfCorrected) {
  // End-to-end sanity: against the batch network-aware clustering, the
  // /24 baseline must agree less than the self-corrected clustering does.
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering aware =
      ClusterNetworkAware(world.generated.log, world.table);
  const Clustering simple = ClusterSimple(world.generated.log);
  const validate::OptimizedTraceroute oracle(world.internet);
  const auto [corrected, report] = SelfCorrect(aware, oracle);

  const auto simple_score = CompareClusterings(simple, aware);
  const auto corrected_score = CompareClusterings(corrected, aware);
  EXPECT_EQ(simple_score.shared_clients, aware.client_count());
  EXPECT_LT(simple_score.BCubedF1(), corrected_score.BCubedF1());
  EXPECT_LT(simple_score.bcubed_recall, 0.9);  // /24 fragments communities
  // Corrections split the aggregated (too-large) clusters, so recall
  // against the *raw* clustering dips, but never below the wholesale
  // damage the /24 heuristic does.
  EXPECT_GT(corrected_score.BCubedF1(), 0.8);
  // Near-perfect precision: merges (same-path clusters fused) are rare.
  EXPECT_GT(corrected_score.bcubed_precision, 0.99);
}

}  // namespace
}  // namespace netclust::core
