// Quantitative comparison of two clusterings of the same client set.
//
// Used to measure how close a clustering is to a reference: streaming vs
// batch, before vs after self-correction, day-0 vs day-14 tables, or the
// simple /24 baseline vs the network-aware result. Two standard measures:
//
//   * B-cubed precision/recall — per client, what fraction of its cluster
//     siblings are true siblings (precision) and what fraction of its true
//     siblings it retained (recall). Precision drops for too-large
//     clusters, recall for too-small ones, exactly matching the paper's
//     two mis-identification modes.
//   * Rand index — fraction of client pairs on which the clusterings agree
//     (same-cluster vs different-cluster).
//
// Clients present in only one clustering are ignored (reported in the
// result). Unclustered clients count as singleton clusters.
#pragma once

#include <cstdint>

#include "core/cluster.h"

namespace netclust::core {

struct ClusteringComparison {
  std::size_t shared_clients = 0;
  std::size_t only_in_left = 0;
  std::size_t only_in_right = 0;
  /// B-cubed measures of `left` against `right` as the reference.
  double bcubed_precision = 1.0;
  double bcubed_recall = 1.0;
  /// Rand index over shared clients (exact, pair-counted).
  double rand_index = 1.0;

  [[nodiscard]] double BCubedF1() const {
    const double denominator = bcubed_precision + bcubed_recall;
    return denominator == 0.0
               ? 0.0
               : 2.0 * bcubed_precision * bcubed_recall / denominator;
  }
};

/// Compares `left` against the reference clustering `right`.
ClusteringComparison CompareClusterings(const Clustering& left,
                                        const Clustering& right);

}  // namespace netclust::core
