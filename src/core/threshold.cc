#include "core/threshold.h"

#include <algorithm>

#include "core/metrics.h"

namespace netclust::core {

ThresholdReport ThresholdBusyClusters(const Clustering& clustering,
                                      double fraction) {
  ThresholdReport report;
  report.fraction = fraction;
  if (clustering.clusters.empty()) return report;

  std::uint64_t clustered_requests = 0;
  for (const Cluster& cluster : clustering.clusters) {
    clustered_requests += cluster.requests;
  }
  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(clustered_requests));

  const std::vector<std::size_t> order = OrderByRequests(clustering);
  std::uint64_t running = 0;
  std::size_t cut = 0;
  while (cut < order.size() && running < target) {
    running += clustering.clusters[order[cut]].requests;
    ++cut;
  }
  report.busy.assign(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(cut));
  report.busy_requests = running;

  bool first_busy = true;
  for (const std::size_t index : report.busy) {
    const Cluster& cluster = clustering.clusters[index];
    report.busy_clients += cluster.members.size();
    if (first_busy) {
      report.busy_min_requests = report.busy_max_requests = cluster.requests;
      report.busy_min_clients = report.busy_max_clients =
          cluster.members.size();
      first_busy = false;
    } else {
      report.busy_min_requests =
          std::min(report.busy_min_requests, cluster.requests);
      report.busy_max_requests =
          std::max(report.busy_max_requests, cluster.requests);
      report.busy_min_clients =
          std::min(report.busy_min_clients, cluster.members.size());
      report.busy_max_clients =
          std::max(report.busy_max_clients, cluster.members.size());
    }
  }
  report.threshold_requests = report.busy_min_requests;

  bool first_rest = true;
  for (std::size_t i = cut; i < order.size(); ++i) {
    const Cluster& cluster = clustering.clusters[order[i]];
    if (first_rest) {
      report.less_busy_min_requests = report.less_busy_max_requests =
          cluster.requests;
      report.less_busy_min_clients = report.less_busy_max_clients =
          cluster.members.size();
      first_rest = false;
    } else {
      report.less_busy_min_requests =
          std::min(report.less_busy_min_requests, cluster.requests);
      report.less_busy_max_requests =
          std::max(report.less_busy_max_requests, cluster.requests);
      report.less_busy_min_clients =
          std::min(report.less_busy_min_clients, cluster.members.size());
      report.less_busy_max_clients =
          std::max(report.less_busy_max_clients, cluster.members.size());
    }
  }
  return report;
}

}  // namespace netclust::core
