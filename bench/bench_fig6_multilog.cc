// Figure 6: the cluster distributions of Figures 4/5 across all four logs
// (Apache, EW3, Nagano, Sun) — the observations generalize beyond Nagano.
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/metrics.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "Figure 6 — cluster distributions across Apache/EW3/Nagano/Sun",
      "every log shows the same shapes: heavy-tailed cluster sizes, "
      "heavier-tailed requests, suspected proxies/spiders in each");

  const auto& scenario = bench::GetScenario();
  for (const auto preset :
       {bench::LogPreset::kApache, bench::LogPreset::kEw3,
        bench::LogPreset::kNagano, bench::LogPreset::kSun}) {
    const auto generated = bench::MakeLog(preset);
    const core::Clustering clustering =
        core::ClusterNetworkAware(generated.log, scenario.table);
    const auto summary = core::Summarize(clustering);

    std::printf("\n=== %s: %zu requests, %zu clients, %zu clusters ===\n",
                bench::PresetName(preset), generated.log.request_count(),
                generated.log.unique_clients(), summary.clusters);

    const auto by_clients = core::OrderByClients(clustering);
    const auto by_requests = core::OrderByRequests(clustering);
    std::vector<std::pair<double, double>> a;
    std::vector<std::pair<double, double>> b;
    std::vector<std::pair<double, double>> c;
    std::vector<std::pair<double, double>> d;
    for (std::size_t rank = 0; rank < by_clients.size(); ++rank) {
      const auto& by_c = clustering.clusters[by_clients[rank]];
      const auto& by_r = clustering.clusters[by_requests[rank]];
      const double x = static_cast<double>(rank + 1);
      a.emplace_back(x, static_cast<double>(by_c.members.size()));
      b.emplace_back(x, static_cast<double>(by_c.requests));
      c.emplace_back(x, static_cast<double>(by_r.requests));
      d.emplace_back(x, static_cast<double>(by_r.members.size()));
    }
    bench::PrintSeries("Fig 6(a): clients (rank by clients)", "rank",
                       "clients", a, 12);
    bench::PrintSeries("Fig 6(b): requests (rank by clients)", "rank",
                       "requests", b, 12);
    bench::PrintSeries("Fig 6(c): requests (rank by requests)", "rank",
                       "requests", c, 12);
    bench::PrintSeries("Fig 6(d): clients (rank by requests)", "rank",
                       "clients", d, 12);

    std::printf("coverage %.2f%%  max cluster %zu clients  "
                "busiest cluster %llu requests\n",
                100.0 * clustering.coverage(), summary.max_cluster_clients,
                static_cast<unsigned long long>(summary.max_cluster_requests));
  }
  return 0;
}
