#include "validate/suffix.h"

#include <gtest/gtest.h>

namespace netclust::validate {
namespace {

TEST(Suffix, ComponentCount) {
  EXPECT_EQ(ComponentCount(""), 0u);
  EXPECT_EQ(ComponentCount("com"), 1u);
  EXPECT_EQ(ComponentCount("foo.dummy.com"), 3u);  // paper's own example
  EXPECT_EQ(ComponentCount("macbeth.cs.wits.ac.za"), 5u);
}

TEST(Suffix, NonTrivialSuffixDepthRule) {
  // n = 3 when m >= 4, else n = 2 (footnote 7).
  EXPECT_EQ(NonTrivialSuffix("macbeth.cs.wits.ac.za"), "wits.ac.za");
  EXPECT_EQ(NonTrivialSuffix("h1.cs.univ7.edu"), "cs.univ7.edu");
  EXPECT_EQ(NonTrivialSuffix("foo.dummy.com"), "dummy.com");
  EXPECT_EQ(NonTrivialSuffix("dummy.com"), "dummy.com");
  EXPECT_EQ(NonTrivialSuffix("com"), "com");
}

TEST(Suffix, PaperExamplePairMatches) {
  // macbeth.cs.wits.ac.za and macabre.cs.wits.ac.za are in one cluster.
  EXPECT_TRUE(SharesNonTrivialSuffix("macbeth.cs.wits.ac.za",
                                     "macabre.cs.wits.ac.za"));
}

TEST(Suffix, PaperCounterexamplesDiffer) {
  // §2: the three 151.198.194.x hosts belong to different entities.
  EXPECT_FALSE(SharesNonTrivialSuffix(
      "client-151-198-194-17.bellatlantic.net", "mailsrv1.wakefern.com"));
  EXPECT_FALSE(SharesNonTrivialSuffix("mailsrv1.wakefern.com",
                                      "firewall.commonhealthusa.com"));
}

TEST(Suffix, MixedDepthUsesShallowerRule) {
  // When depths disagree, the shorter name's depth decides: "a.b.com" is
  // compared at 2 components even against a 4-component name.
  EXPECT_TRUE(SharesNonTrivialSuffix("a.b.com", "x.a.b.com"));
  EXPECT_TRUE(SharesNonTrivialSuffix("a.b.com", "x.c.b.com"));
  EXPECT_FALSE(SharesNonTrivialSuffix("a.b.com", "x.c.d.com"));
}

TEST(Suffix, SameDepartmentDifferentHostsMatch) {
  EXPECT_TRUE(SharesNonTrivialSuffix("h1.cs.univ7.edu", "h9.cs.univ7.edu"));
  EXPECT_FALSE(SharesNonTrivialSuffix("h1.cs.univ7.edu", "h1.ee.univ7.edu"));
}

TEST(Suffix, LooksUsBased) {
  EXPECT_TRUE(LooksUsBased("www.example.com"));
  EXPECT_TRUE(LooksUsBased("host.agency.gov"));
  EXPECT_TRUE(LooksUsBased("city.portland.us"));
  EXPECT_FALSE(LooksUsBased("macbeth.cs.wits.ac.za"));
  EXPECT_FALSE(LooksUsBased("www.uni-koeln.de"));
  EXPECT_FALSE(LooksUsBased("site.co.jp"));
}

}  // namespace
}  // namespace netclust::validate
