# Empty compiler generated dependencies file for prefix_table_test.
# This may be replaced when dependencies are built.
