// Refcounted immutable PrefixTable snapshots with RCU-style publication.
//
// The real-time engine (src/engine) never lets a lookup take a lock: the
// merged table lives behind an RcuTableSlot, writers build a *new* table
// (clone + apply the UPDATE batch), and publish it with one atomic
// pointer swap. Readers that acquired the previous snapshot keep a
// reference count on it, so the old table stays alive until the last
// in-flight lookup drops it — classic read-copy-update, with shared_ptr
// refcounts standing in for grace periods.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "bgp/prefix_table.h"

namespace netclust::bgp {

/// A refcounted, versioned, immutable PrefixTable snapshot. Cheap to copy
/// (one refcount increment); the table itself is never mutated after
/// publication.
class TableHandle {
 public:
  TableHandle() = default;

  [[nodiscard]] const PrefixTable& operator*() const { return state_->table; }
  [[nodiscard]] const PrefixTable* operator->() const {
    return &state_->table;
  }
  [[nodiscard]] const PrefixTable* get() const {
    return state_ == nullptr ? nullptr : &state_->table;
  }
  explicit operator bool() const { return state_ != nullptr; }

  /// Monotonic publication sequence number (0 = never published).
  [[nodiscard]] std::uint64_t version() const {
    return state_ == nullptr ? 0 : state_->version;
  }

  /// Number of live references to this snapshot (readers + the slot).
  [[nodiscard]] long use_count() const { return state_.use_count(); }

  friend bool operator==(const TableHandle& a, const TableHandle& b) {
    return a.state_ == b.state_;
  }

 private:
  friend class RcuTableSlot;
  struct State {
    PrefixTable table;
    std::uint64_t version = 0;
  };
  explicit TableHandle(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// The publication point: writers Publish() a new table, readers Acquire()
/// the current one. Both sides are wait-free on the fast path
/// (std::atomic<std::shared_ptr>); neither blocks the other.
class RcuTableSlot {
 public:
  /// Starts with an empty table at version 1, so Acquire() is always valid.
  RcuTableSlot() {
    slot_.store(std::make_shared<const TableHandle::State>(
                    TableHandle::State{PrefixTable{}, 1}),
                std::memory_order_release);
  }

  /// The current snapshot. Never null.
  [[nodiscard]] TableHandle Acquire() const {
    return TableHandle(slot_.load(std::memory_order_acquire));
  }

  /// Wraps `table` in a new snapshot one version past the current one and
  /// swaps it in. Returns the handle just published.
  TableHandle Publish(PrefixTable table) {
    const std::uint64_t next =
        slot_.load(std::memory_order_acquire)->version + 1;
    auto state = std::make_shared<const TableHandle::State>(
        TableHandle::State{std::move(table), next});
    slot_.store(state, std::memory_order_release);
    return TableHandle(std::move(state));
  }

  [[nodiscard]] std::uint64_t version() const {
    return slot_.load(std::memory_order_acquire)->version;
  }

 private:
  std::atomic<std::shared_ptr<const TableHandle::State>> slot_;
};

}  // namespace netclust::bgp
