file(REMOVE_RECURSE
  "CMakeFiles/prefix_table_test.dir/prefix_table_test.cpp.o"
  "CMakeFiles/prefix_table_test.dir/prefix_table_test.cpp.o.d"
  "prefix_table_test"
  "prefix_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
