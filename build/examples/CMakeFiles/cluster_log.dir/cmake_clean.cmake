file(REMOVE_RECURSE
  "CMakeFiles/cluster_log.dir/cluster_log.cpp.o"
  "CMakeFiles/cluster_log.dir/cluster_log.cpp.o.d"
  "cluster_log"
  "cluster_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
