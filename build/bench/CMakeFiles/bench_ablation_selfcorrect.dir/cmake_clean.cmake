file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selfcorrect.dir/bench_ablation_selfcorrect.cc.o"
  "CMakeFiles/bench_ablation_selfcorrect.dir/bench_ablation_selfcorrect.cc.o.d"
  "bench_ablation_selfcorrect"
  "bench_ablation_selfcorrect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selfcorrect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
