file(REMOVE_RECURSE
  "CMakeFiles/netclust_bgp.dir/aggregate.cc.o"
  "CMakeFiles/netclust_bgp.dir/aggregate.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/dynamics.cc.o"
  "CMakeFiles/netclust_bgp.dir/dynamics.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/io.cc.o"
  "CMakeFiles/netclust_bgp.dir/io.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/mrt.cc.o"
  "CMakeFiles/netclust_bgp.dir/mrt.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/prefix_table.cc.o"
  "CMakeFiles/netclust_bgp.dir/prefix_table.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/table_stats.cc.o"
  "CMakeFiles/netclust_bgp.dir/table_stats.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/text_parser.cc.o"
  "CMakeFiles/netclust_bgp.dir/text_parser.cc.o.d"
  "CMakeFiles/netclust_bgp.dir/update.cc.o"
  "CMakeFiles/netclust_bgp.dir/update.cc.o.d"
  "libnetclust_bgp.a"
  "libnetclust_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclust_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
