// Self-correction and adaptation (§3.5).
//
// Periodic traceroute sampling is used to (i) merge clusters that the
// routing data artificially split, (ii) split clusters that aggregation
// made too large, and (iii) adopt the ~0.1% of clients no prefix covered,
// by growing them into clusters of their own keyed by shared path suffix.
#pragma once

#include <cstdint>
#include <utility>

#include "core/cluster.h"
#include "core/oracles.h"

namespace netclust::core {

struct SelfCorrectionConfig {
  /// Traceroute samples per cluster (the paper probes r >= 1 random
  /// members; sampling cost grows linearly).
  int samples_per_cluster = 3;
  /// Path suffix length compared ("the last few hops ... two in our
  /// experiments").
  int suffix_hops = 2;
};

struct SelfCorrectionReport {
  std::size_t clusters_before = 0;
  std::size_t clusters_after = 0;
  std::size_t splits = 0;        // clusters partitioned as too large
  std::size_t merges = 0;        // cluster pairs fused as same network
  std::size_t adopted = 0;       // previously unclustered clients placed
  std::size_t probes = 0;        // total traceroute probes spent
  double seconds = 0.0;          // modelled probing time
};

/// Applies self-correction to `clustering` using `oracle`. Returns the
/// corrected clustering (keys become the smallest common prefix of each
/// corrected cluster's members; per-cluster unique-URL counts are not
/// recomputed) and the report.
std::pair<Clustering, SelfCorrectionReport> SelfCorrect(
    const Clustering& clustering, const PathOracle& oracle,
    const SelfCorrectionConfig& config = {});

}  // namespace netclust::core
