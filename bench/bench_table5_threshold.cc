// Table 5: thresholding client clusters on the Nagano log at 70% of
// requests, after spider/proxy elimination — network-aware vs simple.
//
// Paper: network-aware keeps 717 busy clusters of 9,853 (threshold 2,744
// requests; 32,691 clients; 8,167,590 requests; busy sizes 1-1,343);
// simple keeps 3,242 of 23,523 (threshold 696; 30,774 clients; sizes
// 4-63; less-busy clusters 1-4 clients).
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/detect.h"
#include "core/threshold.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "Table 5 — busy-cluster thresholding on Nagano (70% of requests)",
      "network-aware: 717 busy of 9,853; simple: 3,242 busy of 23,523 — "
      "the simple approach fragments the sharing communities");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);

  // §4.1.1: identify and eliminate spiders/proxies first.
  const core::Clustering raw =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const auto detection = core::DetectSpidersAndProxies(generated.log, raw);
  const weblog::ServerLog log =
      core::RemoveClients(generated.log, detection.AllAddresses());
  std::printf("\neliminated %zu suspected spider/proxy hosts before "
              "thresholding\n", detection.suspects.size());

  const core::Clustering aware =
      core::ClusterNetworkAware(log, scenario.table);
  const core::Clustering simple = core::ClusterSimple(log);

  std::printf("\n%-44s  %16s  %16s\n", "Approach", "Network-aware",
              "Simple");
  const auto aware_report = core::ThresholdBusyClusters(aware, 0.7);
  const auto simple_report = core::ThresholdBusyClusters(simple, 0.7);

  std::printf("%-44s  %16zu  %16zu\n", "Total number of client clusters",
              aware.cluster_count(), simple.cluster_count());
  std::printf("%-44s  %16llu  %16llu\n",
              "Threshold (requests per busy cluster)",
              static_cast<unsigned long long>(aware_report.threshold_requests),
              static_cast<unsigned long long>(
                  simple_report.threshold_requests));
  std::printf("%-44s  %16zu  %16zu\n", "Number of busy client clusters",
              aware_report.busy.size(), simple_report.busy.size());
  std::printf("%-44s  %16zu  %16zu\n", "  clients in busy clusters",
              aware_report.busy_clients, simple_report.busy_clients);
  std::printf("%-44s  %16llu  %16llu\n", "  requests in busy clusters",
              static_cast<unsigned long long>(aware_report.busy_requests),
              static_cast<unsigned long long>(simple_report.busy_requests));
  char range[64];
  std::snprintf(range, sizeof range, "%llu - %llu",
                static_cast<unsigned long long>(aware_report.busy_min_requests),
                static_cast<unsigned long long>(aware_report.busy_max_requests));
  char range2[64];
  std::snprintf(range2, sizeof range2, "%llu - %llu",
                static_cast<unsigned long long>(simple_report.busy_min_requests),
                static_cast<unsigned long long>(simple_report.busy_max_requests));
  std::printf("%-44s  %16s  %16s\n", "Busy clusters (requests)", range,
              range2);
  std::snprintf(range, sizeof range, "%zu - %zu",
                aware_report.busy_min_clients, aware_report.busy_max_clients);
  std::snprintf(range2, sizeof range2, "%zu - %zu",
                simple_report.busy_min_clients,
                simple_report.busy_max_clients);
  std::printf("%-44s  %16s  %16s\n", "Busy clusters (clients)", range,
              range2);
  std::snprintf(range, sizeof range, "%llu - %llu",
                static_cast<unsigned long long>(
                    aware_report.less_busy_min_requests),
                static_cast<unsigned long long>(
                    aware_report.less_busy_max_requests));
  std::snprintf(range2, sizeof range2, "%llu - %llu",
                static_cast<unsigned long long>(
                    simple_report.less_busy_min_requests),
                static_cast<unsigned long long>(
                    simple_report.less_busy_max_requests));
  std::printf("%-44s  %16s  %16s\n", "Less-busy clusters (requests)", range,
              range2);
  std::snprintf(range, sizeof range, "%zu - %zu",
                aware_report.less_busy_min_clients,
                aware_report.less_busy_max_clients);
  std::snprintf(range2, sizeof range2, "%zu - %zu",
                simple_report.less_busy_min_clients,
                simple_report.less_busy_max_clients);
  std::printf("%-44s  %16s  %16s\n", "Less-busy clusters (clients)", range,
              range2);

  std::printf("\nbusy-cluster count ratio simple/network-aware: %.2f "
              "(paper: 3,242/717 = 4.5)\n",
              static_cast<double>(simple_report.busy.size()) /
                  static_cast<double>(aware_report.busy.size()));
  return 0;
}
