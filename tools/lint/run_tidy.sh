#!/bin/sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over every src/
# translation unit in a build directory's compile_commands.json.
#
# Usage: tools/lint/run_tidy.sh [build-dir]   (default: build)
#
# Exits 0 when clean, 1 on findings, 77 (the automake/ctest SKIP code)
# when clang-tidy or the compilation database is unavailable — so local
# runs on GCC-only machines skip gracefully while CI enforces.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-build}"
case "$BUILD_DIR" in
  /*) ;;
  *) BUILD_DIR="$ROOT/$BUILD_DIR" ;;
esac

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found; skipping (install clang-tidy to run)" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 77
fi

# Library and tool sources only (tests/benches inherit the rules through
# the headers they include), restricted to TUs actually present in the
# compilation database — optional targets (e.g. fuzzers) may not be
# configured in this build dir.
FILES=$(sed -n 's/.*"file": *"\(.*\)".*/\1/p' \
          "$BUILD_DIR/compile_commands.json" |
        grep -E "^$ROOT/(src|tools)/" | sort -u)
if [ -z "$FILES" ]; then
  echo "run_tidy.sh: no src/ or tools/ TUs in the compilation database" >&2
  exit 77
fi

# One clang-tidy process per TU, NETCLUST_TIDY_JOBS of them at a time
# (default: one per core). Each TU is independent — the config lives in
# the repo-root .clang-tidy and --quiet keeps output to actual findings —
# so findings interleave per-file, never mid-line. xargs exits non-zero
# when any invocation fails.
JOBS="${NETCLUST_TIDY_JOBS:-$(nproc 2>/dev/null || echo 4)}"
STATUS=0
printf '%s\n' $FILES |
  xargs -P "$JOBS" -n 1 "$TIDY" --quiet -p "$BUILD_DIR" || STATUS=1

if [ "$STATUS" -eq 0 ]; then
  echo "run_tidy.sh: clang-tidy clean over $(echo "$FILES" | wc -l) files" \
       "($JOBS jobs)"
fi
exit $STATUS
