// netclustd: the cluster-lookup daemon.
//
//   $ netclustd --snapshot rib.txt --port 4730
//
// Owns one engine::Engine, seeds its prefix table from routing-table
// snapshot files (text or MRT, auto-detected), then serves the binary
// wire protocol (src/server/proto.h) on loopback: lock-free LOOKUP /
// BATCH_LOOKUP on N shared-nothing reactors (one epoll + SO_REUSEPORT
// listener + connection arena each), INGEST_UPDATE through the single
// ingest thread, STATS and PING. SIGTERM/SIGINT trigger a graceful
// drain — stop accepting, finish in-flight frames, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bgp/io.h"
#include "cluster/partitioner.h"
#include "engine/engine.h"
#include "mapping/rank_table.h"
#include "net/prefix.h"
#include "server/io_util.h"
#include "server/server.h"

namespace {

// Self-pipe for async-signal-safe shutdown: the handler only write()s one
// byte; main blocks reading the other end.
int g_signal_pipe[2] = {-1, -1};

void OnTermSignal(int) {
  const char byte = 1;
  // A failed wake (full pipe) is fine: one byte is already in flight.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N              listen port on 127.0.0.1 (default 4730; 0 = ephemeral)\n"
      "  --snapshot FILE       seed the table from FILE (repeatable; one source each)\n"
      "  --live-sources N      extra empty ingest sources for live feeds (default 1)\n"
      "  --live-bgp4mp FILE    replay FILE (MRT BGP4MP) as a live churn feed:\n"
      "                        decoded UPDATE bursts flow through the ingest\n"
      "                        thread, one incremental publish per burst\n"
      "  --live-batch N        updates per live-feed publish (default 64)\n"
      "  --reactors N          shared-nothing reactors (default 2;\n"
      "                        --readers is accepted as an alias)\n"
      "  --shards N            engine worker shards (default 1)\n"
      "  --max-connections N   connection ceiling (default 64)\n"
      "  --max-inflight N      in-flight frame ceiling (default 128)\n"
      "  --idle-timeout-ms N   reap idle connections after N ms (default 30000)\n"
      "  --mapping-cache N     per-reactor /24 mapping-cache entries\n"
      "                        (default 0 = disabled)\n"
      "  --rank-default LIST   comma-separated server ids installed as the\n"
      "                        default CDN ranking for RANK/ASSIGN\n"
      "  --print-port          print only the bound port on stdout (for scripts)\n"
      "  --cluster-node N      enable cluster mode with this node id\n"
      "  --peer ID:HOST:PORT   fleet member (repeatable, include this node);\n"
      "                        with peers given, an epoch-1 topology aligned\n"
      "                        to the seeded prefixes is installed at boot —\n"
      "                        without, the node waits for SET_TOPOLOGY\n",
      argv0);
}

// "ID:HOST:PORT" -> NodeInfo; HOST must be a dotted quad.
netclust::Result<netclust::server::NodeInfo> ParsePeer(
    const std::string& text) {
  using netclust::Fail;
  const std::size_t first = text.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : text.find(':', first + 1);
  if (second == std::string::npos) {
    return Fail("--peer wants ID:HOST:PORT, got '" + text + "'");
  }
  netclust::server::NodeInfo node;
  node.id = static_cast<std::uint32_t>(
      std::atoll(text.substr(0, first).c_str()));
  auto host = netclust::net::IpAddress::Parse(
      text.substr(first + 1, second - first - 1));
  if (!host.ok()) return Fail("--peer host: " + host.error());
  node.host = host.value();
  node.port =
      static_cast<std::uint16_t>(std::atoi(text.substr(second + 1).c_str()));
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclust;

  server::ServerConfig config;
  config.port = 4730;
  engine::EngineConfig engine_config;
  engine_config.shards = 1;
  engine_config.log_name = "netclustd";
  std::vector<std::string> snapshot_paths;
  std::string live_bgp4mp_path;
  int live_sources = 1;
  bool print_port = false;
  std::vector<std::string> peer_specs;
  std::string rank_default;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--snapshot" && has_value) {
      snapshot_paths.emplace_back(argv[++i]);
    } else if (arg == "--live-sources" && has_value) {
      live_sources = std::atoi(argv[++i]);
    } else if (arg == "--live-bgp4mp" && has_value) {
      live_bgp4mp_path = argv[++i];
    } else if (arg == "--live-batch" && has_value) {
      config.live_batch_size = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if ((arg == "--reactors" || arg == "--readers") && has_value) {
      // --readers predates the reactor model; kept as an alias so older
      // scripts keep working.
      config.reactors = std::atoi(argv[++i]);
    } else if (arg == "--shards" && has_value) {
      engine_config.shards = std::atoi(argv[++i]);
    } else if (arg == "--max-connections" && has_value) {
      config.max_connections = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-inflight" && has_value) {
      config.max_inflight_frames =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--idle-timeout-ms" && has_value) {
      config.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--mapping-cache" && has_value) {
      config.mapping_cache_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--rank-default" && has_value) {
      rank_default = argv[++i];
    } else if (arg == "--print-port") {
      print_port = true;
    } else if (arg == "--cluster-node" && has_value) {
      config.cluster_node_id = std::atoll(argv[++i]);
    } else if (arg == "--peer" && has_value) {
      peer_specs.emplace_back(argv[++i]);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Install signal handling before any long-running work (snapshot
  // loading, engine start, serving): a SIGTERM/SIGINT landing at any point
  // after this must take the graceful-drain path, never the default
  // action, and writes to dead sockets must never raise SIGPIPE.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "netclustd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = OnTermSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  if (!peer_specs.empty() && config.cluster_node_id < 0) {
    std::fprintf(stderr, "netclustd: --peer requires --cluster-node\n");
    return 2;
  }

  engine::Engine engine(engine_config);
  int sources = 0;
  std::size_t seeded_prefixes = 0;
  std::vector<net::Prefix> seeded_prefix_list;
  for (const std::string& path : snapshot_paths) {
    auto loaded = bgp::LoadSnapshotFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "netclustd: %s: %s\n", path.c_str(),
                   loaded.error().c_str());
      return 1;
    }
    if (config.cluster_node_id >= 0) {
      for (const bgp::RouteEntry& entry : loaded.value().snapshot.entries) {
        seeded_prefix_list.push_back(entry.prefix);
      }
    }
    const int id = engine.SeedSnapshot(loaded.value().snapshot);
    if (id == bgp::PrefixTable::kInvalidSource) {
      std::fprintf(stderr, "netclustd: %s: source limit (%d) exhausted\n",
                   path.c_str(), bgp::PrefixTable::kMaxSources);
      return 1;
    }
    std::fprintf(stderr,
                 "netclustd: source %d <- %s (%zu entries, %zu skipped)\n", id,
                 path.c_str(), loaded.value().snapshot.entries.size(),
                 loaded.value().skipped);
    seeded_prefixes += loaded.value().snapshot.entries.size();
    ++sources;
  }
  for (int i = 0; i < live_sources; ++i) {
    bgp::SnapshotInfo info;
    info.name = "live" + std::to_string(i);
    info.kind = bgp::SourceKind::kBgpTable;
    info.comment = "runtime INGEST_UPDATE feed";
    const int id = engine.AddSource(info);
    if (id == bgp::PrefixTable::kInvalidSource) {
      std::fprintf(stderr, "netclustd: live source limit (%d) exhausted\n",
                   bgp::PrefixTable::kMaxSources);
      return 1;
    }
    std::fprintf(stderr, "netclustd: source %d <- %s (live)\n", id,
                 info.name.c_str());
    ++sources;
  }
  if (!live_bgp4mp_path.empty()) {
    // The churn feed gets its own attributed source, so STATS can tell
    // replayed-feed prefixes apart from wire INGEST_UPDATE traffic.
    bgp::SnapshotInfo info;
    info.name = "live-bgp4mp";
    info.kind = bgp::SourceKind::kBgpTable;
    info.comment = live_bgp4mp_path;
    const int id = engine.AddSource(info);
    if (id == bgp::PrefixTable::kInvalidSource) {
      std::fprintf(stderr, "netclustd: live source limit (%d) exhausted\n",
                   bgp::PrefixTable::kMaxSources);
      return 1;
    }
    config.live_bgp4mp_path = live_bgp4mp_path;
    config.live_source_id = id;
    std::fprintf(stderr, "netclustd: source %d <- %s (live BGP4MP feed)\n",
                 id, live_bgp4mp_path.c_str());
    ++sources;
  }
  config.source_count = sources;

  if (!rank_default.empty()) {
    // "1,2,3" -> default ranking. Per-cluster rankings arrive via future
    // tooling; the default makes ASSIGN answer on every daemon today.
    std::vector<std::uint16_t> servers;
    std::size_t start = 0;
    while (start <= rank_default.size()) {
      const std::size_t comma = rank_default.find(',', start);
      const std::size_t end =
          comma == std::string::npos ? rank_default.size() : comma;
      if (end > start) {
        servers.push_back(static_cast<std::uint16_t>(
            std::atoi(rank_default.substr(start, end - start).c_str())));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (servers.empty()) {
      std::fprintf(stderr, "netclustd: --rank-default has no server ids\n");
      return 2;
    }
    auto ranks = std::make_shared<mapping::RankTable>();
    ranks->SetDefault(std::move(servers));
    config.rank_table = std::move(ranks);
    std::fprintf(stderr,
                 "netclustd: default CDN ranking installed (%zu servers)\n",
                 config.rank_table->default_ranking().size());
  }

  engine.Start();
  server::Server daemon(&engine, config);
  if (!peer_specs.empty()) {
    // Shard the address space across the declared fleet, aligned to the
    // seeded prefixes so no routing cluster straddles a shard edge. Every
    // peer computes the identical epoch-1 topology from the same flags.
    std::vector<server::NodeInfo> peers;
    for (const std::string& spec : peer_specs) {
      auto node = ParsePeer(spec);
      if (!node.ok()) {
        std::fprintf(stderr, "netclustd: %s\n", node.error().c_str());
        return 2;
      }
      peers.push_back(node.value());
    }
    auto topo = cluster::BuildTopology(1, std::move(peers),
                                       seeded_prefix_list);
    if (!topo.ok()) {
      std::fprintf(stderr, "netclustd: %s\n", topo.error().c_str());
      return 1;
    }
    auto installed = daemon.SetTopology(topo.value());
    if (!installed.ok()) {
      std::fprintf(stderr, "netclustd: %s\n", installed.error().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "netclustd: cluster node %lld, epoch 1 topology over %zu "
                 "peers (%zu shard ranges)\n",
                 static_cast<long long>(config.cluster_node_id),
                 topo.value().nodes.size(), topo.value().ranges.size());
  }
  auto port = daemon.Serve();
  if (!port.ok()) {
    std::fprintf(stderr, "netclustd: %s\n", port.error().c_str());
    return 1;
  }
  if (print_port) {
    std::printf("%u\n", port.value());
    std::fflush(stdout);
  }
  std::fprintf(stderr,
               "netclustd: listening on 127.0.0.1:%u (%zu seeded entries, "
               "table %zu prefixes, %d sources)\n",
               port.value(), seeded_prefixes, engine.AcquireTable()->size(),
               sources);

  // Block until a termination signal lands (EINTR-safe).
  char byte = 0;
  (void)server::RetryRead(g_signal_pipe[0], &byte, 1);

  std::fprintf(stderr, "netclustd: draining...\n");
  daemon.Stop();
  engine.Stop();
  std::fprintf(stderr, "netclustd: drained, exiting\n");
  return 0;
}
