// Engine configuration.
#pragma once

#include <cstddef>
#include <string>

namespace netclust::engine {

/// What the ingest side does when a shard's ring is full.
enum class BackpressurePolicy {
  /// Spin/yield until the worker frees a slot — no request is ever lost
  /// (the default; matches the exactness guarantee vs. the sequential
  /// clusterer).
  kBlock,
  /// Reject the request and account it in requests_dropped — bounded
  /// ingest latency for overload shedding.
  kDrop,
};

struct EngineConfig {
  /// Worker shard count; <= 0 selects the hardware concurrency.
  int shards = 0;
  /// Per-shard ring capacity (rounded up to a power of two); 0 selects
  /// this default rather than degenerating to a minimum-size ring.
  std::size_t ring_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Log name stamped on Snapshot() results.
  std::string log_name = "engine";
};

}  // namespace netclust::engine
