file(REMOVE_RECURSE
  "CMakeFiles/proxy_placement_test.dir/proxy_placement_test.cpp.o"
  "CMakeFiles/proxy_placement_test.dir/proxy_placement_test.cpp.o.d"
  "proxy_placement_test"
  "proxy_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
