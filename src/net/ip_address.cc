#include "net/ip_address.h"

#include <charconv>
#include <ostream>

namespace netclust::net {
namespace {

// Parses one decimal octet from `text` starting at `pos`, advancing `pos`
// past the digits. Returns -1 on malformed input (empty, >3 digits, >255,
// or a leading-zero form like "01" which some spoofed logs use for octal).
int ParseOctet(std::string_view text, std::size_t& pos) {
  const std::size_t start = pos;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
  const std::size_t len = pos - start;
  if (len == 0 || len > 3) return -1;
  if (len > 1 && text[start] == '0') return -1;
  int value = 0;
  std::from_chars(text.data() + start, text.data() + pos, value);
  return value <= 255 ? value : -1;
}

}  // namespace

Result<IpAddress> IpAddress::Parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') {
        return Fail("expected '.' in IPv4 address: '" + std::string(text) + "'");
      }
      ++pos;
    }
    const int octet = ParseOctet(text, pos);
    if (octet < 0) {
      return Fail("bad octet in IPv4 address: '" + std::string(text) + "'");
    }
    bits = (bits << 8) | static_cast<std::uint32_t>(octet);
  }
  if (pos != text.size()) {
    return Fail("trailing characters in IPv4 address: '" + std::string(text) +
                "'");
  }
  return IpAddress(bits);
}

std::string IpAddress::ToString() const {
  const auto o = octets();
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out.append(std::to_string(o[static_cast<std::size_t>(i)]));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, IpAddress address) {
  return os << address.ToString();
}

}  // namespace netclust::net
