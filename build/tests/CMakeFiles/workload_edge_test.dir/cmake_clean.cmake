file(REMOVE_RECURSE
  "CMakeFiles/workload_edge_test.dir/workload_edge_test.cpp.o"
  "CMakeFiles/workload_edge_test.dir/workload_edge_test.cpp.o.d"
  "workload_edge_test"
  "workload_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
