// Common Log Format (and Combined Log Format) parsing and writing.
//
//   host ident authuser [dd/Mon/yyyy:hh:mm:ss zone] "METHOD url HTTP/v" status bytes
//   ... "referer" "user-agent"                                  (combined)
//
// This is the on-disk format of every server log the paper uses (Apache,
// Nagano, EW3, Sun). The parser is tolerant: "-" bytes fields, missing
// protocol versions and unparsable dates degrade gracefully; structurally
// broken lines are reported as errors and counted by the caller.
#pragma once

#include <string>
#include <string_view>

#include "net/result.h"
#include "weblog/record.h"

namespace netclust::weblog {

/// Parses one CLF/combined line into a LogRecord.
Result<LogRecord> ParseClfLine(std::string_view line);

/// Formats `record` as a CLF line (combined format when user_agent is
/// non-empty). Round-trips through ParseClfLine.
std::string FormatClfLine(const LogRecord& record);

/// [dd/Mon/yyyy:hh:mm:ss +0000] <-> seconds since the UNIX epoch (UTC).
/// These are deliberately timezone-naive beyond the explicit offset: log
/// analysis only needs a consistent timeline, not local-time rendering.
/// Parsing rejects instants outside years 1..9999 UTC — anything else has
/// no dd/Mon/yyyy rendering and could not round-trip through
/// FormatClfTimestamp.
Result<std::int64_t> ParseClfTimestamp(std::string_view text);
std::string FormatClfTimestamp(std::int64_t seconds_since_epoch);

}  // namespace netclust::weblog
