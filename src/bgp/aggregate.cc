#include "bgp/aggregate.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

namespace netclust::bgp {
namespace {

/// Sibling block: same parent, other half.
net::Prefix Sibling(const net::Prefix& prefix) {
  const std::uint32_t flipped =
      prefix.network().bits() ^ (0x80000000u >> (prefix.length() - 1));
  return net::Prefix(net::IpAddress(flipped), prefix.length());
}

/// Drops prefixes that have a strict ancestor in the set.
std::unordered_set<net::Prefix> RemoveCovered(
    const std::unordered_set<net::Prefix>& prefixes) {
  std::unordered_set<net::Prefix> kept;
  for (const net::Prefix& prefix : prefixes) {
    bool covered = false;
    net::Prefix walk = prefix;
    while (walk.length() > 0) {
      walk = walk.Parent();
      if (prefixes.contains(walk)) {
        covered = true;
        break;
      }
    }
    if (!covered) kept.insert(prefix);
  }
  return kept;
}

/// Merges sibling pairs to fixed point. Input must be ancestor-free;
/// output remains ancestor-free and disjoint.
std::unordered_set<net::Prefix> MergeSiblings(
    std::unordered_set<net::Prefix> prefixes) {
  std::vector<net::Prefix> worklist(prefixes.begin(), prefixes.end());
  while (!worklist.empty()) {
    const net::Prefix prefix = worklist.back();
    worklist.pop_back();
    if (prefix.length() == 0 || !prefixes.contains(prefix)) continue;
    const net::Prefix sibling = Sibling(prefix);
    if (!prefixes.contains(sibling)) continue;
    prefixes.erase(prefix);
    prefixes.erase(sibling);
    const net::Prefix parent = prefix.Parent();
    prefixes.insert(parent);
    worklist.push_back(parent);
  }
  return prefixes;
}

}  // namespace

std::vector<net::Prefix> AggregatePrefixes(
    std::vector<net::Prefix> prefixes) {
  std::unordered_set<net::Prefix> set(prefixes.begin(), prefixes.end());
  set = MergeSiblings(RemoveCovered(set));
  std::vector<net::Prefix> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RouteEntry> AggregateRoutes(std::vector<RouteEntry> routes) {
  // Group by attributes that must match for aggregation.
  using AttrKey = std::pair<std::uint32_t, std::vector<AsNumber>>;
  std::map<AttrKey, std::vector<RouteEntry>> groups;
  for (RouteEntry& route : routes) {
    groups[AttrKey{route.next_hop.bits(), route.as_path}].push_back(
        std::move(route));
  }

  std::vector<RouteEntry> out;
  for (auto& [key, members] : groups) {
    std::vector<net::Prefix> prefixes;
    prefixes.reserve(members.size());
    for (const RouteEntry& member : members) {
      prefixes.push_back(member.prefix);
    }
    for (const net::Prefix& prefix : AggregatePrefixes(std::move(prefixes))) {
      RouteEntry entry = members.front();
      entry.prefix = prefix;
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RouteEntry& a, const RouteEntry& b) {
              return a.prefix < b.prefix;
            });
  return out;
}

bool CoverSameAddresses(const std::vector<net::Prefix>& prefixes,
                        const std::vector<net::Prefix>& other) {
  // Aggregation canonicalizes a disjoint cover to its unique minimal form.
  return AggregatePrefixes(prefixes) == AggregatePrefixes(other);
}

}  // namespace netclust::bgp
