// Domain-name suffix matching (§3.3).
//
// Two clients "share a non-trivial suffix" when the last n components of
// their fully-qualified names agree, with n = 3 when the name has >= 4
// components and n = 2 otherwise (the paper's footnote 7 rule).
#pragma once

#include <string>
#include <string_view>

namespace netclust::validate {

/// Number of '.'-separated components in `name`.
std::size_t ComponentCount(std::string_view name);

/// The non-trivial suffix of `name` under the paper's rule, e.g.
/// "macbeth.cs.wits.ac.za" (5 components) -> "wits.ac.za".
std::string NonTrivialSuffix(std::string_view name);

/// True when the two names share a non-trivial suffix. Uses the shorter
/// name's depth when the two disagree, so "a.b.com" matches "x.a.b.com".
bool SharesNonTrivialSuffix(std::string_view a, std::string_view b);

/// Heuristic US/non-US split by TLD (two-letter country codes are non-US,
/// except "us"); mirrors the paper's per-country mis-identification rows.
bool LooksUsBased(std::string_view name);

}  // namespace netclust::validate
