// Partitioner invariants: rendezvous determinism and balance, prefix-
// boundary alignment, minimal movement across join/leave rebalances, and
// the topology codec's canonical-form validation.
#include "cluster/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "server/proto.h"

namespace netclust::cluster {
namespace {

server::NodeInfo Node(std::uint32_t id, std::uint16_t port) {
  return server::NodeInfo{id, net::IpAddress(127, 0, 0, 1), port};
}

std::vector<server::NodeInfo> Fleet3() {
  return {Node(1, 4730), Node(2, 4731), Node(3, 4732)};
}

net::Prefix P(const char* text) {
  return net::Prefix::Parse(text).value();
}

TEST(RendezvousScore, DeterministicAndSpread) {
  EXPECT_EQ(RendezvousScore(42, 7), RendezvousScore(42, 7));
  EXPECT_NE(RendezvousScore(42, 7), RendezvousScore(42, 8));
  EXPECT_NE(RendezvousScore(42, 7), RendezvousScore(43, 7));
}

TEST(BuildTopology, CoversEveryBlockAndValidates) {
  const auto topo = BuildTopology(1, Fleet3(), {});
  ASSERT_TRUE(topo.ok()) << topo.error();
  EXPECT_EQ(topo.value().epoch, 1u);
  EXPECT_EQ(topo.value().nodes.size(), 3u);
  EXPECT_TRUE(server::ValidateTopology(topo.value()).ok());
  const auto owner = server::CompileOwners(topo.value());
  ASSERT_EQ(owner.size(), server::kShardBlockCount);
}

TEST(BuildTopology, RoughlyBalancedWithoutPrefixes) {
  const auto topo = BuildTopology(1, Fleet3(), {});
  ASSERT_TRUE(topo.ok());
  const auto owner = server::CompileOwners(topo.value());
  std::map<std::uint16_t, std::uint32_t> counts;
  for (const std::uint16_t o : owner) ++counts[o];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [index, count] : counts) {
    // Rendezvous over 65536 blocks: each of 3 nodes lands well within
    // ±20% of the fair share (~21845).
    EXPECT_GT(count, server::kShardBlockCount / 3 * 4 / 5) << index;
    EXPECT_LT(count, server::kShardBlockCount / 3 * 6 / 5) << index;
  }
}

TEST(BuildTopology, WidePrefixNeverStraddlesShards) {
  const std::vector<net::Prefix> prefixes = {
      P("10.0.0.0/8"), P("12.64.0.0/12"), P("151.198.0.0/16"),
      P("151.198.192.0/18")};
  const auto topo = BuildTopology(1, Fleet3(), prefixes);
  ASSERT_TRUE(topo.ok()) << topo.error();
  const auto owner = server::CompileOwners(topo.value());
  for (const net::Prefix& prefix : prefixes) {
    if (prefix.length() >= 16) continue;  // single block by construction
    const std::uint32_t first = prefix.network().bits() >> 16;
    const std::uint32_t count = 1u << (16 - prefix.length());
    for (std::uint32_t b = 1; b < count; ++b) {
      EXPECT_EQ(owner[first + b], owner[first])
          << prefix.ToString() << " straddles a shard edge at block "
          << first + b;
    }
  }
}

TEST(BuildTopology, NestedWidePrefixRepaintsItsOwnSpan) {
  // The /12 nests inside the /8: each must be single-owner over its span
  // (the /12 may differ from the /8 — its region is more specific).
  const std::vector<net::Prefix> prefixes = {P("16.0.0.0/8"),
                                             P("16.16.0.0/12")};
  const auto topo = BuildTopology(1, Fleet3(), prefixes);
  ASSERT_TRUE(topo.ok());
  const auto owner = server::CompileOwners(topo.value());
  const std::uint32_t eight_first = 16u << 8;   // 16.0.0.0 >> 16
  const std::uint32_t twelve_first = (16u << 8) | 16u;
  const std::uint16_t twelve_owner = owner[twelve_first];
  for (std::uint32_t b = 0; b < 16; ++b) {
    EXPECT_EQ(owner[twelve_first + b], twelve_owner);
  }
  // Blocks of the /8 outside the /12 all share the /8's owner.
  const std::uint16_t eight_owner = owner[eight_first];
  for (std::uint32_t b = 0; b < 256; ++b) {
    const std::uint32_t block = eight_first + b;
    if (block >= twelve_first && block < twelve_first + 16) continue;
    EXPECT_EQ(owner[block], eight_owner);
  }
}

TEST(BuildTopology, RejectsDuplicateIdsAndEmptyFleet) {
  EXPECT_FALSE(BuildTopology(1, {}, {}).ok());
  EXPECT_FALSE(BuildTopology(1, {Node(1, 1), Node(1, 2)}, {}).ok());
}

TEST(RebalanceAfterLeave, OnlyDepartedRangesMove) {
  const auto before = BuildTopology(1, Fleet3(), {P("10.0.0.0/8")});
  ASSERT_TRUE(before.ok());
  const auto after = RebalanceAfterLeave(before.value(), 2);
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after.value().epoch, 2u);
  EXPECT_EQ(after.value().nodes.size(), 2u);
  EXPECT_TRUE(server::ValidateTopology(after.value()).ok());

  // Every block that node 1 or node 3 owned before still belongs to the
  // same node id after the rebalance.
  const auto owner_before = server::CompileOwners(before.value());
  const auto owner_after = server::CompileOwners(after.value());
  for (std::uint32_t b = 0; b < server::kShardBlockCount; ++b) {
    const std::uint32_t id_before =
        before.value().nodes[owner_before[b]].id;
    const std::uint32_t id_after = after.value().nodes[owner_after[b]].id;
    if (id_before != 2) {
      EXPECT_EQ(id_after, id_before) << "surviving block " << b << " moved";
    } else {
      EXPECT_NE(id_after, 2u) << "block " << b << " stuck on departed node";
    }
  }
  // Movement is bounded by the departed node's share (~1/3 + slack).
  EXPECT_LT(MovedBlockFraction(before.value(), after.value()), 0.45);
}

TEST(RebalanceAfterLeave, RejectsUnknownAndLastNode) {
  const auto topo = BuildTopology(1, Fleet3(), {});
  ASSERT_TRUE(topo.ok());
  EXPECT_FALSE(RebalanceAfterLeave(topo.value(), 99).ok());
  const auto solo = BuildTopology(1, {Node(7, 1)}, {});
  ASSERT_TRUE(solo.ok());
  EXPECT_FALSE(RebalanceAfterLeave(solo.value(), 7).ok());
}

TEST(RebalanceAfterJoin, MovesOnlyWhatTheNewNodeWins) {
  const auto before = BuildTopology(1, {Node(1, 1), Node(2, 2)}, {});
  ASSERT_TRUE(before.ok());
  const auto after = RebalanceAfterJoin(before.value(), Node(3, 3));
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after.value().epoch, 2u);
  EXPECT_EQ(after.value().nodes.size(), 3u);
  EXPECT_TRUE(server::ValidateTopology(after.value()).ok());

  const auto owner_before = server::CompileOwners(before.value());
  const auto owner_after = server::CompileOwners(after.value());
  std::uint32_t gained = 0;
  for (std::uint32_t b = 0; b < server::kShardBlockCount; ++b) {
    const std::uint32_t id_before =
        before.value().nodes[owner_before[b]].id;
    const std::uint32_t id_after = after.value().nodes[owner_after[b]].id;
    if (id_after == 3) {
      ++gained;
    } else {
      EXPECT_EQ(id_after, id_before)
          << "block " << b << " moved between survivors";
    }
  }
  EXPECT_GT(gained, 0u);
  // The newcomer takes roughly a third, never the majority.
  EXPECT_LT(MovedBlockFraction(before.value(), after.value()), 0.5);
}

TEST(RebalanceAfterJoin, RejectsDuplicateMember) {
  const auto topo = BuildTopology(1, Fleet3(), {});
  ASSERT_TRUE(topo.ok());
  EXPECT_FALSE(RebalanceAfterJoin(topo.value(), Node(2, 99)).ok());
}

TEST(RebalanceRoundtrip, LeaveThenRejoinRestoresMostOwnership) {
  const auto start = BuildTopology(1, Fleet3(), {});
  ASSERT_TRUE(start.ok());
  const auto left = RebalanceAfterLeave(start.value(), 3);
  ASSERT_TRUE(left.ok());
  const auto back = RebalanceAfterJoin(left.value(), Node(3, 4732));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().epoch, 3u);
  // Rendezvous is history-independent per block, so a leave+rejoin puts
  // node 3 back on most of the blocks it originally won. The drift stays
  // below the departed share (~1/3): rebalances move whole ranges, so a
  // merged range only follows the joiner when its first block does.
  EXPECT_LT(MovedBlockFraction(start.value(), back.value()), 0.33);
}

TEST(TopologyCodec, RoundTripsCanonicalForm) {
  const auto topo = BuildTopology(5, Fleet3(), {P("10.0.0.0/8")});
  ASSERT_TRUE(topo.ok());
  const std::vector<std::uint8_t> wire = server::EncodeTopology(topo.value());
  const auto decoded = server::DecodeTopology(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), topo.value());
  EXPECT_EQ(server::EncodeTopology(decoded.value()), wire);
}

TEST(TopologyCodec, RejectsNonCanonicalForms) {
  auto base = BuildTopology(1, Fleet3(), {}).value();

  server::Topology gap = base;
  gap.ranges.back().block_count -= 1;
  auto wire = server::EncodeTopology(gap);
  EXPECT_FALSE(server::DecodeTopology(wire.data(), wire.size()).ok());

  server::Topology bad_index = base;
  bad_index.ranges.front().node_index = 40;
  wire = server::EncodeTopology(bad_index);
  EXPECT_FALSE(server::DecodeTopology(wire.data(), wire.size()).ok());

  server::Topology unsorted_nodes = base;
  std::swap(unsorted_nodes.nodes[0], unsorted_nodes.nodes[1]);
  wire = server::EncodeTopology(unsorted_nodes);
  EXPECT_FALSE(server::DecodeTopology(wire.data(), wire.size()).ok());

  // Adjacent same-owner ranges must be pre-merged.
  server::Topology split = base;
  ASSERT_GT(split.ranges.front().block_count, 1u);
  server::ShardRange tail = split.ranges.front();
  split.ranges.front().block_count = 1;
  tail.first_block += 1;
  tail.block_count -= 1;
  split.ranges.insert(split.ranges.begin() + 1, tail);
  wire = server::EncodeTopology(split);
  EXPECT_FALSE(server::DecodeTopology(wire.data(), wire.size()).ok());

  // Truncation anywhere must be rejected, never crash.
  wire = server::EncodeTopology(base);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(server::DecodeTopology(wire.data(), cut).ok());
  }
}

}  // namespace
}  // namespace netclust::cluster
