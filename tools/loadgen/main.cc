// loadgen: replay a client-IP stream against a running netclustd.
//
//   $ loadgen --port 4730 --clf access.log --connections 4 --count 100000
//   $ loadgen --port 4730 --synth 10.0.0.0/8 --batch 64 --json out.json
//
// The IP stream comes from a CLF web log (per-request client addresses,
// repeats preserved) or from --synth (deterministic addresses inside a
// prefix). Exits non-zero on any transport error, and also when the
// measured lookup rate falls below --min-qps (the CI smoke floor).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "loadgen.h"
#include "net/prefix.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [options]\n"
      "       %s --endpoints H1:P1,H2:P2,... [options]   (fleet mode)\n"
      "  --host A.B.C.D       server address (default 127.0.0.1)\n"
      "  --port N             server port (required unless --endpoints)\n"
      "  --endpoints LIST     comma-separated cluster endpoints; drives the\n"
      "                       whole fleet via topology routing and reports\n"
      "                       aggregate qps\n"
      "  --clf FILE           replay client IPs from a CLF web log\n"
      "  --clf-limit N        cap the CLF stream at N requests\n"
      "  --synth P/L          synthesize addresses inside prefix P/L\n"
      "  --synth-count N      how many synthetic addresses (default 4096)\n"
      "  --count N            total request frames (default 10000)\n"
      "  --connections N      concurrent connections (default 1)\n"
      "  --batch N            addresses per frame; >1 uses BATCH_LOOKUP\n"
      "  --pipeline N         frames in flight per connection (default 1;\n"
      "                       >1 pipelines — standalone mode only)\n"
      "  --zipf S             reshape the stream to Zipf(S) popularity\n"
      "                       (rank = first appearance; 0 = off)\n"
      "  --assign             send ASSIGN (CDN server selection) instead of\n"
      "                       LOOKUP; batch 1, no pipelining\n"
      "  --churn              send INGEST_UPDATE churn (announce/withdraw\n"
      "                       pairs of /24s from the stream) instead of\n"
      "                       lookups; batch 1, no pipelining, standalone\n"
      "  --churn-source N     source id for churn updates (default 0)\n"
      "  --timeout-ms N       per-call deadline (default 5000)\n"
      "  --json FILE          write the machine-readable report to FILE\n"
      "  --min-qps X          exit 1 if lookups/sec lands below X\n",
      argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclust;

  loadgen::Options options;
  std::string clf_path;
  std::size_t clf_limit = 0;
  std::string synth_prefix;
  std::size_t synth_count = 4096;
  std::string json_path;
  double min_qps = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--endpoints" && has_value) {
      std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          options.endpoints.push_back(list.substr(start, end - start));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--clf" && has_value) {
      clf_path = argv[++i];
    } else if (arg == "--clf-limit" && has_value) {
      clf_limit = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--synth" && has_value) {
      synth_prefix = argv[++i];
    } else if (arg == "--synth-count" && has_value) {
      synth_count = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--count" && has_value) {
      options.total_frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--connections" && has_value) {
      options.connections = std::atoi(argv[++i]);
    } else if (arg == "--batch" && has_value) {
      options.batch_size = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--pipeline" && has_value) {
      options.pipeline = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--zipf" && has_value) {
      options.zipf_s = std::atof(argv[++i]);
    } else if (arg == "--assign") {
      options.assign_mode = true;
    } else if (arg == "--churn") {
      options.churn_mode = true;
    } else if (arg == "--churn-source" && has_value) {
      options.churn_source = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--timeout-ms" && has_value) {
      options.timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else if (arg == "--min-qps" && has_value) {
      min_qps = std::atof(argv[++i]);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.port == 0 && options.endpoints.empty()) {
    Usage(argv[0]);
    return 2;
  }

  if (!clf_path.empty()) {
    auto addresses = loadgen::AddressesFromClf(clf_path, clf_limit);
    if (!addresses.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", addresses.error().c_str());
      return 1;
    }
    options.addresses = std::move(addresses).value();
  } else {
    if (synth_prefix.empty()) synth_prefix = "10.0.0.0/8";
    auto prefix = net::Prefix::Parse(synth_prefix);
    if (!prefix.ok()) {
      std::fprintf(stderr, "loadgen: bad --synth prefix: %s\n",
                   prefix.error().c_str());
      return 2;
    }
    options.addresses = loadgen::SyntheticAddresses(
        synth_count, prefix.value().network(), prefix.value().length());
  }

  if (options.endpoints.empty()) {
    std::printf("loadgen: %zu-address stream -> %s:%u, %zu frames x %zu "
                "addresses over %d connection(s), pipeline %zu\n",
                options.addresses.size(), options.host.c_str(), options.port,
                options.total_frames, options.batch_size, options.connections,
                options.pipeline);
  } else {
    std::printf("loadgen: %zu-address stream -> %zu-node fleet, %zu frames "
                "x %zu addresses over %d connection(s)\n",
                options.addresses.size(), options.endpoints.size(),
                options.total_frames, options.batch_size,
                options.connections);
  }

  auto run = loadgen::Run(options);
  if (!run.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", run.error().c_str());
    return 1;
  }
  const loadgen::Report& report = run.value();
  const std::string json = report.ToJson();
  std::printf("%s\n", json.c_str());
  if (!report.first_error.empty()) {
    std::fprintf(stderr, "loadgen: first error: %s\n",
                 report.first_error.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (report.errors > 0) return 1;
  if (min_qps > 0.0 && report.qps < min_qps) {
    std::fprintf(stderr, "loadgen: %.1f qps is below the --min-qps floor %.1f\n",
                 report.qps, min_qps);
    return 1;
  }
  return 0;
}
