// Seed for the reactor-affinity compile-fail check.
//
// Models the src/server shared-nothing reactor contract: each Reactor
// carries a base::ThreadRole and its hot state (epoll set, connection
// table) is ONLY_THREAD(role). Compiled two ways by tools/lint/
// CMakeLists.txt on Clang:
//   * default — the seeded cross-reactor touch below (reactor 0's thread
//     reaching into reactor 1's connection table) MUST be rejected by
//     -Wthread-safety -Werror=thread-safety;
//   * -DNETCLUST_TSA_EXPECT_CLEAN — the affine variant (each thread
//     touches only the state of the role it holds) MUST compile, proving
//     the negative case fails for the seeded violation and nothing else.
// On non-Clang compilers the annotations are no-ops and this file is not
// exercised.

#include "base/sync.h"

namespace {

struct Reactor {
  netclust::base::ThreadRole role;
  int epoll_fd ONLY_THREAD(role) = -1;
  int open_conns ONLY_THREAD(role) = 0;
};

/// The reactor thread's main: holds exactly its own reactor's role.
void ReactorLoop(Reactor& self, Reactor& peer) {
  netclust::base::AssumeThreadRole own(self.role);
  self.open_conns += 1;
#ifdef NETCLUST_TSA_EXPECT_CLEAN
  (void)peer;
#else
  // Seeded violation: cross-reactor touch — this thread holds self.role,
  // not peer.role, so peer's connection count is another thread's state.
  peer.open_conns += 1;
#endif
}

}  // namespace

int main() {
  Reactor a;
  Reactor b;
  ReactorLoop(a, b);
  return 0;
}
