// Standalone driver for the fuzz targets on toolchains without libFuzzer
// (GCC has no -fsanitize=fuzzer). Linked instead of libFuzzer when the
// compiler is not Clang, so `fuzz_mrt corpus/file...` works everywhere.
//
//   fuzz_<target> FILE...                 replay each file once and exit
//   fuzz_<target> --smoke N SEED FILE...  additionally run N deterministic
//                                         mutations of the corpus (a cheap
//                                         coverage-blind smoke fuzz)
//
// Exit status is 0 unless a harness property aborts the process, matching
// libFuzzer's crash-on-failure contract.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

// xorshift64*: small, deterministic, good enough to perturb corpus bytes.
std::uint64_t NextRandom(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

// One random edit: flip, overwrite, truncate or duplicate a slice.
void Mutate(std::vector<std::uint8_t>& bytes, std::uint64_t& rng) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<std::uint8_t>(NextRandom(rng)));
    return;
  }
  const std::size_t at = NextRandom(rng) % bytes.size();
  switch (NextRandom(rng) % 4) {
    case 0:
      bytes[at] ^= static_cast<std::uint8_t>(1u << (NextRandom(rng) % 8));
      break;
    case 1:
      bytes[at] = static_cast<std::uint8_t>(NextRandom(rng));
      break;
    case 2:
      bytes.resize(at + 1);
      break;
    default: {
      const std::size_t n = 1 + NextRandom(rng) % 16;
      const std::size_t len = std::min(n, bytes.size() - at);
      bytes.insert(bytes.end(), bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long smoke_iterations = 0;
  std::uint64_t seed = 1;
  int first_file = 1;
  if (argc >= 4 && std::strcmp(argv[1], "--smoke") == 0) {
    smoke_iterations = std::strtol(argv[2], nullptr, 10);
    seed = std::strtoull(argv[3], nullptr, 10);
    first_file = 4;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--smoke N SEED] FILE...\n", argv[0]);
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  for (int i = first_file; i < argc; ++i) {
    corpus.push_back(ReadFile(argv[i]));
    const auto& bytes = corpus.back();
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu corpus file(s)\n", corpus.size());

  std::uint64_t rng = seed ? seed : 1;
  for (long i = 0; i < smoke_iterations; ++i) {
    std::vector<std::uint8_t> bytes = corpus[NextRandom(rng) % corpus.size()];
    const std::size_t edits = 1 + NextRandom(rng) % 8;
    for (std::size_t e = 0; e < edits; ++e) Mutate(bytes, rng);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  if (smoke_iterations > 0) {
    std::printf("ran %ld smoke mutation(s), seed %llu\n", smoke_iterations,
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
