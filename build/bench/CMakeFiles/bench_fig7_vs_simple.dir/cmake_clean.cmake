file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vs_simple.dir/bench_fig7_vs_simple.cc.o"
  "CMakeFiles/bench_fig7_vs_simple.dir/bench_fig7_vs_simple.cc.o.d"
  "bench_fig7_vs_simple"
  "bench_fig7_vs_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vs_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
