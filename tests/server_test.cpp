// End-to-end tests for netclustd's service layer (src/server/): a real
// Server on an ephemeral loopback port, driven through the blocking
// Client and raw sockets. Covers the acceptance contract of the daemon:
//
//   * wire lookups are bit-identical to direct Engine::Lookup calls;
//   * an INGEST_UPDATE acked mid-test is visible to subsequent lookups;
//   * backpressure surfaces as BUSY (retryable), not as dropped bytes —
//     and it is per-reactor: flooding one reactor leaves the others
//     answering;
//   * a reply that overruns the socket buffer parks behind EPOLLOUT and
//     is delivered byte-exactly, without stalling the reactor;
//   * accepts spread across the per-reactor SO_REUSEPORT listeners;
//   * malformed frames draw an ERROR and close only that connection;
//   * Stop() drains gracefully with clients still connected, including
//     mid-pipeline (whole frames then EOF, never a torn frame).
//
// The whole file is run under TSan in CI (reactor threads and the ingest
// thread all cross the engine's RCU boundary here).
#include "server/server.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bgp/update.h"
#include "engine/engine.h"
#include "loadgen.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "server/client.h"
#include "server/io_util.h"
#include "server/proto.h"

namespace netclust::server {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

/// Engine with two registered sources (0 = seed, 1 = live ingest) and a
/// small seeded table, started and ready to serve.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.emplace();
    seed_source_ = engine_->AddSource(
        {"SEED", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
    live_source_ = engine_->AddSource(
        {"LIVE", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
    engine_->Announce(P("10.0.0.0/8"), seed_source_, 65000);
    engine_->Announce(P("151.198.0.0/16"), seed_source_, 7018);
    engine_->Announce(P("151.198.192.0/18"), seed_source_, 1742);
    engine_->Start();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    engine_->Stop();
  }

  std::uint16_t Serve(ServerConfig config = {}) {
    config.port = 0;
    config.source_count = 2;
    server_.emplace(&*engine_, config);
    const Result<std::uint16_t> port = server_->Serve();
    EXPECT_TRUE(port.ok()) << (port.ok() ? "" : port.error());
    return port.value_or(0);
  }

  Client ConnectOrDie(std::uint16_t port) {
    Result<Client> client = Client::Connect("127.0.0.1", port, 2'000);
    EXPECT_TRUE(client.ok()) << (client.ok() ? "" : client.error());
    return std::move(client).value();
  }

  std::optional<engine::Engine> engine_;
  std::optional<Server> server_;
  int seed_source_ = -1;
  int live_source_ = -1;
};

TEST_F(ServerTest, WireLookupsAreBitIdenticalToDirectEngineLookups) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);

  const std::vector<IpAddress> probes{
      IpAddress(10, 1, 2, 3),        // /8 hit
      IpAddress(151, 198, 10, 1),    // /16 hit
      IpAddress(151, 198, 200, 40),  // longest-match /18 hit
      IpAddress(192, 0, 2, 55),      // miss
      IpAddress(0, 0, 0, 0),         // miss (edge)
      IpAddress(255, 255, 255, 255),
  };
  for (const IpAddress probe : probes) {
    const Result<LookupRecord> wire = client.Lookup(probe);
    ASSERT_TRUE(wire.ok()) << wire.error();
    EXPECT_EQ(wire.value(), LookupRecord::FromMatch(engine_->Lookup(probe)))
        << "lookup diverged for " << probe.bits();
  }

  // One BATCH_LOOKUP must answer exactly like N single lookups, in order.
  const Result<std::vector<LookupRecord>> batch = client.BatchLookup(probes);
  ASSERT_TRUE(batch.ok()) << batch.error();
  ASSERT_EQ(batch.value().size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batch.value()[i],
              LookupRecord::FromMatch(engine_->Lookup(probes[i])));
  }

  const Result<std::vector<std::uint8_t>> pong =
      client.Ping({0xDE, 0xAD, 0xBE, 0xEF});
  ASSERT_TRUE(pong.ok()) << pong.error();
  EXPECT_EQ(pong.value(), (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST_F(ServerTest, AckedIngestIsVisibleToSubsequentLookups) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);
  const IpAddress probe(192, 0, 2, 55);

  const Result<LookupRecord> before = client.Lookup(probe);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().found);

  bgp::UpdateMessage update;
  update.announced = {P("192.0.2.0/24")};
  update.as_path = {4969};
  const Result<IngestAck> ack = client.IngestUpdate(
      static_cast<std::uint32_t>(live_source_), update);
  ASSERT_TRUE(ack.ok()) << ack.error();
  EXPECT_GT(ack.value().table_version, 0u);

  // The ack means the snapshot is published: this lookup (same connection
  // or any other) must see the announced prefix.
  const Result<LookupRecord> after = client.Lookup(probe);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().found);
  EXPECT_EQ(after.value().prefix, P("192.0.2.0/24"));
  EXPECT_EQ(after.value().origin_as, 4969u);

  Client other = ConnectOrDie(port);
  const Result<LookupRecord> cross = other.Lookup(probe);
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross.value(), after.value());

  // Withdraw it again and the miss comes back.
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = {P("192.0.2.0/24")};
  const Result<IngestAck> ack2 = client.IngestUpdate(
      static_cast<std::uint32_t>(live_source_), withdraw);
  ASSERT_TRUE(ack2.ok()) << ack2.error();
  EXPECT_GT(ack2.value().table_version, ack.value().table_version);
  const Result<LookupRecord> gone = client.Lookup(probe);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone.value().found);
}

TEST_F(ServerTest, StatsExposeServerAndEngineCounters) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);
  ASSERT_TRUE(client.Lookup(IpAddress(10, 0, 0, 1)).ok());

  const Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_NE(stats.value().find("netclust_server_lookups_served_total"),
            std::string::npos);
  EXPECT_NE(stats.value().find("netclust_server_connections_active"),
            std::string::npos);
  EXPECT_NE(stats.value().find("netclust_server_lookup_service_p99_ns"),
            std::string::npos);
  EXPECT_NE(stats.value().find("netclust_engine_"), std::string::npos)
      << "engine exposition missing from STATS";
  EXPECT_GE(server_->metrics().lookups_served.value(), 1u);
}

TEST_F(ServerTest, UnknownIngestSourceIsRejectedWithoutClosing) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);
  bgp::UpdateMessage update;
  update.announced = {P("198.51.100.0/24")};
  update.as_path = {65001};
  const Result<IngestAck> ack = client.IngestUpdate(99, update);
  ASSERT_FALSE(ack.ok());
  EXPECT_NE(ack.error().find("unknown ingest source id"), std::string::npos)
      << ack.error();
  // The connection survives a payload-level error.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, MalformedFramesDrawAnErrorAndCloseTheConnection) {
  const std::uint16_t port = Serve();
  const Result<int> fd = ConnectTcp("127.0.0.1", port, 2'000);
  ASSERT_TRUE(fd.ok()) << fd.error();

  const std::vector<std::uint8_t> junk{0xFF, 0xFF, 0xFF, 0xFF,
                                       0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(WriteFull(fd.value(), junk.data(), junk.size(), 2'000).ok());

  std::vector<std::uint8_t> header(kHeaderSize);
  const Result<IoStatus> got =
      ReadFull(fd.value(), header.data(), header.size(), 2'000);
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_EQ(got.value(), IoStatus::kOk);
  const Result<FrameHeader> reply =
      DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(reply.value().opcode, Opcode::kError);
  std::vector<std::uint8_t> payload(reply.value().payload_size);
  ASSERT_TRUE(
      ReadFull(fd.value(), payload.data(), payload.size(), 2'000).ok());
  const Result<ErrorReply> error =
      DecodeError(payload.data(), payload.size());
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().code, ErrorCode::kMalformedFrame);

  // After the error the server closes: the next read sees EOF.
  std::uint8_t byte = 0;
  const Result<IoStatus> eof = ReadFull(fd.value(), &byte, 1, 2'000);
  ASSERT_TRUE(eof.ok()) << eof.error();
  EXPECT_EQ(eof.value(), IoStatus::kClosed);
  CloseFd(fd.value());

  // Other connections are unaffected.
  Client client = ConnectOrDie(port);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ResponseOpcodeAsRequestIsUnsupportedNotFatal) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);
  // Reach into the wire directly: a PONG is a known opcode, so it frames
  // fine, but it is not a request.
  const Result<int> fd = ConnectTcp("127.0.0.1", port, 2'000);
  ASSERT_TRUE(fd.ok());
  const auto frame = EncodeFrame(Opcode::kPong, {});
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size(), 2'000).ok());
  std::vector<std::uint8_t> header(kHeaderSize);
  ASSERT_TRUE(ReadFull(fd.value(), header.data(), header.size(), 2'000).ok());
  const Result<FrameHeader> reply =
      DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().opcode, Opcode::kError);
  std::vector<std::uint8_t> payload(reply.value().payload_size);
  ASSERT_TRUE(
      ReadFull(fd.value(), payload.data(), payload.size(), 2'000).ok());
  const Result<ErrorReply> error =
      DecodeError(payload.data(), payload.size());
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().code, ErrorCode::kUnsupportedOpcode);
  // Connection stays open: a real request on it still works.
  const auto ping = EncodeFrame(Opcode::kPing, {});
  ASSERT_TRUE(WriteFull(fd.value(), ping.data(), ping.size(), 2'000).ok());
  ASSERT_TRUE(ReadFull(fd.value(), header.data(), header.size(), 2'000).ok());
  const Result<FrameHeader> pong =
      DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().opcode, Opcode::kPong);
  CloseFd(fd.value());
}

TEST_F(ServerTest, ConnectionLimitAnswersBusy) {
  ServerConfig config;
  config.max_connections = 2;
  const std::uint16_t port = Serve(config);
  Client first = ConnectOrDie(port);
  Client second = ConnectOrDie(port);
  ASSERT_TRUE(first.Ping().ok());
  ASSERT_TRUE(second.Ping().ok());

  // The third connection is accepted at the TCP level, told BUSY, and
  // closed — an explicit retry signal, not a silent drop.
  Result<Client> third = Client::Connect("127.0.0.1", port, 2'000);
  ASSERT_TRUE(third.ok()) << third.error();
  const Result<std::vector<std::uint8_t>> ping = third.value().Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_TRUE(Client::IsBusy(ping.error())) << ping.error();
  EXPECT_GE(server_->metrics().connections_rejected.value(), 1u);

  // Freeing a slot lets the next connection in. The slot is released when
  // a reader observes the close; poll briefly rather than assuming
  // instant accounting.
  first.Close();
  bool ok = false;
  for (int attempt = 0; attempt < 50 && !ok; ++attempt) {
    Result<Client> retry = Client::Connect("127.0.0.1", port, 2'000);
    ASSERT_TRUE(retry.ok());
    ok = retry.value().Ping().ok();
  }
  EXPECT_TRUE(ok) << "slot never freed after a client disconnect";
}

TEST_F(ServerTest, StopDrainsGracefullyWithClientsConnected) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);
  ASSERT_TRUE(client.Ping().ok());

  server_->Stop();
  // After the drain the port no longer accepts.
  EXPECT_FALSE(Client::Connect("127.0.0.1", port, 300).ok());
  // And the old connection is gone (EOF or reset, surfaced as an error).
  EXPECT_FALSE(client.Ping().ok());
  server_.reset();
}

TEST(BusyBackoff, CapsExponentAndJittersWithinBounds) {
  RetryPolicy policy;
  policy.base_backoff_us = 200;
  policy.max_backoff_us = 50'000;
  std::uint64_t rng = 1;
  for (int attempt = 0; attempt < 20; ++attempt) {
    // The ceiling doubles per attempt and saturates at max_backoff_us;
    // jitter keeps every draw inside [ceiling/2, ceiling].
    std::uint64_t ceiling = policy.base_backoff_us;
    for (int i = 0; i < attempt && ceiling < policy.max_backoff_us; ++i) {
      ceiling *= 2;
    }
    ceiling = std::min(ceiling, policy.max_backoff_us);
    for (int draw = 0; draw < 32; ++draw) {
      const std::uint64_t us = Client::BusyBackoffUs(policy, attempt, &rng);
      EXPECT_GE(us, ceiling / 2) << "attempt " << attempt;
      EXPECT_LE(us, ceiling) << "attempt " << attempt;
    }
  }
  // Same seed, same schedule: the jitter is deterministic per stream.
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(Client::BusyBackoffUs(policy, attempt, &a),
              Client::BusyBackoffUs(policy, attempt, &b));
  }
  // Degenerate policy: zero backoff means "retry immediately", no jitter.
  RetryPolicy tiny;
  tiny.base_backoff_us = 0;
  tiny.max_backoff_us = 0;
  std::uint64_t r = 7;
  EXPECT_EQ(Client::BusyBackoffUs(tiny, 3, &r), 0u);
}

TEST(ClientBusyRetry, AbsorbsBusyRepliesAndSucceedsOnTheSameConnection) {
  // A scripted server that answers BUSY twice and then a real result —
  // backpressure the client must ride out without surfacing an error.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::thread backpressured([listener] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) return;
    for (int frame = 0;; ++frame) {
      std::uint8_t header[kHeaderSize];
      const auto got = ReadFull(conn, header, kHeaderSize, 2'000);
      if (!got.ok() || got.value() != IoStatus::kOk) break;
      const auto decoded = DecodeFrameHeader(header, kHeaderSize);
      if (!decoded.ok()) break;
      std::vector<std::uint8_t> payload(decoded.value().payload_size);
      if (!payload.empty() &&
          !ReadFull(conn, payload.data(), payload.size(), 2'000).ok()) {
        break;
      }
      const std::vector<std::uint8_t> reply =
          frame < 2 ? EncodeFrame(Opcode::kBusy, {})
                    : EncodeFrame(Opcode::kLookupResult,
                                  EncodeLookupRecord(LookupRecord{}));
      if (!WriteFull(conn, reply.data(), reply.size(), 2'000).ok()) break;
      if (frame >= 2) break;
    }
    CloseFd(conn);
  });

  Result<Client> client = Client::Connect("127.0.0.1", port, 2'000);
  ASSERT_TRUE(client.ok()) << client.error();
  RetryPolicy policy;
  policy.busy_retries = 8;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 8;
  client.value().set_retry_policy(policy);
  const Result<LookupRecord> got =
      client.value().Lookup(IpAddress(10, 0, 0, 1));
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_FALSE(got.value().found);
  EXPECT_EQ(client.value().busy_absorbed(), 2u);
  backpressured.join();
  CloseFd(listener);
}

TEST_F(ServerTest, BusyBudgetExhaustionSurfacesTheRetryableError) {
  ServerConfig config;
  config.max_inflight_frames = 0;  // every data frame draws BUSY
  const std::uint16_t port = Serve(config);
  Client client = ConnectOrDie(port);
  RetryPolicy policy;
  policy.busy_retries = 3;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 4;
  client.set_retry_policy(policy);

  const Result<LookupRecord> got = client.Lookup(IpAddress(10, 0, 0, 1));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(Client::IsBusy(got.error())) << got.error();
  EXPECT_EQ(client.busy_absorbed(), 3u);
  // Budget spent = initial try + 3 retries, every one answered BUSY.
  EXPECT_GE(server_->metrics().busy_replies.value(), 4u);
}

TEST_F(ServerTest, BatchLookupSplitsTransparentlyAboveKMaxBatch) {
  const std::uint16_t port = Serve();
  Client client = ConnectOrDie(port);

  std::vector<IpAddress> addresses;
  addresses.reserve(kMaxBatch + 1);
  for (std::uint32_t i = 0; i < kMaxBatch + 1; ++i) {
    addresses.emplace_back((10u << 24) | i);  // all inside 10.0.0.0/8
  }
  addresses.back() = IpAddress(151, 198, 200, 40);  // tail chunk: /18 hit

  const Result<std::vector<LookupRecord>> got =
      client.BatchLookup(addresses);
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_EQ(got.value().size(), static_cast<std::size_t>(kMaxBatch) + 1);
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    ASSERT_EQ(got.value()[i],
              LookupRecord::FromMatch(engine_->Lookup(addresses[i])))
        << "split batch diverged at position " << i;
  }
  EXPECT_TRUE(got.value().back().found);
  EXPECT_EQ(got.value().back().prefix, P("151.198.192.0/18"));
}

TEST_F(ServerTest, LoadGeneratorSmokeOverConcurrentConnections) {
  ServerConfig config;
  config.reactors = 4;
  const std::uint16_t port = Serve(config);

  loadgen::Options options;
  options.port = port;
  options.connections = 3;
  options.total_frames = 600;
  options.batch_size = 4;
  options.addresses =
      loadgen::SyntheticAddresses(512, IpAddress(10, 0, 0, 0), 8);
  const Result<loadgen::Report> report = loadgen::Run(options);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report.value().errors, 0u) << report.value().first_error;
  EXPECT_EQ(report.value().frames_sent, 600u);
  EXPECT_EQ(report.value().lookups_done, 2'400u);
  // Every synthetic address sits inside the seeded 10.0.0.0/8.
  EXPECT_EQ(report.value().found, report.value().lookups_done);
  EXPECT_GT(report.value().qps, 0.0);
  const std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"qps\""), std::string::npos);

  // Same traffic pipelined: 4 frames in flight per connection, same
  // totals, same full coverage.
  options.pipeline = 4;
  const Result<loadgen::Report> pipelined = loadgen::Run(options);
  ASSERT_TRUE(pipelined.ok()) << pipelined.error();
  EXPECT_EQ(pipelined.value().errors, 0u) << pipelined.value().first_error;
  EXPECT_EQ(pipelined.value().frames_sent, 600u);
  EXPECT_EQ(pipelined.value().lookups_done, 2'400u);
  EXPECT_EQ(pipelined.value().found, pipelined.value().lookups_done);
  EXPECT_NE(pipelined.value().ToJson().find("\"pipeline\": 4"),
            std::string::npos);
}

// --- the reactor data plane's own acceptance contract ---

/// Raw-socket helper: one request frame out, one reply frame back.
Result<Frame> RoundTripRaw(int fd, const std::vector<std::uint8_t>& wire,
                           int timeout_ms = 2'000) {
  auto sent = WriteFull(fd, wire.data(), wire.size(), timeout_ms);
  if (!sent.ok()) return Fail(sent.error());
  if (sent.value() != IoStatus::kOk) return Fail("send did not complete");
  std::uint8_t header_bytes[kHeaderSize];
  auto got = ReadFull(fd, header_bytes, kHeaderSize, timeout_ms);
  if (!got.ok()) return Fail(got.error());
  if (got.value() != IoStatus::kOk) return Fail("no reply header");
  auto header = DecodeFrameHeader(header_bytes, kHeaderSize);
  if (!header.ok()) return Fail(header.error());
  Frame frame;
  frame.header = header.value();
  frame.payload.resize(header.value().payload_size);
  if (!frame.payload.empty()) {
    auto body = ReadFull(fd, frame.payload.data(), frame.payload.size(),
                         timeout_ms);
    if (!body.ok()) return Fail(body.error());
    if (body.value() != IoStatus::kOk) return Fail("torn reply payload");
  }
  return frame;
}

/// Which reactor owns the connection on `fd`? The kernel's SO_REUSEPORT
/// hash decides, so tests discover it: ping once and see whose
/// frames_decoded counter moved.
int ReactorOf(Server* server, int fd) {
  std::vector<std::uint64_t> before;
  for (std::size_t i = 0; i < server->reactor_count(); ++i) {
    before.push_back(server->reactor_metrics(i).frames_decoded.value());
  }
  auto pong = RoundTripRaw(fd, EncodeFrame(Opcode::kPing, {}));
  if (!pong.ok() || pong.value().header.opcode != Opcode::kPong) return -1;
  for (std::size_t i = 0; i < server->reactor_count(); ++i) {
    if (server->reactor_metrics(i).frames_decoded.value() > before[i]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST_F(ServerTest, AcceptsSpreadAcrossReactorListeners) {
  // The single-listener bug this guards against: one EPOLLONESHOT
  // listener serialized every accept through whichever thread won the
  // rearm race. With one SO_REUSEPORT listener per reactor, the kernel's
  // 4-tuple hash spreads connections — with 32 connections on 4
  // listeners, all landing on one is a ~4^-31 event.
  ServerConfig config;
  config.reactors = 4;
  const std::uint16_t port = Serve(config);
  ASSERT_EQ(server_->reactor_count(), 4u);

  std::vector<Client> clients;
  for (int i = 0; i < 32; ++i) {
    clients.push_back(ConnectOrDie(port));
    ASSERT_TRUE(clients.back().Ping().ok());
  }
  int listeners_hit = 0;
  std::uint64_t accepted_sum = 0;
  for (std::size_t i = 0; i < server_->reactor_count(); ++i) {
    const std::uint64_t accepted =
        server_->reactor_metrics(i).connections_accepted.value();
    accepted_sum += accepted;
    if (accepted > 0) ++listeners_hit;
  }
  EXPECT_EQ(accepted_sum, 32u);
  EXPECT_GE(listeners_hit, 2) << "accepts did not distribute across reactors";
}

TEST_F(ServerTest, SlowReaderGetsByteExactReplyWithoutStallingTheReactor) {
  // Regression: the old reply path wrote with a blocking WriteFull, so a
  // peer that stopped reading parked the reader thread for the whole
  // write deadline. Now the overrun parks behind EPOLLOUT instead. One
  // reactor, a tiny send buffer, and a 4096-address batch (a ~64KiB
  // reply) guarantee the overrun.
  ServerConfig config;
  config.reactors = 1;
  config.accepted_sndbuf_bytes = 4'096;
  const std::uint16_t port = Serve(config);

  std::vector<IpAddress> addresses;
  addresses.reserve(kMaxBatch);
  for (std::uint32_t i = 0; i < kMaxBatch; ++i) {
    addresses.emplace_back((10u << 24) | (i * 977u));
  }
  std::vector<LookupRecord> expected_records;
  for (const IpAddress address : addresses) {
    expected_records.push_back(LookupRecord::FromMatch(
        engine_->Lookup(address)));
  }
  const std::vector<std::uint8_t> expected =
      EncodeFrame(Opcode::kBatchResult, EncodeBatchResult(expected_records));

  const Result<int> fd = ConnectTcp("127.0.0.1", port, 2'000);
  ASSERT_TRUE(fd.ok()) << fd.error();
  SetRecvBufferBytes(fd.value(), 4'096);
  BatchLookupRequest request;
  request.addresses = addresses;
  const auto wire =
      EncodeFrame(Opcode::kBatchLookup, EncodeBatchLookup(request));
  ASSERT_TRUE(WriteFull(fd.value(), wire.data(), wire.size(), 2'000).ok());

  // While the big reply sits queued on the slow connection, the reactor
  // must keep answering others. (Before the fix this ping blocked until
  // the slow reader drained or the write deadline fired.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client prober = ConnectOrDie(port);
  const auto ping_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(prober.Ping().ok());
  const auto ping_elapsed = std::chrono::steady_clock::now() - ping_start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                ping_elapsed).count(),
            1'000)
      << "reactor stalled behind a slow reader";

  // Dribble the reply out 512 bytes at a time and require byte-exact
  // delivery of the whole frame.
  std::vector<std::uint8_t> received;
  received.reserve(expected.size());
  std::uint8_t chunk[512];
  while (received.size() < expected.size()) {
    if (PollOne(fd.value(), POLLIN, 2'000) <= 0) break;
    const ssize_t n = RetryRead(fd.value(), chunk,
                                std::min(sizeof(chunk),
                                         expected.size() - received.size()));
    if (n <= 0) break;
    received.insert(received.end(), chunk, chunk + n);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(received.size(), expected.size());
  EXPECT_EQ(received, expected) << "short-write continuation corrupted the "
                                   "reply stream";

  std::uint64_t short_writes = 0;
  for (std::size_t i = 0; i < server_->reactor_count(); ++i) {
    short_writes += server_->reactor_metrics(i).short_writes.value();
  }
  EXPECT_GE(short_writes, 1u) << "the EPOLLOUT path never engaged";
  CloseFd(fd.value());
}

TEST_F(ServerTest, BackpressureIsPerReactorNotGlobal) {
  // Regression: the inflight gauge used to be one global atomic, so a
  // flood on one thread's connections drew BUSY for everyone (and N
  // threads could overshoot the cap N-fold). Now each reactor budgets its
  // own arena: flood one reactor's connection until it answers BUSY and
  // a connection on the other reactor must still get real answers,
  // first try.
  ServerConfig config;
  config.reactors = 2;
  config.max_inflight_frames = 2;
  config.accepted_sndbuf_bytes = 4'096;
  const std::uint16_t port = Serve(config);
  ASSERT_EQ(server_->reactor_count(), 2u);

  // Collect raw connections until both reactors are represented.
  std::vector<int> fds;
  int on_a = -1;
  int on_b = -1;
  for (int i = 0; i < 64 && (on_a < 0 || on_b < 0); ++i) {
    const Result<int> fd = ConnectTcp("127.0.0.1", port, 2'000);
    ASSERT_TRUE(fd.ok()) << fd.error();
    SetRecvBufferBytes(fd.value(), 4'096);
    fds.push_back(fd.value());
    const int reactor = ReactorOf(&*server_, fd.value());
    ASSERT_GE(reactor, 0);
    if (reactor == 0 && on_a < 0) on_a = fd.value();
    if (reactor == 1 && on_b < 0) on_b = fd.value();
  }
  ASSERT_GE(on_a, 0) << "no connection landed on reactor 0";
  ASSERT_GE(on_b, 0) << "no connection landed on reactor 1";

  // Flood reactor 0: big batch replies that cannot fit the tiny socket
  // buffer pile up unflushed, holding the inflight gauge above the cap.
  BatchLookupRequest request;
  for (std::uint32_t i = 0; i < kMaxBatch; ++i) {
    request.addresses.emplace_back((10u << 24) | i);
  }
  const auto flood_wire =
      EncodeFrame(Opcode::kBatchLookup, EncodeBatchLookup(request));
  for (int frame = 0; frame < 8; ++frame) {
    ASSERT_TRUE(
        WriteFull(on_a, flood_wire.data(), flood_wire.size(), 2'000).ok());
  }

  // Wait until reactor 0 has actually answered BUSY at least once.
  bool flooded = false;
  for (int attempt = 0; attempt < 200 && !flooded; ++attempt) {
    flooded = server_->reactor_metrics(0).busy_replies.value() > 0;
    if (!flooded) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(flooded) << "flooding never tripped reactor 0's inflight cap";

  // Reactor 1 must be unaffected: a single-attempt lookup (no BUSY
  // retries) succeeds while its sibling is saturated.
  const auto lookup_wire =
      EncodeFrame(Opcode::kLookup, EncodeLookup({IpAddress(10, 0, 0, 1)}));
  const Result<Frame> reply = RoundTripRaw(on_b, lookup_wire);
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(reply.value().header.opcode, Opcode::kLookupResult)
      << "reactor 1 answered " << OpcodeName(reply.value().header.opcode)
      << " while reactor 0 was flooded — backpressure leaked across "
         "reactors";
  EXPECT_EQ(server_->reactor_metrics(1).busy_replies.value(), 0u);

  // STATS reports both the per-reactor gauges and their sum.
  const std::string stats = server_->StatsText();
  EXPECT_NE(stats.find("netclust_server_reactor_inflight_frames{reactor=\"0\"}"),
            std::string::npos);
  EXPECT_NE(stats.find("netclust_server_inflight_frames_sum"),
            std::string::npos);

  for (const int fd : fds) CloseFd(fd);
}

TEST_F(ServerTest, StopDrainsMidPipelineWithWholeFramesThenEof) {
  ServerConfig config;
  config.reactors = 2;
  const std::uint16_t port = Serve(config);
  const Result<int> fd = ConnectTcp("127.0.0.1", port, 2'000);
  ASSERT_TRUE(fd.ok()) << fd.error();

  // Pipeline 100 lookups, read back only the first 10 replies, then pull
  // the plug. The drain contract: whatever else arrives is whole frames,
  // then a clean EOF — never a torn frame.
  const auto wire =
      EncodeFrame(Opcode::kLookup, EncodeLookup({IpAddress(10, 0, 0, 1)}));
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 100; ++i) {
    burst.insert(burst.end(), wire.begin(), wire.end());
  }
  ASSERT_TRUE(WriteFull(fd.value(), burst.data(), burst.size(), 2'000).ok());

  FrameDecoder decoder;
  std::size_t frames_seen = 0;
  std::uint8_t chunk[4'096];
  while (frames_seen < 10) {
    ASSERT_GT(PollOne(fd.value(), POLLIN, 2'000), 0);
    const ssize_t n = RetryRead(fd.value(), chunk, sizeof(chunk));
    ASSERT_GT(n, 0);
    decoder.Feed(chunk, static_cast<std::size_t>(n));
    while (true) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.error();
      if (!frame.value().has_value()) break;
      EXPECT_EQ(frame.value()->header.opcode, Opcode::kLookupResult);
      ++frames_seen;
    }
  }

  server_->Stop();

  // Drain to EOF; every remaining byte must frame cleanly.
  while (true) {
    if (PollOne(fd.value(), POLLIN, 2'000) <= 0) break;
    const ssize_t n = RetryRead(fd.value(), chunk, sizeof(chunk));
    if (n <= 0) break;
    decoder.Feed(chunk, static_cast<std::size_t>(n));
    while (true) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.error();
      if (!frame.value().has_value()) break;
      EXPECT_EQ(frame.value()->header.opcode, Opcode::kLookupResult);
      ++frames_seen;
    }
  }
  EXPECT_EQ(decoder.buffered(), 0u)
      << "drain left a torn frame on the wire";
  EXPECT_GE(frames_seen, 10u);
  EXPECT_LE(frames_seen, 100u);
  CloseFd(fd.value());
  server_.reset();
}

TEST_F(ServerTest, LookupsAreBitIdenticalAcrossReactorCounts) {
  // The reactor count is a deployment knob, not a semantic one: the same
  // probes must answer identically at 1 and at 4 reactors (and both match
  // the engine directly).
  const std::vector<IpAddress> probes{
      IpAddress(10, 1, 2, 3),
      IpAddress(151, 198, 10, 1),
      IpAddress(151, 198, 200, 40),
      IpAddress(192, 0, 2, 55),
      IpAddress(0, 0, 0, 0),
      IpAddress(255, 255, 255, 255),
  };
  for (const int reactors : {1, 4}) {
    ServerConfig config;
    config.reactors = reactors;
    const std::uint16_t port = Serve(config);
    ASSERT_EQ(server_->reactor_count(), static_cast<std::size_t>(reactors));
    Client client = ConnectOrDie(port);
    const Result<std::vector<LookupRecord>> batch =
        client.BatchLookup(probes);
    ASSERT_TRUE(batch.ok()) << batch.error();
    ASSERT_EQ(batch.value().size(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(batch.value()[i],
                LookupRecord::FromMatch(engine_->Lookup(probes[i])))
          << "reactors=" << reactors << " diverged at probe " << i;
    }
    server_->Stop();
  }
}

}  // namespace
}  // namespace netclust::server
