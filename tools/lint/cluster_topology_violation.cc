// Seed for the cluster-topology compile-fail check.
//
// Models the src/cluster ClusterClient single-owner contract: the cached
// topology is GUARDED_BY(owner_role_), so only code that has asserted the
// owner role (the client's documented single-caller API surface) may read
// or replace it. Compiled two ways by tools/lint/CMakeLists.txt on Clang:
//   * default — the seeded unguarded topology access below MUST be
//     rejected by -Wthread-safety -Werror=thread-safety;
//   * -DNETCLUST_TSA_EXPECT_CLEAN — the variant that asserts the owner
//     role first MUST compile (positive control).
// On non-Clang compilers the annotations are no-ops and this file is not
// exercised.

#include "base/sync.h"

namespace {

class TopologyClient {
 public:
  int epoch() const {
#ifdef NETCLUST_TSA_EXPECT_CLEAN
    netclust::base::AssumeThreadRole owner(owner_role_);
    return topology_epoch_;
#else
    // Seeded violation: reads the cached topology without holding the
    // owner role — exactly the cross-thread peek the client forbids.
    return topology_epoch_;
#endif
  }

  void Refresh() {
    netclust::base::AssumeThreadRole owner(owner_role_);
    topology_epoch_ += 1;
  }

 private:
  static inline const netclust::base::ThreadRole owner_role_{};
  int topology_epoch_ GUARDED_BY(owner_role_) = 0;
};

}  // namespace

int main() {
  TopologyClient client;
  client.Refresh();
  return client.epoch() == 1 ? 0 : 1;
}
