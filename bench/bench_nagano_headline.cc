// §3.2.2 headline numbers: clustering the Nagano log.
//
// Paper: 11,665,713 requests from 59,582 clients over 33,875 URLs group
// into 9,853 clusters; cluster sizes 1..1,343 clients; requests per
// cluster 1..339,632; URLs per cluster 1..8,095; 99.9% of clients
// clusterable, <1% via network dumps.
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/metrics.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "§3.2.2 — Nagano clustering headline",
      "59,582 clients -> 9,853 clusters; sizes 1-1,343; requests 1-339,632; "
      "URLs 1-8,095; 99.9% clustered");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const auto& log = generated.log;

  const core::Clustering clustering =
      core::ClusterNetworkAware(log, scenario.table);
  const core::ClusteringSummary summary = core::Summarize(clustering);

  std::printf("\n%-34s  %12s  %12s\n", "metric", "measured",
              "paper (x scale)");
  const double scale = scenario.scale;
  std::printf("%-34s  %12zu  %12.0f\n", "requests", log.request_count(),
              11665713 * scale);
  std::printf("%-34s  %12zu  %12.0f\n", "clients", log.unique_clients(),
              59582 * scale);
  std::printf("%-34s  %12zu  %12.0f\n", "unique URLs", log.unique_urls(),
              33875 * scale);
  std::printf("%-34s  %12zu  %12.0f\n", "client clusters", summary.clusters,
              9853 * scale);
  std::printf("%-34s  %12zu  %12s\n", "largest cluster (clients)",
              summary.max_cluster_clients, "1343");
  std::printf("%-34s  %12zu  %12s\n", "smallest cluster (clients)",
              summary.min_cluster_clients, "1");
  std::printf("%-34s  %12llu  %12.0f\n", "max requests in a cluster",
              static_cast<unsigned long long>(summary.max_cluster_requests),
              339632 * scale);
  std::printf("%-34s  %12llu  %12.0f\n", "max URLs in a cluster",
              static_cast<unsigned long long>(summary.max_cluster_urls),
              8095 * scale);
  std::printf("%-34s  %11.2f%%  %12s\n", "clients clustered",
              100.0 * clustering.coverage(), "99.9%");
  std::printf("%-34s  %11.2f%%  %12s\n", "clustered via network dumps",
              100.0 * static_cast<double>(clustering.dump_clustered_clients()) /
                  static_cast<double>(clustering.client_count()),
              "<1%");
  std::printf("%-34s  %12zu  %12s\n", "unclustered clients",
              clustering.unclustered.size(), "~0.1%");
  return 0;
}
