// Trace-driven web-caching simulation (§4.1.5).
//
// Places one proxy cache in front of every client cluster of a clustering
// and replays the server log through them in time order. Unclustered
// clients go straight to the origin. Reports the two performance views the
// paper plots:
//   * server performance (Figure 11): total hit/byte-hit ratio observed at
//     the origin, i.e. how much of the load the proxy layer absorbed;
//   * proxy performance (Figure 12): per-proxy ratios for the top clusters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/latency.h"
#include "cache/proxy_cache.h"
#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::cache {

struct SimulationConfig {
  ProxyConfig proxy;
  /// Ignore resources requested fewer than this many times (the paper's
  /// footnote 9 filters URLs "accessed by clients less than 10 times").
  std::uint64_t min_url_accesses = 0;
  /// Seed for the origin's modification process.
  std::uint64_t origin_seed = 0xCAFE;
  double origin_mean_update_hours = 24.0;
  /// When non-null, every request is also accounted a client-perceived
  /// latency (see cache/latency.h). Not owned.
  const LatencyModel* latency = nullptr;
};

struct SimulationResult {
  std::string approach;
  /// Stats per cluster (same indexing as the clustering's clusters).
  std::vector<ProxyStats> proxies;
  /// Requests from unclustered clients, which bypass the proxy layer.
  std::uint64_t direct_requests = 0;
  std::uint64_t direct_bytes = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t skipped_requests = 0;  // filtered by min_url_accesses
  /// Summed client-perceived latency (ms); 0 unless a LatencyModel was
  /// configured.
  double total_latency_ms = 0.0;

  /// Mean client-perceived latency per request (ms).
  [[nodiscard]] double MeanLatencyMs() const {
    return total_requests == 0 ? 0.0
                               : total_latency_ms /
                                     static_cast<double>(total_requests);
  }

  /// Fraction of requests that never reached the origin — Figure 11(a).
  [[nodiscard]] double ServerHitRatio() const;
  /// Fraction of bytes not transferred from the origin — Figure 11(b).
  [[nodiscard]] double ServerByteHitRatio() const;
};

/// Replays `log` through per-cluster proxies defined by `clustering`.
SimulationResult SimulateProxyCaching(const weblog::ServerLog& log,
                                      const core::Clustering& clustering,
                                      const SimulationConfig& config);

}  // namespace netclust::cache
