#include "bgp/prefix_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace netclust::bgp {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }
IpAddress A(const char* text) { return IpAddress::Parse(text).value(); }

SnapshotInfo BgpInfo(const char* name) {
  return SnapshotInfo{name, "12/7/1999", SourceKind::kBgpTable, ""};
}
SnapshotInfo DumpInfo(const char* name) {
  return SnapshotInfo{name, "10/1999", SourceKind::kNetworkDump, ""};
}

TEST(PrefixTable, MergesSnapshotsAndCountsUniquePrefixes) {
  PrefixTable table;
  Snapshot mae;
  mae.info = BgpInfo("MAE-WEST");
  mae.entries.push_back(RouteEntry{P("12.65.128.0/19"), {}, {}, "", ""});
  mae.entries.push_back(RouteEntry{P("24.48.2.0/23"), {}, {}, "", ""});
  Snapshot aads;
  aads.info = BgpInfo("AADS");
  aads.entries.push_back(RouteEntry{P("12.65.128.0/19"), {}, {}, "", ""});
  aads.entries.push_back(RouteEntry{P("18.0.0.0/8"), {}, {}, "", ""});

  table.AddSnapshot(mae);
  table.AddSnapshot(aads);

  EXPECT_EQ(table.size(), 3u);  // union, not sum
  ASSERT_EQ(table.sources().size(), 2u);
  EXPECT_EQ(table.sources()[0].entries, 2u);
  EXPECT_EQ(table.sources()[0].new_prefixes, 2u);
  EXPECT_EQ(table.sources()[1].entries, 2u);
  EXPECT_EQ(table.sources()[1].new_prefixes, 1u);  // 12.65.128.0/19 was known
}

TEST(PrefixTable, LongestMatchPicksMostSpecificBgpPrefix) {
  PrefixTable table;
  const int source = table.AddSource(BgpInfo("OREGON"));
  table.Insert(P("12.0.0.0/8"), source);
  table.Insert(P("12.65.0.0/16"), source);
  table.Insert(P("12.65.128.0/19"), source);

  const auto match = table.LongestMatch(A("12.65.147.94"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->prefix, P("12.65.128.0/19"));
  EXPECT_EQ(match->kind, SourceKind::kBgpTable);
}

TEST(PrefixTable, NoMatchForUncoveredAddress) {
  PrefixTable table;
  const int source = table.AddSource(BgpInfo("OREGON"));
  table.Insert(P("12.0.0.0/8"), source);
  EXPECT_FALSE(table.LongestMatch(A("99.1.2.3")).has_value());
}

TEST(PrefixTable, NetworkDumpIsSecondarySource) {
  PrefixTable table;
  const int bgp = table.AddSource(BgpInfo("OREGON"));
  const int dump = table.AddSource(DumpInfo("ARIN"));
  // The registry knows a *longer* (more specific) prefix than BGP — the
  // case §3.1.1 warns about: the dump entry must NOT shadow the BGP route.
  table.Insert(P("12.65.0.0/16"), bgp);
  table.Insert(P("12.65.128.0/19"), dump);

  const auto match = table.LongestMatch(A("12.65.147.94"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->prefix, P("12.65.0.0/16"));
  EXPECT_EQ(match->kind, SourceKind::kBgpTable);
}

TEST(PrefixTable, NetworkDumpFillsCoverageHoles) {
  PrefixTable table;
  const int bgp = table.AddSource(BgpInfo("OREGON"));
  const int dump = table.AddSource(DumpInfo("ARIN"));
  table.Insert(P("12.65.0.0/16"), bgp);
  table.Insert(P("151.198.0.0/16"), dump);

  const auto match = table.LongestMatch(A("151.198.194.17"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->prefix, P("151.198.0.0/16"));
  EXPECT_EQ(match->kind, SourceKind::kNetworkDump);
}

TEST(PrefixTable, SamePrefixFromBothKindsCountsAsBgp) {
  PrefixTable table;
  const int bgp = table.AddSource(BgpInfo("OREGON"));
  const int dump = table.AddSource(DumpInfo("ARIN"));
  table.Insert(P("12.65.0.0/16"), dump);
  table.Insert(P("12.65.0.0/16"), bgp);

  const auto match = table.LongestMatch(A("12.65.1.1"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->kind, SourceKind::kBgpTable);
  EXPECT_EQ(match->source_mask, (1u << bgp) | (1u << dump));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, SourceRegistrationFailsDetectablyAtTheLimit) {
  // Regression (PR 5): AddSource used to guard kMaxSources with an assert
  // only, so an NDEBUG build registering a 33rd source handed out id 32 and
  // `1u << 32` on a uint32 mask — UB. Registration must fail detectably.
  PrefixTable table;
  for (int i = 0; i < PrefixTable::kMaxSources; ++i) {
    const std::string name = "S" + std::to_string(i);
    const int id = table.AddSource(BgpInfo(name.c_str()));
    EXPECT_EQ(id, i);
  }
  // The 33rd registration is refused, not UB.
  const int overflow = table.AddSource(BgpInfo("ONE-TOO-MANY"));
  EXPECT_EQ(overflow, PrefixTable::kInvalidSource);
  EXPECT_EQ(table.sources().size(),
            static_cast<std::size_t>(PrefixTable::kMaxSources));

  // Inserting through the invalid id is a counted no-op, and a valid
  // insert afterwards is unharmed.
  table.Insert(P("12.0.0.0/8"), overflow);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.rejected_inserts(), 1u);
  table.Insert(P("12.0.0.0/8"), PrefixTable::kMaxSources - 1);
  const auto match = table.LongestMatch(A("12.1.2.3"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->source_mask, 1u << (PrefixTable::kMaxSources - 1));
}

TEST(PrefixTable, SnapshotLoadFailsCleanlyAtSourceLimit) {
  PrefixTable table;
  for (int i = 0; i < PrefixTable::kMaxSources; ++i) {
    ASSERT_GE(table.AddSource(BgpInfo(("S" + std::to_string(i)).c_str())), 0);
  }
  Snapshot snapshot;
  snapshot.info = BgpInfo("OVERFLOW");
  snapshot.entries.push_back(RouteEntry{P("10.0.0.0/8"), {}, {}, "", ""});
  EXPECT_EQ(table.AddSnapshot(snapshot), PrefixTable::kInvalidSource);
  EXPECT_EQ(table.size(), 0u);  // nothing from the refused snapshot landed
}

TEST(PrefixTable, CompileFlatMatchesLongestMatchSemantics) {
  PrefixTable table;
  const int bgp = table.AddSource(BgpInfo("OREGON"));
  const int dump = table.AddSource(DumpInfo("ARIN"));
  // The §3.1.1 shadowing case: a longer dump prefix must not beat BGP...
  table.Insert(P("12.65.0.0/16"), bgp, 7018);
  table.Insert(P("12.65.128.0/19"), dump);
  // ...a hole only the dump covers...
  table.Insert(P("151.198.0.0/16"), dump);
  // ...and a prefix known to both kinds (counts as BGP).
  table.Insert(P("24.48.0.0/15"), dump);
  table.Insert(P("24.48.0.0/15"), bgp, 6172);

  const PrefixTable::Flat flat = table.CompileFlat();
  EXPECT_EQ(flat.size(), table.size());
  const IpAddress probes[] = {A("12.65.147.94"), A("151.198.194.17"),
                              A("24.48.2.9"), A("99.1.2.3")};
  for (const IpAddress address : probes) {
    const auto expected = table.LongestMatch(address);
    const auto got = flat.LongestMatch(address);
    ASSERT_EQ(expected.has_value(), got.has_value()) << address.ToString();
    if (!expected.has_value()) continue;
    EXPECT_EQ(got->value->prefix, expected->prefix) << address.ToString();
    EXPECT_EQ(got->value->kind, expected->kind) << address.ToString();
    EXPECT_EQ(got->value->source_mask, expected->source_mask)
        << address.ToString();
    EXPECT_EQ(got->value->origin_as, expected->origin_as)
        << address.ToString();
  }
  // Spot-check the interesting verdicts directly.
  EXPECT_EQ(flat.LongestMatch(A("12.65.147.94"))->value->prefix,
            P("12.65.0.0/16"));  // BGP beats the longer dump prefix
  EXPECT_EQ(flat.LongestMatch(A("151.198.194.17"))->value->kind,
            SourceKind::kNetworkDump);
  EXPECT_EQ(flat.LongestMatch(A("24.48.2.9"))->value->kind,
            SourceKind::kBgpTable);
  EXPECT_FALSE(flat.LongestMatch(A("99.1.2.3")).has_value());
}

TEST(PrefixTable, AllPrefixesEnumeratesUnion) {
  PrefixTable table;
  const int source = table.AddSource(BgpInfo("OREGON"));
  table.Insert(P("12.0.0.0/8"), source);
  table.Insert(P("18.0.0.0/8"), source);
  table.Insert(P("12.0.0.0/8"), source);  // duplicate

  auto prefixes = table.AllPrefixes();
  std::sort(prefixes.begin(), prefixes.end());
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], P("12.0.0.0/8"));
  EXPECT_EQ(prefixes[1], P("18.0.0.0/8"));
  EXPECT_TRUE(table.Contains(P("18.0.0.0/8")));
  EXPECT_FALSE(table.Contains(P("18.0.0.0/9")));
}

}  // namespace
}  // namespace netclust::bgp
