// MRT (Multi-Threaded Routing Toolkit) TABLE_DUMP_V2 reader/writer.
//
// Implements the RFC 6396 subset needed to exchange RIB snapshots the way
// route collectors (Oregon RouteViews, RIPE RIS — the successors of the
// paper's OREGON/MAE-* sources) publish them today:
//
//   * common MRT header (timestamp, type, subtype, length)
//   * TABLE_DUMP    / AFI_IPv4           (type 12, subtype 1) — the
//     paper-era format route-views actually served in 1999, one route per
//     record with 2-byte AS numbers
//   * TABLE_DUMP_V2 / PEER_INDEX_TABLE   (type 13, subtype 1)
//   * TABLE_DUMP_V2 / RIB_IPV4_UNICAST   (type 13, subtype 2)
//   * BGP path attributes ORIGIN, AS_PATH (2- or 4-byte ASNs by format),
//     NEXT_HOP
//
// ReadMrt handles both generations in one stream. Unknown record types and
// path attributes are skipped, not rejected, so a real RouteViews file
// with extra records still parses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/route_entry.h"
#include "net/result.h"

namespace netclust::bgp {

/// MRT decode statistics.
struct MrtStats {
  std::size_t records = 0;
  std::size_t rib_records = 0;
  std::size_t skipped_records = 0;  // non-TABLE_DUMP_V2 or non-IPv4 subtypes
  std::size_t peers = 0;
};

/// MRT encode accounting. The wire format caps the view-name length and the
/// path-attribute block length at 16 bits; rather than silently truncating
/// a length field while writing the full payload (which yields undecodable
/// records), the writers clamp the payload itself and count it here.
struct MrtWriteStats {
  /// View names longer than 65535 bytes, written truncated to 65535.
  std::size_t clamped_view_names = 0;
  /// Entries whose AS_PATH was cut short so the encoded attribute block
  /// still fits its 16-bit length field (~16000 ASNs in v2; real BGP paths
  /// are under a hundred).
  std::size_t clamped_as_paths = 0;
};

/// Encodes `snapshot` as an MRT TABLE_DUMP_V2 byte stream: one
/// PEER_INDEX_TABLE record followed by one RIB_IPV4_UNICAST record per
/// entry. `timestamp` is the UNIX time stamped on every record. AS paths
/// longer than 255 hops are split across multiple AS_SEQUENCE segments, as
/// RFC 4271 prescribes. Oversized inputs are clamped, never mis-encoded;
/// pass `stats` to detect clamping.
std::vector<std::uint8_t> WriteMrt(const Snapshot& snapshot,
                                   std::uint32_t timestamp,
                                   MrtWriteStats* stats = nullptr);

/// Encodes `snapshot` as legacy TABLE_DUMP (v1): one AFI_IPv4 record per
/// entry. AS numbers above 65535 are clamped to AS_TRANS (23456), as the
/// 2-byte format requires. Same segment-splitting and clamp accounting as
/// WriteMrt.
std::vector<std::uint8_t> WriteMrtV1(const Snapshot& snapshot,
                                     std::uint32_t timestamp,
                                     MrtWriteStats* stats = nullptr);

/// Decodes an MRT TABLE_DUMP_V2 byte stream produced by WriteMrt or a route
/// collector. Fails on structural corruption (truncated records, RIB entry
/// referencing an unknown peer); skips unknown record types.
Result<Snapshot> ReadMrt(const std::vector<std::uint8_t>& bytes,
                         const SnapshotInfo& info, MrtStats* stats = nullptr);

}  // namespace netclust::bgp
