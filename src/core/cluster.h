// Client-cluster identification (§3.2) — the paper's core contribution —
// plus the two baselines it is evaluated against (§2).
//
// A clustering partitions the clients of a server log into groups keyed by
// a network prefix:
//   * network-aware: longest-prefix match against the merged BGP table
//   * simple: the first 24 bits of the address ("/24 assumption")
//   * classful: the pre-CIDR Class A/B/C network
//
// Unmatched clients (no covering prefix) are reported separately — the
// paper's ~0.1% — and handed to self-correction (self_correct.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/prefix_table.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "weblog/log.h"

namespace netclust::core {

/// Per-client accounting within a clustering.
struct ClientStats {
  net::IpAddress address;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const ClientStats&, const ClientStats&) = default;
};

/// One identified cluster.
struct Cluster {
  net::Prefix key;
  /// Indices into Clustering::clients, in first-seen order.
  std::vector<std::uint32_t> members;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t unique_urls = 0;
  /// True when the keying prefix came only from a registry dump
  /// (secondary source) rather than a BGP table.
  bool from_network_dump = false;

  friend bool operator==(const Cluster&, const Cluster&) = default;
};

/// The result of clustering one log.
struct Clustering {
  std::string approach;  // "network-aware", "simple", "classful"
  std::string log_name;
  std::vector<Cluster> clusters;
  std::vector<ClientStats> clients;
  /// Client indices that no prefix covered (empty for the baselines,
  /// which can always form a key).
  std::vector<std::uint32_t> unclustered;
  std::uint64_t total_requests = 0;

  [[nodiscard]] std::size_t client_count() const { return clients.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return clusters.size(); }
  /// Fraction of clients successfully clustered — the paper's 99.9%.
  [[nodiscard]] double coverage() const {
    return clients.empty()
               ? 1.0
               : 1.0 - static_cast<double>(unclustered.size()) /
                           static_cast<double>(clients.size());
  }
  /// Clients clustered via a network-dump (secondary) prefix — <1% in the
  /// paper.
  [[nodiscard]] std::size_t dump_clustered_clients() const;

  friend bool operator==(const Clustering&, const Clustering&) = default;
};

/// Network-aware clustering (§3.2.1): LPM of every client against the
/// merged prefix table.
Clustering ClusterNetworkAware(const weblog::ServerLog& log,
                               const bgp::PrefixTable& table);

/// The §2 "simple approach": fixed /24 prefixes.
Clustering ClusterSimple(const weblog::ServerLog& log);

/// The §2 classful baseline: Class A /8, Class B /16, Class C /24.
Clustering ClusterClassful(const weblog::ServerLog& log);

/// Weighted-address clustering for non-log inputs (e.g. §3.6 server
/// clustering of a proxy trace): each address carries a request count.
struct AddressLoad {
  net::IpAddress address;
  std::uint64_t requests = 1;
  std::uint64_t bytes = 0;
};
Clustering ClusterAddresses(std::string log_name,
                            const std::vector<AddressLoad>& loads,
                            const bgp::PrefixTable& table);

/// Lookup helper: cluster index containing `address`, if any.
class ClusterIndex {
 public:
  explicit ClusterIndex(const Clustering& clustering);
  [[nodiscard]] std::optional<std::uint32_t> ClusterOf(
      net::IpAddress address) const;

 private:
  std::unordered_map<net::IpAddress, std::uint32_t> by_client_;
};

}  // namespace netclust::core
