// Quickstart: the paper's §3.2.1 worked example, end to end.
//
// Builds a merged prefix table from two textual routing-table snapshots
// (in different §3.1.2 formats), then clusters six client addresses from
// a tiny CLF log — reproducing the grouping the paper walks through.
//
//   $ ./quickstart
#include <cstdio>
#include <sstream>

#include "bgp/prefix_table.h"
#include "bgp/text_parser.h"
#include "core/cluster.h"
#include "weblog/log.h"

int main() {
  using namespace netclust;

  // 1. Two routing-table snapshots, as downloaded text. One uses CIDR
  //    notation, the other dotted netmasks — the parser handles both.
  const char* mae_west_text =
      "# MAE-WEST 12/7/1999\n"
      "12.65.128.0/19 198.32.136.36 6461 7018\n"
      "24.48.2.0/23   198.32.136.36 6461 11456\n";
  const char* aads_text =
      "# AADS 12/7/1999\n"
      "12.65.128/255.255.224 198.32.130.12 1221 7018\n"
      "151.198/255.255       198.32.130.12 1221 4969\n";

  bgp::PrefixTable table;
  table.AddSnapshot(bgp::ParseSnapshotText(
      mae_west_text,
      {"MAE-WEST", "12/7/1999", bgp::SourceKind::kBgpTable, ""}));
  table.AddSnapshot(bgp::ParseSnapshotText(
      aads_text, {"AADS", "12/7/1999", bgp::SourceKind::kBgpTable, ""}));
  std::printf("merged prefix table: %zu unique prefixes from %zu sources\n",
              table.size(), table.sources().size());

  // 2. A tiny server log with the six clients from the paper.
  std::istringstream log_text(
      "12.65.147.94  - - [13/Feb/1998:08:00:01 +0000] \"GET /a HTTP/1.0\" 200 100\n"
      "12.65.147.149 - - [13/Feb/1998:08:00:02 +0000] \"GET /a HTTP/1.0\" 200 100\n"
      "12.65.146.207 - - [13/Feb/1998:08:00:03 +0000] \"GET /b HTTP/1.0\" 200 250\n"
      "12.65.144.247 - - [13/Feb/1998:08:00:04 +0000] \"GET /a HTTP/1.0\" 200 100\n"
      "24.48.3.87    - - [13/Feb/1998:08:00:05 +0000] \"GET /c HTTP/1.0\" 200 999\n"
      "24.48.2.166   - - [13/Feb/1998:08:00:06 +0000] \"GET /a HTTP/1.0\" 200 100\n");
  weblog::ServerLog log("quickstart");
  log.AppendClfStream(log_text);

  // 3. Network-aware clustering: longest-prefix match per client.
  const core::Clustering clustering = core::ClusterNetworkAware(log, table);
  std::printf("\n%zu clients -> %zu clusters (%.1f%% clustered)\n",
              clustering.client_count(), clustering.cluster_count(),
              100.0 * clustering.coverage());
  for (const core::Cluster& cluster : clustering.clusters) {
    std::printf("\ncluster %s: %zu clients, %llu requests, %llu unique URLs\n",
                cluster.key.ToString().c_str(), cluster.members.size(),
                static_cast<unsigned long long>(cluster.requests),
                static_cast<unsigned long long>(cluster.unique_urls));
    for (const std::uint32_t member : cluster.members) {
      std::printf("  %s\n",
                  clustering.clients[member].address.ToString().c_str());
    }
  }
  return 0;
}
