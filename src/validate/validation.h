// Cluster validation (§3.3, Table 3).
//
// Samples a fraction of the identified clusters and applies the paper's
// two tests:
//   * nslookup test — every resolvable client in the cluster must share a
//     non-trivial name suffix with the others;
//   * optimized-traceroute test — clients are identified by name when
//     resolvable, otherwise by the last two hops of the path towards them;
//     all identifiers of one kind must agree.
//
// Because the substrate is synthetic, ValidateAgainstTruth additionally
// scores a clustering exactly (too-large / too-small / exact), something
// the paper could only approximate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "core/oracles.h"
#include "synth/internet.h"

namespace netclust::validate {

struct ValidationConfig {
  /// Fraction of clusters sampled (the paper uses 1%).
  double sample_fraction = 0.01;
  /// Path-suffix length for the traceroute test ("two in our experiments").
  int suffix_hops = 2;
  /// Sampling seed (hash-based, deterministic).
  std::uint64_t seed = 0x5641;
};

/// One column of Table 3.
struct ValidationReport {
  std::size_t total_clusters = 0;
  std::size_t sampled_clusters = 0;
  std::size_t sampled_clients = 0;
  int min_prefix_length = 0;
  int max_prefix_length = 0;
  /// Sampled clusters whose key is exactly /24 — the fraction of clusters
  /// the simple approach could have gotten right.
  std::size_t length24_clusters = 0;

  // DNS nslookup validation.
  std::size_t nslookup_resolved_clients = 0;
  std::size_t nslookup_misidentified = 0;
  std::size_t nslookup_misidentified_non_us = 0;

  // Optimized traceroute validation.
  std::size_t traceroute_resolved_clients = 0;  // name or path: all of them
  std::size_t traceroute_misidentified = 0;
  std::size_t traceroute_misidentified_non_us = 0;
  std::size_t traceroute_probes = 0;
  double traceroute_seconds = 0.0;

  [[nodiscard]] double NslookupPassRate() const {
    return sampled_clusters == 0
               ? 1.0
               : 1.0 - static_cast<double>(nslookup_misidentified) /
                           static_cast<double>(sampled_clusters);
  }
  [[nodiscard]] double TraceroutePassRate() const {
    return sampled_clusters == 0
               ? 1.0
               : 1.0 - static_cast<double>(traceroute_misidentified) /
                           static_cast<double>(sampled_clusters);
  }
};

ValidationReport ValidateClustering(const core::Clustering& clustering,
                                    const core::NameOracle& dns,
                                    const core::PathOracle& traceroute,
                                    const ValidationConfig& config = {});

/// Exact scoring against the generator's ground truth.
struct GroundTruthReport {
  std::size_t clusters = 0;
  /// Clusters whose members span >1 true allocation (too large).
  std::size_t too_large = 0;
  /// Single-allocation clusters whose allocation is split over several
  /// clusters (too small).
  std::size_t too_small = 0;
  /// Clusters matching one allocation exactly (all its logged clients,
  /// nothing else).
  std::size_t exact = 0;
  /// Clients placed in a cluster dominated by a different allocation.
  std::size_t misplaced_clients = 0;
  std::size_t clients = 0;

  [[nodiscard]] double ExactRate() const {
    return clusters == 0
               ? 1.0
               : static_cast<double>(exact) / static_cast<double>(clusters);
  }
};

GroundTruthReport ValidateAgainstTruth(const core::Clustering& clustering,
                                       const synth::Internet& internet);

/// Tolerance-based selective sampling (§3.3's closing proposal): "if 95%
/// of the clients inside the cluster are correctly identified, we could
/// consider this cluster to be correct", performed "in either a
/// client-based or a request-based manner".
struct SelectiveValidationConfig {
  double sample_fraction = 0.01;
  /// Minimum consistent fraction for a cluster to pass.
  double tolerance = 0.95;
  /// false: every client weighs 1; true: clients weigh their requests.
  bool request_weighted = false;
  int suffix_hops = 2;
  std::uint64_t seed = 0x53454C;  // "SEL"
};

struct SelectiveValidationReport {
  std::size_t sampled_clusters = 0;
  std::size_t passed = 0;
  /// Mean consistent-weight fraction across sampled clusters.
  double mean_consistency = 1.0;
  std::size_t probes = 0;

  [[nodiscard]] double PassRate() const {
    return sampled_clusters == 0
               ? 1.0
               : static_cast<double>(passed) /
                     static_cast<double>(sampled_clusters);
  }
};

SelectiveValidationReport SelectiveValidate(
    const core::Clustering& clustering, const core::PathOracle& traceroute,
    const SelectiveValidationConfig& config = {});

}  // namespace netclust::validate
