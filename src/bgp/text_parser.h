// Text routing-table snapshot parser and writer.
//
// The paper's sources arrive as ad-hoc text dumps ("downloading them from
// well-known Web sites ... or telneting to a particular host to run a
// script"). The line grammar accepted here is:
//
//   # comment and blank lines are skipped
//   <prefix-entry> [next-hop] [as-path...] [| prefix-desc | peer-desc]
//
// where <prefix-entry> is any of the three §3.1.2 formats. Malformed lines
// are counted, not fatal — real dumps contain noise and the pipeline must
// keep going.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "bgp/route_entry.h"
#include "net/prefix_format.h"

namespace netclust::bgp {

/// Outcome of parsing one snapshot.
struct ParseStats {
  std::size_t total_lines = 0;
  std::size_t entry_lines = 0;
  std::size_t malformed_lines = 0;
  std::string first_error;  // first malformed line's message, for diagnosis
};

/// Parses snapshot text. `info` identifies the source; stats are written to
/// `*stats` if non-null.
Snapshot ParseSnapshotText(std::string_view text, const SnapshotInfo& info,
                           ParseStats* stats = nullptr);

/// Reads a snapshot from a stream (e.g. a downloaded dump file).
Snapshot ParseSnapshotStream(std::istream& in, const SnapshotInfo& info,
                             ParseStats* stats = nullptr);

/// Writes `snapshot` as text with all prefixes in `style`, reproducing the
/// format variety of the real sources. Round-trips through
/// ParseSnapshotText.
std::string WriteSnapshotText(const Snapshot& snapshot,
                              net::PrefixStyle style);

}  // namespace netclust::bgp
