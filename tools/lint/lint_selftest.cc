// Self-test for the netclust_lint rule engine: feeds each rule a known-bad
// snippet and asserts the rule fires (with the right rule id and line),
// and a known-good variant and asserts silence. Runs as the
// `lint.selftest` ctest; dependency-free on purpose (no gtest) so the
// lint toolchain stays buildable in minimal environments.

#include <cstdio>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace {

int g_failures = 0;

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++g_failures;                                                       \
    }                                                                     \
  } while (0)

using netclust::lint::Finding;
using netclust::lint::LintFile;

/// Findings for `rule` only (other rules may legitimately fire on the
/// same snippet, e.g. header-guard on .h test inputs).
std::vector<Finding> Of(const std::vector<Finding>& findings,
                        const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

void TestOrderComment() {
  // Bad: relaxed load with no rationale.
  const auto bad = Of(LintFile("src/x/a.cc",
                               "int f(std::atomic<int>& a) {\n"
                               "  return a.load(std::memory_order_relaxed);\n"
                               "}\n"),
                      "order-comment");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 2);

  // Good: same-line and preceding-comment rationales.
  CHECK(Of(LintFile("src/x/a.cc",
                    "int f(std::atomic<int>& a) {\n"
                    "  // order: counter is advisory.\n"
                    "  return a.load(std::memory_order_relaxed);\n"
                    "}\n"),
           "order-comment")
            .empty());
  CHECK(Of(LintFile("src/x/a.cc",
                    "int v = a.load(std::memory_order_acquire);"
                    "  // order: pairs with release in Push\n"),
           "order-comment")
            .empty());

  // A memory_order token inside a string literal is not a use.
  CHECK(Of(LintFile("src/x/a.cc",
                    "const char* s = \"memory_order_relaxed\";\n"),
           "order-comment")
            .empty());
  // ... but a commented rationale more than the window away does not count.
  std::string far = "// order: too far away\n";
  for (int i = 0; i < 8; ++i) far += "int pad" + std::to_string(i) + ";\n";
  far += "int v = a.load(std::memory_order_relaxed);\n";
  CHECK(Of(LintFile("src/x/a.cc", far), "order-comment").size() == 1);
}

void TestParserInt() {
  // Bad: stoi in parser code.
  const auto bad = Of(LintFile("src/bgp/p.cc",
                               "int v = std::stoi(field);\n"),
                      "parser-int");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 1);
  CHECK(Of(LintFile("src/weblog/q.cc", "sscanf(buf, \"%d\", &v);\n"),
           "parser-int")
            .size() == 1);
  // Good: from_chars, and the same token outside parser dirs.
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "auto r = std::from_chars(b, e, v);\n"),
           "parser-int")
            .empty());
  CHECK(Of(LintFile("src/core/p.cc", "int v = std::stoi(field);\n"),
           "parser-int")
            .empty());
  // Substrings of longer identifiers are not matches.
  CHECK(Of(LintFile("src/bgp/p.cc", "int my_atoi_count = 0;\n"),
           "parser-int")
            .empty());
}

void TestNakedThread() {
  const auto bad = Of(LintFile("src/core/streaming.cc",
                               "std::thread t([] {});\n"),
                      "naked-thread");
  CHECK(bad.size() == 1);
  // Allowed homes.
  CHECK(Of(LintFile("src/engine/shard.h", "std::thread thread_;\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/core/parallel.cc",
                    "std::vector<std::thread> workers;\n"),
           "naked-thread")
            .empty());
  // Nested names are not spawns.
  CHECK(Of(LintFile("src/core/streaming.cc",
                    "int n = std::thread::hardware_concurrency();\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/core/streaming.cc",
                    "std::this_thread::yield();\n"),
           "naked-thread")
            .empty());
  // The reactor spawn site is the one allowed home in the service layer…
  CHECK(Of(LintFile("src/server/server.cc",
                    "std::vector<std::thread> reactors_;\n"),
           "naked-thread")
            .empty());
  CHECK(Of(LintFile("src/server/server.h", "std::thread thread;\n"),
           "naked-thread")
            .empty());
  // …and only that site: the rest of src/server/ is NOT exempt.
  CHECK(Of(LintFile("src/server/client.cc", "std::thread helper([] {});\n"),
           "naked-thread")
            .size() == 1);
}

void TestRawIo() {
  // Bad: free calls to the POSIX syscalls, bare or ::-qualified.
  const auto bad = Of(LintFile("src/core/x.cc",
                               "ssize_t n = ::read(fd, buf, len);\n"),
                      "raw-io");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 1);
  CHECK(Of(LintFile("src/core/x.cc", "write(fd, buf, len);\n"), "raw-io")
            .size() == 1);
  CHECK(Of(LintFile("src/core/x.cc",
                    "int c = accept4(fd, nullptr, nullptr, 0);\n"),
           "raw-io")
            .size() == 1);
  CHECK(Of(LintFile("src/core/x.cc", "send(fd, buf, len, 0);\n"), "raw-io")
            .size() == 1);
  // Good: member calls are someone else's API, not syscalls.
  CHECK(Of(LintFile("src/core/x.cc", "out.write(buf, len);\n"), "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "sock->send(frame);\n"), "raw-io")
            .empty());
  // Good: the token without a call, and longer identifiers.
  CHECK(Of(LintFile("src/core/x.cc", "bool send = true;\n"), "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "RetryRead(fd, buf, len);\n"),
           "raw-io")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "// call read(2) to drain\n"),
           "raw-io")
            .empty());
}

void TestIostreamInclude() {
  const auto bad = Of(LintFile("src/net/x.cc",
                               "#include <iostream>\n"),
                      "iostream-include");
  CHECK(bad.size() == 1);
  CHECK(Of(LintFile("src/net/x.cc", "#include <ostream>\n"),
           "iostream-include")
            .empty());
  CHECK(Of(LintFile("src/net/x.cc", "// #include <iostream>\n"),
           "iostream-include")
            .empty());
  // Whitespace variants still match.
  CHECK(Of(LintFile("src/net/x.cc", "#  include <iostream>\n"),
           "iostream-include")
            .size() == 1);
}

void TestHeaderGuard() {
  CHECK(Of(LintFile("src/net/x.h", "#pragma once\nint f();\n"),
           "header-guard")
            .empty());
  // Missing pragma once.
  CHECK(Of(LintFile("src/net/x.h", "int f();\n"), "header-guard").size() ==
        1);
  // #ifndef-style guard: flagged twice (missing pragma + guard style).
  CHECK(Of(LintFile("src/net/x.h",
                    "#ifndef NET_X_H_\n#define NET_X_H_\n#endif\n"),
           "header-guard")
            .size() == 2);
  // Rule only applies to headers.
  CHECK(Of(LintFile("src/net/x.cc", "int f() { return 0; }\n"),
           "header-guard")
            .empty());
}

void TestSuppressions() {
  const auto suppressions = netclust::lint::ParseSuppressions(
      "# vetted exceptions\n"
      "iostream-include:src/fuzz/make_corpus.cc\n"
      "\n"
      "malformed line without colon\n");
  CHECK(suppressions.size() == 1);
  Finding hit{"src/fuzz/make_corpus.cc", 13, "iostream-include", ""};
  Finding other_file{"src/net/x.cc", 1, "iostream-include", ""};
  Finding other_rule{"src/fuzz/make_corpus.cc", 13, "parser-int", ""};
  CHECK(netclust::lint::IsSuppressed(hit, suppressions));
  CHECK(!netclust::lint::IsSuppressed(other_file, suppressions));
  CHECK(!netclust::lint::IsSuppressed(other_rule, suppressions));
}

void TestAtomicOrder() {
  // Bad: implicit seq_cst in a data-plane layer.
  const auto bad = Of(LintFile("src/server/x.cc",
                               "void f() { counter.fetch_add(1); }\n"),
                      "atomic-order");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 1);
  CHECK(Of(LintFile("src/cluster/x.cc", "bool s = flag.load();\n"),
           "atomic-order")
            .size() == 1);
  CHECK(Of(LintFile("tools/loadgen/x.cc", "flag.store(true);\n"),
           "atomic-order")
            .size() == 1);
  // Good: explicit order, same line or within the two-line window of a
  // wrapped call.
  CHECK(Of(LintFile("src/server/x.cc",
                    "counter.fetch_add(1, std::memory_order_relaxed);\n"),
           "atomic-order")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "gauge.fetch_sub(\n"
                    "    static_cast<std::int64_t>(n),\n"
                    "    std::memory_order_relaxed);\n"),
           "atomic-order")
            .empty());
  // Out of scope: the engine's atomics are not this rule's concern.
  CHECK(Of(LintFile("src/engine/x.cc", "counter.fetch_add(1);\n"),
           "atomic-order")
            .empty());
}

void TestWireCast() {
  // Bad: buffer reinterpretation in the wire layers.
  const auto bad =
      Of(LintFile("src/server/x.cc",
                  "std::memcpy(&value, payload, sizeof value);\n"),
         "wire-cast");
  CHECK(bad.size() == 1);
  CHECK(Of(LintFile("src/cluster/x.cc",
                    "auto* h = reinterpret_cast<const Header*>(data);\n"),
           "wire-cast")
            .size() == 1);
  CHECK(Of(LintFile("src/server/x.cc",
                    "char* p = const_cast<char*>(s.data());\n"),
           "wire-cast")
            .size() == 1);
  // Good: out of the wire layers, and tokens in comments/strings.
  CHECK(Of(LintFile("src/core/x.cc",
                    "std::memcpy(dst, src, n);\n"),
           "wire-cast")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "// no memcpy here: the codec bounds-checks\n"),
           "wire-cast")
            .empty());
}

void TestWireDecodeResult() {
  // Bad: a Decode* declaration in a wire layer that cannot report
  // malformed input.
  const auto bad = Of(LintFile("src/server/x.h",
                               "#pragma once\n"
                               "std::uint32_t DecodeCount(const "
                               "std::uint8_t* p, std::size_t n);\n"),
                      "wire-decode-result");
  CHECK(bad.size() == 1);
  CHECK(!bad.empty() && bad[0].line == 2);
  // Good: Result<T> on the declaration line or the line above
  // (wrapped declaration).
  CHECK(Of(LintFile("src/server/x.h",
                    "#pragma once\n"
                    "[[nodiscard]] Result<LookupRequest> DecodeLookup(\n"
                    "    const std::uint8_t* p, std::size_t n);\n"),
           "wire-decode-result")
            .empty());
  CHECK(Of(LintFile("src/server/x.h",
                    "#pragma once\n"
                    "[[nodiscard]] Result<IngestRequest>\n"
                    "DecodeIngest(const std::uint8_t* p, std::size_t n);\n"),
           "wire-decode-result")
            .empty());
  // Good: call sites are not declarations — assignment, qualified call,
  // return, and condition forms.
  CHECK(Of(LintFile("src/server/x.cc",
                    "auto r = DecodeLookup(p, n);\n"),
           "wire-decode-result")
            .empty());
  CHECK(Of(LintFile("src/cluster/x.cc",
                    "auto u = bgp::DecodeUpdate(p, n);\n"),
           "wire-decode-result")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "return DecodeFrameHeader(p, n);\n"),
           "wire-decode-result")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "if (!DecodeLookup(p, n).ok()) return false;\n"),
           "wire-decode-result")
            .empty());
  // Out of scope: parsers outside the wire layers have their own rules.
  CHECK(Of(LintFile("src/bgp/x.h",
                    "#pragma once\n"
                    "int DecodeHeaderLength(const std::uint8_t* p);\n"),
           "wire-decode-result")
            .empty());
}

void TestWireBounds() {
  // Bad: a raw big-endian read outside the codec home.
  const auto bad = Of(LintFile("src/server/server.cc",
                               "const std::uint32_t n = GetU32(payload);\n"),
                      "wire-bounds");
  CHECK(bad.size() == 1);
  CHECK(Of(LintFile("tools/loadgen/x.cc",
                    "if (server::GetU16(p) != magic) return;\n"),
           "wire-bounds")
            .size() == 1);
  // Good: the codec home itself (definitions and declarations).
  CHECK(Of(LintFile("src/server/proto.cc",
                    "const std::uint32_t n = GetU32(p + 4);\n"),
           "wire-bounds")
            .empty());
  CHECK(Of(LintFile("src/server/proto.h",
                    "#pragma once\n"
                    "[[nodiscard]] std::uint16_t GetU16(const "
                    "std::uint8_t* p);\n"),
           "wire-bounds")
            .empty());
}

void TestFdLifecycle() {
  // Bad: epoll_ctl in statement position with the result dropped.
  const auto bad = Of(LintFile("src/server/x.cc",
                               "epoll_ctl(ep, EPOLL_CTL_DEL, fd, "
                               "nullptr);\n"),
                      "fd-unchecked");
  CHECK(bad.size() == 1);
  CHECK(Of(LintFile("src/server/x.cc",
                    "::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);\n"),
           "fd-unchecked")
            .size() == 1);
  // Good: checked, explicitly discarded, or assigned.
  CHECK(Of(LintFile("src/server/x.cc",
                    "if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0) {\n"),
           "fd-unchecked")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "(void)::epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);\n"),
           "fd-unchecked")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc",
                    "const int rc = epoll_ctl(ep, EPOLL_CTL_MOD, fd, "
                    "&ev);\n"),
           "fd-unchecked")
            .empty());

  // fd-close: raw close anywhere; CloseFd and member .close() are fine.
  CHECK(Of(LintFile("src/core/x.cc", "::close(fd);\n"), "fd-close").size() ==
        1);
  CHECK(Of(LintFile("src/core/x.cc", "close(fd);\n"), "fd-close").size() ==
        1);
  CHECK(Of(LintFile("src/core/x.cc", "CloseFd(fd);\n"), "fd-close").empty());
  CHECK(Of(LintFile("src/core/x.cc", "stream.close();\n"), "fd-close")
            .empty());
  CHECK(Of(LintFile("src/core/x.cc", "bool closed = true;\n"), "fd-close")
            .empty());

  // fd-dup: descriptor copies in the reactor layers only.
  CHECK(Of(LintFile("src/server/x.cc", "int copy = dup(fd);\n"), "fd-dup")
            .size() == 1);
  CHECK(Of(LintFile("src/cluster/x.cc", "dup2(fd, target);\n"), "fd-dup")
            .size() == 1);
  CHECK(Of(LintFile("src/core/x.cc", "int copy = dup(fd);\n"), "fd-dup")
            .empty());
  CHECK(Of(LintFile("src/server/x.cc", "dedup(values);\n"), "fd-dup")
            .empty());
}

/// A minimal but complete proto.h/server.cc/metrics.h triple the
/// opcode-coverage fixtures perturb.
constexpr const char* kProtoFixture =
    "enum class Opcode : std::uint8_t {\n"
    "  kPing = 0x01,    // stats: pings_served\n"
    "  kLookup = 0x02,  // stats: lookups_served\n"
    "  kPong = 0x81,\n"
    "};\n";
constexpr const char* kDispatchFixture =
    "switch (opcode) {\n"
    "  case Opcode::kPing:\n"
    "    metrics_.pings_served.Inc();\n"
    "    break;\n"
    "  case Opcode::kLookup:\n"
    "    metrics_.lookups_served.Inc();\n"
    "    break;\n"
    "}\n";
constexpr const char* kMetricsFixture =
    "struct ServerMetrics {\n"
    "  engine::Counter pings_served;\n"
    "  engine::Counter lookups_served;\n"
    "};\n";

void TestOpcodeCoverage() {
  using netclust::lint::CheckOpcodeCoverage;
  using netclust::lint::OpcodeCoverageInput;
  using netclust::lint::ParseOpcodeEnum;

  const auto parsed = ParseOpcodeEnum(kProtoFixture);
  CHECK(parsed.size() == 3);
  CHECK(parsed.size() == 3 && parsed[0].name == "kPing" &&
        parsed[0].value == 0x01 && parsed[0].counter == "pings_served");
  CHECK(parsed.size() == 3 && parsed[2].name == "kPong" &&
        parsed[2].value == 0x81 && parsed[2].counter.empty());

  OpcodeCoverageInput covered;
  covered.proto_path = "src/server/proto.h";
  covered.proto_content = kProtoFixture;
  covered.dispatch_content = kDispatchFixture;
  covered.metrics_content = kMetricsFixture;
  covered.corpus_opcodes = {0x01, 0x02, 0x81};
  CHECK(CheckOpcodeCoverage(covered).empty());

  // Adding an opcode to the enum WITHOUT dispatch/corpus/STATS coverage
  // must fail three ways — this is the check's whole reason to exist.
  OpcodeCoverageInput uncovered = covered;
  uncovered.proto_content =
      "enum class Opcode : std::uint8_t {\n"
      "  kPing = 0x01,    // stats: pings_served\n"
      "  kLookup = 0x02,  // stats: lookups_served\n"
      "  kDrain = 0x0A,\n"
      "  kPong = 0x81,\n"
      "};\n";
  const auto findings = Of(CheckOpcodeCoverage(uncovered), "opcode-coverage");
  CHECK(findings.size() == 3);  // no dispatch, no corpus seed, no stats
  for (const Finding& f : findings) {
    CHECK(f.message.find("kDrain") != std::string::npos);
    CHECK(f.line == 4);
  }

  // A response opcode needs a corpus seed but no dispatch case/counter.
  OpcodeCoverageInput unseeded = covered;
  unseeded.corpus_opcodes = {0x01, 0x02};
  const auto missing_seed =
      Of(CheckOpcodeCoverage(unseeded), "opcode-coverage");
  CHECK(missing_seed.size() == 1);
  CHECK(!missing_seed.empty() &&
        missing_seed[0].message.find("kPong") != std::string::npos);

  // An annotation naming a counter that does not exist (or is never
  // bumped) is a lie, and lies fail.
  OpcodeCoverageInput bad_counter = covered;
  bad_counter.metrics_content =
      "struct ServerMetrics { engine::Counter pings_served; };\n";
  CHECK(Of(CheckOpcodeCoverage(bad_counter), "opcode-coverage").size() == 1);

  // No enum at all: one anchoring finding, not silence.
  OpcodeCoverageInput no_enum = covered;
  no_enum.proto_content = "int x;\n";
  CHECK(Of(CheckOpcodeCoverage(no_enum), "opcode-coverage").size() == 1);
}

void TestStaleSuppressions() {
  using netclust::lint::StaleSuppressions;
  const std::vector<netclust::lint::Suppression> suppressions = {
      {"raw-io", "src/server/io_util.cc"},
      {"wire-cast", "src/server/gone.cc"},
      {"fd-close", "src/server/io_util.cc"},
  };
  // Entry 0 matched findings; entry 1's file is gone; entry 2 is live
  // code but matched nothing this run.
  const auto stale = StaleSuppressions(suppressions, {3, 0, 0},
                                       {true, false, true});
  CHECK(stale.size() == 2);
  CHECK(stale.size() == 2 && stale[0].rule == "stale-suppression" &&
        stale[0].message.find("no longer exists") != std::string::npos);
  CHECK(stale.size() == 2 &&
        stale[1].message.find("matched no finding") != std::string::npos);
  // All live and all used: silence.
  CHECK(StaleSuppressions(suppressions, {1, 2, 1}, {true, true, true})
            .empty());

  // MatchSuppression returns the index the driver counts hits with.
  Finding hit{"src/server/io_util.cc", 7, "fd-close", ""};
  CHECK(netclust::lint::MatchSuppression(hit, suppressions) == 2);
  Finding miss{"src/server/io_util.cc", 7, "wire-cast", ""};
  CHECK(netclust::lint::MatchSuppression(miss, suppressions) == -1);
}

void TestCommentAndStringScanner() {
  // Rules must ignore code inside block comments and raw strings.
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "/* std::stoi(field) is banned here */\n"),
           "parser-int")
            .empty());
  CHECK(Of(LintFile("src/bgp/p.cc",
                    "const char* s = R\"(std::stoi(x))\";\n"),
           "parser-int")
            .empty());
  // A block comment spanning lines does not hide following code.
  const auto after_block = Of(LintFile("src/bgp/p.cc",
                                       "/* banner\n"
                                       "   banner */\n"
                                       "int v = std::stoi(s);\n"),
                              "parser-int");
  CHECK(after_block.size() == 1);
  CHECK(!after_block.empty() && after_block[0].line == 3);
}

}  // namespace

int main() {
  TestOrderComment();
  TestAtomicOrder();
  TestParserInt();
  TestNakedThread();
  TestRawIo();
  TestWireCast();
  TestWireDecodeResult();
  TestWireBounds();
  TestFdLifecycle();
  TestIostreamInclude();
  TestHeaderGuard();
  TestSuppressions();
  TestOpcodeCoverage();
  TestStaleSuppressions();
  TestCommentAndStringScanner();
  if (g_failures != 0) {
    std::fprintf(stderr, "lint_selftest: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("lint_selftest: all rules fire and stay silent as expected\n");
  return 0;
}
