#include "mapping/coras.h"

#include <cmath>

namespace netclust::mapping {
namespace {

/// sum_i (1 - e^{-p_i t}): the expected number of distinct items
/// requested within characteristic time t. Strictly increasing in t.
double ExpectedOccupancy(const std::vector<double>& p, double t) {
  double sum = 0.0;
  for (const double pi : p) {
    sum += 1.0 - std::exp(-pi * t);
  }
  return sum;
}

}  // namespace

std::vector<double> ZipfPopularity(std::size_t n, double alpha) {
  std::vector<double> p(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::pow(static_cast<double>(i + 1), -alpha);
    total += p[i];
  }
  for (double& pi : p) pi /= total;
  return p;
}

double PredictedHitRatio(const std::vector<double>& popularity,
                         std::size_t capacity) {
  // Normalize and drop zero-mass items (they never occupy the cache).
  std::vector<double> p;
  p.reserve(popularity.size());
  double total = 0.0;
  for (const double pi : popularity) {
    if (pi > 0.0) {
      p.push_back(pi);
      total += pi;
    }
  }
  if (capacity == 0 || p.empty() || total <= 0.0) return 0.0;
  if (capacity >= p.size()) return 1.0;  // every item fits; IRM never misses
  for (double& pi : p) pi /= total;

  // Bisect C = ExpectedOccupancy(T): the target is in (0, n), and the
  // occupancy crosses it exactly once. Grow the upper bracket first.
  const auto target = static_cast<double>(capacity);
  double lo = 0.0;
  double hi = static_cast<double>(p.size());
  while (ExpectedOccupancy(p, hi) < target) hi *= 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedOccupancy(p, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t = 0.5 * (lo + hi);

  double hit = 0.0;
  for (const double pi : p) {
    hit += pi * (1.0 - std::exp(-pi * t));
  }
  return hit;
}

}  // namespace netclust::mapping
