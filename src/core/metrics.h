// Cluster distribution metrics — the quantities plotted in Figures 3-7 and
// quoted throughout §3.2.2.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::core {

/// Cluster indices in reverse (descending) order of member count — the x
/// axis of Figures 4 and 6(a,b). Ties broken by requests, then key.
std::vector<std::size_t> OrderByClients(const Clustering& clustering);

/// Cluster indices in reverse order of request count — the x axis of
/// Figures 5 and 6(c,d).
std::vector<std::size_t> OrderByRequests(const Clustering& clustering);

/// One point of an empirical CDF.
struct CdfPoint {
  double value;
  double cumulative;  // fraction of observations <= value
};

/// Empirical CDF of `values` (consumed), one point per distinct value —
/// Figure 3's curves.
std::vector<CdfPoint> CumulativeDistribution(std::vector<double> values);

/// Fraction of observations <= `value` in a CDF (0 when below support).
double FractionAtMost(const std::vector<CdfPoint>& cdf, double value);

/// Headline numbers of a clustering (§3.2.2's Nagano paragraph).
struct ClusteringSummary {
  std::size_t clusters = 0;
  std::size_t clients = 0;
  std::uint64_t requests = 0;
  double coverage = 1.0;
  std::size_t min_cluster_clients = 0;
  std::size_t max_cluster_clients = 0;
  std::uint64_t min_cluster_requests = 0;
  std::uint64_t max_cluster_requests = 0;
  std::uint64_t min_cluster_urls = 0;
  std::uint64_t max_cluster_urls = 0;
};
ClusteringSummary Summarize(const Clustering& clustering);

/// Requests per `bucket_seconds` over the log's time span, optionally
/// restricted to `subset` clients — the histograms of Figure 9.
std::vector<std::uint64_t> RequestHistogram(
    const weblog::ServerLog& log, int bucket_seconds,
    const std::unordered_set<net::IpAddress>* subset = nullptr);

/// Pearson correlation of two equally-long histograms; the proxy-vs-log
/// similarity measure behind §4.1.2's "certain correspondences". Returns 0
/// when either histogram is constant.
double HistogramCorrelation(const std::vector<std::uint64_t>& a,
                            const std::vector<std::uint64_t>& b);

/// Least-squares fit of a Zipf exponent to `values` (consumed): sorts
/// descending and regresses log(value) on log(rank), returning the slope
/// magnitude alpha and the fit's R^2. The paper leans on "Zipf-like
/// distributions are common in a variety of Web measurements" — this
/// quantifies how Zipf-like a distribution actually is. Requires at least
/// 3 positive values; returns {0, 0} otherwise.
struct ZipfFit {
  double alpha = 0.0;
  double r_squared = 0.0;
};
ZipfFit EstimateZipfExponent(std::vector<double> values);

}  // namespace netclust::core
