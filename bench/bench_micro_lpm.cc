// Microbenchmarks (google-benchmark): the longest-prefix-match engines
// under a realistic merged table — the ablation behind the paper's claim
// that the method is "computationally non-intensive".
//
// Compares: path-compressed Patricia trie (production), uncompressed
// binary trie, linear scan (oracle), and end-to-end clustering throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/parallel.h"
#include "core/streaming.h"
#include "synth/rng.h"
#include "trie/binary_trie.h"
#include "trie/linear_lpm.h"
#include "trie/patricia_trie.h"

namespace {

using namespace netclust;

std::vector<net::Prefix> TablePrefixes() {
  static const std::vector<net::Prefix> prefixes =
      bench::GetScenario().table.AllPrefixes();
  return prefixes;
}

std::vector<net::IpAddress> ProbeAddresses(std::size_t count) {
  const auto& internet = bench::GetScenario().internet;
  synth::Rng rng(77);
  std::vector<net::IpAddress> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& allocation =
        internet.allocations()[rng.Uniform(internet.allocations().size())];
    probes.push_back(internet.HostAddress(allocation, rng.Uniform(4096)));
  }
  return probes;
}

void BM_PatriciaBuild(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  for (auto _ : state) {
    trie::PatriciaTrie<int> trie;
    for (const auto& prefix : prefixes) trie.Insert(prefix, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * prefixes.size()));
}
BENCHMARK(BM_PatriciaBuild);

void BM_BinaryBuild(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  for (auto _ : state) {
    trie::BinaryTrie<int> trie;
    for (const auto& prefix : prefixes) trie.Insert(prefix, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * prefixes.size()));
}
BENCHMARK(BM_BinaryBuild);

template <typename Lpm>
void LookupBench(benchmark::State& state) {
  const auto prefixes = TablePrefixes();
  Lpm lpm;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    lpm.Insert(prefixes[i], static_cast<int>(i));
  }
  const auto probes = ProbeAddresses(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm.LongestMatch(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_PatriciaLookup(benchmark::State& state) {
  LookupBench<trie::PatriciaTrie<int>>(state);
}
BENCHMARK(BM_PatriciaLookup);

void BM_BinaryLookup(benchmark::State& state) {
  LookupBench<trie::BinaryTrie<int>>(state);
}
BENCHMARK(BM_BinaryLookup);

void BM_LinearLookup(benchmark::State& state) {
  LookupBench<trie::LinearLpm<int>>(state);
}
BENCHMARK(BM_LinearLookup);

void BM_PrefixTableLookup(benchmark::State& state) {
  // The production path: primary/secondary semantics over the full union.
  const auto& table = bench::GetScenario().table;
  const auto probes = ProbeAddresses(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LongestMatch(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixTableLookup);

void BM_StreamingObserve(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  const auto& requests = generated.log.requests();
  core::StreamingClusterer streaming("micro");
  for (std::size_t s = 0; s < scenario.vantages().profiles().size(); ++s) {
    streaming.SeedSnapshot(scenario.vantages().MakeSnapshot(s, 0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& request = requests[i];
    streaming.Observe(request.client, request.url_id,
                      request.response_bytes, request.timestamp);
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

void BM_ClusterLogParallel(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  for (auto _ : state) {
    const core::Clustering clustering = core::ClusterNetworkAwareParallel(
        generated.log, scenario.table, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(clustering.cluster_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * generated.log.request_count()));
}
BENCHMARK(BM_ClusterLogParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ClusterLog(benchmark::State& state) {
  const auto& scenario = bench::GetScenario();
  static const synth::GeneratedLog generated =
      bench::MakeLog(bench::LogPreset::kNagano);
  for (auto _ : state) {
    const core::Clustering clustering =
        core::ClusterNetworkAware(generated.log, scenario.table);
    benchmark::DoNotOptimize(clustering.cluster_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * generated.log.request_count()));
}
BENCHMARK(BM_ClusterLog);

}  // namespace

BENCHMARK_MAIN();
