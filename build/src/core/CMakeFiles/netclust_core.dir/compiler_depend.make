# Empty compiler generated dependencies file for netclust_core.
# This may be replaced when dependencies are built.
