# Empty dependencies file for netclust_cli.
# This may be replaced when dependencies are built.
