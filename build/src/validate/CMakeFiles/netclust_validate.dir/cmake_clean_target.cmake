file(REMOVE_RECURSE
  "libnetclust_validate.a"
)
