// Vantage-point routing-table derivation.
//
// Produces, from the ground-truth Internet, the per-source snapshots the
// paper collected (Table 1): each BGP source sees a subset of the leaf
// allocations (no router has complete information, §3.1.2), sometimes as
// aggregated org-level routes (the paper's main mis-identification cause),
// always as only the country block for national-gateway orgs; registry
// sources (ARIN/NLANR) dump coarse org blocks, with NLANR frozen before
// the post-1997 allocations. Each source emits its own §3.1.2 text format,
// and day-indexed snapshots add the churn that §3.4 measures.
#pragma once

#include <string>
#include <vector>

#include "bgp/route_entry.h"
#include "bgp/update.h"
#include "net/prefix_format.h"
#include "synth/internet.h"

namespace netclust::synth {

/// Static description of one routing-table source.
struct VantageProfile {
  bgp::SnapshotInfo info;
  /// Fraction of leaf allocations this source has a route for.
  double coverage = 0.5;
  /// Probability that a visible allocation is exported as its org-level
  /// aggregate instead of the leaf prefix.
  double aggregation = 0.15;
  /// Text format this source's dump uses.
  net::PrefixStyle style = net::PrefixStyle::kCidr;
  /// Fraction of this source's entries that flap day to day (§3.4).
  double flap_fraction = 0.02;
  /// New-entry arrivals per day, as a fraction of the table.
  double daily_growth = 0.003;
  bgp::AsNumber vantage_as = 65000;
};

/// The paper's 14 sources (Table 1) with coverages tuned so relative table
/// sizes mirror the paper's (AADS 17K ... AT&T-BGP 74K, ARIN 300K ...).
std::vector<VantageProfile> DefaultVantageProfiles();

/// Derives snapshots from ground truth. Deterministic per
/// (internet.seed, source, day).
class VantageGenerator {
 public:
  VantageGenerator(const Internet& internet,
                   std::vector<VantageProfile> profiles);

  [[nodiscard]] const std::vector<VantageProfile>& profiles() const {
    return profiles_;
  }

  /// The `source`-th table as of `day` (day 0 = the paper's download date).
  /// `slot` selects an intraday snapshot (the real AADS/MAE tables were
  /// dumped every 2 hours; Table 4's period-0 row measures exactly that
  /// intraday churn): flapping differs across slots, growth only across
  /// days.
  [[nodiscard]] bgp::Snapshot MakeSnapshot(std::size_t source, int day,
                                           int slot = 0) const;

  /// All sources at one day.
  [[nodiscard]] std::vector<bgp::Snapshot> AllSnapshots(int day) const;

  /// The BGP UPDATE stream that carries the `source`-th table from its
  /// (day, slot) state to the (to_day, to_slot) state: withdrawals for
  /// entries that disappear, announcements (grouped by shared attributes,
  /// at most `max_nlri_per_message` NLRI each) for entries that appear or
  /// change. Applying the stream to a LiveRoutingTable seeded with the
  /// first snapshot yields exactly the second — the paper's "real-time
  /// routing information" feed.
  [[nodiscard]] std::vector<bgp::UpdateMessage> MakeUpdateStream(
      std::size_t source, int day, int slot, int to_day, int to_slot,
      std::size_t max_nlri_per_message = 32) const;

 private:
  [[nodiscard]] bool Visible(std::size_t source, const VantageProfile& p,
                             std::uint32_t allocation_index, int day,
                             int slot) const;

  const Internet* internet_;
  std::vector<VantageProfile> profiles_;
};

}  // namespace netclust::synth
