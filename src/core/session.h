// Session partitioning and server clustering (§3.6).
#pragma once

#include <vector>

#include "core/cluster.h"
#include "weblog/log.h"

namespace netclust::core {

/// Splits `log` into `sessions` equal time slices (the paper uses four
/// 6-hour sessions of the Nagano day). Requests on the boundary go to the
/// later slice; each returned log preserves time order. Slices are built
/// in parallel (one worker per slice, via core::ParallelFor) but the
/// output is bit-identical regardless of `threads` (<= 0 selects the
/// hardware concurrency, clamped to the slice count).
std::vector<weblog::ServerLog> PartitionIntoSessions(
    const weblog::ServerLog& log, int sessions, int threads = 0);

/// §3.6 server clustering: treats the *servers* in a proxy/client trace as
/// the addresses to cluster, weighted by request count.
Clustering ClusterServers(const std::vector<AddressLoad>& servers,
                          const bgp::PrefixTable& table);

}  // namespace netclust::core
