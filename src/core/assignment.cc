#include "core/assignment.h"

#include <algorithm>
#include <map>
#include <utility>

namespace netclust::core {

std::uint32_t AssignmentState::ClusterFor(const net::Prefix& prefix,
                                          bool from_dump) {
  const auto [it, inserted] = cluster_index_.emplace(
      prefix, static_cast<std::uint32_t>(clusters_.size()));
  if (inserted) {
    StreamCluster cluster;
    cluster.key = prefix;
    cluster.from_dump = from_dump;
    cluster.live = true;
    ++live_clusters_;
    clusters_.push_back(std::move(cluster));
  } else if (!clusters_[it->second].live) {
    // A previously withdrawn key re-announced: revive it.
    clusters_[it->second].live = true;
    clusters_[it->second].from_dump = from_dump;
    ++live_clusters_;
  }
  return it->second;
}

void AssignmentState::Detach(net::IpAddress client, ClientState& state) {
  if (state.cluster == kUnclustered) {
    unclustered_.erase(client);
    return;
  }
  StreamCluster& cluster = clusters_[state.cluster];
  cluster.members.erase(client);
  cluster.requests -= state.requests;
  cluster.bytes -= state.bytes;
  // An emptied-but-live cluster keeps its registration: its prefix is
  // still in the table and may refill.
  state.cluster = kUnclustered;
}

bool AssignmentState::Reassign(net::IpAddress client,
                               const bgp::PrefixTable& table) {
  ClientState& state = clients_.at(client);
  const auto match = table.LongestMatch(client);

  const std::uint32_t target =
      match.has_value()
          ? ClusterFor(match->prefix,
                       match->kind == bgp::SourceKind::kNetworkDump)
          : kUnclustered;
  if (target == state.cluster) return false;

  Detach(client, state);
  state.cluster = target;
  if (target == kUnclustered) {
    unclustered_.insert(client);
  } else {
    StreamCluster& cluster = clusters_[target];
    cluster.members.insert(client);
    cluster.requests += state.requests;
    cluster.bytes += state.bytes;
  }
  return true;
}

std::size_t AssignmentState::OnAnnounced(const net::Prefix& prefix,
                                         const bgp::PrefixTable& table) {
  // Only clients inside `prefix` whose current match is an ancestor (or
  // nothing) can move. Their clusters are keyed by ancestors of `prefix`,
  // reachable by walking at most 32 parents.
  std::vector<net::IpAddress> affected;
  net::Prefix walk = prefix;
  while (true) {
    const auto it = cluster_index_.find(walk);
    if (it != cluster_index_.end() && clusters_[it->second].live) {
      for (const net::IpAddress member : clusters_[it->second].members) {
        if (prefix.Contains(member)) affected.push_back(member);
      }
    }
    if (walk.length() == 0) break;
    walk = walk.Parent();
  }
  for (const net::IpAddress client : unclustered_) {
    if (prefix.Contains(client)) affected.push_back(client);
  }

  std::size_t moved = 0;
  for (const net::IpAddress client : affected) {
    if (Reassign(client, table)) ++moved;
  }
  return moved;
}

std::size_t AssignmentState::OnWithdrawn(const net::Prefix& prefix,
                                         const bgp::PrefixTable& table) {
  const auto it = cluster_index_.find(prefix);
  if (it == cluster_index_.end()) return 0;
  StreamCluster& cluster = clusters_[it->second];
  if (cluster.live) {
    cluster.live = false;
    --live_clusters_;
  }
  const std::vector<net::IpAddress> members(cluster.members.begin(),
                                            cluster.members.end());
  std::size_t moved = 0;
  for (const net::IpAddress client : members) {
    if (Reassign(client, table)) ++moved;
  }
  return moved;
}

void AssignmentState::Observe(net::IpAddress client, std::uint32_t url_id,
                              std::uint32_t bytes,
                              const bgp::PrefixTable& table) {
  ++requests_;
  auto [it, inserted] = clients_.try_emplace(client);
  ClientState& state = it->second;
  if (inserted) {
    const auto match = table.LongestMatch(client);
    if (match.has_value()) {
      state.cluster = ClusterFor(
          match->prefix, match->kind == bgp::SourceKind::kNetworkDump);
      clusters_[state.cluster].members.insert(client);
    } else {
      state.cluster = kUnclustered;
      unclustered_.insert(client);
    }
  }
  state.requests += 1;
  state.bytes += bytes;
  if (state.cluster != kUnclustered) {
    StreamCluster& cluster = clusters_[state.cluster];
    cluster.requests += 1;
    cluster.bytes += bytes;
    cluster.urls.insert(url_id);
  }
}

Clustering AssignmentState::Merge(
    std::string approach, std::string log_name,
    const std::vector<const AssignmentState*>& shards) {
  Clustering out;
  out.approach = std::move(approach);
  out.log_name = std::move(log_name);

  // Clients in canonical (ascending address) order. Shards are disjoint,
  // so no address appears twice.
  std::vector<std::pair<net::IpAddress, const ClientState*>> clients;
  std::size_t total_clients = 0;
  for (const AssignmentState* shard : shards) {
    total_clients += shard->clients_.size();
    out.total_requests += shard->requests_;
  }
  clients.reserve(total_clients);
  for (const AssignmentState* shard : shards) {
    for (const auto& [address, state] : shard->clients_) {
      clients.emplace_back(address, &state);
    }
  }
  std::sort(clients.begin(), clients.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::unordered_map<net::IpAddress, std::uint32_t> client_ids;
  client_ids.reserve(clients.size());
  out.clients.reserve(clients.size());
  for (const auto& [address, state] : clients) {
    const auto id = static_cast<std::uint32_t>(out.clients.size());
    client_ids.emplace(address, id);
    out.clients.push_back(
        ClientStats{address, state->requests, state->bytes});
  }

  // Clusters merged by key, in canonical (ascending key) order. The same
  // prefix may be populated in several shards; tallies sum, URL sets union,
  // and from_dump flags agree whenever the prefix's source kind was stable
  // during the cluster's lifetime (OR resolves the pathological case).
  std::map<net::Prefix, std::vector<const StreamCluster*>> by_key;
  for (const AssignmentState* shard : shards) {
    for (const StreamCluster& cluster : shard->clusters_) {
      if (cluster.members.empty()) continue;
      by_key[cluster.key].push_back(&cluster);
    }
  }
  for (const auto& [key, parts] : by_key) {
    Cluster merged;
    merged.key = key;
    for (const StreamCluster* part : parts) {
      merged.from_network_dump |= part->from_dump;
      merged.requests += part->requests;
      merged.bytes += part->bytes;
      for (const net::IpAddress member : part->members) {
        merged.members.push_back(client_ids.at(member));
      }
    }
    if (parts.size() == 1) {
      merged.unique_urls = parts.front()->urls.size();
    } else {
      std::unordered_set<std::uint32_t> urls;
      for (const StreamCluster* part : parts) {
        urls.insert(part->urls.begin(), part->urls.end());
      }
      merged.unique_urls = urls.size();
    }
    std::sort(merged.members.begin(), merged.members.end());
    out.clusters.push_back(std::move(merged));
  }

  for (const AssignmentState* shard : shards) {
    for (const net::IpAddress client : shard->unclustered_) {
      out.unclustered.push_back(client_ids.at(client));
    }
  }
  std::sort(out.unclustered.begin(), out.unclustered.end());
  return out;
}

}  // namespace netclust::core
