#include "lint_rules.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace netclust::lint {
namespace {

/// One physical line split into its code text and its comment text, with
/// string/char literal contents blanked out of the code part (so tokens
/// inside literals never match a rule).
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Splits `content` into lines while tracking /* */ blocks, // comments,
/// string/char literals and raw strings across line boundaries.
std::vector<ScannedLine> ScanLines(std::string_view content) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  std::vector<ScannedLine> lines;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the )delim" terminator
  ScannedLine current;

  const auto flush = [&] {
    lines.push_back(std::move(current));
    current = ScannedLine{};
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      // A // comment ends with the line; block comments and raw strings
      // continue.
      flush();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          // Line comment: capture its text (order-comment reads it).
          std::size_t end = content.find('\n', i);
          if (end == std::string_view::npos) end = content.size();
          current.comment.append(content.substr(i, end - i));
          i = end - 1;  // loop ++ lands on '\n'
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t paren = content.find('(', i + 2);
          if (paren == std::string_view::npos) {
            current.code.push_back(c);
            break;
          }
          raw_delim = ")";
          raw_delim.append(content.substr(i + 2, paren - (i + 2)));
          raw_delim.push_back('"');
          current.code.append("R\"\"");
          state = State::kRawString;
          i = paren;
        } else if (c == '"') {
          current.code.push_back('"');
          state = State::kString;
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kChar;
        } else {
          current.code.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (an escaped newline is not code anyway)
        } else if (c == '"') {
          current.code.push_back('"');
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_delim[0] &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          current.code.push_back('"');
          state = State::kCode;
          i += raw_delim.size() - 1;
        }
        break;
    }
  }
  flush();
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `text` as a whole identifier (not as a
/// substring of a longer identifier).
bool HasToken(std::string_view text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// Collapses whitespace so `#  include < iostream >` still matches.
std::string StripSpaces(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

// How far above a memory_order_* use its `order:` comment may sit. Covers
// a multi-line rationale block directly above a multi-line statement.
constexpr int kOrderCommentWindow = 6;

void CheckOrderComment(std::string_view path,
                       const std::vector<ScannedLine>& lines,
                       std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // "memory_order" alone catches the C++20 enum-class spellings
    // (std::memory_order::acquire) that the suffixed tokens miss.
    if (!HasToken(lines[i].code, "memory_order_relaxed") &&
        !HasToken(lines[i].code, "memory_order_acquire") &&
        !HasToken(lines[i].code, "memory_order_release") &&
        !HasToken(lines[i].code, "memory_order_acq_rel") &&
        !HasToken(lines[i].code, "memory_order_seq_cst") &&
        !HasToken(lines[i].code, "memory_order_consume") &&
        !HasToken(lines[i].code, "memory_order")) {
      continue;
    }
    bool justified = false;
    const std::size_t first =
        i >= kOrderCommentWindow ? i - kOrderCommentWindow : 0;
    for (std::size_t j = first; j <= i && !justified; ++j) {
      justified = lines[j].comment.find("order:") != std::string::npos;
    }
    if (!justified) {
      findings->push_back(
          {std::string(path), static_cast<int>(i + 1), "order-comment",
           "memory_order_* use without an adjacent '// order:' rationale "
           "comment"});
    }
  }
}

void CheckParserInt(std::string_view path,
                    const std::vector<ScannedLine>& lines,
                    std::vector<Finding>* findings) {
  if (!StartsWith(path, "src/bgp/") && !StartsWith(path, "src/weblog/")) {
    return;
  }
  static constexpr std::string_view kBanned[] = {
      "atoi", "atol", "atoll", "stoi", "stol", "stoul",
      "stoull", "sscanf", "strtol", "strtoul", "strtoll", "strtoull"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::string_view fn : kBanned) {
      if (HasToken(lines[i].code, fn)) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "parser-int",
             "'" + std::string(fn) +
                 "' in parser code — use std::from_chars (locale-free, "
                 "overflow-checked)"});
      }
    }
  }
}

void CheckNakedThread(std::string_view path,
                      const std::vector<ScannedLine>& lines,
                      std::vector<Finding>* findings) {
  if (StartsWith(path, "src/engine/") || path == "src/server/server.cc" ||
      path == "src/server/server.h" || path == "src/core/parallel.cc") {
    return;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::size_t pos = 0;
    while ((pos = code.find("std::thread", pos)) != std::string::npos) {
      const std::size_t after = pos + std::string_view("std::thread").size();
      // Longer identifiers and nested names (std::thread::
      // hardware_concurrency) are not thread *spawns*; flag the bare type
      // only.
      if (after >= code.size() ||
          (!IsIdentChar(code[after]) && code.compare(after, 2, "::") != 0)) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "naked-thread",
             "raw std::thread outside src/engine/, src/server/server.{h,cc} "
             "and src/core/parallel.cc — use core::ParallelFor, the "
             "server's reactor spawn or the engine's shard workers"});
        break;  // one finding per line is enough
      }
      pos = after;
    }
  }
}

void CheckRawIo(std::string_view path,
                const std::vector<ScannedLine>& lines,
                std::vector<Finding>* findings) {
  // Raw POSIX I/O is EINTR-unsafe and deadline-blind; the wrappers in
  // src/server/io_util.* are the single vetted home (exempted via the
  // suppression file, so the exception stays visible in one place).
  static constexpr std::string_view kRawCalls[] = {
      "read",  "write",  "pread",    "pwrite",  "readv",   "writev",
      "recv",  "send",   "recvfrom", "sendto",  "recvmsg", "sendmsg",
      "accept", "accept4"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool flagged = false;
    for (std::string_view fn : kRawCalls) {
      std::size_t pos = 0;
      while (!flagged &&
             (pos = code.find(fn, pos)) != std::string::npos) {
        const std::size_t after = pos + fn.size();
        const bool whole_left = pos == 0 || !IsIdentChar(code[pos - 1]);
        const bool whole_right = after >= code.size() ||
                                 !IsIdentChar(code[after]);
        if (!whole_left || !whole_right) {
          pos = after;
          continue;
        }
        // Member calls (stream.write(...), msg->send(...)) are someone
        // else's API, not a syscall; only free calls — `write(` or the
        // explicit `::write(` — count. Require the `(` so declarations
        // and plain words in code (a variable named `send`) stay legal.
        const bool member =
            (pos >= 1 && code[pos - 1] == '.') ||
            (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
        std::size_t paren = after;
        while (paren < code.size() &&
               std::isspace(static_cast<unsigned char>(code[paren]))) {
          ++paren;
        }
        const bool call = paren < code.size() && code[paren] == '(';
        if (!member && call) {
          findings->push_back(
              {std::string(path), static_cast<int>(i + 1), "raw-io",
               "raw '" + std::string(fn) +
                   "(...)' — use the EINTR-safe wrappers in "
                   "src/server/io_util.h (RetryRead/WriteFull/RetryAccept "
                   "and friends)"});
          flagged = true;  // one finding per line is enough
        }
        pos = after;
      }
      if (flagged) break;
    }
  }
}

void CheckIostreamInclude(std::string_view path,
                          const std::vector<ScannedLine>& lines,
                          std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (StripSpaces(lines[i].code).find("#include<iostream>") !=
        std::string::npos) {
      findings->push_back(
          {std::string(path), static_cast<int>(i + 1), "iostream-include",
           "#include <iostream> in library code — use <cstdio>/<ostream> "
           "or move the I/O to a tool target"});
    }
  }
}

void CheckHeaderGuard(std::string_view path,
                      const std::vector<ScannedLine>& lines,
                      std::vector<Finding>* findings) {
  if (path.size() < 2 || path.substr(path.size() - 2) != ".h") return;
  bool pragma_once = false;
  int ifndef_guard_line = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string code = StripSpaces(lines[i].code);
    if (code.find("#pragmaonce") != std::string::npos) pragma_once = true;
    if (ifndef_guard_line == 0 && StartsWith(code, "#ifndef") &&
        i + 1 < lines.size() &&
        StartsWith(StripSpaces(lines[i + 1].code), "#define")) {
      ifndef_guard_line = static_cast<int>(i + 1);
    }
  }
  if (!pragma_once) {
    findings->push_back({std::string(path), 1, "header-guard",
                         "header missing #pragma once (repo convention)"});
  }
  if (ifndef_guard_line != 0) {
    findings->push_back(
        {std::string(path), ifndef_guard_line, "header-guard",
         "#ifndef-style include guard — this repo uses #pragma once"});
  }
}

/// The data-plane layers where concurrency and wire rules apply in full.
/// The BGP4MP/UPDATE decoders joined when the live feed made them a
/// network-facing ingest surface (netclustd --live-bgp4mp).
bool IsWireLayer(std::string_view path) {
  return StartsWith(path, "src/server/") || StartsWith(path, "src/cluster/") ||
         StartsWith(path, "src/bgp/mrt") || StartsWith(path, "src/bgp/update");
}

// How far below an atomic operation its memory-order argument may sit
// (multi-line call: the op on one line, the order two lines down).
constexpr std::size_t kAtomicOrderWindow = 2;

void CheckAtomicOrder(std::string_view path,
                      const std::vector<ScannedLine>& lines,
                      std::vector<Finding>* findings) {
  if (!IsWireLayer(path) && !StartsWith(path, "tools/")) return;
  static constexpr std::string_view kAtomicOps[] = {
      ".load(",          ".store(",     ".exchange(",
      ".fetch_add(",     ".fetch_sub(", ".fetch_and(",
      ".fetch_or(",      ".fetch_xor(", ".compare_exchange_weak(",
      ".compare_exchange_strong("};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (std::string_view op : kAtomicOps) {
      if (code.find(op) == std::string::npos) continue;
      bool explicit_order = false;
      const std::size_t last = std::min(i + kAtomicOrderWindow,
                                        lines.size() - 1);
      for (std::size_t j = i; j <= last && !explicit_order; ++j) {
        explicit_order = lines[j].code.find("memory_order") !=
                         std::string::npos;
      }
      if (!explicit_order) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "atomic-order",
             "atomic '" + std::string(op.substr(1, op.size() - 2)) +
                 "' with implicit seq_cst — spell the memory order and "
                 "justify it with an '// order:' comment"});
      }
      break;  // one finding per line is enough
    }
  }
}

void CheckWireCast(std::string_view path,
                   const std::vector<ScannedLine>& lines,
                   std::vector<Finding>* findings) {
  if (!IsWireLayer(path)) return;
  static constexpr std::string_view kCasts[] = {"memcpy", "reinterpret_cast",
                                                "const_cast"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::string_view cast : kCasts) {
      if (HasToken(lines[i].code, cast)) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "wire-cast",
             "'" + std::string(cast) +
                 "' in wire-layer code — network bytes go through the "
                 "bounds-checked GetU*/Decode* codecs, never through "
                 "reinterpreted buffer memory"});
        break;  // one finding per line is enough
      }
    }
  }
}

/// Trailing word of `text` (identifier characters), or empty.
std::string_view LastWord(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

void CheckWireDecodeResult(std::string_view path,
                           const std::vector<ScannedLine>& lines,
                           std::vector<Finding>* findings) {
  if (!IsWireLayer(path)) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::size_t pos = 0;
    while ((pos = code.find("Decode", pos)) != std::string::npos) {
      if (pos > 0 && IsIdentChar(code[pos - 1])) {
        pos += 6;
        continue;
      }
      std::size_t end = pos;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      std::size_t paren = end;
      while (paren < code.size() &&
             std::isspace(static_cast<unsigned char>(code[paren]))) {
        ++paren;
      }
      if (paren >= code.size() || code[paren] != '(') {
        pos = end;
        continue;
      }
      // Declaration vs call site: walk the text left of the name. Strip
      // namespace qualifiers first (both `ns::DecodeFoo(` calls and
      // out-of-line definitions), then classify by what remains.
      std::string prefix(code.substr(0, pos));
      for (;;) {
        while (!prefix.empty() &&
               std::isspace(static_cast<unsigned char>(prefix.back()))) {
          prefix.pop_back();
        }
        if (prefix.size() >= 2 &&
            prefix.compare(prefix.size() - 2, 2, "::") == 0) {
          prefix.resize(prefix.size() - 2);
          while (!prefix.empty() && IsIdentChar(prefix.back())) {
            prefix.pop_back();
          }
          continue;
        }
        break;
      }
      bool declaration;
      if (prefix.empty()) {
        // Continuation line: the return type (if this is a declaration)
        // sits on the previous line, checked below.
        declaration = true;
      } else {
        const char back = prefix.back();
        const bool logical_op =
            prefix.size() >= 2 && (prefix.compare(prefix.size() - 2, 2,
                                                  "&&") == 0 ||
                                   prefix.compare(prefix.size() - 2, 2,
                                                  "||") == 0);
        const std::string_view word = LastWord(prefix);
        if (logical_op || back == '=' || back == '(' || back == ',' ||
            back == '!' || back == '{' || back == ';' || back == ':' ||
            back == '<' || back == '?' || word == "return" ||
            word == "co_return" || word == "case" || word == "goto") {
          declaration = false;  // call site
        } else {
          // What remains reads like a return type (identifier, '>', '*',
          // '&', ']' from an attribute...).
          declaration = true;
        }
      }
      if (declaration) {
        bool returns_result =
            StripSpaces(code).find("Result<") != std::string::npos;
        if (!returns_result && i > 0) {
          returns_result = StripSpaces(lines[i - 1].code).find("Result<") !=
                           std::string::npos;
        }
        if (!returns_result) {
          findings->push_back(
              {std::string(path), static_cast<int>(i + 1),
               "wire-decode-result",
               "'" + std::string(code.substr(pos, end - pos)) +
                   "' does not return Result<T> — a decoder that cannot "
                   "report malformed input forces its caller to guess"});
        }
      }
      pos = end;
    }
  }
}

void CheckWireBounds(std::string_view path,
                     const std::vector<ScannedLine>& lines,
                     std::vector<Finding>* findings) {
  // The codec home: every GetU* there sits behind the decoder's size
  // check (and proto.h declares them).
  if (path == "src/server/proto.cc" || path == "src/server/proto.h") return;
  static constexpr std::string_view kReads[] = {"GetU16", "GetU32", "GetU64"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::string_view fn : kReads) {
      if (HasToken(lines[i].code, fn)) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "wire-bounds",
             "'" + std::string(fn) +
                 "' outside src/server/proto.cc — raw big-endian reads "
                 "belong in the codec home where every read sits behind "
                 "the decoder's bounds check"});
        break;  // one finding per line is enough
      }
    }
  }
}

/// Index just past the ')' matching the '(' at `open`, or npos when the
/// call does not close on this line.
std::size_t MatchParen(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

void CheckFdLifecycle(std::string_view path,
                      const std::vector<ScannedLine>& lines,
                      std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;

    // fd-unchecked: epoll_ctl in statement position with the result
    // silently dropped. `(void)epoll_ctl(...)` is an explicit discard
    // (teardown paths); anything consuming the result (if/!=/=) passes.
    std::size_t pos = 0;
    while ((pos = code.find("epoll_ctl", pos)) != std::string::npos) {
      const std::size_t after = pos + 9;
      const bool whole = (pos == 0 || !IsIdentChar(code[pos - 1])) &&
                         (after >= code.size() || !IsIdentChar(code[after]));
      std::size_t paren = after;
      while (paren < code.size() &&
             std::isspace(static_cast<unsigned char>(code[paren]))) {
        ++paren;
      }
      if (!whole || paren >= code.size() || code[paren] != '(') {
        pos = after;
        continue;
      }
      std::string prefix = StripSpaces(code.substr(0, pos));
      if (prefix.size() >= 2 &&
          prefix.compare(prefix.size() - 2, 2, "::") == 0) {
        prefix.resize(prefix.size() - 2);
      }
      const bool statement_position = prefix.empty();
      const bool explicit_discard =
          prefix.size() >= 6 &&
          prefix.compare(prefix.size() - 6, 6, "(void)") == 0;
      const std::size_t close = MatchParen(code, paren);
      const bool discarded =
          statement_position && close != std::string::npos &&
          StripSpaces(code.substr(close)) == ";";
      if (discarded && !explicit_discard) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "fd-unchecked",
             "epoll_ctl result silently discarded — check it (a failed "
             "registration strands the connection) or discard explicitly "
             "with (void)"});
      }
      pos = after;
    }

    // fd-close: raw close() anywhere — CloseFd (io_util) is EINTR-correct
    // and the single vetted close site (suppression-file entry).
    pos = 0;
    while ((pos = code.find("close", pos)) != std::string::npos) {
      const std::size_t after = pos + 5;
      const bool whole = (pos == 0 || !IsIdentChar(code[pos - 1])) &&
                         (after >= code.size() || !IsIdentChar(code[after]));
      const bool member =
          (pos >= 1 && code[pos - 1] == '.') ||
          (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
      std::size_t paren = after;
      while (paren < code.size() &&
             std::isspace(static_cast<unsigned char>(code[paren]))) {
        ++paren;
      }
      const bool call = paren < code.size() && code[paren] == '(';
      if (whole && call && !member) {
        findings->push_back(
            {std::string(path), static_cast<int>(i + 1), "fd-close",
             "raw 'close(...)' — use CloseFd (src/server/io_util.h), the "
             "EINTR-correct single close site"});
        pos = after;
        continue;
      }
      pos = after;
    }

    // fd-dup: descriptor duplication in the reactor layers breaks the
    // 1:1 fd-to-owner mapping the role capabilities guard.
    if (IsWireLayer(path)) {
      for (std::string_view fn : {std::string_view("dup"),
                                  std::string_view("dup2")}) {
        std::size_t p = 0;
        while ((p = code.find(fn, p)) != std::string::npos) {
          const std::size_t after_fn = p + fn.size();
          const bool whole =
              (p == 0 || !IsIdentChar(code[p - 1])) &&
              (after_fn >= code.size() || !IsIdentChar(code[after_fn]));
          const bool member =
              (p >= 1 && code[p - 1] == '.') ||
              (p >= 2 && code[p - 2] == '-' && code[p - 1] == '>');
          std::size_t q = after_fn;
          while (q < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[q]))) {
            ++q;
          }
          if (whole && !member && q < code.size() && code[q] == '(') {
            findings->push_back(
                {std::string(path), static_cast<int>(i + 1), "fd-dup",
                 "'" + std::string(fn) +
                     "(...)' duplicates a descriptor — reactor-owned fds "
                     "are 1:1 with their owner; a copy escapes the role "
                     "capability guarding its lifetime"});
            break;
          }
          p = after_fn;
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> LintFile(std::string_view path,
                              std::string_view content) {
  const std::vector<ScannedLine> lines = ScanLines(content);
  std::vector<Finding> findings;
  CheckOrderComment(path, lines, &findings);
  CheckAtomicOrder(path, lines, &findings);
  CheckParserInt(path, lines, &findings);
  CheckNakedThread(path, lines, &findings);
  CheckRawIo(path, lines, &findings);
  CheckWireCast(path, lines, &findings);
  CheckWireDecodeResult(path, lines, &findings);
  CheckWireBounds(path, lines, &findings);
  CheckFdLifecycle(path, lines, &findings);
  CheckIostreamInclude(path, lines, &findings);
  CheckHeaderGuard(path, lines, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line < b.line;
            });
  return findings;
}

std::vector<OpcodeInfo> ParseOpcodeEnum(std::string_view proto_header) {
  const std::vector<ScannedLine> lines = ScanLines(proto_header);
  std::vector<OpcodeInfo> opcodes;
  bool in_enum = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (!in_enum) {
      if (HasToken(code, "enum") && HasToken(code, "Opcode")) in_enum = true;
      continue;
    }
    if (code.find('}') != std::string::npos) break;
    // Enumerator shape: kName = 0xNN,
    std::size_t p = 0;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p]))) {
      ++p;
    }
    if (p >= code.size() || code[p] != 'k') continue;
    std::size_t end = p;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    OpcodeInfo info;
    info.name = code.substr(p, end - p);
    info.line = static_cast<int>(i + 1);
    const std::size_t eq = code.find('=', end);
    if (eq == std::string::npos) continue;
    std::size_t v = eq + 1;
    while (v < code.size() &&
           std::isspace(static_cast<unsigned char>(code[v]))) {
      ++v;
    }
    int base = 10;
    if (code.compare(v, 2, "0x") == 0 || code.compare(v, 2, "0X") == 0) {
      base = 16;
      v += 2;
    }
    const char* begin = code.data() + v;
    const char* stop = code.data() + code.size();
    unsigned value = 0;
    if (std::from_chars(begin, stop, value, base).ptr == begin) continue;
    info.value = value;
    // `// stats: <counter>` annotation on the enumerator's line.
    const std::size_t stats = lines[i].comment.find("stats:");
    if (stats != std::string::npos) {
      std::size_t c = stats + 6;
      while (c < lines[i].comment.size() &&
             std::isspace(static_cast<unsigned char>(lines[i].comment[c]))) {
        ++c;
      }
      std::size_t cend = c;
      while (cend < lines[i].comment.size() &&
             IsIdentChar(lines[i].comment[cend])) {
        ++cend;
      }
      info.counter = lines[i].comment.substr(c, cend - c);
    }
    opcodes.push_back(std::move(info));
  }
  return opcodes;
}

std::vector<Finding> CheckOpcodeCoverage(const OpcodeCoverageInput& input) {
  std::vector<Finding> findings;
  const std::vector<OpcodeInfo> opcodes =
      ParseOpcodeEnum(input.proto_content);
  if (opcodes.empty()) {
    findings.push_back({input.proto_path, 1, "opcode-coverage",
                        "no 'enum class Opcode' enumerators found — the "
                        "exhaustiveness check has nothing to anchor on"});
    return findings;
  }

  // Pre-scan the dispatch and metrics contents once.
  std::vector<std::string> dispatch_stripped;
  std::string dispatch_code;
  for (const ScannedLine& line : ScanLines(input.dispatch_content)) {
    dispatch_stripped.push_back(StripSpaces(line.code));
    dispatch_code.append(line.code);
    dispatch_code.push_back('\n');
  }
  std::string metrics_code;
  for (const ScannedLine& line : ScanLines(input.metrics_content)) {
    metrics_code.append(line.code);
    metrics_code.push_back('\n');
  }

  const auto dispatched = [&](const std::string& name) {
    const std::string needle = "caseOpcode::" + name + ":";
    for (const std::string& line : dispatch_stripped) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  };

  for (const OpcodeInfo& op : opcodes) {
    const bool request = op.value < 0x80;
    char hex[8];
    std::snprintf(hex, sizeof hex, "0x%02X", op.value);

    if (request && !dispatched(op.name)) {
      findings.push_back(
          {input.proto_path, op.line, "opcode-coverage",
           "request opcode " + op.name + " (" + hex +
               ") has no 'case Opcode::" + op.name +
               "' in the server dispatch switch"});
    }
    if (std::find(input.corpus_opcodes.begin(), input.corpus_opcodes.end(),
                  op.value) == input.corpus_opcodes.end()) {
      findings.push_back(
          {input.proto_path, op.line, "opcode-coverage",
           "opcode " + op.name + " (" + hex +
               ") has no fuzz corpus seed (tests/corpus/proto) carrying "
               "its opcode byte"});
    }
    if (request) {
      if (op.counter.empty()) {
        findings.push_back(
            {input.proto_path, op.line, "opcode-coverage",
             "request opcode " + op.name +
                 " has no '// stats: <counter>' annotation naming its "
                 "ServerMetrics counter"});
      } else {
        if (!HasToken(metrics_code, op.counter)) {
          findings.push_back(
              {input.proto_path, op.line, "opcode-coverage",
               "request opcode " + op.name + " claims counter '" +
                   op.counter + "' which does not exist in ServerMetrics"});
        }
        if (!HasToken(dispatch_code, op.counter)) {
          findings.push_back(
              {input.proto_path, op.line, "opcode-coverage",
               "request opcode " + op.name + " claims counter '" +
                   op.counter + "' which is never bumped in the dispatch "
                                "translation unit"});
        }
      }
    }
  }
  return findings;
}

std::vector<Suppression> ParseSuppressions(std::string_view text) {
  std::vector<Suppression> suppressions;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    // Trim and drop comments / blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.front()))) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // malformed: ignore
    suppressions.push_back({std::string(line.substr(0, colon)),
                            std::string(line.substr(colon + 1))});
  }
  return suppressions;
}

int MatchSuppression(const Finding& finding,
                     const std::vector<Suppression>& suppressions) {
  for (std::size_t i = 0; i < suppressions.size(); ++i) {
    if (suppressions[i].rule == finding.rule &&
        suppressions[i].file == finding.file) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool IsSuppressed(const Finding& finding,
                  const std::vector<Suppression>& suppressions) {
  return MatchSuppression(finding, suppressions) >= 0;
}

std::vector<Finding> StaleSuppressions(
    const std::vector<Suppression>& suppressions,
    const std::vector<std::size_t>& hits,
    const std::vector<bool>& file_exists) {
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < suppressions.size(); ++i) {
    const Suppression& s = suppressions[i];
    const bool exists = i < file_exists.size() && file_exists[i];
    const std::size_t used = i < hits.size() ? hits[i] : 0;
    if (!exists) {
      findings.push_back(
          {s.file, 0, "stale-suppression",
           "suppression '" + s.rule + ":" + s.file +
               "' names a file that no longer exists — delete the entry"});
    } else if (used == 0) {
      findings.push_back(
          {s.file, 0, "stale-suppression",
           "suppression '" + s.rule + ":" + s.file +
               "' matched no finding this run — the violation is gone; "
               "delete the entry"});
    }
  }
  return findings;
}

}  // namespace netclust::lint
