// File I/O helpers: load a routing-table snapshot from disk with format
// auto-detection (text dump vs binary MRT of either generation), and save
// in any supported format.
#pragma once

#include <string>

#include "bgp/route_entry.h"
#include "net/prefix_format.h"
#include "net/result.h"

namespace netclust::bgp {

enum class SnapshotFileFormat {
  kText,       // one entry per line, any §3.1.2 prefix format
  kMrtV1,      // TABLE_DUMP
  kMrtV2,      // TABLE_DUMP_V2
};

struct LoadedSnapshot {
  Snapshot snapshot;
  SnapshotFileFormat format = SnapshotFileFormat::kText;
  std::size_t skipped = 0;  // malformed lines / skipped MRT records
};

/// Loads `path`, sniffing the format from the first record. `name` becomes
/// the snapshot's source name (defaults to the path).
Result<LoadedSnapshot> LoadSnapshotFile(const std::string& path,
                                        std::string name = {});

/// Saves `snapshot` to `path` in the requested format. Text uses `style`.
Result<bool> SaveSnapshotFile(const Snapshot& snapshot,
                              const std::string& path,
                              SnapshotFileFormat format,
                              net::PrefixStyle style = net::PrefixStyle::kCidr,
                              std::uint32_t timestamp = 0);

}  // namespace netclust::bgp
