// Degenerate-configuration behaviour of the workload generator and the
// streaming clusterer: tiny targets, one-URL sites, requests < clients,
// traffic before any routing state.
#include <gtest/gtest.h>

#include "core/streaming.h"
#include "synth/internet.h"
#include "synth/workload.h"

namespace netclust::synth {
namespace {

const Internet& TinyInternet() {
  static const Internet internet = [] {
    InternetConfig config;
    config.seed = 91;
    config.allocation_count = 500;
    return GenerateInternet(config);
  }();
  return internet;
}

WorkloadConfig Base() {
  WorkloadConfig config;
  config.seed = 92;
  config.log_name = "edge";
  config.duration_seconds = 3600;
  return config;
}

TEST(WorkloadEdge, SingleClientSingleUrl) {
  WorkloadConfig config = Base();
  config.target_clients = 1;
  config.target_requests = 10;
  config.url_count = 1;
  const GeneratedLog generated = GenerateLog(TinyInternet(), config);
  EXPECT_GE(generated.log.request_count(), 1u);
  EXPECT_GE(generated.log.unique_clients(), 1u);
  EXPECT_EQ(generated.log.unique_urls(), 1u);
}

TEST(WorkloadEdge, FewerRequestsThanClientsStillCoversEveryone) {
  WorkloadConfig config = Base();
  config.target_clients = 200;
  config.target_requests = 50;  // less than the client count
  config.url_count = 20;
  const GeneratedLog generated = GenerateLog(TinyInternet(), config);
  // Every materialized client issues at least one request.
  EXPECT_EQ(generated.log.unique_clients(),
            generated.truth.client_allocation.size());
  EXPECT_GE(generated.log.request_count(),
            generated.log.unique_clients());
}

TEST(WorkloadEdge, SpiderWithTinyUrlSpace) {
  WorkloadConfig config = Base();
  config.target_clients = 100;
  config.target_requests = 5000;
  config.url_count = 3;
  config.spider_count = 1;
  config.spider_url_fraction = 0.9;
  const GeneratedLog generated = GenerateLog(TinyInternet(), config);
  ASSERT_EQ(generated.truth.spiders.size(), 1u);
  EXPECT_LE(generated.log.unique_urls(), 3u);
}

TEST(WorkloadEdge, ShortDurationStaysInBounds) {
  WorkloadConfig config = Base();
  config.target_clients = 100;
  config.target_requests = 2000;
  config.url_count = 50;
  config.duration_seconds = 60;
  const GeneratedLog generated = GenerateLog(TinyInternet(), config);
  for (const auto& request : generated.log.requests()) {
    EXPECT_GE(request.timestamp, config.start_time);
    EXPECT_LT(request.timestamp, config.start_time + 60);
  }
}

TEST(WorkloadEdge, MoreClientsThanAddressSpaceSaturates) {
  // Ask for more clients than the 500-allocation world can hold: the
  // generator saturates gracefully instead of failing.
  WorkloadConfig config = Base();
  config.target_clients = 2000000;
  config.target_requests = 100000;
  config.url_count = 100;
  const GeneratedLog generated = GenerateLog(TinyInternet(), config);
  EXPECT_GT(generated.log.unique_clients(), 1000u);
  EXPECT_EQ(generated.truth.active_allocations, 500u);
}

}  // namespace
}  // namespace netclust::synth

namespace netclust::core {
namespace {

TEST(StreamingEdge, TrafficBeforeAnyRoutesIsUnclustered) {
  StreamingClusterer streaming("routeless");
  streaming.Observe(net::IpAddress(10, 1, 2, 3), 0, 100, 0);
  streaming.Observe(net::IpAddress(10, 1, 2, 4), 0, 100, 1);
  EXPECT_EQ(streaming.cluster_count(), 0u);
  EXPECT_EQ(streaming.unclustered_count(), 2u);

  // The first announcement adopts them.
  const int source = streaming.AddSource(
      {"T", "1/1/2000", bgp::SourceKind::kBgpTable, ""});
  streaming.Announce(net::Prefix::Parse("10.0.0.0/8").value(), source);
  EXPECT_EQ(streaming.unclustered_count(), 0u);
  EXPECT_EQ(streaming.cluster_count(), 1u);
  const Clustering clustering = streaming.ToClustering();
  EXPECT_EQ(clustering.clusters[0].requests, 2u);
}

TEST(StreamingEdge, WithdrawOfUnknownPrefixIsHarmless) {
  StreamingClusterer streaming("noop");
  streaming.Withdraw(net::Prefix::Parse("99.0.0.0/8").value());
  EXPECT_EQ(streaming.stats().withdraw_events, 1u);
  EXPECT_EQ(streaming.cluster_count(), 0u);
}

TEST(StreamingEdge, EmptyToClustering) {
  StreamingClusterer streaming("empty");
  const Clustering clustering = streaming.ToClustering();
  EXPECT_EQ(clustering.client_count(), 0u);
  EXPECT_EQ(clustering.cluster_count(), 0u);
  EXPECT_EQ(clustering.total_requests, 0u);
}

}  // namespace
}  // namespace netclust::core
