# Empty dependencies file for bench_ablation_vantages.
# This may be replaced when dependencies are built.
