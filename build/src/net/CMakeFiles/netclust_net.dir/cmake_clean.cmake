file(REMOVE_RECURSE
  "CMakeFiles/netclust_net.dir/ip_address.cc.o"
  "CMakeFiles/netclust_net.dir/ip_address.cc.o.d"
  "CMakeFiles/netclust_net.dir/prefix.cc.o"
  "CMakeFiles/netclust_net.dir/prefix.cc.o.d"
  "CMakeFiles/netclust_net.dir/prefix_format.cc.o"
  "CMakeFiles/netclust_net.dir/prefix_format.cc.o.d"
  "libnetclust_net.a"
  "libnetclust_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclust_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
