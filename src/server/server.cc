#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <span>
#include <sstream>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>

#include "bgp/mrt.h"
#include "server/io_util.h"

namespace netclust::server {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int EpollWait(int epoll_fd, epoll_event* events, int max_events,
              int timeout_ms) {
  for (;;) {
    const int n = ::epoll_wait(epoll_fd, events, max_events, timeout_ms);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Timeout sweep tick; also the epoll_wait budget whenever any deadline
/// is configured.
constexpr int kSweepIntervalMs = 25;

/// Gather width of one flush writev: enough to coalesce a deep pipeline
/// of replies, small enough to live on the stack.
constexpr int kMaxFlushIov = 64;

/// Read bursts (64 KiB each) serviced per readable event before yielding
/// back to epoll — level-triggered redelivery keeps the rest pending, so
/// one firehose connection cannot starve its reactor siblings.
constexpr int kMaxReadBursts = 4;

}  // namespace

Server::Server(engine::Engine* engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {}

Server::~Server() { Stop(); }

Result<std::uint16_t> Server::Serve() {
  if (serving_) return Fail("Serve() called twice");
  reactors_.clear();
  max_inflight_ = static_cast<std::int64_t>(config_.max_inflight_frames);
  const int count = config_.reactors > 0 ? config_.reactors : 2;

  const auto fail = [this](const std::string& error) -> Result<std::uint16_t> {
    for (auto& r : reactors_) {
      // Quiescent: fail runs before any reactor thread is spawned, so the
      // caller is the only thread that has ever seen these reactors.
      base::AssumeThreadRole own(r->role);
      CloseFd(r->listen_fd);
      CloseFd(r->wake_fd);
      CloseFd(r->epoll_fd);
    }
    reactors_.clear();
    return Fail(error);
  };

  for (int i = 0; i < count; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
    Reactor& r = *reactors_.back();
    // Quiescent: r's thread is spawned only after every reactor is fully
    // set up, so until then the Serve() caller is r's owning thread.
    base::AssumeThreadRole own(r.role);
    r.index = static_cast<std::size_t>(i);
    // Each reactor gets its own private mapping cache — shared-nothing
    // like the rest of its arena, so the lookup fast path stays lock-free.
    r.mapping = std::make_unique<mapping::MappingTier>(
        engine_, config_.mapping_cache_capacity, &r.mapping_metrics);
    // Every reactor listens on the same port with SO_REUSEPORT: the kernel
    // hashes each connection's 4-tuple to exactly one listener, so accepts
    // spread across reactors with no shared accept queue, no EPOLLONESHOT
    // rearm handshake, and no thundering herd. Reactor 0 resolves an
    // ephemeral port request; the rest join the resolved port.
    auto listener =
        CreateListener(i == 0 ? config_.port : port_, config_.listen_backlog,
                       0x7F000001, /*reuse_port=*/true);
    if (!listener.ok()) return fail(listener.error());
    r.listen_fd = listener.value();
    if (i == 0) {
      auto port = LocalPort(r.listen_fd);
      if (!port.ok()) return fail(port.error());
      port_ = port.value();
    }
    r.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (r.epoll_fd < 0) {
      return fail(std::string("epoll_create1: ") + std::strerror(errno));
    }
    // The wake descriptor is written once at Stop() and never read, so it
    // stays readable: the reactor's epoll_wait returns, sees stopping_ and
    // drains — no per-thread wakeup bookkeeping.
    r.wake_fd = ::eventfd(0, EFD_CLOEXEC);
    if (r.wake_fd < 0) {
      return fail(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.fd = r.wake_fd;
    epoll_event listen_ev{};
    listen_ev.events = EPOLLIN;
    listen_ev.data.fd = r.listen_fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, r.wake_fd, &wake_ev) != 0 ||
        ::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, r.listen_fd, &listen_ev) != 0) {
      return fail(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
    }
  }

  // order: relaxed — the flag is re-armed before any thread is spawned;
  // thread creation itself orders this store.
  stopping_.store(false, std::memory_order_relaxed);
  {
    base::MutexLock lock(&ingest_mu_);
    ingest_stopping_ = false;
  }
  serving_ = true;
  for (auto& r : reactors_) {
    r->thread = std::thread([this, reactor = r.get()] { ReactorLoop(*reactor); });
  }
  ingest_thread_ = std::thread([this] { IngestLoop(); });
  if (!config_.live_bgp4mp_path.empty()) {
    live_thread_ = std::thread([this] { LiveFeedLoop(); });
  }
  return port_;
}

void Server::Stop() {
  // Partial Serve() failures clean up after themselves, and completed
  // reactors are kept (fds closed, threads joined) so their metrics stay
  // readable after Stop(); re-Serve() clears them.
  if (!serving_) return;
  serving_ = false;

  // 1. Flag the drain and wake every reactor. Each stops accepting,
  //    finishes the frames it has decoded (including waiting out queued
  //    ingest acks), flushes queued replies within the write deadline,
  //    closes its connections and exits.
  // order: relaxed — the flag carries no data; the eventfd write below
  // (a syscall the reactor's epoll_wait observes) is what forces each
  // loop around to a fresh load, and the loop re-polls until it sees it.
  stopping_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  for (auto& r : reactors_) (void)RetryWrite(r->wake_fd, &one, sizeof(one));
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }

  // 1.5. The live feeder checks stopping_ between bursts, and any burst
  //      it is waiting on completes because the ingest thread is still
  //      running — so this join is bounded by one batch publish.
  if (live_thread_.joinable()) live_thread_.join();

  // 2. With the reactors gone, no job is left waiting: the ingest queue is
  //    empty or holds only jobs whose reactors already got their acks.
  //    Signal shutdown and let the loop drain what remains.
  {
    base::MutexLock lock(&ingest_mu_);
    ingest_stopping_ = true;
  }
  ingest_cv_.NotifyAll();
  if (ingest_thread_.joinable()) ingest_thread_.join();

  for (auto& r : reactors_) {
    // Quiescent: r's thread was joined above, so ownership of its state
    // has passed back to the Stop() caller.
    base::AssumeThreadRole own(r->role);
    CloseFd(r->listen_fd);
    CloseFd(r->wake_fd);
    CloseFd(r->epoll_fd);
    r->listen_fd = r->wake_fd = r->epoll_fd = -1;
  }
}

std::string Server::StatsText() const {
  std::ostringstream out;
  out << metrics_.Exposition();
  std::int64_t inflight_sum = 0;
  for (const auto& r : reactors_) {
    // order: relaxed — scrape-style read, same contract as the counters.
    const std::int64_t inflight =
        r->metrics.inflight_frames.load(std::memory_order_relaxed);
    inflight_sum += inflight;
    const auto tag = "{reactor=\"" + std::to_string(r->index) + "\"} ";
    out << "netclust_server_reactor_connections_accepted_total" << tag
        << r->metrics.connections_accepted.value() << "\n";
    out << "netclust_server_reactor_frames_decoded_total" << tag
        << r->metrics.frames_decoded.value() << "\n";
    out << "netclust_server_reactor_lookups_served_total" << tag
        << r->metrics.lookups_served.value() << "\n";
    out << "netclust_server_reactor_busy_replies_total" << tag
        << r->metrics.busy_replies.value() << "\n";
    out << "netclust_server_reactor_short_writes_total" << tag
        << r->metrics.short_writes.value() << "\n";
    out << "netclust_server_reactor_inflight_frames" << tag << inflight
        << "\n";
    out << "netclust_server_reactor_mapping_hits_total" << tag
        << r->mapping_metrics.hits.value() << "\n";
    out << "netclust_server_reactor_mapping_misses_total" << tag
        << r->mapping_metrics.misses.value() << "\n";
    out << "netclust_server_reactor_mapping_inserts_total" << tag
        << r->mapping_metrics.inserts.value() << "\n";
    out << "netclust_server_reactor_mapping_evictions_total" << tag
        << r->mapping_metrics.evictions.value() << "\n";
    out << "netclust_server_reactor_mapping_invalidations_total" << tag
        << r->mapping_metrics.invalidations.value() << "\n";
  }
  // The summed view of the per-reactor backpressure gauges: with N
  // reactors the fleet-wide admission bound is N * max_inflight_frames.
  out << "netclust_server_inflight_frames_sum " << inflight_sum << "\n";
  return out.str() + engine_->MetricsText();
}

// The wire-level stats record mirrors the engine histogram bucket-for-
// bucket so a client can merge fleets exactly.
static_assert(kStatsLatencyBuckets == engine::LatencyHistogram::kBuckets,
              "ClusterStatsRecord latency buckets must mirror the engine "
              "histogram layout");

// Every installed ranking must fit a RANK_REPLY payload.
static_assert(kMaxRankServers == mapping::RankTable::kMaxServers,
              "RANK_REPLY server bound must mirror RankTable::kMaxServers");

Result<bool> Server::SetTopology(const Topology& topo) {
  if (config_.cluster_node_id < 0) {
    return Fail("standalone server cannot install a topology");
  }
  auto valid = ValidateTopology(topo);
  if (!valid.ok()) return Fail(valid.error());
  auto compiled = std::make_shared<CompiledTopology>();
  compiled->topo = topo;
  compiled->owner = CompileOwners(topo);
  compiled->self_index = NodeIndexOf(
      topo, static_cast<std::uint32_t>(config_.cluster_node_id));
  {
    base::MutexLock lock(&topo_mu_);
    if (topology_ != nullptr) {
      if (topo.epoch < topology_->topo.epoch) {
        return Fail("topology epoch must not regress");
      }
      if (topo.epoch == topology_->topo.epoch) {
        if (topo == topology_->topo) return true;  // idempotent re-push
        return Fail("conflicting topology at the installed epoch");
      }
    }
    topology_ = std::move(compiled);
  }
  metrics_.topology_installs.Inc();
  return true;
}

std::optional<Topology> Server::CurrentTopology() const {
  base::MutexLock lock(&topo_mu_);
  if (topology_ == nullptr) return std::nullopt;
  return topology_->topo;
}

std::shared_ptr<const Server::CompiledTopology> Server::AcquireTopology()
    const {
  base::MutexLock lock(&topo_mu_);
  return topology_;
}

ClusterStatsRecord Server::BuildClusterStats(
    const std::shared_ptr<const CompiledTopology>& topo) const {
  ClusterStatsRecord record;
  record.epoch = topo != nullptr ? topo->topo.epoch : 0;
  record.node_id = static_cast<std::uint32_t>(config_.cluster_node_id);
  record.frames_decoded = metrics_.frames_decoded.value();
  record.lookups_served = metrics_.lookups_served.value();
  record.cluster_lookups_served = metrics_.cluster_lookups_served.value();
  record.ingests_applied = metrics_.ingests_applied.value();
  record.busy_replies = metrics_.busy_replies.value();
  record.errors_sent = metrics_.errors_sent.value();
  record.redirects_sent = metrics_.redirects_sent.value();
  // order: relaxed — scrape-style read, same contract as the counters.
  record.connections_active = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, metrics_.connections_active.load(std::memory_order_relaxed)));
  record.latency_sum_ns = metrics_.lookup_service_ns.sum();
  for (std::size_t i = 0; i < kStatsLatencyBuckets; ++i) {
    record.latency_buckets[i] = metrics_.lookup_service_ns.bucket(i);
  }
  return record;
}

void Server::ReactorLoop(Reactor& r) {
  // This function IS the reactor thread's main: the one place r.role is
  // assumed while the thread runs. Everything downstream REQUIRES(r.role).
  base::AssumeThreadRole own(r.role);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // The epoll timeout doubles as the timeout-sweep tick — the sweep is
  // folded into this loop (no reaper thread, no claim handshake) because
  // this thread exclusively owns every connection it would inspect.
  const bool sweeping = config_.idle_timeout_ms > 0 ||
                        config_.read_timeout_ms > 0 ||
                        config_.write_timeout_ms > 0;
  const int wait_ms = sweeping ? kSweepIntervalMs : -1;
  std::int64_t last_sweep_ms = NowMs();
  // order: relaxed — pure stop flag (see Stop()); every protected state
  // handoff happens after the join, not through this load.
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = EpollWait(r.epoll_fd, events, kMaxEvents, wait_ms);
    if (n < 0) break;  // epoll descriptor gone: shutdown
    // Connection events first, accepts second: an fd closed in this batch
    // cannot be recycled by an accept until its stale events are skipped.
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == r.wake_fd) continue;  // stop flag checked by the loop
      if (fd == r.listen_fd) {
        accept_ready = true;
        continue;
      }
      const auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second.get();
      const std::uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(r, conn, nullptr);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && !FlushConnection(r, conn)) {
        CloseConnection(r, conn, nullptr);
        continue;
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) {
        ServiceReadable(r, conn);  // closes the connection itself if needed
      }
    }
    // order: relaxed — same stop-flag contract as the loop condition.
    if (accept_ready && !stopping_.load(std::memory_order_relaxed)) AcceptNew(r);
    if (sweeping) {
      const std::int64_t now = NowMs();
      if (now - last_sweep_ms >= kSweepIntervalMs) {
        SweepTimeouts(r, now);
        last_sweep_ms = now;
      }
    }
  }

  // Graceful drain: every decoded frame was answered inline, so the only
  // outstanding work is queued reply bytes. Flush them within the write
  // deadline, then close everything this reactor owns.
  (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, r.listen_fd, nullptr);
  for (auto& [fd, conn] : r.conns) {
    FlushBlocking(r, conn.get());
    if (!conn->outq.empty()) {
      // order: relaxed — gauge bookkeeping only.
      r.metrics.inflight_frames.fetch_sub(
          static_cast<std::int64_t>(conn->outq.size()),
          std::memory_order_relaxed);
    }
    (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    CloseFd(fd);
    metrics_.connections_closed.Inc();
    // order: relaxed — gauge bookkeeping only.
    metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    connections_total_.fetch_sub(1, std::memory_order_relaxed);
  }
  r.conns.clear();
}

void Server::AcceptNew(Reactor& r) {
  for (;;) {
    const int fd = RetryAccept(r.listen_fd);
    if (fd < 0) break;  // EAGAIN (drained) or transient error
    // order: relaxed — approximate admission bound; a transient overshoot
    // under concurrent accepts on other reactors only shifts where the
    // BUSY kicks in.
    const std::int64_t total = connections_total_.load(std::memory_order_relaxed);
    if (total >= static_cast<std::int64_t>(config_.max_connections) ||
        stopping_.load(std::memory_order_relaxed)) {
      // Explicit backpressure: tell the client we are full, then close.
      metrics_.connections_rejected.Inc();
      metrics_.busy_replies.Inc();
      const std::vector<std::uint8_t> busy = EncodeFrame(Opcode::kBusy, {});
      (void)WriteFull(fd, busy.data(), busy.size(), config_.write_timeout_ms);
      CloseFd(fd);
      continue;
    }
    if (!SetNonBlocking(fd, true)) {
      CloseFd(fd);
      continue;
    }
    SetNoDelay(fd);
    if (config_.accepted_sndbuf_bytes > 0) {
      SetSendBufferBytes(fd, config_.accepted_sndbuf_bytes);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_ms = NowMs();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseFd(fd);
      continue;
    }
    r.conns.emplace(fd, std::move(conn));
    metrics_.connections_accepted.Inc();
    r.metrics.connections_accepted.Inc();
    // order: relaxed ×2 — gauge bookkeeping only.
    metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ServiceReadable(Reactor& r, Connection* conn) {
  std::uint8_t buffer[65536];
  bool close = false;
  int bursts = 0;
  for (;;) {
    const ssize_t n = RetryRead(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      metrics_.bytes_read.Inc(static_cast<std::uint64_t>(n));
      conn->last_activity_ms = NowMs();
      conn->decoder.Feed(buffer, static_cast<std::size_t>(n));
      for (;;) {
        auto next = conn->decoder.NextView();
        if (!next.ok()) {
          // The stream is unsynchronized; report and hang up.
          metrics_.frames_rejected.Inc();
          QueueError(r, conn, ErrorCode::kMalformedFrame, next.error());
          close = true;
          break;
        }
        if (!next.value().has_value()) break;  // partial frame; read more
        if (!DispatchFrame(r, conn, *next.value())) {
          close = true;
          break;
        }
      }
      if (close) break;
      if (static_cast<std::size_t>(n) < sizeof(buffer) ||
          ++bursts >= kMaxReadBursts) {
        break;  // drained, or burst budget spent (epoll redelivers)
      }
      continue;
    }
    if (n == 0) {  // orderly EOF; deliver queued replies, then close
      close = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close = true;  // hard socket error
    break;
  }
  if (close) {
    // Best-effort: a half-closed pipelining peer still gets its answers,
    // and a protocol violator gets the ERROR frame before the RST.
    FlushBlocking(r, conn);
    CloseConnection(r, conn, nullptr);
    return;
  }
  // One coalesced writev for every reply this burst produced.
  if (!FlushConnection(r, conn)) CloseConnection(r, conn, nullptr);
}

void Server::QueueFrame(Reactor& r, Connection* conn,
                        std::vector<std::uint8_t> wire) {
  if (conn->outq.empty()) conn->last_write_progress_ms = NowMs();
  conn->outq.push_back(std::move(wire));
  // order: relaxed — single-writer gauge; scrapes read it cross-thread.
  r.metrics.inflight_frames.fetch_add(1, std::memory_order_relaxed);
}

void Server::QueueReply(Reactor& r, Connection* conn, Opcode opcode,
                        const std::vector<std::uint8_t>& payload) {
  QueueFrame(r, conn, EncodeFrame(opcode, payload));
}

void Server::QueueError(Reactor& r, Connection* conn, ErrorCode code,
                        const std::string& message) {
  metrics_.errors_sent.Inc();
  QueueReply(r, conn, Opcode::kError, EncodeError(ErrorReply{code, message}));
}

bool Server::FlushConnection(Reactor& r, Connection* conn) {
  while (!conn->outq.empty()) {
    iovec iov[kMaxFlushIov];
    int cnt = 0;
    std::size_t skip = conn->out_off;
    for (auto it = conn->outq.begin();
         it != conn->outq.end() && cnt < kMaxFlushIov; ++it) {
      iov[cnt].iov_base = it->data() + skip;
      iov[cnt].iov_len = it->size() - skip;
      skip = 0;  // only the oldest frame can be partially written
      ++cnt;
    }
    const ssize_t n = RetryWritev(conn->fd, iov, cnt);
    if (n <= 0) {
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        return false;  // peer gone (EPIPE/ECONNRESET/...)
      }
      // Short write: the socket buffer is full. Park the remainder on the
      // connection and let EPOLLOUT resume the flush — the reactor moves
      // on to its other connections instead of blocking on this one.
      r.metrics.short_writes.Inc();
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP;
        ev.data.fd = conn->fd;
        (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return true;
    }
    metrics_.bytes_written.Inc(static_cast<std::uint64_t>(n));
    conn->last_write_progress_ms = NowMs();
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      std::vector<std::uint8_t>& front = conn->outq.front();
      const std::size_t left = front.size() - conn->out_off;
      if (remaining < left) {
        conn->out_off += remaining;
        break;
      }
      remaining -= left;
      conn->out_off = 0;
      conn->outq.pop_front();
      // order: relaxed — single-writer gauge; scrapes read cross-thread.
      r.metrics.inflight_frames.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = conn->fd;
    (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  return true;
}

void Server::FlushBlocking(Reactor& r, Connection* conn) {
  while (!conn->outq.empty()) {
    std::vector<std::uint8_t>& front = conn->outq.front();
    const std::size_t left = front.size() - conn->out_off;
    auto written = WriteFull(conn->fd, front.data() + conn->out_off, left,
                             config_.write_timeout_ms);
    if (!written.ok() || written.value() != IoStatus::kOk) return;
    metrics_.bytes_written.Inc(left);
    conn->out_off = 0;
    conn->outq.pop_front();
    // order: relaxed — single-writer gauge; scrapes read cross-thread.
    r.metrics.inflight_frames.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::CloseConnection(Reactor& r, Connection* conn,
                             engine::Counter* reason) {
  if (!conn->outq.empty()) {
    // Undelivered replies die with the connection; release their slots.
    // order: relaxed — gauge bookkeeping only.
    r.metrics.inflight_frames.fetch_sub(
        static_cast<std::int64_t>(conn->outq.size()),
        std::memory_order_relaxed);
  }
  const int fd = conn->fd;
  (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  CloseFd(fd);
  metrics_.connections_closed.Inc();
  if (reason != nullptr) reason->Inc();
  // order: relaxed ×2 — gauge bookkeeping only.
  metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  connections_total_.fetch_sub(1, std::memory_order_relaxed);
  r.conns.erase(fd);  // destroys *conn
}

void Server::SweepTimeouts(Reactor& r, std::int64_t now_ms) {
  // A non-positive timeout means "never": each deadline can be disabled
  // independently without silently dropping the others.
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
  const std::int64_t read_limit =
      config_.read_timeout_ms > 0 ? config_.read_timeout_ms : kNever;
  const std::int64_t idle_limit =
      config_.idle_timeout_ms > 0 ? config_.idle_timeout_ms : kNever;
  const std::int64_t write_limit =
      config_.write_timeout_ms > 0 ? config_.write_timeout_ms : kNever;
  std::vector<int> victims;
  for (const auto& [fd, conn] : r.conns) {
    // A peer with queued replies is judged on write progress; a stalled
    // mid-frame sender on the (shorter) read deadline; a merely quiet
    // connection on the idle deadline.
    if (!conn->outq.empty()) {
      if (now_ms - conn->last_write_progress_ms >= write_limit) {
        victims.push_back(fd);
      }
    } else if (conn->decoder.buffered() > 0) {
      if (now_ms - conn->last_activity_ms >= read_limit) {
        victims.push_back(fd);
      }
    } else if (now_ms - conn->last_activity_ms >= idle_limit) {
      victims.push_back(fd);
    }
  }
  for (const int fd : victims) {
    const auto it = r.conns.find(fd);
    if (it != r.conns.end()) {
      CloseConnection(r, it->second.get(), &metrics_.connections_reaped);
    }
  }
}

bool Server::AdmitMappingRequest(Reactor& r, Connection* conn,
                                 const char* opcode_name, std::uint64_t epoch,
                                 net::IpAddress address,
                                 std::uint64_t* reply_epoch) {
  *reply_epoch = 0;
  if (config_.cluster_node_id < 0) {
    // Standalone: there is no topology epoch to agree on, so a nonzero
    // stamp means the client is confused about the deployment mode.
    if (epoch != 0) {
      metrics_.frames_rejected.Inc();
      QueueError(r, conn, ErrorCode::kMalformedPayload,
                 std::string(opcode_name) +
                     " epoch must be zero on a standalone server");
      return false;
    }
    return true;
  }
  const auto topo = AcquireTopology();
  if (topo == nullptr) {
    metrics_.frames_rejected.Inc();
    QueueError(r, conn, ErrorCode::kMalformedPayload, "no topology installed");
    return false;
  }
  // Same redirect discipline as CLUSTER_LOOKUP: an assignment computed
  // against a stale shard map could hand the client a server ranked for
  // somebody else's cluster, so never answer past the epoch fence.
  if (epoch != topo->topo.epoch || topo->self_index < 0) {
    metrics_.redirects_sent.Inc();
    QueueReply(r, conn, Opcode::kRedirect,
               EncodeRedirect(
                   RedirectReply{RedirectReason::kStaleEpoch, topo->topo.epoch}));
    return false;
  }
  if (topo->owner[address.bits() >> 16] !=
      static_cast<std::uint16_t>(topo->self_index)) {
    metrics_.redirects_sent.Inc();
    QueueReply(r, conn, Opcode::kRedirect,
               EncodeRedirect(
                   RedirectReply{RedirectReason::kNotOwner, topo->topo.epoch}));
    return false;
  }
  *reply_epoch = topo->topo.epoch;
  return true;
}

bool Server::DispatchFrame(Reactor& r, Connection* conn,
                           const FrameView& frame) {
  metrics_.frames_decoded.Inc();
  r.metrics.frames_decoded.Inc();
  const std::uint64_t start_ns = engine::NowNs();
  const std::uint8_t* payload = frame.payload;
  const std::size_t size = frame.header.payload_size;

  // Per-reactor backpressure: the gauge counts reply frames queued on this
  // reactor's connections and not yet flushed; admitting this frame would
  // push it past the per-reactor bound, so shed it instead. Each reactor
  // is an independent arena — a flooded sibling never BUSYs this one.
  // order: relaxed — only this thread mutates the gauge.
  const std::int64_t inflight =
      r.metrics.inflight_frames.load(std::memory_order_relaxed);
  if (inflight + 1 > max_inflight_) {
    metrics_.busy_replies.Inc();
    r.metrics.busy_replies.Inc();
    QueueReply(r, conn, Opcode::kBusy, {});
    return true;
  }

  switch (frame.header.opcode) {
    case Opcode::kPing: {
      if (size > kMaxPingEcho) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "PING echo payload too large");
        return true;
      }
      metrics_.pings_served.Inc();
      QueueReply(r, conn, Opcode::kPong,
                 std::vector<std::uint8_t>(payload, payload + size));
      return true;
    }

    case Opcode::kLookup: {
      auto req = DecodeLookup(payload, size);
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, req.error());
        return true;
      }
      const LookupRecord record =
          LookupRecord::FromMatch(r.mapping->Lookup(req.value().address));
      QueueReply(r, conn, Opcode::kLookupResult, EncodeLookupRecord(record));
      metrics_.lookups_served.Inc();
      r.metrics.lookups_served.Inc();
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kBatchLookup: {
      // The fast path end-to-end: decode straight out of the frame view
      // into the reactor's reusable address buffer, resolve the whole
      // batch in one engine call (single RCU acquire, prefetched flat
      // directory), and append the complete reply frame directly — no
      // LookupRecord vector, no payload copy, no per-frame allocation
      // once the scratch buffers are warm.
      auto count = DecodeBatchLookupInto(payload, size, &r.batch_addrs);
      if (!count.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, count.error());
        return true;
      }
      const std::size_t batch = count.value();
      if (r.batch_matches.size() < batch) r.batch_matches.resize(batch);
      r.mapping->LookupBatch(
          std::span<const net::IpAddress>(r.batch_addrs.data(), batch),
          std::span<std::optional<bgp::PrefixTable::Match>>(
              r.batch_matches.data(), batch));
      std::vector<std::uint8_t> wire;
      AppendBatchResultFrame(r.batch_matches.data(), batch, &wire);
      QueueFrame(r, conn, std::move(wire));
      metrics_.lookups_served.Inc(batch);
      r.metrics.lookups_served.Inc(batch);
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kIngestUpdate: {
      auto req = DecodeIngest(payload, size);
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, req.error());
        return true;
      }
      if (req.value().source_id >=
          static_cast<std::uint32_t>(
              config_.source_count < 0 ? 0 : config_.source_count)) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "unknown ingest source id");
        return true;
      }
      IngestJob job;
      job.request = std::move(req).value();
      {
        base::MutexLock lock(&ingest_mu_);
        if (ingest_stopping_) {
          QueueError(r, conn, ErrorCode::kShuttingDown, "server is draining");
          return true;
        }
        if (ingest_queue_.size() >= config_.max_inflight_frames) {
          metrics_.busy_replies.Inc();
          r.metrics.busy_replies.Inc();
          QueueReply(r, conn, Opcode::kBusy, {});
          return true;
        }
        ingest_queue_.push_back(&job);
      }
      ingest_cv_.NotifyOne();
      // Control-plane wait: the reactor parks until the single ingest
      // thread has applied the update, so the ack it queues is a real
      // visibility guarantee. Lookups on OTHER reactors proceed
      // unimpeded; this reactor's arena is briefly paused, bounded by
      // the ingest queue cap.
      std::uint64_t version = 0;
      {
        base::MutexLock lock(&job.mu);
        while (!job.done) job.cv.Wait(job.mu);
        version = job.table_version;
      }
      QueueReply(r, conn, Opcode::kIngestAck,
                 EncodeIngestAck(IngestAck{version}));
      metrics_.ingests_applied.Inc();
      return true;
    }

    case Opcode::kStats: {
      if (size != 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "STATS takes no payload");
        return true;
      }
      const std::string text = StatsText();
      metrics_.stats_served.Inc();
      QueueReply(r, conn, Opcode::kStatsText,
                 std::vector<std::uint8_t>(text.begin(), text.end()));
      return true;
    }

    case Opcode::kClusterLookup: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kUnsupportedOpcode,
                   "CLUSTER_LOOKUP requires cluster mode");
        return true;
      }
      auto req = DecodeClusterLookup(payload, size);
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, req.error());
        return true;
      }
      const auto topo = AcquireTopology();
      if (topo == nullptr) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "no topology installed");
        return true;
      }
      // A redirect is the protocol's "ask again with fresher routing":
      // never answer for blocks this node does not own at the client's
      // epoch, or a mid-rebalance client could read a stale shard.
      if (req.value().epoch != topo->topo.epoch || topo->self_index < 0) {
        metrics_.redirects_sent.Inc();
        QueueReply(r, conn, Opcode::kRedirect,
                   EncodeRedirect(RedirectReply{RedirectReason::kStaleEpoch,
                                                topo->topo.epoch}));
        return true;
      }
      const std::vector<net::IpAddress>& addresses = req.value().addresses;
      for (const net::IpAddress address : addresses) {
        if (topo->owner[address.bits() >> 16] !=
            static_cast<std::uint16_t>(topo->self_index)) {
          metrics_.redirects_sent.Inc();
          QueueReply(r, conn, Opcode::kRedirect,
                     EncodeRedirect(RedirectReply{RedirectReason::kNotOwner,
                                                  topo->topo.epoch}));
          return true;
        }
      }
      std::vector<std::optional<bgp::PrefixTable::Match>> matches(
          addresses.size());
      r.mapping->LookupBatch(addresses, matches);
      ClusterResult result;
      result.epoch = topo->topo.epoch;
      result.records.reserve(addresses.size());
      for (const auto& match : matches) {
        result.records.push_back(LookupRecord::FromMatch(match));
      }
      QueueReply(r, conn, Opcode::kClusterResult, EncodeClusterResult(result));
      metrics_.cluster_lookups_served.Inc(result.records.size());
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kRank: {
      auto req = DecodeRank(payload, size);
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, req.error());
        return true;
      }
      std::uint64_t reply_epoch = 0;
      if (!AdmitMappingRequest(r, conn, "RANK", req.value().epoch,
                               req.value().address, &reply_epoch)) {
        return true;
      }
      const auto match = r.mapping->Lookup(req.value().address);
      RankReply reply;
      reply.epoch = reply_epoch;
      reply.cluster_as = match.has_value() ? match->origin_as : 0;
      if (const mapping::RankTable* table = config_.rank_table.get()) {
        const std::vector<std::uint16_t>* ranking =
            reply.cluster_as != 0 ? table->Ranking(reply.cluster_as) : nullptr;
        reply.servers =
            ranking != nullptr ? *ranking : table->default_ranking();
      }
      QueueReply(r, conn, Opcode::kRankReply, EncodeRankReply(reply));
      metrics_.ranks_served.Inc();
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kAssign: {
      auto req = DecodeAssign(payload, size);
      if (!req.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, req.error());
        return true;
      }
      std::uint64_t reply_epoch = 0;
      if (!AdmitMappingRequest(r, conn, "ASSIGN", req.value().epoch,
                               req.value().address, &reply_epoch)) {
        return true;
      }
      const auto match = r.mapping->Lookup(req.value().address);
      AssignReply reply;
      reply.epoch = reply_epoch;
      reply.status = AssignStatus::kNoServer;
      reply.server_id = 0;
      reply.cluster_as = match.has_value() ? match->origin_as : 0;
      if (const mapping::RankTable* table = config_.rank_table.get()) {
        const std::vector<std::uint16_t>* ranking =
            reply.cluster_as != 0 ? table->Ranking(reply.cluster_as) : nullptr;
        const bool cluster_ranked = ranking != nullptr;
        if (ranking == nullptr) ranking = &table->default_ranking();
        if (!ranking->empty()) {
          reply.status = cluster_ranked ? AssignStatus::kClusterRanked
                                        : AssignStatus::kDefaultRanking;
          reply.server_id = ranking->front();
        }
      }
      QueueReply(r, conn, Opcode::kAssignReply, EncodeAssignReply(reply));
      metrics_.assigns_served.Inc();
      metrics_.lookup_service_ns.Record(engine::NowNs() - start_ns);
      return true;
    }

    case Opcode::kTopology: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kUnsupportedOpcode,
                   "TOPOLOGY requires cluster mode");
        return true;
      }
      if (size != 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "TOPOLOGY takes no payload");
        return true;
      }
      const auto topo = AcquireTopology();
      if (topo == nullptr) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "no topology installed");
        return true;
      }
      QueueReply(r, conn, Opcode::kTopologyReply, EncodeTopology(topo->topo));
      metrics_.topologies_served.Inc();
      return true;
    }

    case Opcode::kSetTopology: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kUnsupportedOpcode,
                   "SET_TOPOLOGY requires cluster mode");
        return true;
      }
      auto topo = DecodeTopology(payload, size);
      if (!topo.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, topo.error());
        return true;
      }
      auto installed = SetTopology(topo.value());
      if (!installed.ok()) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload, installed.error());
        return true;
      }
      QueueReply(r, conn, Opcode::kSetTopologyAck,
                 EncodeTopologyAck(topo.value().epoch));
      return true;
    }

    case Opcode::kClusterStats: {
      if (config_.cluster_node_id < 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kUnsupportedOpcode,
                   "CLUSTER_STATS requires cluster mode");
        return true;
      }
      if (size != 0) {
        metrics_.frames_rejected.Inc();
        QueueError(r, conn, ErrorCode::kMalformedPayload,
                   "CLUSTER_STATS takes no payload");
        return true;
      }
      const ClusterStatsRecord record = BuildClusterStats(AcquireTopology());
      metrics_.cluster_stats_served.Inc();
      QueueReply(r, conn, Opcode::kClusterStatsReply,
                 EncodeClusterStats(record));
      return true;
    }

    default: {
      metrics_.frames_rejected.Inc();
      QueueError(r, conn, ErrorCode::kUnsupportedOpcode,
                 std::string("not a request opcode: ") +
                     OpcodeName(frame.header.opcode));
      return true;
    }
  }
}

void Server::IngestLoop() {
  // Thread main for the ingest thread: the one place ingest_role_ is
  // assumed, making this thread the only code path that can reach
  // ApplyIngest (and through it the engine's mutating routing-plane API).
  base::AssumeThreadRole own(ingest_role_);
  for (;;) {
    IngestJob* job = nullptr;
    {
      base::MutexLock lock(&ingest_mu_);
      while (ingest_queue_.empty() && !ingest_stopping_) {
        ingest_cv_.Wait(ingest_mu_);
      }
      if (ingest_queue_.empty()) return;  // stopping and fully drained
      job = ingest_queue_.front();
      ingest_queue_.pop_front();
    }
    ApplyIngest(job);
  }
}

void Server::ApplyIngest(IngestJob* job) {
  // This thread is the engine's single routing-plane caller while the
  // server runs (Engine's documented ingest-thread contract).
  if (!job->batch.empty()) {
    // A live-feed burst: one incremental publish covers the whole batch.
    (void)engine_->ApplyUpdateBatch(job->batch, job->batch_source);
  } else {
    engine_->ApplyUpdate(job->request.update,
                         static_cast<int>(job->request.source_id));
  }
  const std::uint64_t version = engine_->table_version();
  {
    base::MutexLock lock(&job->mu);
    job->done = true;
    job->table_version = version;
    // Notify while still holding job->mu: the job lives on the waiting
    // reactor's stack, and the reactor cannot return from Wait() (and
    // destroy the job) until this mutex is released — signalling after
    // unlocking would race the job's destruction.
    job->cv.NotifyAll();
  }
}

bool Server::SubmitLiveBatch(std::vector<bgp::UpdateMessage>* batch) {
  IngestJob job;
  job.batch = std::move(*batch);
  job.batch_source = config_.live_source_id;
  {
    base::MutexLock lock(&ingest_mu_);
    if (ingest_stopping_) return false;  // draining: abandon the burst
    ingest_queue_.push_back(&job);
  }
  ingest_cv_.NotifyOne();
  // One burst in flight at a time: the feeder's natural pacing is the
  // publish latency, so churn can never queue unboundedly behind lookups.
  {
    base::MutexLock lock(&job.mu);
    while (!job.done) job.cv.Wait(job.mu);
  }
  metrics_.live_batches.Inc();
  metrics_.live_updates.Inc(job.batch.size());
  batch->clear();
  return true;
}

void Server::LiveFeedLoop() {
  std::ifstream in(config_.live_bgp4mp_path, std::ios::binary);
  if (!in) {
    metrics_.live_decode_errors.Inc();
    return;
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  bgp::Bgp4mpStream stream;
  stream.Feed(bytes.data(), bytes.size());
  stream.Finish();

  std::vector<bgp::UpdateMessage> batch;
  const std::size_t cap = std::max<std::size_t>(1, config_.live_batch_size);
  batch.reserve(cap);
  for (;;) {
    // order: relaxed — pure stop flag, same contract as the reactor loop.
    if (stopping_.load(std::memory_order_relaxed)) return;
    auto event = stream.Next();
    if (!event.has_value()) break;  // file fully replayed
    if (event->kind == bgp::Bgp4mpEventKind::kStateChange) {
      // FSM transitions are churn-monitoring signal, not table mutations;
      // a session reset shows up as the withdraw burst that follows it.
      metrics_.live_state_changes.Inc();
      continue;
    }
    batch.push_back(std::move(event->update));
    if (batch.size() >= cap && !SubmitLiveBatch(&batch)) return;
  }
  if (!batch.empty()) (void)SubmitLiveBatch(&batch);
  const bgp::Bgp4mpStats& stats = stream.stats();
  metrics_.live_decode_errors.Inc(stats.malformed_records +
                                  stats.truncated_records);
}

}  // namespace netclust::server
