// The merged prefix/netmask table of §3.1: the union of entries from every
// routing-table snapshot, indexed for longest-prefix match.
//
// Source semantics follow the paper: BGP tables are the *primary* source
// and registry network dumps (ARIN/NLANR) the *secondary* one — a client is
// clustered by a network-dump prefix only when no BGP prefix matches it at
// all. This is what lifts coverage "from 99% to 99.9%" without letting the
// registries' coarse super-blocks shadow real routes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route_entry.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "trie/patricia_trie.h"

namespace netclust::bgp {

/// The merged table. Add snapshots, then issue LongestMatch queries.
class PrefixTable {
 public:
  static constexpr int kMaxSources = 32;

  struct Match {
    net::Prefix prefix;
    /// Which kind of source supplied the winning prefix — kNetworkDump only
    /// when no BGP prefix matched the address (secondary-source rule).
    SourceKind kind;
    /// Bitmask of source ids that contributed the winning prefix.
    std::uint32_t source_mask;
    /// Origin AS (last element of the AS path) of the winning prefix, or 0
    /// when unknown. §4.1.4 groups proxies by it.
    AsNumber origin_as;
  };

  /// Per-source accounting (one row of Table 1 plus merge stats).
  struct SourceStats {
    SnapshotInfo info;
    std::size_t entries = 0;         // entries inserted from this source
    std::size_t unique_prefixes = 0; // distinct prefixes it contributed
    std::size_t new_prefixes = 0;    // prefixes no earlier source had
  };

  /// Registers a source and returns its id. At most kMaxSources.
  int AddSource(const SnapshotInfo& info);

  /// Inserts one prefix attributed to `source_id`, optionally annotated
  /// with its origin AS (0 = unknown; the first known origin wins).
  void Insert(const net::Prefix& prefix, int source_id,
              AsNumber origin_as = 0);

  /// Origin AS recorded for `prefix`, or 0.
  [[nodiscard]] AsNumber OriginAs(const net::Prefix& prefix) const;

  /// Removes `prefix` entirely (all sources) — a route withdrawal in the
  /// real-time pipeline. Per-source historical stats are not rewound.
  /// Returns true if the prefix was present.
  bool Remove(const net::Prefix& prefix) { return trie_.Remove(prefix); }

  /// Registers `snapshot.info` and inserts all its entries. Returns the
  /// source id.
  int AddSnapshot(const Snapshot& snapshot);

  /// Longest-prefix match under the primary/secondary rule. nullopt when no
  /// prefix at all covers `address` (the paper's ~0.1% unclusterable case).
  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const;

  /// Number of distinct prefixes in the merged table.
  [[nodiscard]] std::size_t size() const { return trie_.size(); }

  [[nodiscard]] const std::vector<SourceStats>& sources() const {
    return sources_;
  }

  /// All distinct prefixes (any source), for dynamics analysis.
  [[nodiscard]] std::vector<net::Prefix> AllPrefixes() const;

  /// True if `prefix` is present in the table.
  [[nodiscard]] bool Contains(const net::Prefix& prefix) const;

 private:
  struct Origin {
    std::uint32_t source_mask = 0;
    bool from_bgp = false;
    bool from_dump = false;
    AsNumber origin_as = 0;
  };

  trie::PatriciaTrie<Origin> trie_;
  std::vector<SourceStats> sources_;
};

}  // namespace netclust::bgp
