// Synthetic CDN server-selection scenario for the RANK/ASSIGN workload.
//
// Models the paper's motivating failure of /24-based client grouping
// (§2.1's 151.198.194.x example: one /24 resold across unrelated
// networks): a fraction of /24 blocks is deliberately split into two
// sub-/24 allocations owned by clusters homed in different regions. A
// /24-naive CDN assigns the whole block from one probe and misdirects
// the other half; network-aware assignment follows the routing table's
// longest match to the owning cluster and its per-cluster server
// ranking, so the split is invisible to it.
//
// Deterministic: the same config + seed reproduces the same scenario
// (allocations, homes, RTT matrix, rankings and ground truth).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/prefix_table.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "synth/rng.h"

namespace netclust::synth {

struct CdnConfig {
  std::uint64_t seed = 1;
  /// CDN footprint: one server per region.
  std::size_t regions = 6;
  /// Client clusters (origin ASes), each homed in one region.
  std::size_t clusters = 64;
  /// /24 blocks allocated per cluster.
  std::size_t blocks_per_cluster = 4;
  /// Fraction of /24 blocks split into two /25s owned by clusters homed
  /// in different regions — the misassignment driver.
  double mixed24_fraction = 0.3;
};

/// One CDN server; id doubles as the wire-level server_id.
struct CdnServer {
  std::uint16_t id = 0;
  std::size_t region = 0;
};

/// One routable allocation: the prefix a cluster announces, where that
/// cluster is homed, and the ground-truth best server for its clients.
struct CdnAllocation {
  net::Prefix prefix;
  bgp::AsNumber as = 0;
  std::size_t region = 0;
  std::uint16_t best_server = 0;
};

/// One cluster's server preference list, RankTable-shaped but kept as
/// plain data so synth stays independent of the serving layers.
struct CdnRanking {
  bgp::AsNumber as = 0;
  std::vector<std::uint16_t> servers;  // best first
};

struct CdnScenario {
  CdnConfig config;
  std::vector<CdnServer> servers;
  /// Sorted by prefix network; split blocks contribute two entries.
  std::vector<CdnAllocation> allocations;
  /// rtt_ms[region][server index]: the ground-truth cost model.
  std::vector<std::vector<double>> rtt_ms;
  std::vector<CdnRanking> rankings;
  /// Fleet-wide fallback ranking (best server for region 0's clients).
  std::vector<std::uint16_t> default_ranking;
  /// /24 blocks whose ownership is split across regions.
  std::size_t mixed_blocks = 0;
};

/// Builds the scenario. Allocations are carved sequentially out of
/// 10.0.0.0/8, one /24 block per (cluster, block) pair; mixed blocks
/// become two /25s with distinct owners.
[[nodiscard]] CdnScenario GenerateCdn(const CdnConfig& config);

/// One client request plus its ground-truth best server.
struct CdnRequest {
  net::IpAddress address;
  std::uint16_t best_server = 0;
};

/// Samples `count` client requests: allocation popularity is Zipf(alpha)
/// over the allocation list, host bits uniform within the allocation.
[[nodiscard]] std::vector<CdnRequest> SampleCdnRequests(
    const CdnScenario& scenario, std::size_t count, double alpha, Rng& rng);

/// The /24-naive baseline: every address in a /24 block is assigned the
/// server that is best for the block's LOWEST address — one probe speaks
/// for the whole block, exactly the aggregation the paper faults.
[[nodiscard]] std::uint16_t NaiveAssign(const CdnScenario& scenario,
                                        net::IpAddress address);

/// Aggregate quality of an assignment run.
struct CdnScore {
  std::size_t requests = 0;
  std::size_t misassigned = 0;  // assigned != ground-truth best server
  /// max per-server load over the ideal even share (1.0 = perfectly flat).
  double load_skew = 0.0;
  [[nodiscard]] double misassignment_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(misassigned) / static_cast<double>(requests);
  }
};

/// Scores one assignment vector (parallel to `requests`) against the
/// ground truth carried by the requests.
[[nodiscard]] CdnScore ScoreAssignments(
    const CdnScenario& scenario, const std::vector<CdnRequest>& requests,
    const std::vector<std::uint16_t>& assigned);

}  // namespace netclust::synth
