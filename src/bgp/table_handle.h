// Refcounted immutable PrefixTable snapshots with RCU-style publication.
//
// The real-time engine (src/engine) never lets a lookup take a lock: the
// merged table lives behind an RcuTableSlot, writers build a *new* table
// (clone + apply the UPDATE batch), and publish it with one atomic
// pointer swap. Readers that acquired the previous snapshot keep a
// reference count on it, so the old table stays alive until the last
// in-flight lookup drops it — classic read-copy-update, with shared_ptr
// refcounts standing in for grace periods.
//
// Sides of the slot (machine-checked on Clang, see base/sync.h):
//   * read side — Acquire()/version(): wait-free, any thread, any time;
//   * publish side — Publish(): a non-atomic read-modify-write of the
//     version sequence, so it belongs to exactly one publisher thread.
//     That contract is a ThreadRole capability: Publish() REQUIRES the
//     publisher role, and callers assert it at their single-writer entry
//     point (Engine::PublishDelta).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "base/sync.h"
#include "bgp/prefix_table.h"

namespace netclust::bgp {

/// A refcounted, versioned, immutable PrefixTable snapshot. Cheap to copy
/// (one refcount increment); the table itself is never mutated after
/// publication, so handles are safe to read from any thread.
class TableHandle {
 public:
  TableHandle() = default;

  [[nodiscard]] const PrefixTable& operator*() const { return state_->table; }
  [[nodiscard]] const PrefixTable* operator->() const {
    return &state_->table;
  }
  [[nodiscard]] const PrefixTable* get() const {
    return state_ == nullptr ? nullptr : &state_->table;
  }
  explicit operator bool() const { return state_ != nullptr; }

  /// The flat LPM compiled from this snapshot at publish time. Immutable
  /// like the table itself; this is the structure the serving plane reads
  /// (Engine::Lookup / Engine::LookupBatch), the trie being kept for the
  /// mutation-side bookkeeping and as the equivalence oracle.
  [[nodiscard]] const PrefixTable::Flat& flat() const { return state_->flat; }

  /// Monotonic publication sequence number (0 = never published).
  [[nodiscard]] std::uint64_t version() const {
    return state_ == nullptr ? 0 : state_->version;
  }

  /// Number of live references to this snapshot (readers + the slot).
  [[nodiscard]] long use_count() const { return state_.use_count(); }

  friend bool operator==(const TableHandle& a, const TableHandle& b) {
    return a.state_ == b.state_;
  }

 private:
  friend class RcuTableSlot;
  struct State {
    PrefixTable table;
    PrefixTable::Flat flat;  // compiled from `table` at publish time
    std::uint64_t version = 0;
  };
  explicit TableHandle(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// The publication point: writers Publish() a new table, readers Acquire()
/// the current one. Both sides are wait-free on the fast path
/// (std::atomic<std::shared_ptr>); neither blocks the other.
class RcuTableSlot {
 public:
  /// Starts with an empty table at version 1, so Acquire() is always valid.
  RcuTableSlot() {
    // order: release — pairs with the acquire in Acquire()/Publish();
    // publishes the initial State before any handle to the slot escapes.
    slot_.store(std::make_shared<const TableHandle::State>(TableHandle::State{
                    PrefixTable{}, PrefixTable::Flat{}, 1}),
                std::memory_order_release);
  }

  /// Read side: the current snapshot. Never null; any thread, any time.
  [[nodiscard]] TableHandle Acquire() const {
    // order: acquire — pairs with Publish()'s release store; a reader that
    // sees the new pointer sees the fully built table behind it.
    return TableHandle(slot_.load(std::memory_order_acquire));
  }

  /// Publish side: wraps `table` in a new snapshot one version past the
  /// current one and swaps it in. Returns the handle just published.
  /// The version bump is a non-atomic read-modify-write, hence the single
  /// publisher role.
  TableHandle Publish(PrefixTable table) REQUIRES(publisher_role_) {
    // order: acquire — the publisher reads its own previous release store
    // (or the constructor's), for which relaxed would be admissible under
    // the single-publisher contract; acquire keeps this correct even if
    // the contract is ever widened to externally-locked multi-writer.
    const std::uint64_t next =
        slot_.load(std::memory_order_acquire)->version + 1;
    // Compile the snapshot's flat data plane before publication: readers
    // that see the new pointer see a fully built directory, and the cost
    // lands on the single publisher, never on a lookup.
    PrefixTable::Flat flat = table.CompileFlat();
    auto state = std::make_shared<const TableHandle::State>(
        TableHandle::State{std::move(table), std::move(flat), next});
    // order: release — pairs with Acquire(); readers must see the complete
    // State (table contents + version) before the pointer swap is visible.
    slot_.store(state, std::memory_order_release);
    return TableHandle(std::move(state));
  }

  /// Delta publish: like Publish(), but the flat directory is compiled
  /// incrementally from the previous snapshot's, repainting only the root
  /// ranges a prefix in `changed` covers (PrefixTable::CompileFlatDelta).
  /// The previous flat is copied, never mutated, and the touched blocks
  /// are rebuilt inside the copy — readers holding the old handle keep an
  /// intact directory, and readers that see the new pointer see a fully
  /// repainted one; no interleaving exposes a torn state.
  TableHandle Publish(PrefixTable table,
                      std::span<const net::Prefix> changed)
      REQUIRES(publisher_role_) {
    // order: acquire — same single-publisher read as Publish() above; the
    // previous State supplies both the version and the flat to delta from.
    const std::shared_ptr<const TableHandle::State> prev =
        slot_.load(std::memory_order_acquire);
    PrefixTable::Flat flat = table.CompileFlatDelta(prev->flat, changed);
    auto state = std::make_shared<const TableHandle::State>(
        TableHandle::State{std::move(table), std::move(flat),
                           prev->version + 1});
    // order: release — pairs with Acquire(); readers must see the complete
    // repainted directory before the pointer swap is visible.
    slot_.store(state, std::memory_order_release);
    return TableHandle(std::move(state));
  }

  /// Read side: the version of the currently published snapshot.
  [[nodiscard]] std::uint64_t version() const {
    // order: acquire — same pairing as Acquire(); the State read below
    // must not be torn from before the pointer became visible.
    return slot_.load(std::memory_order_acquire)->version;
  }

  /// The single-publisher thread role for Publish().
  [[nodiscard]] const base::ThreadRole& publisher_role() const
      RETURN_CAPABILITY(publisher_role_) {
    return publisher_role_;
  }

 private:
  std::atomic<std::shared_ptr<const TableHandle::State>> slot_;
  base::ThreadRole publisher_role_;
};

}  // namespace netclust::bgp
