// Blocking client for the netclustd wire protocol.
//
// One TCP connection, one request in flight at a time (the protocol is
// strictly request/response per connection). Every call round-trips a
// frame under the configured deadline and surfaces failures as Result
// errors; a BUSY response comes back as an error whose message starts
// with kBusyPrefix so callers (the load generator, retry loops) can
// distinguish "overloaded, retry" from "broken, give up".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/update.h"
#include "net/ip_address.h"
#include "net/result.h"
#include "server/proto.h"

namespace netclust::server {

class Client {
 public:
  /// Error-message prefix for BUSY (retryable backpressure) responses.
  static constexpr const char* kBusyPrefix = "BUSY";
  [[nodiscard]] static bool IsBusy(const std::string& error);

  /// Connects to a dotted-quad `host`:`port`. `timeout_ms` bounds the
  /// handshake and every subsequent per-call read/write.
  [[nodiscard]] static Result<Client> Connect(const std::string& host,
                                              std::uint16_t port,
                                              int timeout_ms = 5'000);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void Close();

  /// PING with an optional echo payload (<= kMaxPingEcho); returns the
  /// echoed bytes.
  [[nodiscard]] Result<std::vector<std::uint8_t>> Ping(
      const std::vector<std::uint8_t>& echo = {});

  /// Longest-prefix match for one address.
  [[nodiscard]] Result<LookupRecord> Lookup(net::IpAddress address);

  /// One round trip for up to kMaxBatch addresses; records come back in
  /// request order.
  [[nodiscard]] Result<std::vector<LookupRecord>> BatchLookup(
      const std::vector<net::IpAddress>& addresses);

  /// Feeds one BGP UPDATE into the server's ingest path. On success the
  /// returned ack's table_version is already published: lookups issued
  /// after this call observe the update.
  [[nodiscard]] Result<IngestAck> IngestUpdate(std::uint32_t source_id,
                                               const bgp::UpdateMessage& update);

  /// Plain-text metrics exposition (server + engine counters).
  [[nodiscard]] Result<std::string> Stats();

 private:
  /// Writes one request frame and reads exactly one response frame.
  /// Folds BUSY and ERROR responses into Result errors; on any transport
  /// error the connection is closed (the stream may be unsynchronized).
  [[nodiscard]] Result<Frame> RoundTrip(Opcode opcode,
                                        const std::vector<std::uint8_t>& payload,
                                        Opcode expected_reply);

  int fd_ = -1;
  int timeout_ms_ = 5'000;
};

}  // namespace netclust::server
