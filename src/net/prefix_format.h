// Parsing and formatting of the three prefix/netmask textual formats that
// the paper's routing-table sources use (§3.1.2):
//
//   (i)   x1.x2.x3.x4/k1.k2.k3.k4   dotted netmask, trailing zero octets of
//                                   both prefix and mask may be dropped
//                                   (e.g. "12.65.128/255.255.224")
//   (ii)  x1.x2.x3.x4/l             CIDR length (e.g. "12.65.128.0/19")
//   (iii) x1.x2.x3.0                bare classful network, mask implied by
//                                   address class; trailing zero octets may
//                                   be dropped (e.g. "18" = 18.0.0.0/8)
//
// The paper unifies everything to format (i); we canonicalize to Prefix and
// can re-emit any style, which the synthetic vantage-point tables use so the
// parser is exercised on all of them.
#pragma once

#include <string>
#include <string_view>

#include "net/prefix.h"
#include "net/result.h"

namespace netclust::net {

/// The textual styles of §3.1.2.
enum class PrefixStyle {
  kDottedMask,  // (i)   12.65.128.0/255.255.224.0
  kCidr,        // (ii)  12.65.128.0/19
  kClassful,    // (iii) 18  /  128.32  /  192.168.1.0 — mask from class
};

/// Parse a prefix entry in any of the three formats, auto-detected.
/// Returns an error for empty input, malformed octets (including
/// leading-zero octal-spoof forms like "012", which IpAddress::Parse also
/// rejects), out-of-range lengths, or non-contiguous netmasks
/// (e.g. 255.0.255.0).
Result<Prefix> ParsePrefixEntry(std::string_view text);

/// Render `prefix` in the given style. kClassful falls back to kCidr when
/// the prefix length is not the class-default length (it would otherwise be
/// ambiguous — exactly why the paper calls format (iii) "abbreviated").
std::string FormatPrefixEntry(const Prefix& prefix, PrefixStyle style);

/// Convert a dotted netmask to a prefix length; fails if non-contiguous.
Result<int> NetmaskToLength(IpAddress mask);

}  // namespace netclust::net
