// libFuzzer target: the differential round-trip property — any accepted
// input re-serializes via WriteMrt/WriteMrtV1/WriteSnapshotText and
// re-parses to an identical Snapshot (see harness.h).
#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  netclust::fuzz::FuzzRoundtrip(data, size);
  return 0;
}
