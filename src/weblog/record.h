// Web server log records.
//
// Two representations: LogRecord is the parsed, string-bearing form of one
// Common Log Format line; ServerLog (log.h) holds millions of requests
// compactly with interned URLs and User-Agents, which is what the paper's
// logs require (the Nagano log alone is 11.6M requests).
#pragma once

#include <cstdint>
#include <string>

#include "net/ip_address.h"

namespace netclust::weblog {

enum class Method : std::uint8_t { kGet, kHead, kPost, kOther };

/// One parsed log line.
struct LogRecord {
  net::IpAddress client;
  std::int64_t timestamp = 0;  // seconds since epoch
  Method method = Method::kGet;
  std::string url;
  int status = 200;
  std::uint64_t response_bytes = 0;
  std::string user_agent;  // empty when the log is plain CLF

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

}  // namespace netclust::weblog
