// Path-compressed radix (Patricia) trie for longest-prefix match.
//
// Interior chains with a single descendant are collapsed into one node
// labelled by its full prefix, so lookups touch O(distinct branch points)
// nodes instead of O(32). This is the production LPM structure used by
// PrefixTable; BinaryTrie is the uncompressed reference.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/ip_address.h"
#include "net/prefix.h"
#include "trie/bit_ops.h"

namespace netclust::trie {

template <typename T>
class PatriciaTrie {
 public:
  struct Match {
    net::Prefix prefix;
    const T* value;
  };

  PatriciaTrie() : root_(std::make_unique<Node>(net::Prefix{})) {}

  /// Deep copy. Snapshot-based consumers (the RCU-published PrefixTable of
  /// the real-time engine) clone the trie, mutate the clone, and publish it
  /// as an immutable snapshot while readers keep using the original.
  PatriciaTrie(const PatriciaTrie& other)
      : root_(CloneRec(other.root_.get())), size_(other.size_) {}
  PatriciaTrie& operator=(const PatriciaTrie& other) {
    if (this != &other) {
      root_ = CloneRec(other.root_.get());
      size_ = other.size_;
    }
    return *this;
  }
  PatriciaTrie(PatriciaTrie&&) noexcept = default;
  PatriciaTrie& operator=(PatriciaTrie&&) noexcept = default;

  /// Inserts or overwrites the entry at `prefix`. Returns true if new.
  bool Insert(const net::Prefix& prefix, T value) {
    Node* node = root_.get();
    while (true) {
      if (node->prefix == prefix) {
        const bool inserted = !node->value.has_value();
        node->value = std::move(value);
        if (inserted) ++size_;
        return inserted;
      }
      assert(node->prefix.Contains(prefix));
      const int bit = BitAt(prefix.network(), node->prefix.length());
      auto& slot = node->children[bit];
      if (!slot) {
        slot = std::make_unique<Node>(prefix);
        slot->value = std::move(value);
        ++size_;
        return true;
      }
      if (slot->prefix.Contains(prefix)) {
        node = slot.get();
        continue;
      }
      if (prefix.Contains(slot->prefix)) {
        // New entry sits on the path to the existing child: splice it in.
        auto inserted_node = std::make_unique<Node>(prefix);
        inserted_node->value = std::move(value);
        const int child_bit =
            BitAt(slot->prefix.network(), prefix.length());
        inserted_node->children[child_bit] = std::move(slot);
        slot = std::move(inserted_node);
        ++size_;
        return true;
      }
      // Diverging branches: split at the longest common prefix.
      const int common_bits =
          CommonPrefixLength(prefix.network().bits(),
                             slot->prefix.network().bits());
      const int fork_len =
          std::min({common_bits, prefix.length(), slot->prefix.length()});
      assert(fork_len > node->prefix.length());
      auto fork = std::make_unique<Node>(
          net::Prefix(prefix.network(), fork_len));
      auto new_leaf = std::make_unique<Node>(prefix);
      new_leaf->value = std::move(value);
      const int old_bit = BitAt(slot->prefix.network(), fork_len);
      fork->children[old_bit] = std::move(slot);
      fork->children[1 - old_bit] = std::move(new_leaf);
      slot = std::move(fork);
      ++size_;
      return true;
    }
  }

  /// Removes the entry at exactly `prefix`. Returns true if it existed.
  /// Structural (valueless) nodes left with a single child are re-collapsed
  /// so the path-compression invariant is preserved.
  bool Remove(const net::Prefix& prefix) {
    return RemoveRec(root_.get(), prefix);
  }

  /// Value stored at exactly `prefix`, if any.
  [[nodiscard]] const T* Find(const net::Prefix& prefix) const {
    const Node* node = root_.get();
    while (node != nullptr && node->prefix.Contains(prefix)) {
      if (node->prefix == prefix) {
        return node->value.has_value() ? &*node->value : nullptr;
      }
      node =
          node->children[BitAt(prefix.network(), node->prefix.length())].get();
    }
    return nullptr;
  }

  /// Longest-prefix match for `address`.
  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const {
    std::optional<Match> best;
    const Node* node = root_.get();
    while (node != nullptr && node->prefix.Contains(address)) {
      if (node->value.has_value()) {
        best = Match{node->prefix, &*node->value};
      }
      if (node->prefix.length() == 32) break;
      node = node->children[BitAt(address, node->prefix.length())].get();
    }
    return best;
  }

  /// All matching entries for `address`, shortest prefix first.
  void AllMatches(net::IpAddress address,
                  const std::function<void(const net::Prefix&, const T&)>&
                      visit) const {
    const Node* node = root_.get();
    while (node != nullptr && node->prefix.Contains(address)) {
      if (node->value.has_value()) visit(node->prefix, *node->value);
      if (node->prefix.length() == 32) break;
      node = node->children[BitAt(address, node->prefix.length())].get();
    }
  }

  /// In-order traversal of all entries (ascending network, then length).
  void Visit(const std::function<void(const net::Prefix&, const T&)>& visit)
      const {
    VisitRec(root_.get(), visit);
  }

  /// Traversal restricted to entries contained in `range` (including an
  /// entry at exactly `range`). Descends the branch covering `range`, then
  /// visits the subtree — O(depth + entries under range), which is what
  /// makes per-/16 delta repaints cheap on a large table.
  void VisitUnder(const net::Prefix& range,
                  const std::function<void(const net::Prefix&, const T&)>&
                      visit) const {
    const Node* node = root_.get();
    while (node != nullptr) {
      if (range.Contains(node->prefix)) {
        // Children's prefixes extend their parent's (the insert
        // invariant), so the whole subtree is inside `range`.
        VisitRec(node, visit);
        return;
      }
      if (!node->prefix.Contains(range)) return;  // disjoint branch
      node = node->children[BitAt(range.network(), node->prefix.length())]
                 .get();
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t node_count() const { return CountRec(root_.get()); }

 private:
  struct Node {
    explicit Node(net::Prefix p) : prefix(p) {}
    net::Prefix prefix;
    std::optional<T> value;
    std::unique_ptr<Node> children[2];
  };

  bool RemoveRec(Node* node, const net::Prefix& prefix) {
    if (node->prefix == prefix) {
      if (!node->value.has_value()) return false;
      node->value.reset();
      --size_;
      return true;
    }
    const int bit = BitAt(prefix.network(), node->prefix.length());
    auto& slot = node->children[bit];
    if (!slot || !slot->prefix.Contains(prefix)) return false;
    if (!RemoveRec(slot.get(), prefix)) return false;
    Compact(slot);
    return true;
  }

  // Restores the compression invariant at `slot` after a removal below it:
  // a valueless node with zero children disappears; with one child it is
  // replaced by that child (never the root, whose prefix is fixed at 0/0).
  static void Compact(std::unique_ptr<Node>& slot) {
    if (slot->value.has_value()) return;
    const bool has0 = slot->children[0] != nullptr;
    const bool has1 = slot->children[1] != nullptr;
    if (has0 && has1) return;
    if (!has0 && !has1) {
      slot.reset();
    } else {
      slot = std::move(slot->children[has0 ? 0 : 1]);
    }
  }

  void VisitRec(const Node* node,
                const std::function<void(const net::Prefix&, const T&)>&
                    visit) const {
    if (node == nullptr) return;
    if (node->value.has_value()) visit(node->prefix, *node->value);
    VisitRec(node->children[0].get(), visit);
    VisitRec(node->children[1].get(), visit);
  }

  static std::unique_ptr<Node> CloneRec(const Node* node) {
    if (node == nullptr) return nullptr;
    auto copy = std::make_unique<Node>(node->prefix);
    copy->value = node->value;
    copy->children[0] = CloneRec(node->children[0].get());
    copy->children[1] = CloneRec(node->children[1].get());
    return copy;
  }

  std::size_t CountRec(const Node* node) const {
    if (node == nullptr) return 0;
    return 1 + CountRec(node->children[0].get()) +
           CountRec(node->children[1].get());
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace netclust::trie
