// One shard of the concurrent clustering engine.
//
// A shard owns the assignment state for the clients hashed to it and a
// worker thread that consumes the shard's SPSC ring. Two event kinds flow
// through the ring, in ingest order:
//   * requests — resolved against the worker-local table snapshot and
//     accounted exactly as core::AssignmentState::Observe;
//   * table swaps — the worker adopts the new RCU-published snapshot and
//     re-resolves only the clients under the delta's changed prefixes.
// Because the ring preserves the ingest thread's order, each shard sees
// the global event sequence restricted to (its clients + all routing
// events) — which is what makes the merged Snapshot() bit-identical to a
// sequential replay.
//
// Threading contract (machine-checked on Clang, see base/sync.h):
//   * Push/TryPush/pushed() require the ring's producer role — the one
//     ingest thread;
//   * state()/table() require the consumer role — held by the worker
//     thread, and transferable to the ingest thread at a quiescent point
//     (Engine::Drain() publishes the worker's writes via the release
//     store of processed_, so asserting the role there is sound);
//   * the blocking-backpressure path spins briefly, then parks on an
//     annotated Mutex/CondVar pair instead of burning a core; the wakeup
//     is advisory (timed wait), so a lost notify costs one wait slice,
//     never a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "base/sync.h"
#include "bgp/table_handle.h"
#include "core/assignment.h"
#include "engine/metrics.h"
#include "engine/spsc_ring.h"
#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::engine {

/// One published routing change: the new immutable snapshot plus the
/// effective prefix delta, so workers re-resolve only affected clients.
struct TableDelta {
  bgp::TableHandle table;
  std::vector<net::Prefix> withdrawn;  // actually removed
  std::vector<net::Prefix> announced;  // genuinely new (refreshes excluded)
};

/// One ring slot.
struct Event {
  enum class Kind : std::uint8_t { kRequest, kSwap };
  Kind kind = Kind::kRequest;
  net::IpAddress client;
  std::uint32_t url_id = 0;
  std::uint32_t bytes = 0;
  std::int64_t timestamp = 0;
  std::shared_ptr<const TableDelta> delta;  // kSwap only
};

class ShardWorker {
 public:
  ShardWorker(std::size_t ring_capacity, bgp::TableHandle initial_table,
              EngineMetrics* metrics)
      : ring_(ring_capacity),
        table_(std::move(initial_table)),
        metrics_(metrics) {}

  ~ShardWorker() { Stop(); }
  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  void Start() {
    if (thread_.joinable()) return;
    // order: relaxed — the std::thread constructor below synchronizes-with
    // the new thread's start, which orders this store before any load in
    // Run().
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { Run(); });
  }

  /// Lets the worker drain the ring, then joins it. The producer must have
  /// stopped pushing.
  void Stop() {
    if (!thread_.joinable()) return;
    // order: relaxed — stop_ is a pure control flag carrying no payload;
    // all data the worker reads travels through the ring's release/acquire
    // protocol, and join() below gives the full happens-before edge back.
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

  // --- producer side (engine ingest thread only) ---

  /// Non-blocking enqueue; false when the ring is full.
  [[nodiscard]] bool TryPush(Event event) REQUIRES(ring_.producer_role()) {
    if (!ring_.TryPush(std::move(event))) return false;
    ++pushed_;
    return true;
  }

  /// Blocking enqueue: spins briefly, then parks on the backpressure
  /// condvar until the worker frees a slot. The notify is advisory — the
  /// timed wait re-polls, so the slow path is stall-bounded by
  /// kBackpressureWaitSlice even if a wakeup is lost.
  void Push(Event event) REQUIRES(ring_.producer_role()) {
    for (int spin = 0; spin < kPushSpinIterations; ++spin) {
      if (ring_.TryPush(std::move(event))) {
        ++pushed_;
        return;
      }
      std::this_thread::yield();
    }
    {
      base::MutexLock lock(&backpressure_mu_);
      for (;;) {
        if (ring_.TryPush(std::move(event))) break;
        // order: relaxed — the flag is advisory (it only gates whether the
        // consumer bothers to notify); the timed wait below bounds the
        // stall if the consumer's read races past this store.
        producer_waiting_.store(true, std::memory_order_relaxed);
        // Re-check after raising the flag: a pop that completed between
        // the failed TryPush and the store would otherwise strand us for
        // a full wait slice.
        if (ring_.TryPush(std::move(event))) break;
        ring_not_full_.WaitFor(backpressure_mu_, kBackpressureWaitSlice);
      }
      // order: relaxed — see above; stale true costs one spurious notify.
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    ++pushed_;
  }

  /// Events successfully enqueued (producer-thread view).
  [[nodiscard]] std::uint64_t pushed() const
      REQUIRES(ring_.producer_role()) {
    return pushed_;
  }
  /// Events fully applied by the worker. Safe from any thread.
  [[nodiscard]] std::uint64_t processed() const {
    // order: acquire — pairs with the worker's release increment; once the
    // caller observes processed() == pushed(), every effect of those
    // events (state_, table_) is visible, which is what makes the
    // role handover in Engine::Drain()/Snapshot() sound.
    return processed_.load(std::memory_order_acquire);
  }

  /// The shard's assignment state. Requires the consumer role: held by the
  /// worker thread, or assumed by the ingest thread at a quiescent point
  /// (processed() == pushed() and no pushes in flight — Engine::Drain()
  /// establishes one).
  [[nodiscard]] const core::AssignmentState& state() const
      REQUIRES(ring_.consumer_role()) {
    return state_;
  }

  /// The worker-local table snapshot (same quiescence contract).
  [[nodiscard]] const bgp::TableHandle& table() const
      REQUIRES(ring_.consumer_role()) {
    return table_;
  }

  /// The ring's producer-side role (the single ingest thread).
  [[nodiscard]] const base::ThreadRole& producer_role() const
      RETURN_CAPABILITY(ring_.producer_role()) {
    return ring_.producer_role();
  }
  /// The ring's consumer-side role (the worker thread, or a quiesced
  /// caller — see state()).
  [[nodiscard]] const base::ThreadRole& consumer_role() const
      RETURN_CAPABILITY(ring_.consumer_role()) {
    return ring_.consumer_role();
  }

 private:
  static constexpr int kPushSpinIterations = 256;
  static constexpr std::chrono::milliseconds kBackpressureWaitSlice{1};

  void Run() {
    // The worker thread is the ring's one consumer for its whole lifetime.
    base::AssumeThreadRole consumer(ring_.consumer_role());
    Event event;
    while (true) {
      if (ring_.TryPop(event)) {
        Apply(event);
        // order: release — pairs with the acquire in processed(); publishes
        // the Apply() effects (state_, table_) together with the count, so
        // a quiesced reader that sees the count sees the state.
        processed_.fetch_add(1, std::memory_order_release);
        MaybeWakeProducer();
        continue;
      }
      // order: relaxed — control flag only; see Stop().
      if (stop_.load(std::memory_order_relaxed)) break;
      std::this_thread::yield();
    }
  }

  void Apply(Event& event) REQUIRES(ring_.consumer_role()) {
    const std::uint64_t start = NowNs();
    if (event.kind == Event::Kind::kRequest) {
      state_.Observe(event.client, event.url_id, event.bytes, *table_);
      metrics_->requests_processed.Inc();
      metrics_->lookup_ns.Record(NowNs() - start);
      return;
    }
    // Table swap: adopt the new snapshot, then re-resolve exactly the
    // clients under changed prefixes (withdrawals first, like
    // StreamingClusterer::ApplyUpdate).
    table_ = event.delta->table;
    std::size_t moved = 0;
    for (const net::Prefix& prefix : event.delta->withdrawn) {
      moved += state_.OnWithdrawn(prefix, *table_);
    }
    for (const net::Prefix& prefix : event.delta->announced) {
      moved += state_.OnAnnounced(prefix, *table_);
    }
    if (moved > 0) metrics_->reassignments.Inc(moved);
    metrics_->swap_apply_ns.Record(NowNs() - start);
  }

  /// Nudges a producer parked in Push(). Taking the mutex before the
  /// notify closes the set-flag/park race; the common (no waiter) case is
  /// one relaxed load.
  void MaybeWakeProducer() {
    // order: relaxed — advisory flag; a missed true is repaired by the
    // producer's timed wait, a stale true costs one uncontended lock.
    if (!producer_waiting_.load(std::memory_order_relaxed)) return;
    base::MutexLock lock(&backpressure_mu_);
    ring_not_full_.NotifyOne();
  }

  SpscRing<Event> ring_;
  bgp::TableHandle table_
      ONLY_THREAD(ring_.consumer_role());  // replaced on swap events
  core::AssignmentState state_
      ONLY_THREAD(ring_.consumer_role());  // this shard's clients only
  EngineMetrics* metrics_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::uint64_t pushed_ ONLY_THREAD(ring_.producer_role()) = 0;
  alignas(64) std::atomic<std::uint64_t> processed_{0};
  // Blocking-backpressure parking lot (slow path of Push() only).
  base::Mutex backpressure_mu_;
  base::CondVar ring_not_full_;
  std::atomic<bool> producer_waiting_{false};
};

}  // namespace netclust::engine
