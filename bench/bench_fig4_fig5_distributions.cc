// Figures 4 and 5: per-cluster distributions of clients, requests and
// unique URLs for the Nagano log, plotted against cluster rank — Figure 4
// ranks by number of clients, Figure 5 by number of requests.
//
// Paper observations reproduced here: large clusters usually issue more
// requests, but some small clusters issue ~1% of all requests and touch
// ~20% of all URLs (suspected spiders/proxies); busiest clusters are
// mostly big, yet a few busy clusters have very few clients.
#include <cstdio>

#include "bench_common.h"
#include "core/cluster.h"
#include "core/metrics.h"

namespace {

using namespace netclust;

void PrintRanked(const core::Clustering& clustering,
                 const std::vector<std::size_t>& order, const char* figure) {
  std::vector<std::pair<double, double>> clients;
  std::vector<std::pair<double, double>> requests;
  std::vector<std::pair<double, double>> urls;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const core::Cluster& cluster = clustering.clusters[order[rank]];
    const double x = static_cast<double>(rank + 1);
    clients.emplace_back(x, static_cast<double>(cluster.members.size()));
    requests.emplace_back(x, static_cast<double>(cluster.requests));
    urls.emplace_back(x, static_cast<double>(cluster.unique_urls));
  }
  std::string tag = figure;
  bench::PrintSeries(tag + "(a-equivalent): clients per cluster",
                     "cluster rank", "clients", clients);
  bench::PrintSeries(tag + "(b-equivalent): requests per cluster",
                     "cluster rank", "requests", requests);
  bench::PrintSeries(tag + "(c-equivalent): unique URLs per cluster",
                     "cluster rank", "unique URLs", urls);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figures 4 & 5 — Nagano cluster distributions by rank",
      "small clusters can issue ~1% of requests / touch ~20% of URLs; "
      "busy clusters mostly big, a few have very few clients");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const core::Clustering clustering =
      core::ClusterNetworkAware(generated.log, scenario.table);

  std::printf("\n=== Figure 4: ranked by NUMBER OF CLIENTS ===\n");
  PrintRanked(clustering, core::OrderByClients(clustering), "Fig 4");
  std::printf("\n=== Figure 5: ranked by NUMBER OF REQUESTS ===\n");
  PrintRanked(clustering, core::OrderByRequests(clustering), "Fig 5");

  // The paper's "unusual cluster" observation: among the half of clusters
  // with the fewest clients, find the largest request and URL shares.
  const auto by_clients = core::OrderByClients(clustering);
  std::uint64_t max_small_requests = 0;
  std::uint64_t max_small_urls = 0;
  for (std::size_t rank = by_clients.size() / 2; rank < by_clients.size();
       ++rank) {
    const core::Cluster& cluster = clustering.clusters[by_clients[rank]];
    max_small_requests = std::max(max_small_requests, cluster.requests);
    max_small_urls = std::max(max_small_urls, cluster.unique_urls);
  }
  std::printf(
      "\nsmall-cluster extremes: a bottom-half cluster issues %.2f%% of all "
      "requests (paper: ~1%%) and touches %.1f%% of all URLs (paper: ~20%%)\n",
      100.0 * static_cast<double>(max_small_requests) /
          static_cast<double>(clustering.total_requests),
      100.0 * static_cast<double>(max_small_urls) /
          static_cast<double>(generated.log.unique_urls()));
  return 0;
}
