#include "bgp/mrt.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace netclust::bgp {
namespace {

SnapshotInfo Info() {
  return SnapshotInfo{"OREGON", "12/7/1999", SourceKind::kBgpTable, ""};
}

Snapshot SampleSnapshot() {
  Snapshot snapshot;
  snapshot.info = Info();
  const struct {
    const char* prefix;
    std::vector<AsNumber> path;
  } rows[] = {
      {"6.0.0.0/8", {7170, 1455}},
      {"12.0.48.0/20", {1742}},
      {"12.6.208.0/20", {1742}},
      {"18.0.0.0/8", {3}},
      {"24.48.2.0/23", {7018, 6461, 11456}},
      {"151.198.194.16/28", {4969}},
      {"0.0.0.0/0", {}},
      {"192.0.2.1/32", {64512}},
  };
  for (const auto& row : rows) {
    RouteEntry entry;
    entry.prefix = net::Prefix::Parse(row.prefix).value();
    entry.next_hop = net::IpAddress(198, 32, 8, 1);
    entry.as_path = row.path;
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

TEST(Mrt, RoundTripPreservesPrefixesPathsAndNextHops) {
  const Snapshot original = SampleSnapshot();
  const std::vector<std::uint8_t> bytes = WriteMrt(original, 944524800);

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();

  EXPECT_EQ(stats.records, original.entries.size() + 1);  // + peer index
  EXPECT_EQ(stats.rib_records, original.entries.size());
  EXPECT_EQ(stats.peers, 1u);
  EXPECT_EQ(stats.skipped_records, 0u);

  ASSERT_EQ(decoded.value().entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(decoded.value().entries[i].prefix, original.entries[i].prefix);
    EXPECT_EQ(decoded.value().entries[i].as_path,
              original.entries[i].as_path);
    EXPECT_EQ(decoded.value().entries[i].next_hop,
              original.entries[i].next_hop);
  }
}

TEST(Mrt, EmptySnapshotRoundTrips) {
  Snapshot empty;
  empty.info = Info();
  const auto bytes = WriteMrt(empty, 0);
  const auto decoded = ReadMrt(bytes, Info());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().entries.empty());
}

TEST(Mrt, RejectsTruncatedHeader) {
  auto bytes = WriteMrt(SampleSnapshot(), 1);
  bytes.resize(6);  // mid-header
  EXPECT_FALSE(ReadMrt(bytes, Info()).ok());
}

TEST(Mrt, RejectsTruncatedBody) {
  auto bytes = WriteMrt(SampleSnapshot(), 1);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(ReadMrt(bytes, Info()).ok());
}

TEST(Mrt, RejectsRibBeforePeerIndex) {
  const auto full = WriteMrt(SampleSnapshot(), 1);
  // Locate the end of the first record (the PEER_INDEX_TABLE) and strip it.
  const std::size_t first_len = (std::size_t{full[8]} << 24) |
                                (std::size_t{full[9]} << 16) |
                                (std::size_t{full[10]} << 8) |
                                std::size_t{full[11]};
  const std::vector<std::uint8_t> without_index(
      full.begin() + static_cast<std::ptrdiff_t>(12 + first_len), full.end());
  const auto decoded = ReadMrt(without_index, Info());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().find("PEER_INDEX_TABLE"), std::string::npos);
}

TEST(Mrt, SkipsForeignRecordTypes) {
  // Splice a bogus record (type 42) between valid ones; decoding must skip
  // it and still return every RIB entry.
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrt(original, 1);
  std::vector<std::uint8_t> foreign = {0, 0, 0, 1, 0, 42, 0,
                                       0, 0, 0, 0, 4, 9, 9, 9, 9};
  bytes.insert(bytes.end(), foreign.begin(), foreign.end());

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(stats.skipped_records, 1u);
  EXPECT_EQ(decoded.value().entries.size(), original.entries.size());
}

TEST(MrtV1, RoundTripsThroughTableDump) {
  const Snapshot original = SampleSnapshot();
  const auto bytes = WriteMrtV1(original, 944524800);

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(stats.records, original.entries.size());  // no peer index in v1
  EXPECT_EQ(stats.rib_records, original.entries.size());
  ASSERT_EQ(decoded.value().entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(decoded.value().entries[i].prefix, original.entries[i].prefix);
    EXPECT_EQ(decoded.value().entries[i].next_hop,
              original.entries[i].next_hop);
    EXPECT_EQ(decoded.value().entries[i].as_path,
              original.entries[i].as_path);
  }
}

TEST(MrtV1, ClampsWideAsNumbers) {
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.0.0/8").value();
  entry.as_path = {70000};  // beyond 16 bits
  snapshot.entries.push_back(entry);

  const auto decoded = ReadMrt(WriteMrtV1(snapshot, 1), Info());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().entries[0].as_path.size(), 1u);
  EXPECT_EQ(decoded.value().entries[0].as_path[0], 23456u);  // AS_TRANS
}

TEST(MrtV1, MixedGenerationStreamParses) {
  // A v1 dump concatenated with a v2 dump: both decode into one snapshot.
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrtV1(original, 1);
  const auto v2 = WriteMrt(original, 2);
  bytes.insert(bytes.end(), v2.begin(), v2.end());

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().entries.size(), 2 * original.entries.size());
  EXPECT_EQ(stats.rib_records, 2 * original.entries.size());
}

TEST(MrtV1, RejectsTruncatedRecord) {
  auto bytes = WriteMrtV1(SampleSnapshot(), 1);
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(ReadMrt(bytes, Info()).ok());
}

TEST(Mrt, LongAsPathSplitsIntoSegmentsAndRoundTrips) {
  // AS_SEQUENCE carries a one-byte ASN count; paths past 255 hops must be
  // split across segments, not have their count byte truncated mod 256.
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.1.0/24").value();
  entry.next_hop = net::IpAddress(198, 32, 8, 1);
  for (std::uint32_t i = 0; i < 300; ++i) entry.as_path.push_back(i + 1);
  snapshot.entries.push_back(entry);

  for (const bool wide : {true, false}) {
    MrtWriteStats wstats;
    const auto bytes = wide ? WriteMrt(snapshot, 1, &wstats)
                            : WriteMrtV1(snapshot, 1, &wstats);
    EXPECT_EQ(wstats.clamped_as_paths, 0u);
    const auto decoded = ReadMrt(bytes, Info());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    ASSERT_EQ(decoded.value().entries.size(), 1u);
    EXPECT_EQ(decoded.value().entries[0].as_path, entry.as_path);
  }
}

TEST(Mrt, OverlongViewNameIsClampedNotTruncatedSilently) {
  Snapshot snapshot;
  snapshot.info = Info();
  snapshot.info.name.assign(0x10000 + 50, 'v');  // beyond the 16-bit field
  MrtWriteStats wstats;
  const auto bytes = WriteMrt(snapshot, 1, &wstats);
  EXPECT_EQ(wstats.clamped_view_names, 1u);
  EXPECT_TRUE(ReadMrt(bytes, Info()).ok());
}

TEST(Mrt, AbsurdAsPathClampsWithAccounting) {
  // Even segment splitting cannot fit ~20k hops in a 16-bit attribute
  // block; the writer must clamp and account rather than emit garbage.
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.0.0/8").value();
  for (std::uint32_t i = 0; i < 20000; ++i) entry.as_path.push_back(i + 1);
  snapshot.entries.push_back(entry);

  MrtWriteStats wstats;
  const auto bytes = WriteMrt(snapshot, 1, &wstats);
  EXPECT_EQ(wstats.clamped_as_paths, 1u);
  const auto decoded = ReadMrt(bytes, Info());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  const auto& path = decoded.value().entries[0].as_path;
  ASSERT_FALSE(path.empty());
  EXPECT_LT(path.size(), entry.as_path.size());
  // What survives is a prefix of the original path.
  EXPECT_TRUE(std::equal(path.begin(), path.end(), entry.as_path.begin()));
}

TEST(Mrt, RejectsCorruptPrefixLength) {
  auto bytes = WriteMrt(SampleSnapshot(), 1);
  // The first RIB record's prefix-length byte sits after the peer index
  // record and the 12-byte header + 4-byte sequence number.
  const std::size_t peer_len = (std::size_t{bytes[8]} << 24) |
                               (std::size_t{bytes[9]} << 16) |
                               (std::size_t{bytes[10]} << 8) |
                               std::size_t{bytes[11]};
  const std::size_t rib_prefix_len_at = 12 + peer_len + 12 + 4;
  bytes[rib_prefix_len_at] = 200;  // > 32
  EXPECT_FALSE(ReadMrt(bytes, Info()).ok());
}

}  // namespace
}  // namespace netclust::bgp
