# Empty compiler generated dependencies file for netclust_bgp.
# This may be replaced when dependencies are built.
