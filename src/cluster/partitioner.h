// Routing-aware partitioning of the IPv4 address space across a netclustd
// fleet (ROADMAP item 2; scheme after Gürsun's routing-aware partitioning,
// PAPERS.md).
//
// The unit of ownership is the /16 block (proto.h kShardBlockCount of
// them). Each block's BASE owner comes from rendezvous (highest-random-
// weight) hashing over (block, node id): every node scores every block and
// the highest score wins, so a node join or leave only moves the blocks
// that node wins or held — the consistent-hashing property, with no ring
// or virtual-node bookkeeping.
//
// Routing-awareness is an alignment pass on top: a BGP prefix SHORTER than
// /16 spans multiple blocks, and the paper's network-aware clusters must
// never straddle a shard edge — a longest-prefix match answered by a node
// that owns only part of the covering prefix could disagree with the
// oracle. BuildTopology therefore paints every block under such a prefix
// with one owner (the base owner of the prefix's first block), shortest
// prefixes first so more-specific routes repaint their narrower span last.
// Prefixes /16 and longer already live inside one block and need no work.
//
// Rebalance keeps the same invariants with minimal movement: on leave,
// only the departed node's ranges move (each re-scored among survivors as
// one unit, preserving alignment); on join, a range moves only if the new
// node out-scores its current owner for the range's first block. Every
// rebalance bumps the epoch by one.
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix.h"
#include "net/result.h"
#include "server/proto.h"

namespace netclust::cluster {

/// Rendezvous weight of `node_id` for /16 block `block` — a SplitMix64
/// finalizer over the pair, uniform and stable across builds.
[[nodiscard]] std::uint64_t RendezvousScore(std::uint32_t block,
                                            std::uint32_t node_id);

/// The rendezvous winner for `block` among `nodes` (index into `nodes`).
/// `nodes` must be non-empty.
[[nodiscard]] std::uint16_t BaseOwner(
    const std::vector<server::NodeInfo>& nodes, std::uint32_t block);

/// Builds an epoch-`epoch` topology over `nodes` (ids must be unique;
/// sorted internally into canonical strictly-increasing order), aligned so
/// that no prefix in `prefixes` straddles a shard boundary.
[[nodiscard]] Result<server::Topology> BuildTopology(
    std::uint64_t epoch, std::vector<server::NodeInfo> nodes,
    const std::vector<net::Prefix>& prefixes);

/// Topology after `node_id` leaves: its ranges re-score among the
/// survivors, everything else stays put, epoch advances by one. Fails if
/// the node is absent or the last member.
[[nodiscard]] Result<server::Topology> RebalanceAfterLeave(
    const server::Topology& topo, std::uint32_t node_id);

/// Topology after `node` joins: a range moves to the new node exactly when
/// it wins the rendezvous for the range's first block, epoch advances by
/// one. Fails if the id is already a member or the fleet is full.
[[nodiscard]] Result<server::Topology> RebalanceAfterJoin(
    const server::Topology& topo, const server::NodeInfo& node);

/// Fraction of the block space whose owner differs between two topologies
/// (for movement bounds in tests). Both must be valid.
[[nodiscard]] double MovedBlockFraction(const server::Topology& before,
                                        const server::Topology& after);

}  // namespace netclust::cluster
