#include "core/self_correct.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "trie/bit_ops.h"

namespace netclust::core {
namespace {

// Joined last-`hops` router names of a path; the cluster-identity signal.
std::string PathSuffix(const std::vector<std::string>& path, int hops) {
  std::string suffix;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(hops), path.size());
  for (std::size_t i = path.size() - take; i < path.size(); ++i) {
    if (!suffix.empty()) suffix.push_back('|');
    suffix += path[i];
  }
  return suffix;
}

// Smallest prefix covering all of `addresses` — the recomputed cluster key
// after a merge/split ("the network prefix and netmask will be recomputed
// accordingly").
net::Prefix CommonPrefix(const std::vector<net::IpAddress>& addresses) {
  if (addresses.empty()) return net::Prefix{};
  int length = 32;
  const std::uint32_t first = addresses.front().bits();
  for (const net::IpAddress address : addresses) {
    length = std::min(length,
                      trie::CommonPrefixLength(first, address.bits()));
  }
  return net::Prefix(addresses.front(), length);
}

struct WorkingCluster {
  std::vector<std::uint32_t> members;
  std::string suffix;  // representative path suffix (majority of samples)
};

}  // namespace

std::pair<Clustering, SelfCorrectionReport> SelfCorrect(
    const Clustering& clustering, const PathOracle& oracle,
    const SelfCorrectionConfig& config) {
  SelfCorrectionReport report;
  report.clusters_before = clustering.cluster_count();

  std::size_t probes = 0;
  double seconds = 0.0;
  const auto trace = [&](net::IpAddress address) {
    TraceObservation observation = oracle.Trace(address);
    probes += static_cast<std::size_t>(observation.probes_sent);
    seconds += observation.seconds;
    return observation;
  };

  std::vector<WorkingCluster> working;

  // Pass 1: sample each cluster; split the inconsistent ones.
  for (const Cluster& cluster : clustering.clusters) {
    const auto sample_count = std::min<std::size_t>(
        static_cast<std::size_t>(config.samples_per_cluster),
        cluster.members.size());
    // Spread samples across the member list (front is first-seen, back is
    // latest) so one busy corner can't hide a split.
    std::vector<std::string> suffixes;
    suffixes.reserve(sample_count);
    bool inconsistent = false;
    for (std::size_t s = 0; s < sample_count; ++s) {
      const std::size_t pick =
          s * (cluster.members.size() - 1) /
          std::max<std::size_t>(1, sample_count - 1);
      const auto observation =
          trace(clustering.clients[cluster.members[pick]].address);
      suffixes.push_back(PathSuffix(observation.path, config.suffix_hops));
      if (suffixes.back() != suffixes.front()) inconsistent = true;
    }

    if (!inconsistent) {
      working.push_back(
          WorkingCluster{cluster.members,
                         suffixes.empty() ? std::string{} : suffixes.front()});
      continue;
    }

    // Too-large cluster: trace every member and partition by suffix.
    std::map<std::string, std::vector<std::uint32_t>> groups;
    for (const std::uint32_t member : cluster.members) {
      const auto observation =
          trace(clustering.clients[member].address);
      groups[PathSuffix(observation.path, config.suffix_hops)]
          .push_back(member);
    }
    report.splits += 1;
    for (auto& [suffix, members] : groups) {
      working.push_back(WorkingCluster{std::move(members), suffix});
    }
  }

  // Pass 2: adopt unclustered clients as suffix-keyed singletons.
  std::map<std::string, std::vector<std::uint32_t>> orphans;
  for (const std::uint32_t member : clustering.unclustered) {
    const auto observation = trace(clustering.clients[member].address);
    const std::string suffix =
        PathSuffix(observation.path, config.suffix_hops);
    if (observation.path.empty()) continue;  // truly unreachable
    orphans[suffix].push_back(member);
    ++report.adopted;
  }
  for (auto& [suffix, members] : orphans) {
    working.push_back(WorkingCluster{std::move(members), suffix});
  }

  // Pass 3: merge clusters sharing a path suffix ("more than one cluster
  // which belongs to the same network").
  std::unordered_map<std::string, std::size_t> by_suffix;
  std::vector<WorkingCluster> merged;
  for (WorkingCluster& cluster : working) {
    if (cluster.suffix.empty()) {
      merged.push_back(std::move(cluster));
      continue;
    }
    const auto [it, inserted] =
        by_suffix.emplace(cluster.suffix, merged.size());
    if (inserted) {
      merged.push_back(std::move(cluster));
    } else {
      auto& target = merged[it->second].members;
      target.insert(target.end(), cluster.members.begin(),
                    cluster.members.end());
      report.merges += 1;
    }
  }

  // Rebuild the clustering.
  Clustering corrected;
  corrected.approach = clustering.approach + "+self-corrected";
  corrected.log_name = clustering.log_name;
  corrected.clients = clustering.clients;
  corrected.total_requests = clustering.total_requests;
  for (const WorkingCluster& cluster : merged) {
    Cluster out;
    std::vector<net::IpAddress> addresses;
    addresses.reserve(cluster.members.size());
    for (const std::uint32_t member : cluster.members) {
      addresses.push_back(clustering.clients[member].address);
      out.requests += clustering.clients[member].requests;
      out.bytes += clustering.clients[member].bytes;
    }
    out.key = CommonPrefix(addresses);
    out.members = cluster.members;
    corrected.clusters.push_back(std::move(out));
  }

  report.clusters_after = corrected.cluster_count();
  report.probes = probes;
  report.seconds = seconds;
  return {std::move(corrected), report};
}

}  // namespace netclust::core
