// Unit tests for the netclustd wire protocol (src/server/proto.h): frame
// layout, the incremental stream decoder, and every payload codec's
// round-trip + strictness properties. The fuzz harness (FuzzProto)
// enforces the same invariants over arbitrary bytes; these tests pin the
// concrete byte layouts and the specific rejection reasons.
#include "server/proto.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bgp/update.h"
#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::server {
namespace {

using net::IpAddress;
using net::Prefix;

Prefix P(const char* text) { return Prefix::Parse(text).value(); }

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(ProtoPrimitives, BigEndianRoundTrip) {
  std::vector<std::uint8_t> buf;
  PutU16(&buf, 0x4E43);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 14u);
  EXPECT_EQ(GetU16(buf.data()), 0x4E43);
  EXPECT_EQ(GetU32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(GetU64(buf.data() + 6), 0x0123456789ABCDEFull);
  // Network byte order on the wire: most significant byte first.
  EXPECT_EQ(buf[0], 0x4E);
  EXPECT_EQ(buf[1], 0x43);
  EXPECT_EQ(buf[2], 0xDE);
}

TEST(FrameCodec, EncodesTheDocumentedLayout) {
  const auto frame = EncodeFrame(Opcode::kPing, Bytes({0xAA, 0xBB}));
  EXPECT_EQ(frame, Bytes({0x4E, 0x43, 0x01, 0x01, 0, 0, 0, 2, 0xAA, 0xBB}));
}

TEST(FrameCodec, HeaderRoundTrips) {
  const auto frame = EncodeFrame(Opcode::kBatchLookup, Bytes({0, 0, 0, 0}));
  const auto header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok()) << header.error();
  EXPECT_EQ(header.value().version, kProtoVersion);
  EXPECT_EQ(header.value().opcode, Opcode::kBatchLookup);
  EXPECT_EQ(header.value().payload_size, 4u);
}

TEST(FrameCodec, RejectsBadHeaders) {
  auto frame = EncodeFrame(Opcode::kPing, {});
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), 7).ok()) << "truncated";

  auto bad_magic = frame;
  bad_magic[1] = 0x44;
  EXPECT_FALSE(DecodeFrameHeader(bad_magic.data(), bad_magic.size()).ok());

  auto bad_version = frame;
  bad_version[2] = 9;
  EXPECT_FALSE(DecodeFrameHeader(bad_version.data(), bad_version.size()).ok());

  auto bad_opcode = frame;
  bad_opcode[3] = 0x7F;
  EXPECT_FALSE(DecodeFrameHeader(bad_opcode.data(), bad_opcode.size()).ok());

  auto oversized = frame;
  oversized[4] = 0x7F;  // payload length 0x7F000000 > kMaxPayload
  EXPECT_FALSE(DecodeFrameHeader(oversized.data(), oversized.size()).ok());
}

TEST(FrameDecoderTest, ReassemblesFramesFedOneByteAtATime) {
  std::vector<std::uint8_t> stream =
      EncodeFrame(Opcode::kLookup, EncodeLookup({IpAddress(12, 65, 143, 222)}));
  const auto ping = EncodeFrame(Opcode::kPing, Bytes({0x01}));
  stream.insert(stream.end(), ping.begin(), ping.end());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok()) << next.error();
    if (next.value().has_value()) frames.push_back(*std::move(next).value());
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.opcode, Opcode::kLookup);
  EXPECT_EQ(frames[1].header.opcode, Opcode::kPing);
  EXPECT_EQ(frames[1].payload, Bytes({0x01}));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, DrainsMultipleFramesFromOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const auto frame = EncodeFrame(Opcode::kStats, {});
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  for (int i = 0; i < 3; ++i) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(next.value()->header.opcode, Opcode::kStats);
  }
  auto done = decoder.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done.value().has_value());
}

TEST(FrameDecoderTest, SurfacesProtocolViolations) {
  FrameDecoder decoder;
  const auto junk = Bytes({0xFF, 0xFF, 0, 0, 0, 0, 0, 0});
  decoder.Feed(junk.data(), junk.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(LookupCodec, RoundTripsAndRejectsWrongSize) {
  const LookupRequest req{IpAddress(198, 32, 8, 1)};
  const auto bytes = EncodeLookup(req);
  ASSERT_EQ(bytes.size(), 4u);
  const auto decoded = DecodeLookup(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), req);
  EXPECT_FALSE(DecodeLookup(bytes.data(), 3).ok());
}

TEST(BatchLookupCodec, RoundTripsIncludingEmpty) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{3}}) {
    BatchLookupRequest req;
    for (std::size_t i = 0; i < n; ++i) {
      req.addresses.emplace_back(static_cast<std::uint32_t>(0x0A000000 + i));
    }
    const auto bytes = EncodeBatchLookup(req);
    const auto decoded = DecodeBatchLookup(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), req);
  }
}

TEST(BatchLookupCodec, RejectsCountAndLengthDisagreement) {
  BatchLookupRequest req;
  req.addresses.emplace_back(std::uint32_t{1});
  auto bytes = EncodeBatchLookup(req);
  // Count claims 7 addresses, payload carries one.
  bytes[3] = 7;
  EXPECT_FALSE(DecodeBatchLookup(bytes.data(), bytes.size()).ok());
  // Count above the bound is rejected before any length math.
  std::vector<std::uint8_t> huge;
  PutU32(&huge, kMaxBatch + 1);
  EXPECT_FALSE(DecodeBatchLookup(huge.data(), huge.size()).ok());
}

TEST(IngestCodec, RoundTripsAnEmbeddedBgpUpdate) {
  IngestRequest req;
  req.source_id = 3;
  req.update.withdrawn = {P("192.0.2.0/24")};
  req.update.announced = {P("10.0.1.0/24"), P("151.198.192.0/18")};
  req.update.as_path = {7018, 1742};
  const auto bytes = EncodeIngest(req);
  const auto decoded = DecodeIngest(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().source_id, 3u);
  EXPECT_EQ(decoded.value().update.withdrawn, req.update.withdrawn);
  EXPECT_EQ(decoded.value().update.announced, req.update.announced);
}

TEST(IngestCodec, RejectsTrailingBytes) {
  IngestRequest req;
  req.update.announced = {P("10.0.0.0/8")};
  req.update.as_path = {65000};
  auto bytes = EncodeIngest(req);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeIngest(bytes.data(), bytes.size()).ok());
  EXPECT_FALSE(DecodeIngest(bytes.data(), 3).ok()) << "truncated";
}

TEST(LookupRecordCodec, RoundTripsFoundAndAbsent) {
  LookupRecord found;
  found.found = true;
  found.prefix = P("12.65.128.0/19");
  found.kind = bgp::SourceKind::kNetworkDump;
  found.origin_as = 7018;
  found.source_mask = 0x5;
  const auto bytes = EncodeLookupRecord(found);
  ASSERT_EQ(bytes.size(), kLookupRecordSize);
  const auto decoded = DecodeLookupRecord(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), found);

  const LookupRecord absent;
  const auto absent_bytes = EncodeLookupRecord(absent);
  EXPECT_EQ(absent_bytes, std::vector<std::uint8_t>(kLookupRecordSize, 0));
  const auto absent_decoded =
      DecodeLookupRecord(absent_bytes.data(), absent_bytes.size());
  ASSERT_TRUE(absent_decoded.ok());
  EXPECT_EQ(absent_decoded.value(), absent);
}

TEST(LookupRecordCodec, RejectsNonCanonicalForms) {
  std::vector<std::uint8_t> absent(kLookupRecordSize, 0);
  auto sneaky = absent;
  sneaky[8] = 0x1B;  // origin AS on an absent record
  EXPECT_FALSE(DecodeLookupRecord(sneaky.data(), sneaky.size()).ok());

  LookupRecord found;
  found.found = true;
  found.prefix = P("10.0.0.0/8");
  const auto bytes = EncodeLookupRecord(found);
  auto host_bits = bytes;
  host_bits[7] = 0x01;  // 10.0.0.1/8 — host bits below the mask
  EXPECT_FALSE(DecodeLookupRecord(host_bits.data(), host_bits.size()).ok());
  auto bad_kind = bytes;
  bad_kind[2] = 2;
  EXPECT_FALSE(DecodeLookupRecord(bad_kind.data(), bad_kind.size()).ok());
  auto bad_len = bytes;
  bad_len[1] = 33;
  EXPECT_FALSE(DecodeLookupRecord(bad_len.data(), bad_len.size()).ok());
  auto reserved = bytes;
  reserved[3] = 1;
  EXPECT_FALSE(DecodeLookupRecord(reserved.data(), reserved.size()).ok());
  auto bad_flag = bytes;
  bad_flag[0] = 2;
  EXPECT_FALSE(DecodeLookupRecord(bad_flag.data(), bad_flag.size()).ok());
  EXPECT_FALSE(DecodeLookupRecord(bytes.data(), 15).ok()) << "short";
}

TEST(LookupRecordCodec, ConvertsToAndFromEngineMatches) {
  EXPECT_EQ(LookupRecord::FromMatch(std::nullopt).ToMatch(), std::nullopt);
  const bgp::PrefixTable::Match match{P("24.48.0.0/13"),
                                      bgp::SourceKind::kBgpTable, 0x3, 1742};
  const LookupRecord record = LookupRecord::FromMatch(match);
  ASSERT_TRUE(record.found);
  const auto back = record.ToMatch();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->prefix, match.prefix);
  EXPECT_EQ(back->kind, match.kind);
  EXPECT_EQ(back->source_mask, match.source_mask);
  EXPECT_EQ(back->origin_as, match.origin_as);
}

TEST(BatchResultCodec, RoundTripsAndValidatesEveryRecord) {
  LookupRecord found;
  found.found = true;
  found.prefix = P("128.6.0.0/16");
  found.origin_as = 46;
  const std::vector<LookupRecord> records{found, LookupRecord{}};
  const auto bytes = EncodeBatchResult(records);
  const auto decoded = DecodeBatchResult(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), records);

  auto lying = bytes;
  lying[3] = 9;  // count disagrees with the byte length
  EXPECT_FALSE(DecodeBatchResult(lying.data(), lying.size()).ok());
  auto corrupt = bytes;
  corrupt[4 + 3] = 1;  // first record's reserved byte
  EXPECT_FALSE(DecodeBatchResult(corrupt.data(), corrupt.size()).ok());
}

TEST(IngestAckCodec, RoundTrips) {
  const IngestAck ack{0x1122334455667788ull};
  const auto bytes = EncodeIngestAck(ack);
  ASSERT_EQ(bytes.size(), 8u);
  const auto decoded = DecodeIngestAck(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), ack);
  EXPECT_FALSE(DecodeIngestAck(bytes.data(), 7).ok());
}

TEST(ErrorCodec, RoundTripsAndBoundsTheCode) {
  const ErrorReply error{ErrorCode::kUnsupportedOpcode, "no such opcode"};
  const auto bytes = EncodeError(error);
  const auto decoded = DecodeError(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), error);

  auto bad = bytes;
  bad[0] = 0;
  EXPECT_FALSE(DecodeError(bad.data(), bad.size()).ok());
  bad[0] = 5;
  EXPECT_FALSE(DecodeError(bad.data(), bad.size()).ok());
  EXPECT_FALSE(DecodeError(bad.data(), 0).ok());
}

// --- cluster-mode codecs ---

Topology SmallTopology() {
  Topology topo;
  topo.epoch = 3;
  topo.nodes = {NodeInfo{1, IpAddress(127, 0, 0, 1), 4730},
                NodeInfo{2, IpAddress(127, 0, 0, 1), 4731},
                NodeInfo{5, IpAddress(10, 0, 0, 9), 4732}};
  topo.ranges = {ShardRange{0, 20'000, 0}, ShardRange{20'000, 30'000, 2},
                 ShardRange{50'000, kShardBlockCount - 50'000, 1}};
  return topo;
}

TEST(TopologyCodec, EncodesTheDocumentedLayout) {
  const Topology topo = SmallTopology();
  const std::vector<std::uint8_t> wire = EncodeTopology(topo);
  // u64 epoch + u16 node count + 3 x (u32 id, u32 host, u16 port)
  // + u32 range count + 3 x (u32 first, u32 count, u16 node_index).
  ASSERT_EQ(wire.size(), 8u + 2 + 3 * 10 + 4 + 3 * 10);
  EXPECT_EQ(GetU64(wire.data()), 3u);
  EXPECT_EQ(GetU16(wire.data() + 8), 3u);
  EXPECT_EQ(GetU32(wire.data() + 10), 1u);          // first node id
  EXPECT_EQ(GetU32(wire.data() + 14), 0x7F000001u); // 127.0.0.1
  EXPECT_EQ(GetU16(wire.data() + 18), 4730u);
  EXPECT_EQ(GetU32(wire.data() + 40), 3u);          // range count
  EXPECT_EQ(GetU32(wire.data() + 44), 0u);          // first range start
  EXPECT_EQ(GetU16(wire.data() + 52), 0u);          // first range owner

  const Result<Topology> decoded = DecodeTopology(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), topo);
  EXPECT_EQ(EncodeTopology(decoded.value()), wire);
}

TEST(TopologyCodec, DecoderEnforcesCanonicalForm) {
  // A coverage gap.
  Topology gap = SmallTopology();
  gap.ranges[1].block_count -= 1;
  auto wire = EncodeTopology(gap);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // An overlap.
  Topology overlap = SmallTopology();
  overlap.ranges[1].first_block -= 1;
  overlap.ranges[1].block_count += 1;
  wire = EncodeTopology(overlap);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // Node ids must be strictly increasing.
  Topology unsorted = SmallTopology();
  std::swap(unsorted.nodes[0], unsorted.nodes[2]);
  wire = EncodeTopology(unsorted);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // A range pointing past the node table.
  Topology dangling = SmallTopology();
  dangling.ranges[0].node_index = 3;
  wire = EncodeTopology(dangling);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // Adjacent ranges with the same owner must have been merged.
  Topology unmerged = SmallTopology();
  unmerged.ranges[1].node_index = 0;
  wire = EncodeTopology(unmerged);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // An empty range.
  Topology empty_range = SmallTopology();
  empty_range.ranges[0].first_block = 20'000;
  empty_range.ranges[0].block_count = 0;
  wire = EncodeTopology(empty_range);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // No nodes at all.
  Topology no_nodes = SmallTopology();
  no_nodes.nodes.clear();
  no_nodes.ranges.clear();
  wire = EncodeTopology(no_nodes);
  EXPECT_FALSE(DecodeTopology(wire.data(), wire.size()).ok());

  // Every truncation is rejected cleanly.
  wire = EncodeTopology(SmallTopology());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(DecodeTopology(wire.data(), cut).ok()) << "cut " << cut;
  }
}

TEST(CompiledOwners, ExpandRangesAndResolveNodeIds) {
  const Topology topo = SmallTopology();
  const std::vector<std::uint16_t> owner = CompileOwners(topo);
  ASSERT_EQ(owner.size(), kShardBlockCount);
  EXPECT_EQ(owner[0], 0);
  EXPECT_EQ(owner[19'999], 0);
  EXPECT_EQ(owner[20'000], 2);
  EXPECT_EQ(owner[49'999], 2);
  EXPECT_EQ(owner[50'000], 1);
  EXPECT_EQ(owner[kShardBlockCount - 1], 1);

  EXPECT_EQ(NodeIndexOf(topo, 1), 0);
  EXPECT_EQ(NodeIndexOf(topo, 5), 2);
  EXPECT_EQ(NodeIndexOf(topo, 4), -1);
}

TEST(ClusterLookupCodec, RoundTripsAndBoundsTheCount) {
  ClusterLookupRequest req;
  req.epoch = 9;
  req.addresses = {IpAddress(10, 1, 2, 3), IpAddress(151, 198, 200, 40)};
  const std::vector<std::uint8_t> wire = EncodeClusterLookup(req);
  ASSERT_EQ(wire.size(), 8u + 4 + 2 * 4);
  EXPECT_EQ(GetU64(wire.data()), 9u);
  EXPECT_EQ(GetU32(wire.data() + 8), 2u);
  EXPECT_EQ(GetU32(wire.data() + 12), IpAddress(10, 1, 2, 3).bits());

  const auto decoded = DecodeClusterLookup(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), req);
  EXPECT_EQ(EncodeClusterLookup(decoded.value()), wire);

  // Count and length must agree.
  std::vector<std::uint8_t> lying = wire;
  lying.push_back(0);
  EXPECT_FALSE(DecodeClusterLookup(lying.data(), lying.size()).ok());
  std::vector<std::uint8_t> overcount;
  PutU64(&overcount, 1);
  PutU32(&overcount, kMaxBatch + 1);
  for (std::uint32_t i = 0; i < kMaxBatch + 1; ++i) PutU32(&overcount, i);
  EXPECT_FALSE(DecodeClusterLookup(overcount.data(), overcount.size()).ok());
}

TEST(ClusterResultCodec, RoundTripsRecordsUnderTheEpoch) {
  ClusterResult result;
  result.epoch = 9;
  LookupRecord found;
  found.found = true;
  found.prefix = P("151.198.192.0/18");
  found.kind = bgp::SourceKind::kBgpTable;
  found.origin_as = 1742;
  found.source_mask = 0x3;
  result.records = {found, LookupRecord{}};
  const std::vector<std::uint8_t> wire = EncodeClusterResult(result);
  ASSERT_EQ(wire.size(), 8u + 4 + 2 * kLookupRecordSize);
  const auto decoded = DecodeClusterResult(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), result);
  EXPECT_EQ(EncodeClusterResult(decoded.value()), wire);

  // Record canonical form is enforced through the embedded decoder: a
  // miss with a nonzero field is rejected.
  std::vector<std::uint8_t> tainted = wire;
  tainted[8 + 4 + kLookupRecordSize + 9] = 1;  // second record, origin byte
  EXPECT_FALSE(DecodeClusterResult(tainted.data(), tainted.size()).ok());
}

TEST(RedirectCodec, RoundTripsBothReasonsAndRejectsOthers) {
  for (const RedirectReason reason :
       {RedirectReason::kStaleEpoch, RedirectReason::kNotOwner}) {
    RedirectReply redirect;
    redirect.reason = reason;
    redirect.epoch = 77;
    const std::vector<std::uint8_t> wire = EncodeRedirect(redirect);
    ASSERT_EQ(wire.size(), 9u);
    EXPECT_EQ(wire[0], static_cast<std::uint8_t>(reason));
    EXPECT_EQ(GetU64(wire.data() + 1), 77u);
    const auto decoded = DecodeRedirect(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), redirect);
  }
  const auto bad_reason = Bytes({0, 0, 0, 0, 0, 0, 0, 0, 77});
  EXPECT_FALSE(DecodeRedirect(bad_reason.data(), bad_reason.size()).ok());
  const auto short_frame = Bytes({1, 0, 0, 0});
  EXPECT_FALSE(DecodeRedirect(short_frame.data(), short_frame.size()).ok());
}

TEST(ClusterStatsCodec, RoundTripsTheFixedRecord) {
  ClusterStatsRecord record;
  record.epoch = 4;
  record.node_id = 2;
  record.frames_decoded = 100;
  record.lookups_served = 90;
  record.cluster_lookups_served = 80;
  record.ingests_applied = 7;
  record.busy_replies = 3;
  record.errors_sent = 1;
  record.redirects_sent = 5;
  record.connections_active = 6;
  record.latency_sum_ns = 123'456;
  for (std::size_t i = 0; i < kStatsLatencyBuckets; ++i) {
    record.latency_buckets[i] = i * i;
  }
  const std::vector<std::uint8_t> wire = EncodeClusterStats(record);
  ASSERT_EQ(wire.size(), kClusterStatsRecordSize);
  const auto decoded = DecodeClusterStats(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), record);
  EXPECT_EQ(EncodeClusterStats(decoded.value()), wire);
  // The record is fixed-size: anything else is rejected.
  EXPECT_FALSE(DecodeClusterStats(wire.data(), wire.size() - 1).ok());
  std::vector<std::uint8_t> longer = wire;
  longer.push_back(0);
  EXPECT_FALSE(DecodeClusterStats(longer.data(), longer.size()).ok());
}

TEST(TopologyAckCodec, RoundTripsTheEpoch) {
  const std::vector<std::uint8_t> wire = EncodeTopologyAck(12);
  ASSERT_EQ(wire.size(), 8u);
  EXPECT_EQ(GetU64(wire.data()), 12u);
  const auto decoded = DecodeTopologyAck(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), 12u);
  EXPECT_FALSE(DecodeTopologyAck(wire.data(), 7).ok());
}

TEST(RankCodec, RequestRoundTripsAndRejectsWrongSize) {
  const RankRequest req{3, IpAddress(151, 198, 194, 17)};
  const std::vector<std::uint8_t> wire = EncodeRank(req);
  ASSERT_EQ(wire.size(), 12u);
  EXPECT_EQ(GetU64(wire.data()), 3u);
  EXPECT_EQ(GetU32(wire.data() + 8), req.address.bits());
  const auto decoded = DecodeRank(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), req);
  EXPECT_EQ(EncodeRank(decoded.value()), wire);
  // ASSIGN shares the 12-byte shape; both are exact-size.
  EXPECT_FALSE(DecodeRank(wire.data(), 11).ok());
  EXPECT_FALSE(DecodeAssign(wire.data(), 13).ok());
  const auto assign = DecodeAssign(wire.data(), wire.size());
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ(assign.value().address, req.address);
}

TEST(RankCodec, ReplyRoundTripsIncludingEmptyAndBoundsTheCount) {
  RankReply reply;
  reply.epoch = 3;
  reply.cluster_as = 1742;
  reply.servers = {2, 0, 5, 1};
  const std::vector<std::uint8_t> wire = EncodeRankReply(reply);
  ASSERT_EQ(wire.size(), 8u + 4 + 2 + 4 * 2);
  EXPECT_EQ(GetU32(wire.data() + 8), 1742u);
  EXPECT_EQ(GetU16(wire.data() + 12), 4u);
  EXPECT_EQ(GetU16(wire.data() + 14), 2u);  // order preserved, best first
  const auto decoded = DecodeRankReply(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), reply);
  EXPECT_EQ(EncodeRankReply(decoded.value()), wire);

  // Empty ranking (no rank table installed) is a legal reply.
  RankReply empty;
  empty.epoch = 1;
  const std::vector<std::uint8_t> none = EncodeRankReply(empty);
  ASSERT_EQ(none.size(), 14u);
  const auto redecoded = DecodeRankReply(none.data(), none.size());
  ASSERT_TRUE(redecoded.ok());
  EXPECT_TRUE(redecoded.value().servers.empty());

  // Count and length must agree, and the count is bounded.
  std::vector<std::uint8_t> lying = wire;
  lying.push_back(0);
  EXPECT_FALSE(DecodeRankReply(lying.data(), lying.size()).ok());
  std::vector<std::uint8_t> overcount;
  PutU64(&overcount, 1);
  PutU32(&overcount, 1742);
  PutU16(&overcount, static_cast<std::uint16_t>(kMaxRankServers + 1));
  for (std::uint32_t i = 0; i <= kMaxRankServers; ++i) {
    PutU16(&overcount, static_cast<std::uint16_t>(i));
  }
  EXPECT_FALSE(DecodeRankReply(overcount.data(), overcount.size()).ok());
}

TEST(AssignCodec, ReplyRoundTripsEveryStatusAndEnforcesCanonicalForm) {
  for (const AssignStatus status :
       {AssignStatus::kNoServer, AssignStatus::kClusterRanked,
        AssignStatus::kDefaultRanking}) {
    AssignReply reply;
    reply.epoch = 3;
    reply.status = status;
    reply.server_id = status == AssignStatus::kNoServer ? 0 : 7;
    reply.cluster_as = 1742;
    const std::vector<std::uint8_t> wire = EncodeAssignReply(reply);
    ASSERT_EQ(wire.size(), kAssignReplySize);
    EXPECT_EQ(wire[8], static_cast<std::uint8_t>(status));
    const auto decoded = DecodeAssignReply(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), reply);
    EXPECT_EQ(EncodeAssignReply(decoded.value()), wire);
  }

  // Fixed 15-byte record: any other length is rejected.
  const std::vector<std::uint8_t> wire = EncodeAssignReply(AssignReply{});
  EXPECT_FALSE(DecodeAssignReply(wire.data(), wire.size() - 1).ok());
  std::vector<std::uint8_t> longer = wire;
  longer.push_back(0);
  EXPECT_FALSE(DecodeAssignReply(longer.data(), longer.size()).ok());

  // Unknown status byte is rejected.
  std::vector<std::uint8_t> bad_status = wire;
  bad_status[8] = 3;
  EXPECT_FALSE(DecodeAssignReply(bad_status.data(), bad_status.size()).ok());

  // Canonical rule: kNoServer must carry server_id 0 — a phantom server
  // under "no server chosen" is a lie, not a representation choice.
  std::vector<std::uint8_t> phantom;
  PutU64(&phantom, 3);
  phantom.push_back(0);  // kNoServer
  PutU16(&phantom, 7);   // ...yet names a server
  PutU32(&phantom, 1742);
  ASSERT_EQ(phantom.size(), kAssignReplySize);
  EXPECT_FALSE(DecodeAssignReply(phantom.data(), phantom.size()).ok());
}

TEST(FrameDecoderViews, NextViewMatchesNextByteForByte) {
  // NextView() is the reactor fast path: same frames, zero copies. Drive
  // two decoders with the identical byte stream in awkward chunk sizes
  // and require view and value decodes to agree exactly.
  std::vector<std::uint8_t> stream;
  const auto append = [&stream](const std::vector<std::uint8_t>& wire) {
    stream.insert(stream.end(), wire.begin(), wire.end());
  };
  append(EncodeFrame(Opcode::kPing, {1, 2, 3}));
  append(EncodeFrame(Opcode::kLookup,
                     EncodeLookup({IpAddress(151, 198, 200, 40)})));
  BatchLookupRequest batch;
  batch.addresses = {IpAddress(10, 0, 0, 1), IpAddress(192, 0, 2, 9)};
  append(EncodeFrame(Opcode::kBatchLookup, EncodeBatchLookup(batch)));
  append(EncodeFrame(Opcode::kStats, {}));

  FrameDecoder by_value;
  FrameDecoder by_view;
  std::vector<Frame> values;
  std::vector<Frame> views;
  std::size_t offset = 0;
  std::size_t chunk = 1;
  while (offset < stream.size()) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    by_value.Feed(stream.data() + offset, n);
    by_view.Feed(stream.data() + offset, n);
    offset += n;
    chunk = chunk * 2 + 1;  // 1, 3, 7, ... — split across every boundary
    while (true) {
      auto frame = by_value.Next();
      ASSERT_TRUE(frame.ok()) << frame.error();
      if (!frame.value().has_value()) break;
      values.push_back(std::move(*frame.value()));
    }
    while (true) {
      auto view = by_view.NextView();
      ASSERT_TRUE(view.ok()) << view.error();
      if (!view.value().has_value()) break;
      Frame copied;
      copied.header = view.value()->header;
      copied.payload.assign(
          view.value()->payload,
          view.value()->payload + view.value()->header.payload_size);
      views.push_back(std::move(copied));
    }
  }
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values, views);
  EXPECT_EQ(by_view.buffered(), 0u);

  // Both variants reject the same garbage.
  FrameDecoder bad;
  const std::vector<std::uint8_t> junk(kHeaderSize, 0xFF);
  bad.Feed(junk.data(), junk.size());
  EXPECT_FALSE(bad.NextView().ok());
}

TEST(BatchLookupCodec, DecodeIntoMatchesDecodeAndReusesCapacity) {
  BatchLookupRequest request;
  for (std::uint32_t i = 0; i < 300; ++i) {
    request.addresses.emplace_back((10u << 24) | (i * 7919u));
  }
  const std::vector<std::uint8_t> wire = EncodeBatchLookup(request);

  const auto boxed = DecodeBatchLookup(wire.data(), wire.size());
  ASSERT_TRUE(boxed.ok()) << boxed.error();

  std::vector<IpAddress> into;
  const auto count = DecodeBatchLookupInto(wire.data(), wire.size(), &into);
  ASSERT_TRUE(count.ok()) << count.error();
  EXPECT_EQ(count.value(), request.addresses.size());
  EXPECT_EQ(into, boxed.value().addresses);

  // The out-vector is a reusable scratch buffer: decoding a smaller batch
  // into it must clear the stale tail, not append.
  BatchLookupRequest small;
  small.addresses = {IpAddress(192, 0, 2, 1)};
  const std::vector<std::uint8_t> small_wire = EncodeBatchLookup(small);
  const auto again =
      DecodeBatchLookupInto(small_wire.data(), small_wire.size(), &into);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 1u);
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0], IpAddress(192, 0, 2, 1));

  // Same strictness as the boxed decode: truncated payloads are rejected.
  EXPECT_FALSE(DecodeBatchLookupInto(wire.data(), wire.size() - 1, &into).ok());
  EXPECT_FALSE(DecodeBatchLookupInto(wire.data(), 3, &into).ok());
}

TEST(BatchResultCodec, AppendBatchResultFrameIsByteIdenticalToEncodeFrame) {
  // The reactor writes BATCH_RESULT frames straight from the engine's
  // match array; the slow path goes Match -> LookupRecord ->
  // EncodeBatchResult -> EncodeFrame. The two must produce the same
  // bytes, or pipelined clients would see the data plane's answers
  // diverge from the documented codec.
  std::vector<std::optional<bgp::PrefixTable::Match>> matches;
  matches.push_back(std::nullopt);
  matches.push_back(bgp::PrefixTable::Match{
      P("151.198.192.0/18"), bgp::SourceKind::kBgpTable, 0x5u, 1742u});
  matches.push_back(bgp::PrefixTable::Match{
      P("10.0.0.0/8"), bgp::SourceKind::kNetworkDump, 0x2u, 65000u});
  matches.push_back(std::nullopt);
  matches.push_back(bgp::PrefixTable::Match{
      P("0.0.0.0/0"), bgp::SourceKind::kBgpTable, 0x1u, 0u});

  std::vector<LookupRecord> records;
  for (const auto& match : matches) {
    records.push_back(LookupRecord::FromMatch(match));
  }
  const std::vector<std::uint8_t> expected =
      EncodeFrame(Opcode::kBatchResult, EncodeBatchResult(records));

  // Appending must also preserve whatever the buffer already holds (the
  // reply queue may carry earlier frames).
  std::vector<std::uint8_t> out{0xAA, 0xBB};
  AppendBatchResultFrame(matches.data(), matches.size(), &out);
  ASSERT_EQ(out.size(), 2 + expected.size());
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin() + 2))
      << "fast-path BATCH_RESULT bytes diverged from the codec";

  // Empty batch: still a well-formed frame with count 0.
  std::vector<std::uint8_t> empty;
  AppendBatchResultFrame(nullptr, 0, &empty);
  EXPECT_EQ(empty, EncodeFrame(Opcode::kBatchResult, EncodeBatchResult({})));
}

TEST(ClusterOpcodes, AreKnownAndClassified) {
  for (const Opcode request : {Opcode::kClusterLookup, Opcode::kTopology,
                               Opcode::kSetTopology, Opcode::kClusterStats}) {
    EXPECT_TRUE(IsKnownOpcode(static_cast<std::uint8_t>(request)));
    EXPECT_TRUE(IsRequestOpcode(request));
  }
  for (const Opcode response :
       {Opcode::kClusterResult, Opcode::kTopologyReply,
        Opcode::kSetTopologyAck, Opcode::kClusterStatsReply,
        Opcode::kRedirect}) {
    EXPECT_TRUE(IsKnownOpcode(static_cast<std::uint8_t>(response)));
    EXPECT_FALSE(IsRequestOpcode(response));
  }
}

}  // namespace
}  // namespace netclust::server
