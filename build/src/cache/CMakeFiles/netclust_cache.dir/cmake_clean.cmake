file(REMOVE_RECURSE
  "CMakeFiles/netclust_cache.dir/proxy_cache.cc.o"
  "CMakeFiles/netclust_cache.dir/proxy_cache.cc.o.d"
  "CMakeFiles/netclust_cache.dir/simulation.cc.o"
  "CMakeFiles/netclust_cache.dir/simulation.cc.o.d"
  "libnetclust_cache.a"
  "libnetclust_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclust_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
