// Service-layer latency: what does putting netclustd's wire protocol and
// a real TCP round-trip in front of Engine::Lookup cost?
//
// Spins up the daemon in-process on an ephemeral loopback port and
// replays the Nagano preset log's per-request client stream through the
// loadgen core, two ways:
//
//   throughput — pipelined BATCH_LOOKUP (256 addresses per frame, 8
//     frames in flight per connection, 2 connections), swept across
//     reactor counts {1, 2, 4} to show the shared-nothing data plane's
//     per-core scaling. The winning configuration is the record written
//     to BENCH_server.json.
//   latency probe — one connection, one address per frame, one frame in
//     flight: the unamortized wire round-trip, reported as probe p50/p99.
//
// Floor: the pipelined daemon must clear 1M lookups/s on loopback. The
// old single-reader epoll loop topped out around 800k; the reactor
// rewrite's batch decode -> LookupBatch -> writev path clears 1M on a
// single core purely through amortization, so a failure here means a
// serialization bug on the lookup path, not a slow machine.
//
// `--floor-only` (the CI mode) runs just the default-reactor throughput
// configuration, enforces the floor, and writes BENCH_server.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "loadgen.h"
#include "server/server.h"

namespace {

using namespace netclust;

struct SweepPoint {
  int reactors = 0;
  loadgen::Report report;
};

/// Serves `engine` with `reactors` reactors and drives `options` against
/// it. The daemon is torn down before returning so sweep points don't
/// share ports or threads.
Result<loadgen::Report> RunPoint(engine::Engine* engine, int reactors,
                                 loadgen::Options options) {
  server::ServerConfig server_config;
  server_config.port = 0;  // ephemeral
  server_config.reactors = reactors;
  server::Server daemon(engine, server_config);
  const Result<std::uint16_t> port = daemon.Serve();
  if (!port.ok()) return Fail("serve: " + port.error());
  options.port = port.value();
  Result<loadgen::Report> run = loadgen::Run(options);
  daemon.Stop();
  if (!run.ok()) return Fail("loadgen: " + run.error());
  if (run.value().errors != 0) {
    return Fail("request errors (first: " + run.value().first_error + ")");
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool floor_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--floor-only") == 0) {
      floor_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--floor-only]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "service layer — netclustd end-to-end lookup latency",
      "shared-nothing reactors put a wire round-trip but no locks in "
      "front of the engine: cluster lookups stay cheap enough to answer "
      "online, per request");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const auto& log = generated.log;
  const bgp::Snapshot seed = scenario.vantages().MakeSnapshot(0, 0);

  engine::EngineConfig config;
  config.shards = 1;
  config.log_name = "nagano";
  engine::Engine engine(config);
  engine.SeedSnapshot(seed);
  engine.Start();

  // The paper's input artifact is a web log; replay its client stream
  // (repeats preserved) exactly as `loadgen --clf` would.
  loadgen::Options throughput;
  throughput.connections = 2;
  throughput.batch_size = 256;
  throughput.pipeline = 8;
  throughput.total_frames = 8'000;  // ~2M lookups per sweep point
  for (const auto& request : log.requests()) {
    throughput.addresses.push_back(request.client);
  }

  constexpr double kFloorQps = 1'000'000.0;
  const std::vector<int> reactor_sweep =
      floor_only ? std::vector<int>{2} : std::vector<int>{1, 2, 4};

  std::printf("\nload:  %zu clients cycled from %zu log requests, "
              "%d connections x %zu-address batches, pipeline %zu, "
              "%zu frames per point\n",
              log.clients().size(), throughput.addresses.size(),
              throughput.connections, throughput.batch_size,
              throughput.pipeline, throughput.total_frames);
  std::printf("table: %zu prefixes\n\n", seed.entries.size());

  SweepPoint best;
  for (const int reactors : reactor_sweep) {
    const Result<loadgen::Report> run =
        RunPoint(&engine, reactors, throughput);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_server_latency: reactors=%d: %s\n",
                   reactors, run.error().c_str());
      engine.Stop();
      return 1;
    }
    const loadgen::Report& report = run.value();
    std::printf("  reactors=%d  %12s lookups/s   frame p50 %8.1f us   "
                "p99 %8.1f us\n",
                reactors, bench::Fmt(report.qps).c_str(),
                static_cast<double>(report.p50_ns) / 1000.0,
                static_cast<double>(report.p99_ns) / 1000.0);
    if (best.reactors == 0 || report.qps > best.report.qps) {
      best = SweepPoint{reactors, report};
    }
  }

  // Unamortized round trip: one address, one frame in flight. This is
  // the number the "single-digit-microsecond localhost p50" claim is
  // about — the pipelined p50 above measures a full 256-address frame.
  loadgen::Report probe;
  if (!floor_only) {
    loadgen::Options probe_options;
    probe_options.connections = 1;
    probe_options.batch_size = 1;
    probe_options.pipeline = 1;
    probe_options.total_frames = 20'000;
    probe_options.addresses = throughput.addresses;
    const Result<loadgen::Report> run =
        RunPoint(&engine, best.reactors, probe_options);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_server_latency: probe: %s\n",
                   run.error().c_str());
      engine.Stop();
      return 1;
    }
    probe = run.value();
    std::printf("\n  %-28s %.1f us (p99 %.1f us)\n",
                "single-lookup round-trip p50",
                static_cast<double>(probe.p50_ns) / 1000.0,
                static_cast<double>(probe.p99_ns) / 1000.0);
  }
  engine.Stop();

  std::printf("\n  %-28s %s lookups/s (reactors=%d)\n", "best throughput",
              bench::Fmt(best.report.qps).c_str(), best.reactors);
  std::printf("  %-28s %s (of %s lookups)\n", "covered by a prefix",
              bench::Fmt(static_cast<double>(best.report.found)).c_str(),
              bench::Fmt(static_cast<double>(best.report.lookups_done))
                  .c_str());

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"qps\": %.1f, \"reactors\": %d, \"pipeline\": %zu, "
      "\"batch\": %zu, \"connections\": %d, \"frames\": %zu, "
      "\"lookups\": %zu, \"found\": %zu, "
      "\"frame_p50_us\": %.3f, \"frame_p99_us\": %.3f, "
      "\"probe_p50_us\": %.3f, \"probe_p99_us\": %.3f, "
      "\"busy_retries\": %zu, \"errors\": %zu, \"elapsed_ms\": %.1f}",
      best.report.qps, best.reactors, throughput.pipeline,
      throughput.batch_size, throughput.connections,
      best.report.frames_sent, best.report.lookups_done, best.report.found,
      static_cast<double>(best.report.p50_ns) / 1e3,
      static_cast<double>(best.report.p99_ns) / 1e3,
      static_cast<double>(probe.p50_ns) / 1e3,
      static_cast<double>(probe.p99_ns) / 1e3, best.report.busy_retries,
      best.report.errors, static_cast<double>(best.report.elapsed_ns) / 1e6);

  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_server_latency: cannot write "
                 "BENCH_server.json\n");
    return 1;
  }
  std::fprintf(out, "%s\n", json);
  std::fclose(out);
  std::printf("\nwrote BENCH_server.json: %s\n", json);

  if (best.report.qps < kFloorQps) {
    std::fprintf(stderr, "bench_server_latency: %.0f lookups/s is below "
                 "the 1M pipelined floor\n",
                 best.report.qps);
    return 1;
  }
  std::printf("pipelined floor (1M lookups/s): cleared\n");
  return 0;
}
