#include "bgp/prefix_table.h"

#include <cassert>

namespace netclust::bgp {

int PrefixTable::AddSource(const SnapshotInfo& info) {
  // The id is a bit position in the 32-bit source_mask: registration past
  // kMaxSources must fail here, detectably, because Insert's shift cannot
  // represent source 32 (UB in release builds, where the old assert-only
  // guard compiled away).
  if (sources_.size() >= static_cast<std::size_t>(kMaxSources)) {
    return kInvalidSource;
  }
  sources_.push_back(SourceStats{.info = info});
  return static_cast<int>(sources_.size()) - 1;
}

void PrefixTable::Insert(const net::Prefix& prefix, int source_id,
                         AsNumber origin_as) {
  if (source_id < 0 || source_id >= static_cast<int>(sources_.size())) {
    // A propagated kInvalidSource (or any stray id) is dropped, counted —
    // never shifted into source_mask.
    ++rejected_inserts_;
    return;
  }
  SourceStats& stats = sources_[static_cast<std::size_t>(source_id)];
  ++stats.entries;

  const std::uint32_t bit = 1u << source_id;
  const bool is_bgp = stats.info.kind == SourceKind::kBgpTable;

  if (const Origin* existing = trie_.Find(prefix)) {
    if ((existing->source_mask & bit) == 0) ++stats.unique_prefixes;
    Origin updated = *existing;
    updated.source_mask |= bit;
    updated.from_bgp |= is_bgp;
    updated.from_dump |= !is_bgp;
    if (updated.origin_as == 0) updated.origin_as = origin_as;
    trie_.Insert(prefix, updated);
    return;
  }
  Origin origin;
  origin.source_mask = bit;
  origin.from_bgp = is_bgp;
  origin.from_dump = !is_bgp;
  origin.origin_as = origin_as;
  trie_.Insert(prefix, origin);
  ++stats.unique_prefixes;
  ++stats.new_prefixes;
}

AsNumber PrefixTable::OriginAs(const net::Prefix& prefix) const {
  const Origin* origin = trie_.Find(prefix);
  return origin == nullptr ? 0 : origin->origin_as;
}

int PrefixTable::AddSnapshot(const Snapshot& snapshot) {
  const int id = AddSource(snapshot.info);
  if (id == kInvalidSource) return kInvalidSource;
  for (const RouteEntry& entry : snapshot.entries) {
    Insert(entry.prefix, id,
           entry.as_path.empty() ? 0 : entry.as_path.back());
  }
  return id;
}

std::optional<PrefixTable::Match> PrefixTable::LongestMatch(
    net::IpAddress address) const {
  std::optional<Match> best_bgp;
  std::optional<Match> best_dump;
  trie_.AllMatches(address, [&](const net::Prefix& prefix,
                                const Origin& origin) {
    // AllMatches visits shortest-first, so the last hit of each kind is the
    // longest of that kind.
    if (origin.from_bgp) {
      best_bgp = Match{prefix, SourceKind::kBgpTable, origin.source_mask,
                       origin.origin_as};
    } else {
      best_dump = Match{prefix, SourceKind::kNetworkDump, origin.source_mask,
                        origin.origin_as};
    }
  });
  if (best_bgp.has_value()) return best_bgp;
  return best_dump;
}

PrefixTable::Flat PrefixTable::CompileFlat() const {
  std::vector<Flat::Entry> entries;
  entries.reserve(trie_.size());
  trie_.Visit([&](const net::Prefix& prefix, const Origin& origin) {
    // Same classification as LongestMatch: a prefix any BGP source
    // contributed counts as BGP, and BGP (priority 1) beats every
    // network-dump prefix (priority 0) regardless of length.
    const SourceKind kind = origin.from_bgp ? SourceKind::kBgpTable
                                            : SourceKind::kNetworkDump;
    entries.push_back(Flat::Entry{
        prefix, origin.from_bgp ? 1 : 0,
        Match{prefix, kind, origin.source_mask, origin.origin_as}});
  });
  return Flat::Compile(std::move(entries));
}

std::vector<net::Prefix> PrefixTable::AllPrefixes() const {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(trie_.size());
  trie_.Visit([&](const net::Prefix& prefix, const Origin&) {
    prefixes.push_back(prefix);
  });
  return prefixes;
}

bool PrefixTable::Contains(const net::Prefix& prefix) const {
  return trie_.Find(prefix) != nullptr;
}

}  // namespace netclust::bgp
