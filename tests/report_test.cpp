#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_fixtures.h"

namespace netclust::core {
namespace {

TEST(Report, ClusterCsvListsBusiestFirst) {
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering clustering =
      ClusterNetworkAware(world.generated.log, world.table);

  std::ostringstream out;
  WriteClusterCsv(out, clustering);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "prefix,clients,requests,bytes,unique_urls,source");

  std::string line;
  std::uint64_t previous = UINT64_MAX;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    // requests is the third field.
    std::size_t pos = line.find(',');
    pos = line.find(',', pos + 1);
    const std::uint64_t requests =
        std::strtoull(line.c_str() + pos + 1, nullptr, 10);
    EXPECT_LE(requests, previous);
    previous = requests;
  }
  EXPECT_EQ(rows, clustering.cluster_count());
}

TEST(Report, ClientMapRoundTripsMembershipAndTallies) {
  const auto& world = netclust::testing::GetSmallWorld();
  const Clustering original =
      ClusterNetworkAware(world.generated.log, world.table);

  std::ostringstream out;
  WriteClientMapCsv(out, original);
  std::istringstream in(out.str());
  const auto imported = ImportClientMapCsv(in, "roundtrip");
  ASSERT_TRUE(imported.ok()) << imported.error();
  const Clustering& copy = imported.value();

  EXPECT_EQ(copy.client_count(), original.client_count());
  EXPECT_EQ(copy.cluster_count(), original.cluster_count());
  EXPECT_EQ(copy.unclustered.size(), original.unclustered.size());
  EXPECT_EQ(copy.total_requests, original.total_requests);

  // Membership per key must match exactly.
  const auto keyed = [](const Clustering& clustering) {
    std::map<net::Prefix, std::multiset<std::uint32_t>> out_map;
    for (const Cluster& cluster : clustering.clusters) {
      for (const std::uint32_t member : cluster.members) {
        out_map[cluster.key].insert(
            clustering.clients[member].address.bits());
      }
    }
    return out_map;
  };
  EXPECT_EQ(keyed(copy), keyed(original));

  // Per-cluster request/byte tallies too.
  std::map<net::Prefix, std::uint64_t> original_requests;
  for (const Cluster& cluster : original.clusters) {
    original_requests[cluster.key] = cluster.requests;
  }
  for (const Cluster& cluster : copy.clusters) {
    EXPECT_EQ(cluster.requests, original_requests.at(cluster.key));
  }
}

TEST(Report, ImportRejectsMalformedRows) {
  const auto expect_fail = [](const char* text) {
    std::istringstream in(text);
    EXPECT_FALSE(ImportClientMapCsv(in).ok()) << text;
  };
  expect_fail("client,cluster,requests,bytes\n1.2.3.4,10.0.0.0/8,5\n");
  expect_fail("not-an-ip,10.0.0.0/8,5,100\n");
  expect_fail("1.2.3.4,not-a-prefix,5,100\n");
  expect_fail("1.2.3.4,10.0.0.0/8,xx,100\n");
  expect_fail("1.2.3.4,10.0.0.0/8,5,yy\n");
}

TEST(Report, ImportHandlesUnclusteredAndHeaderlessInput) {
  std::istringstream in(
      "9.9.9.9,-,3,300\n"
      "1.2.3.4,10.0.0.0/8,5,100\n"
      "1.2.3.5,10.0.0.0/8,2,40\n");
  const auto imported = ImportClientMapCsv(in);
  ASSERT_TRUE(imported.ok()) << imported.error();
  EXPECT_EQ(imported.value().client_count(), 3u);
  EXPECT_EQ(imported.value().cluster_count(), 1u);
  EXPECT_EQ(imported.value().unclustered.size(), 1u);
  EXPECT_EQ(imported.value().clusters[0].requests, 7u);
  EXPECT_EQ(imported.value().clusters[0].bytes, 140u);
}

}  // namespace
}  // namespace netclust::core
