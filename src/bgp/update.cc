#include "bgp/update.h"

#include <algorithm>
#include <cstring>

namespace netclust::bgp {
namespace {

constexpr std::uint8_t kTypeUpdate = 2;
constexpr std::size_t kHeaderSize = 19;  // 16 marker + 2 length + 1 type
constexpr AsNumber kAsTrans = 23456;

constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kSegmentSequence = 2;

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// <length(1), prefix bytes> NLRI encoding shared by withdrawn and
// announced route fields.
void PutNlri(std::vector<std::uint8_t>& out, const net::Prefix& prefix) {
  out.push_back(static_cast<std::uint8_t>(prefix.length()));
  const std::uint32_t network = prefix.network().bits();
  for (int i = 0; i < (prefix.length() + 7) / 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(network >> (24 - 8 * i)));
  }
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool failed = false;

  bool Require(std::size_t n) {
    if (failed || size - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }
  std::uint8_t U8() { return Require(1) ? data[pos++] : 0; }
  std::uint16_t U16() {
    if (!Require(2)) return 0;
    const auto v = static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint32_t U32() {
    if (!Require(4)) return 0;
    const std::uint32_t v = (std::uint32_t{data[pos]} << 24) |
                            (std::uint32_t{data[pos + 1]} << 16) |
                            (std::uint32_t{data[pos + 2]} << 8) |
                            std::uint32_t{data[pos + 3]};
    pos += 4;
    return v;
  }
};

// Parses one NLRI element; false on exhaustion or corruption.
bool ReadNlri(Cursor& in, net::Prefix* prefix) {
  const std::uint8_t length = in.U8();
  if (in.failed || length > 32) {
    in.failed = true;
    return false;
  }
  std::uint32_t network = 0;
  for (int i = 0; i < (length + 7) / 8; ++i) {
    network |= std::uint32_t{in.U8()} << (24 - 8 * i);
  }
  if (in.failed) return false;
  *prefix = net::Prefix(net::IpAddress(network), length);
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodeUpdate(const UpdateMessage& update,
                                       bool wide_asn) {
  std::vector<std::uint8_t> withdrawn;
  for (const net::Prefix& prefix : update.withdrawn) {
    PutNlri(withdrawn, prefix);
  }

  std::vector<std::uint8_t> attrs;
  if (!update.announced.empty()) {
    // ORIGIN: IGP.
    attrs.push_back(kFlagTransitive);
    attrs.push_back(kAttrOrigin);
    attrs.push_back(1);
    attrs.push_back(0);
    // AS_PATH: one AS_SEQUENCE (2- or 4-byte ASNs by speaker capability).
    // The attribute length here is one byte, so the path is clamped to
    // what fits — a short-but-decodable record instead of a corrupt one
    // (real UPDATE paths are well under the ~63-hop 4-byte ceiling).
    const std::size_t asn_size = wide_asn ? 4 : 2;
    const std::size_t hops =
        std::min(update.as_path.size(), (std::size_t{255} - 2) / asn_size);
    attrs.push_back(kFlagTransitive);
    attrs.push_back(kAttrAsPath);
    attrs.push_back(
        static_cast<std::uint8_t>(hops == 0 ? 0 : 2 + asn_size * hops));
    if (hops > 0) {
      attrs.push_back(kSegmentSequence);
      attrs.push_back(static_cast<std::uint8_t>(hops));
      for (std::size_t i = 0; i < hops; ++i) {
        const AsNumber asn = update.as_path[i];
        if (wide_asn) {
          PutU32(attrs, asn);
        } else {
          PutU16(attrs, static_cast<std::uint16_t>(
                            asn > 0xFFFF ? kAsTrans : asn));
        }
      }
    }
    // NEXT_HOP.
    attrs.push_back(kFlagTransitive);
    attrs.push_back(kAttrNextHop);
    attrs.push_back(4);
    PutU32(attrs, update.next_hop.bits());
  }

  std::vector<std::uint8_t> body;
  PutU16(body, static_cast<std::uint16_t>(withdrawn.size()));
  body.insert(body.end(), withdrawn.begin(), withdrawn.end());
  PutU16(body, static_cast<std::uint16_t>(attrs.size()));
  body.insert(body.end(), attrs.begin(), attrs.end());
  for (const net::Prefix& prefix : update.announced) {
    PutNlri(body, prefix);
  }

  std::vector<std::uint8_t> message(16, 0xFF);  // marker
  PutU16(message, static_cast<std::uint16_t>(kHeaderSize + body.size()));
  message.push_back(kTypeUpdate);
  message.insert(message.end(), body.begin(), body.end());
  return message;
}

Result<UpdateMessage> DecodeUpdate(const std::uint8_t* data, std::size_t size,
                                   std::size_t* offset, bool wide_asn) {
  if (size - *offset < kHeaderSize) {
    return Fail("truncated BGP header");
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (data[*offset + i] != 0xFF) return Fail("bad BGP marker");
  }
  const std::size_t length =
      (static_cast<std::size_t>(data[*offset + 16]) << 8) | data[*offset + 17];
  const std::uint8_t type = data[*offset + 18];
  if (length < kHeaderSize || size - *offset < length) {
    return Fail("bad BGP message length");
  }
  if (type != kTypeUpdate) return Fail("not an UPDATE message");

  Cursor in{data + *offset + kHeaderSize, length - kHeaderSize};
  UpdateMessage update;

  const std::uint16_t withdrawn_len = in.U16();
  if (in.failed || withdrawn_len > in.size - in.pos) {
    return Fail("bad withdrawn-routes length");
  }
  const std::size_t withdrawn_end = in.pos + withdrawn_len;
  while (in.pos < withdrawn_end) {
    net::Prefix prefix;
    if (!ReadNlri(in, &prefix)) return Fail("malformed withdrawn route");
    update.withdrawn.push_back(prefix);
  }
  if (in.pos != withdrawn_end) return Fail("withdrawn routes overrun");

  const std::uint16_t attrs_len = in.U16();
  if (in.failed || attrs_len > in.size - in.pos) {
    return Fail("bad attributes length");
  }
  const std::size_t attrs_end = in.pos + attrs_len;
  while (in.pos < attrs_end) {
    const std::uint8_t flags = in.U8();
    const std::uint8_t type_code = in.U8();
    const std::size_t attr_len =
        (flags & 0x10) != 0 ? in.U16() : in.U8();
    if (in.failed || attr_len > attrs_end - in.pos) {
      return Fail("malformed path attribute");
    }
    const std::size_t value_end = in.pos + attr_len;
    switch (type_code) {
      case kAttrAsPath:
        while (in.pos < value_end) {
          const std::uint8_t segment = in.U8();
          const std::uint8_t count = in.U8();
          for (int i = 0; i < count && !in.failed; ++i) {
            const AsNumber asn = wide_asn ? in.U32() : in.U16();
            if (segment == kSegmentSequence) {
              update.as_path.push_back(asn);
            }
          }
          if (in.failed) return Fail("malformed AS_PATH");
        }
        break;
      case kAttrNextHop:
        if (attr_len != 4) return Fail("malformed NEXT_HOP");
        update.next_hop = net::IpAddress(in.U32());
        break;
      default:
        in.pos = value_end;  // ORIGIN / unknown: skip
        break;
    }
    if (in.pos != value_end) return Fail("path attribute overrun");
  }

  while (in.pos < in.size) {
    net::Prefix prefix;
    if (!ReadNlri(in, &prefix)) return Fail("malformed NLRI");
    update.announced.push_back(prefix);
  }
  if (in.failed) return Fail("truncated UPDATE body");

  *offset += length;
  return update;
}

Result<UpdateMessage> DecodeUpdate(const std::vector<std::uint8_t>& bytes,
                                   std::size_t* offset) {
  return DecodeUpdate(bytes.data(), bytes.size(), offset,
                      /*wide_asn=*/false);
}

Result<std::vector<UpdateMessage>> DecodeUpdateStream(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<UpdateMessage> updates;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    auto update = DecodeUpdate(bytes, &offset);
    if (!update) return Fail(update.error());
    updates.push_back(std::move(update).value());
  }
  return updates;
}

void LiveRoutingTable::LoadSnapshot(const Snapshot& snapshot) {
  for (const RouteEntry& entry : snapshot.entries) {
    trie_.Insert(entry.prefix, Route{entry.next_hop, entry.as_path});
  }
}

LiveRoutingTable::ApplyStats LiveRoutingTable::Apply(
    const UpdateMessage& update) {
  ApplyStats stats;
  for (const net::Prefix& prefix : update.withdrawn) {
    if (trie_.Remove(prefix)) {
      ++stats.withdrawn;
    } else {
      ++stats.spurious_withdraw;
    }
  }
  for (const net::Prefix& prefix : update.announced) {
    const bool inserted =
        trie_.Insert(prefix, Route{update.next_hop, update.as_path});
    if (inserted) {
      ++stats.announced_new;
    } else {
      ++stats.replaced;
    }
  }
  churn_.announced_new += stats.announced_new;
  churn_.replaced += stats.replaced;
  churn_.withdrawn += stats.withdrawn;
  churn_.spurious_withdraw += stats.spurious_withdraw;
  return stats;
}

std::optional<std::pair<net::Prefix, LiveRoutingTable::Route>>
LiveRoutingTable::LongestMatch(net::IpAddress address) const {
  const auto match = trie_.LongestMatch(address);
  if (!match.has_value()) return std::nullopt;
  return std::make_pair(match->prefix, *match->value);
}

Snapshot LiveRoutingTable::Export(const SnapshotInfo& info) const {
  Snapshot snapshot;
  snapshot.info = info;
  trie_.Visit([&](const net::Prefix& prefix, const Route& route) {
    RouteEntry entry;
    entry.prefix = prefix;
    entry.next_hop = route.next_hop;
    entry.as_path = route.as_path;
    snapshot.entries.push_back(std::move(entry));
  });
  return snapshot;
}

std::vector<net::Prefix> LiveRoutingTable::AllPrefixes() const {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(trie_.size());
  trie_.Visit([&](const net::Prefix& prefix, const Route&) {
    prefixes.push_back(prefix);
  });
  return prefixes;
}

}  // namespace netclust::bgp
