// Table 2: an example snapshot of a BGP routing table (VBNS) — prefix,
// description, next hop, AS path, peer description — demonstrating the
// entry anatomy the pipeline consumes, plus a text/MRT round trip.
#include <cstdio>

#include "bench_common.h"
#include "bgp/mrt.h"
#include "bgp/text_parser.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "Table 2 — example snapshot of a BGP routing table (VBNS)",
      "entries carry prefix, next hop and AS path; only prefix/netmask is "
      "used for clustering");

  const auto& scenario = bench::GetScenario();
  // VBNS is source index 13 in DefaultVantageProfiles().
  const bgp::Snapshot vbns = scenario.vantages().MakeSnapshot(13, 0);

  std::printf("\n%-20s  %-28s  %-14s  %s\n", "Prefix", "Prefix description",
              "Next hop", "AS path");
  const std::size_t rows = std::min<std::size_t>(vbns.entries.size(), 12);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& entry = vbns.entries[i];
    std::string path;
    for (const auto asn : entry.as_path) {
      if (!path.empty()) path += ' ';
      path += std::to_string(asn);
    }
    std::printf("%-20s  %-28.28s  %-14s  %s (IGP)\n",
                entry.prefix.ToString().c_str(),
                entry.prefix_description.c_str(),
                entry.next_hop.ToString().c_str(), path.c_str());
  }
  std::printf("... (%zu entries total; paper's VBNS table: 1.8K)\n",
              vbns.entries.size());

  // Round-trip sanity shown to the operator: the same snapshot survives
  // both wire formats this library parses.
  bgp::ParseStats stats;
  const auto text_copy = bgp::ParseSnapshotText(
      bgp::WriteSnapshotText(vbns, net::PrefixStyle::kDottedMask), vbns.info,
      &stats);
  const auto mrt_bytes = bgp::WriteMrt(vbns, 944524800);
  const auto mrt_copy = bgp::ReadMrt(mrt_bytes, vbns.info);
  std::printf(
      "\nround trips: text (dotted-mask) %zu/%zu entries, %zu malformed; "
      "MRT TABLE_DUMP_V2 %zu/%zu entries (%zu bytes)\n",
      text_copy.entries.size(), vbns.entries.size(), stats.malformed_lines,
      mrt_copy.ok() ? mrt_copy.value().entries.size() : 0,
      vbns.entries.size(), mrt_bytes.size());
  return 0;
}
