#include "bgp/mrt.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace netclust::bgp {
namespace {

SnapshotInfo Info() {
  return SnapshotInfo{"OREGON", "12/7/1999", SourceKind::kBgpTable, ""};
}

Snapshot SampleSnapshot() {
  Snapshot snapshot;
  snapshot.info = Info();
  const struct {
    const char* prefix;
    std::vector<AsNumber> path;
  } rows[] = {
      {"6.0.0.0/8", {7170, 1455}},
      {"12.0.48.0/20", {1742}},
      {"12.6.208.0/20", {1742}},
      {"18.0.0.0/8", {3}},
      {"24.48.2.0/23", {7018, 6461, 11456}},
      {"151.198.194.16/28", {4969}},
      {"0.0.0.0/0", {}},
      {"192.0.2.1/32", {64512}},
  };
  for (const auto& row : rows) {
    RouteEntry entry;
    entry.prefix = net::Prefix::Parse(row.prefix).value();
    entry.next_hop = net::IpAddress(198, 32, 8, 1);
    entry.as_path = row.path;
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

TEST(Mrt, RoundTripPreservesPrefixesPathsAndNextHops) {
  const Snapshot original = SampleSnapshot();
  const std::vector<std::uint8_t> bytes = WriteMrt(original, 944524800);

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();

  EXPECT_EQ(stats.records, original.entries.size() + 1);  // + peer index
  EXPECT_EQ(stats.rib_records, original.entries.size());
  EXPECT_EQ(stats.peers, 1u);
  EXPECT_EQ(stats.skipped_records, 0u);

  ASSERT_EQ(decoded.value().entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(decoded.value().entries[i].prefix, original.entries[i].prefix);
    EXPECT_EQ(decoded.value().entries[i].as_path,
              original.entries[i].as_path);
    EXPECT_EQ(decoded.value().entries[i].next_hop,
              original.entries[i].next_hop);
  }
}

TEST(Mrt, EmptySnapshotRoundTrips) {
  Snapshot empty;
  empty.info = Info();
  const auto bytes = WriteMrt(empty, 0);
  const auto decoded = ReadMrt(bytes, Info());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().entries.empty());
}

// A partial download cut mid-header must not discard the file: truncation
// is counted and everything decoded before the cut survives. (ReadMrt used
// to hard-fail here, losing every complete record in the stream.)
TEST(Mrt, TruncatedHeaderIsCountedNotFatal) {
  auto bytes = WriteMrt(SampleSnapshot(), 1);
  bytes.resize(6);  // mid-header of the first record
  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(decoded.value().entries.empty());
  EXPECT_EQ(stats.truncated_records, 1u);
}

TEST(Mrt, TruncatedBodyKeepsRecordsBeforeTheCut) {
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrt(original, 1);
  bytes.resize(bytes.size() - 3);  // cuts the last RIB record short
  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().entries.size(), original.entries.size() - 1);
  EXPECT_EQ(stats.truncated_records, 1u);
}

// The corpus crasher shape: a complete snapshot followed by a header whose
// declared length promises bytes that never arrive.
TEST(Mrt, DanglingDeclaredLengthKeepsWholeSnapshot) {
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrt(original, 1);
  const std::uint8_t dangling[] = {0, 0, 0, 0, 0, 13, 0, 2,
                                   0, 0, 16, 0, 0, 0, 0, 0};
  bytes.insert(bytes.end(), std::begin(dangling), std::end(dangling));
  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().entries.size(), original.entries.size());
  EXPECT_EQ(stats.truncated_records, 1u);
}

TEST(Mrt, RejectsRibBeforePeerIndex) {
  const auto full = WriteMrt(SampleSnapshot(), 1);
  // Locate the end of the first record (the PEER_INDEX_TABLE) and strip it.
  const std::size_t first_len = (std::size_t{full[8]} << 24) |
                                (std::size_t{full[9]} << 16) |
                                (std::size_t{full[10]} << 8) |
                                std::size_t{full[11]};
  const std::vector<std::uint8_t> without_index(
      full.begin() + static_cast<std::ptrdiff_t>(12 + first_len), full.end());
  const auto decoded = ReadMrt(without_index, Info());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().find("PEER_INDEX_TABLE"), std::string::npos);
}

TEST(Mrt, SkipsForeignRecordTypes) {
  // Splice a bogus record (type 42) between valid ones; decoding must skip
  // it and still return every RIB entry.
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrt(original, 1);
  std::vector<std::uint8_t> foreign = {0, 0, 0, 1, 0, 42, 0,
                                       0, 0, 0, 0, 4, 9, 9, 9, 9};
  bytes.insert(bytes.end(), foreign.begin(), foreign.end());

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(stats.skipped_records, 1u);
  EXPECT_EQ(decoded.value().entries.size(), original.entries.size());
}

TEST(MrtV1, RoundTripsThroughTableDump) {
  const Snapshot original = SampleSnapshot();
  const auto bytes = WriteMrtV1(original, 944524800);

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(stats.records, original.entries.size());  // no peer index in v1
  EXPECT_EQ(stats.rib_records, original.entries.size());
  ASSERT_EQ(decoded.value().entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(decoded.value().entries[i].prefix, original.entries[i].prefix);
    EXPECT_EQ(decoded.value().entries[i].next_hop,
              original.entries[i].next_hop);
    EXPECT_EQ(decoded.value().entries[i].as_path,
              original.entries[i].as_path);
  }
}

TEST(MrtV1, ClampsWideAsNumbers) {
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.0.0/8").value();
  entry.as_path = {70000};  // beyond 16 bits
  snapshot.entries.push_back(entry);

  const auto decoded = ReadMrt(WriteMrtV1(snapshot, 1), Info());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().entries[0].as_path.size(), 1u);
  EXPECT_EQ(decoded.value().entries[0].as_path[0], 23456u);  // AS_TRANS
}

TEST(MrtV1, MixedGenerationStreamParses) {
  // A v1 dump concatenated with a v2 dump: both decode into one snapshot.
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrtV1(original, 1);
  const auto v2 = WriteMrt(original, 2);
  bytes.insert(bytes.end(), v2.begin(), v2.end());

  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().entries.size(), 2 * original.entries.size());
  EXPECT_EQ(stats.rib_records, 2 * original.entries.size());
}

TEST(MrtV1, TruncatedRecordKeepsRecordsBeforeTheCut) {
  const Snapshot original = SampleSnapshot();
  auto bytes = WriteMrtV1(original, 1);
  bytes.resize(bytes.size() - 2);  // cuts the last record short
  MrtStats stats;
  const auto decoded = ReadMrt(bytes, Info(), &stats);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().entries.size(), original.entries.size() - 1);
  EXPECT_EQ(stats.truncated_records, 1u);
}

TEST(Mrt, LongAsPathSplitsIntoSegmentsAndRoundTrips) {
  // AS_SEQUENCE carries a one-byte ASN count; paths past 255 hops must be
  // split across segments, not have their count byte truncated mod 256.
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.1.0/24").value();
  entry.next_hop = net::IpAddress(198, 32, 8, 1);
  for (std::uint32_t i = 0; i < 300; ++i) entry.as_path.push_back(i + 1);
  snapshot.entries.push_back(entry);

  for (const bool wide : {true, false}) {
    MrtWriteStats wstats;
    const auto bytes = wide ? WriteMrt(snapshot, 1, &wstats)
                            : WriteMrtV1(snapshot, 1, &wstats);
    EXPECT_EQ(wstats.clamped_as_paths, 0u);
    const auto decoded = ReadMrt(bytes, Info());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    ASSERT_EQ(decoded.value().entries.size(), 1u);
    EXPECT_EQ(decoded.value().entries[0].as_path, entry.as_path);
  }
}

TEST(Mrt, OverlongViewNameIsClampedNotTruncatedSilently) {
  Snapshot snapshot;
  snapshot.info = Info();
  snapshot.info.name.assign(0x10000 + 50, 'v');  // beyond the 16-bit field
  MrtWriteStats wstats;
  const auto bytes = WriteMrt(snapshot, 1, &wstats);
  EXPECT_EQ(wstats.clamped_view_names, 1u);
  EXPECT_TRUE(ReadMrt(bytes, Info()).ok());
}

TEST(Mrt, AbsurdAsPathClampsWithAccounting) {
  // Even segment splitting cannot fit ~20k hops in a 16-bit attribute
  // block; the writer must clamp and account rather than emit garbage.
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.0.0/8").value();
  for (std::uint32_t i = 0; i < 20000; ++i) entry.as_path.push_back(i + 1);
  snapshot.entries.push_back(entry);

  MrtWriteStats wstats;
  const auto bytes = WriteMrt(snapshot, 1, &wstats);
  EXPECT_EQ(wstats.clamped_as_paths, 1u);
  const auto decoded = ReadMrt(bytes, Info());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  const auto& path = decoded.value().entries[0].as_path;
  ASSERT_FALSE(path.empty());
  EXPECT_LT(path.size(), entry.as_path.size());
  // What survives is a prefix of the original path.
  EXPECT_TRUE(std::equal(path.begin(), path.end(), entry.as_path.begin()));
}

TEST(Mrt, RejectsCorruptPrefixLength) {
  auto bytes = WriteMrt(SampleSnapshot(), 1);
  // The first RIB record's prefix-length byte sits after the peer index
  // record and the 12-byte header + 4-byte sequence number.
  const std::size_t peer_len = (std::size_t{bytes[8]} << 24) |
                               (std::size_t{bytes[9]} << 16) |
                               (std::size_t{bytes[10]} << 8) |
                               std::size_t{bytes[11]};
  const std::size_t rib_prefix_len_at = 12 + peer_len + 12 + 4;
  bytes[rib_prefix_len_at] = 200;  // > 32
  EXPECT_FALSE(ReadMrt(bytes, Info()).ok());
}

// --- BGP4MP: the live UPDATE stream family ---

UpdateMessage SampleUpdate() {
  UpdateMessage update;
  update.withdrawn = {net::Prefix::Parse("24.48.2.0/23").value()};
  update.announced = {net::Prefix::Parse("12.0.48.0/20").value(),
                      net::Prefix::Parse("151.198.194.16/28").value()};
  update.as_path = {7018, 1742, 4969};
  update.next_hop = net::IpAddress(198, 32, 8, 1);
  return update;
}

void DrainAll(Bgp4mpStream& stream, std::vector<Bgp4mpEvent>* events) {
  while (auto event = stream.Next()) events->push_back(std::move(*event));
}

TEST(Bgp4mp, UpdateRoundTripsInBothAsFlavors) {
  const UpdateMessage update = SampleUpdate();
  for (const bool as4 : {false, true}) {
    const auto wire = WriteBgp4mpUpdate(update, 946684800, 7018,
                                        net::IpAddress(10, 0, 0, 2), as4);
    Bgp4mpStream stream;
    stream.Feed(wire.data(), wire.size());
    stream.Finish();
    const auto event = stream.Next();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, Bgp4mpEventKind::kUpdate);
    EXPECT_EQ(event->timestamp, 946684800u);
    EXPECT_EQ(event->peer_as, 7018u);
    EXPECT_EQ(event->peer_ip, net::IpAddress(10, 0, 0, 2));
    EXPECT_EQ(event->update, update);
    EXPECT_FALSE(stream.Next().has_value());
    EXPECT_EQ(stream.stats().updates, 1u);
    EXPECT_EQ(stream.stats().malformed_records, 0u);
    EXPECT_EQ(stream.stats().truncated_records, 0u);
  }
}

TEST(Bgp4mp, WithdrawOnlyUpdateRoundTrips) {
  UpdateMessage update;
  update.withdrawn = {net::Prefix::Parse("12.6.208.0/20").value()};
  const auto wire = WriteBgp4mpUpdate(update, 5, 1742,
                                      net::IpAddress(10, 0, 0, 3), false);
  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  const auto event = stream.Next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->update.withdrawn, update.withdrawn);
  EXPECT_TRUE(event->update.announced.empty());
}

TEST(Bgp4mp, As2EncodingClampsWideAsNumbers) {
  UpdateMessage update = SampleUpdate();
  update.as_path = {70'000, 1742};
  const auto wire = WriteBgp4mpUpdate(update, 6, 70'000,
                                      net::IpAddress(10, 0, 0, 2), false);
  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  const auto event = stream.Next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->peer_as, 23456u);  // AS_TRANS
  ASSERT_EQ(event->update.as_path.size(), 2u);
  EXPECT_EQ(event->update.as_path[0], 23456u);
  EXPECT_EQ(event->update.as_path[1], 1742u);

  // The AS4 flavor carries the same numbers losslessly.
  const auto wide = WriteBgp4mpUpdate(update, 6, 70'000,
                                      net::IpAddress(10, 0, 0, 2), true);
  Bgp4mpStream stream4;
  stream4.Feed(wide.data(), wide.size());
  const auto event4 = stream4.Next();
  ASSERT_TRUE(event4.has_value());
  EXPECT_EQ(event4->peer_as, 70'000u);
  EXPECT_EQ(event4->update.as_path, update.as_path);
}

TEST(Bgp4mp, StateChangeRoundTrips) {
  for (const bool as4 : {false, true}) {
    const auto wire = WriteBgp4mpStateChange(7, 7018,
                                             net::IpAddress(10, 0, 0, 2),
                                             6, 1, as4);
    Bgp4mpStream stream;
    stream.Feed(wire.data(), wire.size());
    const auto event = stream.Next();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, Bgp4mpEventKind::kStateChange);
    EXPECT_EQ(event->old_state, 6u);
    EXPECT_EQ(event->new_state, 1u);
    EXPECT_EQ(stream.stats().state_changes, 1u);
  }
}

TEST(Bgp4mp, ByteAtATimeFeedingMatchesWholeBuffer) {
  std::vector<std::uint8_t> wire = WriteBgp4mpUpdate(
      SampleUpdate(), 1, 7018, net::IpAddress(10, 0, 0, 2), false);
  const auto bounce = WriteBgp4mpStateChange(2, 7018,
                                             net::IpAddress(10, 0, 0, 2),
                                             6, 1, true);
  const auto as4 = WriteBgp4mpUpdate(SampleUpdate(), 3, 70'000,
                                     net::IpAddress(10, 0, 0, 2), true);
  wire.insert(wire.end(), bounce.begin(), bounce.end());
  wire.insert(wire.end(), as4.begin(), as4.end());

  Bgp4mpStream whole;
  whole.Feed(wire.data(), wire.size());
  whole.Finish();
  std::vector<Bgp4mpEvent> expected;
  DrainAll(whole, &expected);
  ASSERT_EQ(expected.size(), 3u);

  Bgp4mpStream chunked;
  std::vector<Bgp4mpEvent> got;
  for (const std::uint8_t byte : wire) {
    chunked.Feed(&byte, 1);
    DrainAll(chunked, &got);
  }
  chunked.Finish();
  DrainAll(chunked, &got);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(chunked.stats().updates, whole.stats().updates);
  EXPECT_EQ(chunked.stats().state_changes, whole.stats().state_changes);
}

TEST(Bgp4mp, SkipsKeepaliveMessages) {
  // Patch the BGP type byte (prologue is 16 bytes for the 2-byte-AS
  // flavor; the type sits 18 bytes into the BGP message) to KEEPALIVE.
  auto wire = WriteBgp4mpUpdate(SampleUpdate(), 1, 7018,
                                net::IpAddress(10, 0, 0, 2), false);
  wire[12 + 16 + 18] = 4;  // KEEPALIVE
  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  stream.Finish();
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.stats().skipped_records, 1u);
  EXPECT_EQ(stream.stats().malformed_records, 0u);
}

TEST(Bgp4mp, MalformedUpdateIsCountedAndDoesNotPoisonTheFeed) {
  // Corrupt the BGP marker of the first record; the second must still
  // decode — one bad record must not kill a live feed.
  auto wire = WriteBgp4mpUpdate(SampleUpdate(), 1, 7018,
                                net::IpAddress(10, 0, 0, 2), false);
  wire[12 + 16] = 0x00;  // first marker byte
  const auto good = WriteBgp4mpUpdate(SampleUpdate(), 2, 7018,
                                      net::IpAddress(10, 0, 0, 2), false);
  wire.insert(wire.end(), good.begin(), good.end());

  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  stream.Finish();
  const auto event = stream.Next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->timestamp, 2u);
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.stats().malformed_records, 1u);
  EXPECT_EQ(stream.stats().updates, 1u);
}

TEST(Bgp4mp, SkipsForeignRecordTypes) {
  // A TABLE_DUMP_V2 snapshot through the live decoder: every record is a
  // counted skip, never an error.
  Snapshot snapshot;
  snapshot.info = Info();
  RouteEntry entry;
  entry.prefix = net::Prefix::Parse("10.0.0.0/8").value();
  snapshot.entries.push_back(entry);
  const auto wire = WriteMrt(snapshot, 1);

  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  stream.Finish();
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.stats().skipped_records, 2u);  // peer index + RIB
  EXPECT_EQ(stream.stats().malformed_records, 0u);
}

TEST(Bgp4mp, OversizedDeclaredLengthResyncsPastTheHeader) {
  // A hostile record claiming a body beyond kMaxRecordBytes: the decoder
  // must not buffer toward it — count it truncated, resync, and decode
  // the valid record that follows.
  std::vector<std::uint8_t> wire = {0, 0, 0, 0, 0, 16, 0, 1,
                                    0xFF, 0xFF, 0xFF, 0xFF};
  const auto good = WriteBgp4mpUpdate(SampleUpdate(), 9, 7018,
                                      net::IpAddress(10, 0, 0, 2), false);
  wire.insert(wire.end(), good.begin(), good.end());

  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  stream.Finish();
  const auto event = stream.Next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->timestamp, 9u);
  EXPECT_EQ(stream.stats().truncated_records, 1u);
}

TEST(Bgp4mp, DanglingPartialRecordIsTruncatedAtFinish) {
  auto wire = WriteBgp4mpUpdate(SampleUpdate(), 1, 7018,
                                net::IpAddress(10, 0, 0, 2), false);
  const auto partial = WriteBgp4mpUpdate(SampleUpdate(), 2, 7018,
                                         net::IpAddress(10, 0, 0, 2), false);
  wire.insert(wire.end(), partial.begin(), partial.end() - 5);

  Bgp4mpStream stream;
  stream.Feed(wire.data(), wire.size());
  const auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  // Without Finish() the tail just waits for more bytes.
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.stats().truncated_records, 0u);
  stream.Finish();
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.stats().truncated_records, 1u);
}

}  // namespace
}  // namespace netclust::bgp
