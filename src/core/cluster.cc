#include "core/cluster.h"

#include <functional>
#include <unordered_set>

namespace netclust::core {
namespace {

// Shared clustering pipeline: `key_of` maps a client address to its cluster
// key (nullopt = unclusterable). Walks the log twice: once to accumulate
// per-client stats and assign clusters, once to count per-cluster unique
// URLs.
Clustering ClusterLog(
    const weblog::ServerLog& log, std::string approach,
    const std::function<std::optional<std::pair<net::Prefix, bool>>(
        net::IpAddress)>& key_of) {
  Clustering result;
  result.approach = std::move(approach);
  result.log_name = log.name();
  result.total_requests = log.request_count();

  std::unordered_map<net::IpAddress, std::uint32_t> client_index;
  std::unordered_map<net::Prefix, std::uint32_t> cluster_index;
  client_index.reserve(log.clients().size());
  // Client id assignment mirrors the log's first-seen order.
  for (const net::IpAddress address : log.clients()) {
    const auto id = static_cast<std::uint32_t>(result.clients.size());
    client_index.emplace(address, id);
    result.clients.push_back(ClientStats{address, 0, 0});
  }

  // Map each distinct client to a cluster.
  std::vector<std::uint32_t> client_cluster(result.clients.size(),
                                            UINT32_MAX);
  for (std::uint32_t id = 0; id < result.clients.size(); ++id) {
    const auto key = key_of(result.clients[id].address);
    if (!key.has_value()) {
      result.unclustered.push_back(id);
      continue;
    }
    auto [it, inserted] = cluster_index.emplace(
        key->first, static_cast<std::uint32_t>(result.clusters.size()));
    if (inserted) {
      Cluster cluster;
      cluster.key = key->first;
      cluster.from_network_dump = key->second;
      result.clusters.push_back(std::move(cluster));
    }
    client_cluster[id] = it->second;
    result.clusters[it->second].members.push_back(id);
  }

  // Accumulate request/byte/URL tallies.
  std::vector<std::unordered_set<std::uint32_t>> cluster_urls(
      result.clusters.size());
  for (const weblog::CompactRequest& request : log.requests()) {
    const std::uint32_t id = client_index.at(request.client);
    result.clients[id].requests += 1;
    result.clients[id].bytes += request.response_bytes;
    const std::uint32_t cluster = client_cluster[id];
    if (cluster == UINT32_MAX) continue;
    Cluster& c = result.clusters[cluster];
    c.requests += 1;
    c.bytes += request.response_bytes;
    cluster_urls[cluster].insert(request.url_id);
  }
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    result.clusters[i].unique_urls = cluster_urls[i].size();
  }
  return result;
}

}  // namespace

std::size_t Clustering::dump_clustered_clients() const {
  std::size_t count = 0;
  for (const Cluster& cluster : clusters) {
    if (cluster.from_network_dump) count += cluster.members.size();
  }
  return count;
}

Clustering ClusterNetworkAware(const weblog::ServerLog& log,
                               const bgp::PrefixTable& table) {
  return ClusterLog(
      log, "network-aware",
      [&table](net::IpAddress address)
          -> std::optional<std::pair<net::Prefix, bool>> {
        const auto match = table.LongestMatch(address);
        if (!match.has_value()) return std::nullopt;
        return std::make_pair(match->prefix,
                              match->kind == bgp::SourceKind::kNetworkDump);
      });
}

Clustering ClusterSimple(const weblog::ServerLog& log) {
  return ClusterLog(log, "simple",
                    [](net::IpAddress address)
                        -> std::optional<std::pair<net::Prefix, bool>> {
                      return std::make_pair(net::Prefix(address, 24), false);
                    });
}

Clustering ClusterClassful(const weblog::ServerLog& log) {
  return ClusterLog(log, "classful",
                    [](net::IpAddress address)
                        -> std::optional<std::pair<net::Prefix, bool>> {
                      return std::make_pair(net::ClassfulNetwork(address),
                                            false);
                    });
}

Clustering ClusterAddresses(std::string log_name,
                            const std::vector<AddressLoad>& loads,
                            const bgp::PrefixTable& table) {
  Clustering result;
  result.approach = "network-aware";
  result.log_name = std::move(log_name);

  std::unordered_map<net::Prefix, std::uint32_t> cluster_index;
  for (const AddressLoad& load : loads) {
    const auto id = static_cast<std::uint32_t>(result.clients.size());
    result.clients.push_back(
        ClientStats{load.address, load.requests, load.bytes});
    result.total_requests += load.requests;

    const auto match = table.LongestMatch(load.address);
    if (!match.has_value()) {
      result.unclustered.push_back(id);
      continue;
    }
    auto [it, inserted] = cluster_index.emplace(
        match->prefix, static_cast<std::uint32_t>(result.clusters.size()));
    if (inserted) {
      Cluster cluster;
      cluster.key = match->prefix;
      cluster.from_network_dump =
          match->kind == bgp::SourceKind::kNetworkDump;
      result.clusters.push_back(std::move(cluster));
    }
    Cluster& cluster = result.clusters[it->second];
    cluster.members.push_back(id);
    cluster.requests += load.requests;
    cluster.bytes += load.bytes;
  }
  return result;
}

ClusterIndex::ClusterIndex(const Clustering& clustering) {
  for (std::uint32_t c = 0; c < clustering.clusters.size(); ++c) {
    for (const std::uint32_t member : clustering.clusters[c].members) {
      by_client_.emplace(clustering.clients[member].address, c);
    }
  }
}

std::optional<std::uint32_t> ClusterIndex::ClusterOf(
    net::IpAddress address) const {
  const auto it = by_client_.find(address);
  if (it == by_client_.end()) return std::nullopt;
  return it->second;
}

}  // namespace netclust::core
