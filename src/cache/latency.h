// Client-perceived latency model for the caching simulation.
//
// The paper's whole motivation: "it is beneficial to move content closer
// to groups of clients ... This lowers the latency perceived by the
// clients as well as the load on the Web server." The simulator can
// account a latency for every request:
//
//   fresh hit        rtt(client, proxy)
//   validated hit    rtt(client, proxy) + rtt(proxy/origin)      (IMS 304)
//   miss             rtt(client, proxy) + rtt(origin) + transfer
//   direct           rtt(client, origin) + transfer
//
// with the transfer time set by an access-link bandwidth. The model is an
// interface so the benches can plug in the synthetic Internet's
// region-based RTTs.
#pragma once

#include <cstdint>

#include "net/ip_address.h"
#include "synth/internet.h"

namespace netclust::cache {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// RTT from `client` to the origin server, milliseconds.
  [[nodiscard]] virtual double OriginRttMs(net::IpAddress client) const = 0;

  /// RTT from `client` to its cluster's proxy (topologically adjacent).
  [[nodiscard]] virtual double ProxyRttMs(net::IpAddress client) const {
    (void)client;
    return 5.0;
  }

  /// Body transfer time for `bytes`, milliseconds.
  [[nodiscard]] virtual double TransferMs(std::uint64_t bytes) const {
    // 1998-era well-connected access path: ~200 KB/s.
    return static_cast<double>(bytes) / 200.0;
  }
};

/// Region-based RTTs from the synthetic ground truth; the origin server
/// sits in `server_region` (default US-East).
class SynthLatencyModel final : public LatencyModel {
 public:
  explicit SynthLatencyModel(const synth::Internet& internet,
                             int server_region = 0)
      : internet_(&internet), server_region_(server_region) {}

  [[nodiscard]] double OriginRttMs(net::IpAddress client) const override {
    return internet_->RttMs(client, server_region_);
  }

 private:
  const synth::Internet* internet_;
  int server_region_;
};

}  // namespace netclust::cache
