#!/bin/sh
# Runs the GCC static analyzer (-fanalyzer) over the data-plane TUs
# (src/server/*.cc, src/cluster/*.cc) with analyzer warnings treated as
# errors. Known false positives are filtered through
# tools/lint/analyzer_suppressions.txt (one grep -E pattern per line).
#
# Usage: tools/lint/run_analyzer.sh [findings-file]
#   findings-file: where to write the raw analyzer output (default:
#                  analyzer-findings.txt in the current directory); CI
#                  uploads it as a build artifact.
#
# Exits 0 when clean, 1 on unsuppressed findings, 77 (the automake/ctest
# SKIP code) when no -fanalyzer-capable GCC is available — so non-GCC
# machines skip gracefully while CI enforces.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
OUT="${1:-analyzer-findings.txt}"
SUPPRESSIONS="$ROOT/tools/lint/analyzer_suppressions.txt"

GCC="${NETCLUST_GCC:-g++}"
if ! command -v "$GCC" >/dev/null 2>&1; then
  echo "run_analyzer.sh: $GCC not found; skipping" >&2
  exit 77
fi
# -fanalyzer is GCC-only (and GCC >= 10); probe with an empty TU rather
# than parsing version strings.
if ! printf '' | "$GCC" -fanalyzer -fsyntax-only -x c++ - 2>/dev/null; then
  echo "run_analyzer.sh: $GCC does not support -fanalyzer; skipping" >&2
  exit 77
fi

# The analyzer's interprocedural passes want optimization context; -O1
# keeps runtime sane while still inlining the io_util wrappers the
# fd-leak checks care about.
: > "$OUT"
for tu in "$ROOT"/src/server/*.cc "$ROOT"/src/cluster/*.cc; do
  "$GCC" -std=c++20 -O1 -fanalyzer -fsyntax-only \
         -I"$ROOT/src" "$tu" 2>>"$OUT" || {
    echo "run_analyzer.sh: $tu failed to compile (see $OUT)" >&2
    exit 1
  }
done

# Findings are the '[-Wanalyzer-*]' warning lines; everything else in the
# stderr stream is the analyzer's supporting path commentary (kept in
# $OUT for the artifact, not counted).
FINDINGS=$(grep -E '\[-Wanalyzer-' "$OUT" || true)

# Subtract vetted false positives (pattern per line; '#' comments). A
# suppression hides one diagnostic line, never a whole file.
if [ -n "$FINDINGS" ] && [ -f "$SUPPRESSIONS" ]; then
  PATTERNS=$(sed -e 's/#.*//' -e '/^[[:space:]]*$/d' "$SUPPRESSIONS")
  if [ -n "$PATTERNS" ]; then
    PATTERN_FILE=$(mktemp)
    printf '%s\n' "$PATTERNS" > "$PATTERN_FILE"
    FINDINGS=$(printf '%s\n' "$FINDINGS" |
               grep -Ev -f "$PATTERN_FILE" || true)
    rm -f "$PATTERN_FILE"
  fi
fi

if [ -n "$FINDINGS" ]; then
  printf '%s\n' "$FINDINGS" >&2
  COUNT=$(printf '%s\n' "$FINDINGS" | wc -l)
  echo "run_analyzer.sh: $COUNT unsuppressed analyzer finding(s)" >&2
  exit 1
fi

echo "run_analyzer.sh: -fanalyzer clean over src/server + src/cluster"
exit 0
