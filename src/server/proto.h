// netclustd wire protocol: length-prefixed binary frames over TCP.
//
// Every message is one frame: an 8-byte big-endian header followed by an
// opcode-specific payload. The framing is deliberately minimal — a CDN
// edge asking "which cluster is this client in?" needs one round trip of
// a few dozen bytes, not a general RPC system:
//
//   offset  size  field
//   0       2     magic 0x4E43 ("NC")
//   2       1     version (kProtoVersion)
//   3       1     opcode
//   4       4     payload length (<= kMaxPayload)
//
// Requests: PING, LOOKUP, BATCH_LOOKUP, INGEST_UPDATE, STATS.
// Responses mirror them (PONG, LOOKUP_RESULT, ...) plus ERROR and BUSY —
// BUSY is the explicit backpressure signal (connection or in-flight-frame
// limit hit), distinct from ERROR so clients can retry instead of failing.
//
// Decoders are written in the library's Result<T> style (no exceptions,
// strict bounds, canonical-form checks) so the whole grammar is fuzzable
// exactly like the MRT/CLF parsers: src/fuzz/harness.cc FuzzProto demands
// that every accepted frame re-encodes to the identical byte string.
// INGEST_UPDATE payloads embed a standard BGP-4 UPDATE message
// (bgp::EncodeUpdate / bgp::DecodeUpdate), so a route-collector bridge
// can forward the wire bytes it already has.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/prefix_table.h"
#include "bgp/update.h"
#include "net/ip_address.h"
#include "net/prefix.h"
#include "net/result.h"

namespace netclust::server {

inline constexpr std::uint16_t kMagic = 0x4E43;  // "NC"
inline constexpr std::uint8_t kProtoVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Frame payloads are bounded so a hostile length field cannot make the
/// server allocate gigabytes before reading a single payload byte.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;  // 1 MiB
/// BATCH_LOOKUP address count bound (fits well under kMaxPayload).
inline constexpr std::uint32_t kMaxBatch = 4096;
/// PING echo payloads are capped: the echo exists for liveness probing,
/// not bulk transfer.
inline constexpr std::uint32_t kMaxPingEcho = 64;

/// Request opcodes occupy 0x01-0x7F; their responses set the high bit.
enum class Opcode : std::uint8_t {
  kPing = 0x01,
  kLookup = 0x02,
  kBatchLookup = 0x03,
  kIngestUpdate = 0x04,
  kStats = 0x05,

  kPong = 0x81,
  kLookupResult = 0x82,
  kBatchResult = 0x83,
  kIngestAck = 0x84,
  kStatsText = 0x85,
  kBusy = 0xE0,
  kError = 0xE1,
};

[[nodiscard]] bool IsRequestOpcode(Opcode opcode);
[[nodiscard]] bool IsKnownOpcode(std::uint8_t raw);
[[nodiscard]] const char* OpcodeName(Opcode opcode);

/// Error payload discriminator (first payload byte of an ERROR frame).
enum class ErrorCode : std::uint8_t {
  kMalformedFrame = 1,    // framing violated; the connection will be closed
  kMalformedPayload = 2,  // header fine, payload grammar violated
  kUnsupportedOpcode = 3,
  kShuttingDown = 4,
};

// --- big-endian primitives (shared by the codecs and their tests) ---

void PutU16(std::vector<std::uint8_t>* out, std::uint16_t value);
void PutU32(std::vector<std::uint8_t>* out, std::uint32_t value);
void PutU64(std::vector<std::uint8_t>* out, std::uint64_t value);
[[nodiscard]] std::uint16_t GetU16(const std::uint8_t* data);
[[nodiscard]] std::uint32_t GetU32(const std::uint8_t* data);
[[nodiscard]] std::uint64_t GetU64(const std::uint8_t* data);

// --- frame layer ---

struct FrameHeader {
  std::uint8_t version = kProtoVersion;
  Opcode opcode = Opcode::kPing;
  std::uint32_t payload_size = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes a complete frame (header + payload). The payload must not
/// exceed kMaxPayload.
[[nodiscard]] std::vector<std::uint8_t> EncodeFrame(
    Opcode opcode, const std::vector<std::uint8_t>& payload);

/// Decodes the 8-byte header. `size` must be >= kHeaderSize. Rejects bad
/// magic, unknown version, unknown opcode and oversized payload lengths.
[[nodiscard]] Result<FrameHeader> DecodeFrameHeader(const std::uint8_t* data,
                                                    std::size_t size);

/// Incremental frame decoder for a TCP byte stream. Feed() raw reads,
/// then drain Next() until it reports "need more". A decode error is
/// sticky: the stream is unsynchronized and the connection must be closed.
class FrameDecoder {
 public:
  void Feed(const std::uint8_t* data, std::size_t size);

  /// ok(frame)    — one complete frame, removed from the buffer;
  /// ok(nullopt)  — the buffer holds only a partial frame; feed more bytes;
  /// error        — protocol violation (bad magic/version/opcode/length).
  [[nodiscard]] Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // compacted lazily
};

// --- payload codecs ---

struct LookupRequest {
  net::IpAddress address;

  friend bool operator==(const LookupRequest&, const LookupRequest&) = default;
};

struct BatchLookupRequest {
  std::vector<net::IpAddress> addresses;  // size <= kMaxBatch

  friend bool operator==(const BatchLookupRequest&,
                         const BatchLookupRequest&) = default;
};

struct IngestRequest {
  std::uint32_t source_id = 0;
  bgp::UpdateMessage update;  // standard BGP-4 encoding on the wire

  friend bool operator==(const IngestRequest&, const IngestRequest&) = default;
};

/// One lookup answer, 16 bytes on the wire:
///   [0] found  [1] prefix_len  [2] kind  [3] reserved(0)
///   [4..7] prefix network  [8..11] origin AS  [12..15] source mask
/// When found == 0 every other field must be zero (canonical form — the
/// strictness is what makes the fuzz round-trip property byte-exact).
struct LookupRecord {
  bool found = false;
  net::Prefix prefix;
  bgp::SourceKind kind = bgp::SourceKind::kBgpTable;
  bgp::AsNumber origin_as = 0;
  std::uint32_t source_mask = 0;

  [[nodiscard]] static LookupRecord FromMatch(
      const std::optional<bgp::PrefixTable::Match>& match);
  [[nodiscard]] std::optional<bgp::PrefixTable::Match> ToMatch() const;

  friend bool operator==(const LookupRecord&, const LookupRecord&) = default;
};
inline constexpr std::size_t kLookupRecordSize = 16;

struct IngestAck {
  /// RCU table version after the update was applied: lookups issued after
  /// this ack observe a snapshot at least this new.
  std::uint64_t table_version = 0;

  friend bool operator==(const IngestAck&, const IngestAck&) = default;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kMalformedPayload;
  std::string message;

  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> EncodeLookup(const LookupRequest& req);
[[nodiscard]] Result<LookupRequest> DecodeLookup(const std::uint8_t* data,
                                                 std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeBatchLookup(
    const BatchLookupRequest& req);
[[nodiscard]] Result<BatchLookupRequest> DecodeBatchLookup(
    const std::uint8_t* data, std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeIngest(const IngestRequest& req);
[[nodiscard]] Result<IngestRequest> DecodeIngest(const std::uint8_t* data,
                                                 std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeLookupRecord(
    const LookupRecord& record);
[[nodiscard]] Result<LookupRecord> DecodeLookupRecord(const std::uint8_t* data,
                                                      std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeBatchResult(
    const std::vector<LookupRecord>& records);
[[nodiscard]] Result<std::vector<LookupRecord>> DecodeBatchResult(
    const std::uint8_t* data, std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeIngestAck(const IngestAck& ack);
[[nodiscard]] Result<IngestAck> DecodeIngestAck(const std::uint8_t* data,
                                                std::size_t size);

[[nodiscard]] std::vector<std::uint8_t> EncodeError(const ErrorReply& error);
[[nodiscard]] Result<ErrorReply> DecodeError(const std::uint8_t* data,
                                             std::size_t size);

}  // namespace netclust::server
