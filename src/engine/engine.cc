#include "engine/engine.h"

#include <algorithm>
#include <thread>

#include "base/sync.h"

namespace netclust::engine {

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  int shards = config_.shards;
  if (shards <= 0) {
    shards = static_cast<int>(std::thread::hardware_concurrency());
    if (shards <= 0) shards = 1;
  }
  // ring_capacity = 0 would otherwise round up to a nearly useless
  // min-size ring; treat it like shards <= 0 and fall back to the default.
  if (config_.ring_capacity == 0) {
    config_.ring_capacity = EngineConfig{}.ring_capacity;
  }
  const bgp::TableHandle initial = slot_.Acquire();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<ShardWorker>(config_.ring_capacity,
                                                    initial, &metrics_));
  }
}

Engine::~Engine() { Stop(); }

void Engine::Start() {
  base::AssumeThreadRole ingest(ingest_role_);
  if (running_) return;
  for (const auto& shard : shards_) shard->Start();
  running_ = true;
}

void Engine::Stop() {
  base::AssumeThreadRole ingest(ingest_role_);
  if (!running_) return;
  for (const auto& shard : shards_) shard->Stop();
  running_ = false;
}

int Engine::AddSource(const bgp::SnapshotInfo& info) {
  base::AssumeThreadRole ingest(ingest_role_);
  return master_.AddSource(info);
}

int Engine::SeedSnapshot(const bgp::Snapshot& snapshot) {
  base::AssumeThreadRole ingest(ingest_role_);
  const int id = master_.AddSnapshot(snapshot);
  if (id == bgp::PrefixTable::kInvalidSource) return id;  // nothing inserted
  PublishDelta({}, {}, {});
  return id;
}

void Engine::Announce(const net::Prefix& prefix, int source_id,
                      bgp::AsNumber origin_as) {
  base::AssumeThreadRole ingest(ingest_role_);
  metrics_.updates_ingested.Inc();
  const bool existed = master_.Contains(prefix);
  if (!master_.Insert(prefix, source_id, origin_as)) {
    // Duplicate re-announce: the lookup-visible table is unchanged, so
    // neither a recompile nor a version bump happens — a version bump
    // would needlessly invalidate every mapping-tier cache keyed on it.
    metrics_.updates_noop.Inc();
    return;
  }
  // A refresh still publishes (attributes changed, so the directory must
  // repaint the prefix) but carries no re-resolution delta — no client
  // moves, same as StreamingClusterer::Announce.
  PublishDelta({},
               existed ? std::vector<net::Prefix>{}
                       : std::vector<net::Prefix>{prefix},
               {prefix});
}

void Engine::Withdraw(const net::Prefix& prefix) {
  base::AssumeThreadRole ingest(ingest_role_);
  metrics_.updates_ingested.Inc();
  if (!master_.Remove(prefix)) {
    metrics_.updates_noop.Inc();  // spurious: table unchanged, no publish
    return;
  }
  PublishDelta({prefix}, {}, {prefix});
}

void Engine::AbsorbUpdate(const bgp::UpdateMessage& update, int source_id,
                          std::vector<net::Prefix>* withdrawn,
                          std::vector<net::Prefix>* announced,
                          std::vector<net::Prefix>* touched) {
  for (const net::Prefix& prefix : update.withdrawn) {
    if (master_.Remove(prefix)) {
      withdrawn->push_back(prefix);
      touched->push_back(prefix);
    }
  }
  const bgp::AsNumber origin =
      update.as_path.empty() ? 0 : update.as_path.back();
  for (const net::Prefix& prefix : update.announced) {
    const bool existed = master_.Contains(prefix);
    if (!master_.Insert(prefix, source_id, origin)) continue;  // duplicate
    if (!existed) announced->push_back(prefix);
    touched->push_back(prefix);
  }
}

void Engine::ApplyUpdate(const bgp::UpdateMessage& update, int source_id) {
  base::AssumeThreadRole ingest(ingest_role_);
  metrics_.updates_ingested.Inc();
  std::vector<net::Prefix> withdrawn;
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> touched;
  AbsorbUpdate(update, source_id, &withdrawn, &announced, &touched);
  if (touched.empty()) {
    // Duplicate announces and spurious withdraws only: nothing in the
    // table changed, so publishing would churn caches for no reason.
    metrics_.updates_noop.Inc();
    return;
  }
  PublishDelta(std::move(withdrawn), std::move(announced),
               std::move(touched));
}

std::size_t Engine::ApplyUpdateBatch(
    std::span<const bgp::UpdateMessage> updates, int source_id) {
  base::AssumeThreadRole ingest(ingest_role_);
  metrics_.update_batches.Inc();
  std::vector<net::Prefix> withdrawn;
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> touched;
  std::size_t changed = 0;
  for (const bgp::UpdateMessage& update : updates) {
    metrics_.updates_ingested.Inc();
    const std::size_t before = touched.size();
    AbsorbUpdate(update, source_id, &withdrawn, &announced, &touched);
    if (touched.size() == before) {
      metrics_.updates_noop.Inc();
    } else {
      ++changed;
    }
  }
  if (touched.empty()) return 0;
  PublishDelta(std::move(withdrawn), std::move(announced),
               std::move(touched));
  return changed;
}

void Engine::PublishDelta(std::vector<net::Prefix> withdrawn,
                          std::vector<net::Prefix> announced,
                          std::vector<net::Prefix> touched) {
  const std::uint64_t start = NowNs();
  bgp::PrefixTable copy = master_;  // deep clone; readers keep the old one
  // The ingest thread is the slot's one publisher.
  base::AssumeThreadRole publisher(slot_.publisher_role());
  bgp::TableHandle handle;
  if (touched.empty()) {
    // The seed path: everything changed, compile from scratch.
    handle = slot_.Publish(std::move(copy));
    metrics_.full_publishes.Inc();
  } else {
    handle = slot_.Publish(std::move(copy), touched);
    metrics_.delta_publishes.Inc();
  }
  metrics_.swaps_published.Inc();
  metrics_.swap_build_ns.Record(NowNs() - start);

  const auto delta = std::make_shared<const TableDelta>(
      TableDelta{handle, std::move(withdrawn), std::move(announced)});
  for (const auto& shard : shards_) {
    base::AssumeThreadRole producer(shard->producer_role());
    Event event;
    event.kind = Event::Kind::kSwap;
    event.delta = delta;
    shard->Push(std::move(event));  // control events are never dropped
  }
}

int Engine::ShardOf(net::IpAddress client) const {
  // Finalize the full hash width (murmur3 fmix64) before reducing: a plain
  // shift would be UB where size_t is 32-bit and discards half the entropy
  // everywhere else.
  std::uint64_t h = std::hash<net::IpAddress>{}(client);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return static_cast<int>(h % shards_.size());
}

bool Engine::Observe(net::IpAddress client, std::uint32_t url_id,
                     std::uint32_t bytes, std::int64_t timestamp) {
  base::AssumeThreadRole ingest(ingest_role_);
  Event event;
  event.kind = Event::Kind::kRequest;
  event.client = client;
  event.url_id = url_id;
  event.bytes = bytes;
  event.timestamp = timestamp;
  ShardWorker& shard = *shards_[static_cast<std::size_t>(ShardOf(client))];
  base::AssumeThreadRole producer(shard.producer_role());

  const std::uint64_t start = NowNs();
  if (config_.backpressure == BackpressurePolicy::kBlock) {
    shard.Push(std::move(event));
  } else if (!shard.TryPush(std::move(event))) {
    metrics_.requests_dropped.Inc();
    return false;
  }
  metrics_.requests_ingested.Inc();
  metrics_.ingest_ns.Record(NowNs() - start);
  return true;
}

std::size_t Engine::ObserveLog(const weblog::ServerLog& log) {
  std::size_t accepted = 0;
  for (const weblog::CompactRequest& request : log.requests()) {
    if (Observe(request.client, request.url_id, request.response_bytes,
                request.timestamp)) {
      ++accepted;
    }
  }
  return accepted;
}

std::optional<bgp::PrefixTable::Match> Engine::Lookup(
    net::IpAddress address) const {
  metrics_.lookups_served.Inc();
  // Resolve against the flat directory compiled at publish time: at most
  // three contiguous-array reads instead of a Patricia node walk. The
  // stored payload IS the complete Match (prefix included).
  const bgp::TableHandle handle = slot_.Acquire();
  const auto match = handle.flat().LongestMatch(address);
  if (!match.has_value()) return std::nullopt;
  return *match->value;
}

std::size_t Engine::LookupBatch(
    std::span<const net::IpAddress> addresses,
    std::span<std::optional<bgp::PrefixTable::Match>> out) const {
  const std::size_t count = std::min(addresses.size(), out.size());
  metrics_.lookups_served.Inc(count);
  metrics_.batch_lookups.Inc();
  // One RCU acquire covers the whole batch: every answer comes from the
  // same snapshot, and the per-lookup refcount traffic is amortized away.
  const bgp::TableHandle handle = slot_.Acquire();
  const bgp::PrefixTable::Flat& flat = handle.flat();
  std::size_t found = 0;
  constexpr std::size_t kChunk = 256;
  bgp::PrefixTable::Flat::Match matches[kChunk];
  for (std::size_t base = 0; base < count; base += kChunk) {
    const std::size_t n = std::min(kChunk, count - base);
    flat.LookupBatch(addresses.subspan(base, n), std::span(matches, n));
    for (std::size_t i = 0; i < n; ++i) {
      if (matches[i].value == nullptr) {
        out[base + i] = std::nullopt;
      } else {
        out[base + i] = *matches[i].value;
        ++found;
      }
    }
  }
  return found;
}

void Engine::Drain() {
  base::AssumeThreadRole ingest(ingest_role_);
  for (const auto& shard : shards_) {
    // The ingest thread is the producer, so pushed() is its own counter.
    base::AssumeThreadRole producer(shard->producer_role());
    const std::uint64_t target = shard->pushed();
    while (shard->processed() < target) {
      std::this_thread::yield();
    }
  }
  metrics_.drains.Inc();
}

core::Clustering Engine::Snapshot() {
  Drain();
  base::AssumeThreadRole ingest(ingest_role_);
  std::vector<const core::AssignmentState*> states;
  states.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // Drain() quiesced the worker: its release of processed_ has been
    // observed, so the consumer role is safely assumed by this thread
    // until the next push.
    base::AssumeThreadRole consumer(shard->consumer_role());
    states.push_back(&shard->state());
  }
  return core::AssignmentState::Merge("network-aware-streaming",
                                      config_.log_name, states);
}

}  // namespace netclust::engine
