// Figure 12: per-proxy performance of the top-100 client clusters of the
// Nagano log (ranked by requests), with infinite proxy caches — requests
// and bytes per cluster, then per-proxy hit ratio and byte hit ratio, for
// both clustering approaches.
//
// Paper: the simple approach's fragmented clusters see far less traffic
// per proxy and mis-estimate the achievable per-proxy hit ratios.
#include <cstdio>

#include "bench_common.h"
#include "cache/simulation.h"
#include "core/cluster.h"
#include "core/detect.h"
#include "core/metrics.h"

namespace {

using namespace netclust;

void Report(const weblog::ServerLog& log, const core::Clustering& clustering,
            const char* label) {
  cache::SimulationConfig config;
  config.proxy.ttl_seconds = 3600;
  config.proxy.capacity_bytes = 0;  // infinite, per the paper
  config.min_url_accesses = 10;
  const auto result = cache::SimulateProxyCaching(log, clustering, config);

  const auto order = core::OrderByRequests(clustering);
  const std::size_t top = std::min<std::size_t>(order.size(), 100);

  std::vector<std::pair<double, double>> requests;
  std::vector<std::pair<double, double>> kilobytes;
  std::vector<std::pair<double, double>> hit_ratio;
  std::vector<std::pair<double, double>> byte_hit_ratio;
  for (std::size_t rank = 0; rank < top; ++rank) {
    const auto& proxy = result.proxies[order[rank]];
    const double x = static_cast<double>(rank + 1);
    requests.emplace_back(x, static_cast<double>(proxy.requests));
    kilobytes.emplace_back(
        x, static_cast<double>(proxy.bytes_requested) / 1024.0);
    hit_ratio.emplace_back(x, 100.0 * proxy.HitRatio());
    byte_hit_ratio.emplace_back(x, 100.0 * proxy.ByteHitRatio());
  }

  std::printf("\n=== %s (top %zu clusters by requests) ===\n", label, top);
  bench::PrintSeries("Fig 12(a): requests per cluster", "rank", "requests",
                     requests, 14);
  bench::PrintSeries("Fig 12(b): requested KB per cluster", "rank", "KB",
                     kilobytes, 14);
  bench::PrintSeries("Fig 12(c): proxy hit ratio", "rank", "hit %",
                     hit_ratio, 14);
  bench::PrintSeries("Fig 12(d): proxy byte hit ratio", "rank", "byte hit %",
                     byte_hit_ratio, 14);

  double mean_hit = 0.0;
  for (const auto& [x, y] : hit_ratio) mean_hit += y;
  std::printf("mean top-%zu proxy hit ratio: %.1f%%\n", top,
              mean_hit / static_cast<double>(top));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 12 — per-proxy performance of the top-100 clusters (Nagano)",
      "infinite caches; simple-approach proxies each see a fraction of the "
      "community's traffic and mis-estimate achievable hit ratios");

  const auto& scenario = bench::GetScenario();
  const auto generated = bench::MakeLog(bench::LogPreset::kNagano);
  const core::Clustering raw =
      core::ClusterNetworkAware(generated.log, scenario.table);
  const auto detection = core::DetectSpidersAndProxies(generated.log, raw);
  const weblog::ServerLog log =
      core::RemoveClients(generated.log, detection.AllAddresses());

  Report(log, core::ClusterNetworkAware(log, scenario.table),
         "network-aware");
  Report(log, core::ClusterSimple(log), "simple");
  return 0;
}
