// Bit-level helpers shared by the trie implementations.
#pragma once

#include <bit>
#include <cstdint>

#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::trie {

/// Bit of `bits` at position `index`, where 0 is the most significant bit —
/// the order in which routing lookups consume address bits.
[[nodiscard]] constexpr int BitAt(std::uint32_t bits, int index) {
  return static_cast<int>((bits >> (31 - index)) & 1u);
}

[[nodiscard]] constexpr int BitAt(net::IpAddress address, int index) {
  return BitAt(address.bits(), index);
}

/// Length of the common leading bit run of two 32-bit values.
[[nodiscard]] constexpr int CommonPrefixLength(std::uint32_t a,
                                               std::uint32_t b) {
  return std::countl_zero(a ^ b);
}

}  // namespace netclust::trie
