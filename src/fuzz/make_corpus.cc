// Regenerates the checked-in fuzz seed corpus (tests/corpus/).
//
//   make_corpus <output-dir>
//
// Seeds come from the synth writers — the same generators the benches use —
// so every harness starts from structurally valid MRT, §3.1.2 text and CLF
// inputs, plus crafted "crasher" inputs, one per decode/ingest bug fixed in
// the repo, named crash-*. The corpus is committed; rerun this only to
// extend it, and review the diff.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/mrt.h"
#include "bgp/text_parser.h"
#include "bgp/update.h"
#include "server/proto.h"
#include "synth/internet.h"
#include "synth/vantage.h"
#include "synth/workload.h"
#include "weblog/log.h"

namespace {

namespace fs = std::filesystem;
using netclust::bgp::Snapshot;

void WriteBytes(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

void WriteText(const fs::path& path, const std::string& text) {
  WriteBytes(path, std::vector<std::uint8_t>(text.begin(), text.end()));
}

// Payload prefixed with the fuzz_roundtrip mode byte (0 = MRT, 1 = text).
std::vector<std::uint8_t> WithMode(std::uint8_t mode,
                                   std::vector<std::uint8_t> payload) {
  payload.insert(payload.begin(), mode);
  return payload;
}

// Minimal big-endian byte writer for crafting raw MRT crashers.
struct ByteWriter {
  std::vector<std::uint8_t> bytes;
  void U8(std::uint8_t v) { bytes.push_back(v); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v >> 8));
    U8(static_cast<std::uint8_t>(v));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v >> 16));
    U16(static_cast<std::uint16_t>(v));
  }
  void Append(const ByteWriter& other) {
    bytes.insert(bytes.end(), other.bytes.begin(), other.bytes.end());
  }
  void Header(std::uint16_t type, std::uint16_t subtype, std::uint32_t len) {
    U32(0);  // timestamp
    U16(type);
    U16(subtype);
    U32(len);
  }
};

// A TABLE_DUMP_V2 stream whose single RIB entry carries a 305-hop AS path
// split over two AS_SEQUENCE segments. Decodes fine; the pre-fix WriteMrt
// truncated the segment count byte on re-encode, so the round-trip
// property catches any regression of that bug.
std::vector<std::uint8_t> AsPathOverflowMrt() {
  ByteWriter peer;
  peer.U32(0x0A000001);  // collector BGP ID
  peer.U16(4);
  for (const char c : {'F', 'U', 'Z', 'Z'}) {
    peer.U8(static_cast<std::uint8_t>(c));
  }
  peer.U16(1);           // peer count
  peer.U8(0x02);         // IPv4 peer, 4-byte AS
  peer.U32(0x0A000002);  // peer BGP ID
  peer.U32(0x0A000002);  // peer address
  peer.U32(65000);       // peer AS

  ByteWriter attrs;
  attrs.U8(0x40);  // ORIGIN: transitive
  attrs.U8(1);
  attrs.U8(1);
  attrs.U8(0);
  ByteWriter seg;
  seg.U8(2);  // AS_SEQUENCE
  seg.U8(255);
  for (std::uint32_t i = 0; i < 255; ++i) seg.U32(i + 1);
  seg.U8(2);
  seg.U8(50);
  for (std::uint32_t i = 0; i < 50; ++i) seg.U32(70000 + i);
  attrs.U8(0x50);  // AS_PATH: transitive + extended length
  attrs.U8(2);
  attrs.U16(static_cast<std::uint16_t>(seg.bytes.size()));
  attrs.Append(seg);
  attrs.U8(0x40);  // NEXT_HOP
  attrs.U8(3);
  attrs.U8(4);
  attrs.U32(0x0A000002);

  ByteWriter rib;
  rib.U32(0);  // sequence
  rib.U8(24);  // prefix 10.0.1.0/24
  rib.U8(10);
  rib.U8(0);
  rib.U8(1);
  rib.U16(1);  // entry count
  rib.U16(0);  // peer index
  rib.U32(0);  // originated time
  rib.U16(static_cast<std::uint16_t>(attrs.bytes.size()));
  rib.Append(attrs);

  ByteWriter out;
  out.Header(13, 1, static_cast<std::uint32_t>(peer.bytes.size()));
  out.Append(peer);
  out.Header(13, 2, static_cast<std::uint32_t>(rib.bytes.size()));
  out.Append(rib);
  return out.bytes;
}

std::string FirstLines(const std::string& text, std::size_t count) {
  std::size_t pos = 0;
  while (count > 0 && pos < text.size()) {
    pos = text.find('\n', pos);
    if (pos == std::string::npos) return text;
    ++pos;
    --count;
  }
  return text.substr(0, pos);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_corpus <output-dir>\n";
    return 2;
  }
  const fs::path root(argv[1]);
  for (const char* dir : {"mrt", "text", "clf", "roundtrip", "proto"}) {
    fs::create_directories(root / dir);
  }

  using namespace netclust;

  // --- Structurally valid seeds from the synth generators. ---
  synth::InternetConfig internet_config;
  internet_config.seed = 7;
  internet_config.allocation_count = 220;
  const synth::Internet internet = synth::GenerateInternet(internet_config);
  const synth::VantageGenerator vantages(internet,
                                         synth::DefaultVantageProfiles());

  Snapshot small = vantages.MakeSnapshot(0, 0);
  if (small.entries.size() > 64) small.entries.resize(64);
  Snapshot tiny = vantages.MakeSnapshot(3, 1);
  if (tiny.entries.size() > 24) tiny.entries.resize(24);
  const Snapshot empty{small.info, {}};

  WriteBytes(root / "mrt" / "seed-tabledump-v2", bgp::WriteMrt(small, 1));
  WriteBytes(root / "mrt" / "seed-tabledump-v1", bgp::WriteMrtV1(tiny, 2));
  WriteBytes(root / "mrt" / "seed-empty", bgp::WriteMrt(empty, 3));
  {
    // Both generations in one stream, as ReadMrt supports.
    std::vector<std::uint8_t> mixed = bgp::WriteMrt(tiny, 4);
    const std::vector<std::uint8_t> v1 = bgp::WriteMrtV1(tiny, 4);
    mixed.insert(mixed.end(), v1.begin(), v1.end());
    WriteBytes(root / "mrt" / "seed-mixed-generations", mixed);
  }

  // --- BGP4MP live-feed seeds: announce, withdraw, AS4 and state-change
  // records, as a collector's tail would deliver them. ---
  {
    const net::IpAddress peer(10, 0, 0, 2);
    bgp::UpdateMessage announce;
    announce.announced = {net::Prefix::Parse("10.0.1.0/24").value(),
                          net::Prefix::Parse("151.198.192.0/18").value()};
    announce.as_path = {7018, 1742};
    announce.next_hop = peer;
    WriteBytes(root / "mrt" / "seed-bgp4mp-announce",
               bgp::WriteBgp4mpUpdate(announce, 100, 7018, peer, false));

    bgp::UpdateMessage withdraw;
    withdraw.withdrawn = {net::Prefix::Parse("10.0.1.0/24").value()};
    WriteBytes(root / "mrt" / "seed-bgp4mp-withdraw",
               bgp::WriteBgp4mpUpdate(withdraw, 101, 7018, peer, false));

    // AS4 flavor: a 4-byte-only AS number that the 2-byte encoding would
    // clamp to AS_TRANS.
    bgp::UpdateMessage wide = announce;
    wide.as_path = {70'000, 1742};
    WriteBytes(root / "mrt" / "seed-bgp4mp-as4",
               bgp::WriteBgp4mpUpdate(wide, 102, 70'000, peer, true));

    // A session bounce around an UPDATE, one stream: the decoder must
    // interleave state-change and update events.
    std::vector<std::uint8_t> bounce =
        bgp::WriteBgp4mpStateChange(103, 7018, peer, 6, 1, false);
    const std::vector<std::uint8_t> mid =
        bgp::WriteBgp4mpUpdate(withdraw, 104, 7018, peer, false);
    const std::vector<std::uint8_t> up =
        bgp::WriteBgp4mpStateChange(105, 7018, peer, 1, 6, true);
    bounce.insert(bounce.end(), mid.begin(), mid.end());
    bounce.insert(bounce.end(), up.begin(), up.end());
    WriteBytes(root / "mrt" / "seed-bgp4mp-state-change", bounce);
  }

  WriteText(root / "text" / "seed-cidr",
            bgp::WriteSnapshotText(small, net::PrefixStyle::kCidr));
  WriteText(root / "text" / "seed-dotted-mask",
            bgp::WriteSnapshotText(small, net::PrefixStyle::kDottedMask));
  WriteText(root / "text" / "seed-classful",
            bgp::WriteSnapshotText(tiny, net::PrefixStyle::kClassful));

  synth::WorkloadConfig workload_config;
  workload_config.seed = 11;
  workload_config.target_clients = 40;
  workload_config.target_requests = 160;
  workload_config.url_count = 48;
  workload_config.spider_count = 1;
  workload_config.proxy_count = 1;
  const synth::GeneratedLog generated =
      synth::GenerateLog(internet, workload_config);
  std::ostringstream clf;
  generated.log.WriteClfStream(clf);
  WriteText(root / "clf" / "seed-synth-log", FirstLines(clf.str(), 40));

  WriteBytes(root / "roundtrip" / "seed-mrt-v2",
             WithMode(0, bgp::WriteMrt(tiny, 5)));
  WriteBytes(root / "roundtrip" / "seed-mrt-v1",
             WithMode(0, bgp::WriteMrtV1(tiny, 6)));
  {
    const std::string text =
        bgp::WriteSnapshotText(tiny, net::PrefixStyle::kDottedMask);
    WriteBytes(root / "roundtrip" / "seed-text-dotted",
               WithMode(1, std::vector<std::uint8_t>(text.begin(), text.end())));
  }

  // --- Hand-written seeds exercising grammar corners. ---
  WriteText(root / "text" / "seed-grammar-corners",
            "# comment line\n"
            "\n"
            "12.65.128/255.255.224 198.32.8.1 7018 1742 | AT&T | peer-east\n"
            "18 3 | MIT\n"
            "128.32/16\n"
            "192.0.2.0/24 64512\n"
            "0/0\n"
            "10.0.0.0/255.0.255.0 this line is malformed\n"
            "not-a-prefix either\n"
            "151.198.194.16/28 4969 | ISP resale block\n");
  WriteText(root / "clf" / "seed-grammar-corners",
            "12.65.143.222 - - [13/Feb/1998:02:03:04 +0900] "
            "\"GET /index.html HTTP/1.0\" 200 4521\n"
            "198.32.8.1 - alice [01/Jan/1999:23:59:60 -0130] "
            "\"POST /cgi/form HTTP/1.1\" 302 -\n"
            "10.1.2.3 - - [28/Feb/2000:12:00:00 +0000] \"HEAD /x\" 404 0 "
            "\"http://ref/\" \"Mozilla/4.0 (compatible)\"\n"
            "0.0.0.0 - - [13/Feb/1998:00:00:01 +0000] \"GET / HTTP/1.0\" 200 1\n"
            "broken line without enough fields\n");

  // --- Named crashers: one per decode/ingest bug fixed in this repo. ---
  // ParseAbbreviatedQuad accepted leading-zero octets that
  // IpAddress::Parse rejects (octal-spoof disagreement). No trailing
  // newline: the quad-consistency check wants a bare token.
  WriteText(root / "text" / "crash-leading-zero-octet", "012.65.3.4");
  WriteText(root / "text" / "seed-leading-zero-prefix", "012.65/16\n");
  // WriteMrt truncated the AS_PATH segment count byte for paths > 255 hops.
  WriteBytes(root / "mrt" / "crash-mrt-aspath-overflow", AsPathOverflowMrt());
  // ReadMrt hard-failed a stream whose trailing record declares more bytes
  // than remain (a partial collector download), discarding every record
  // decoded before the cut. Now a counted truncation: this seed is a valid
  // v2 snapshot followed by a header claiming a 4 KiB body that never
  // arrives, and must yield the snapshot plus truncated_records == 1.
  {
    std::vector<std::uint8_t> cut = bgp::WriteMrt(tiny, 12);
    ByteWriter dangling;
    dangling.Header(13, 2, 4096);
    dangling.U32(0);  // 4 of the 4096 promised bytes
    cut.insert(cut.end(), dangling.bytes.begin(), dangling.bytes.end());
    WriteBytes(root / "mrt" / "crash-mrt-truncated-header", cut);
  }
  WriteBytes(root / "roundtrip" / "crash-roundtrip-aspath-overflow",
             WithMode(0, AsPathOverflowMrt()));
  // ParseClfTimestamp accepted a zone-shifted instant in year 10000, which
  // FormatClfTimestamp renders 5-digit and the parser then rejects.
  WriteText(root / "clf" / "crash-clf-year-10000",
            "1.2.3.4 - - [31/Dec/9999:23:59:59 -0200] "
            "\"GET /x HTTP/1.0\" 200 17\n");
  // NextField let junk glue onto a closing quote, shifting later field
  // boundaries so the agent value swallowed a '"' that FormatClfLine then
  // emitted as an unparseable line. Found by the smoke fuzzer.
  WriteText(root / "clf" / "crash-clf-glued-quote",
            "176.49.142.30 - - [13/Feb/1998:02:19:43 +0000] "
            "\"GET /p14.html HTTP/1.0\" 200 3152 "
            "\"-\"!\"Mozilla/4.0 (compatible; MSIE 5.0; Windows 98)\"\n");
  // ParseClfTimestamp accepted negative hh/mm/ss fields ("-1" parses); the
  // acceptance bug itself is pinned by a unit test, this seed keeps the
  // shape in the mutation pool.
  WriteText(root / "clf" / "seed-negative-time",
            "1.2.3.4 - - [01/Jan/1999:-1:-1:-1 +0000] "
            "\"GET / HTTP/1.0\" 200 0\n");

  // --- netclustd wire-protocol seeds (fuzz_proto). ---
  {
    using server::EncodeFrame;
    using server::Opcode;

    WriteBytes(root / "proto" / "seed-ping",
               EncodeFrame(Opcode::kPing, {0xDE, 0xAD, 0xBE, 0xEF}));
    WriteBytes(root / "proto" / "seed-stats", EncodeFrame(Opcode::kStats, {}));
    WriteBytes(root / "proto" / "seed-lookup",
               EncodeFrame(Opcode::kLookup,
                           server::EncodeLookup(
                               {net::IpAddress(12, 65, 143, 222)})));
    {
      server::BatchLookupRequest batch;
      batch.addresses = {net::IpAddress(10, 0, 1, 7),
                         net::IpAddress(151, 198, 194, 17),
                         net::IpAddress(198, 32, 8, 1)};
      // A stream of two frames: the batch, then a ping — exercises the
      // incremental decoder's multi-frame path from the first mutation.
      std::vector<std::uint8_t> stream = EncodeFrame(
          Opcode::kBatchLookup, server::EncodeBatchLookup(batch));
      const std::vector<std::uint8_t> ping =
          EncodeFrame(Opcode::kPing, {0x01});
      stream.insert(stream.end(), ping.begin(), ping.end());
      WriteBytes(root / "proto" / "seed-batch-then-ping", stream);
    }
    {
      bgp::UpdateMessage update;
      update.withdrawn = {net::Prefix::Parse("192.0.2.0/24").value()};
      update.announced = {net::Prefix::Parse("10.0.1.0/24").value(),
                          net::Prefix::Parse("151.198.192.0/18").value()};
      update.as_path = {7018, 1742, 4969};
      WriteBytes(root / "proto" / "seed-ingest",
                 EncodeFrame(Opcode::kIngestUpdate,
                             server::EncodeIngest({1, update})));
    }
    {
      server::LookupRecord found;
      found.found = true;
      found.prefix = net::Prefix::Parse("12.65.128.0/19").value();
      found.kind = bgp::SourceKind::kBgpTable;
      found.origin_as = 7018;
      found.source_mask = 0x5;
      WriteBytes(root / "proto" / "seed-lookup-result",
                 EncodeFrame(Opcode::kLookupResult,
                             server::EncodeLookupRecord(found)));
      WriteBytes(root / "proto" / "seed-batch-result",
                 EncodeFrame(Opcode::kBatchResult,
                             server::EncodeBatchResult(
                                 {found, server::LookupRecord{}})));
    }
    WriteBytes(root / "proto" / "seed-ingest-ack",
               EncodeFrame(Opcode::kIngestAck,
                           server::EncodeIngestAck({42})));
    WriteBytes(root / "proto" / "seed-error",
               EncodeFrame(Opcode::kError,
                           server::EncodeError(
                               {server::ErrorCode::kMalformedPayload,
                                "BATCH_LOOKUP length disagrees"})));

    // Cluster-mode opcodes (PR 6): topology, routed lookups, redirect,
    // stats record — canonical payloads so mutations explore the strict
    // decoders from valid starting points.
    {
      server::Topology topo;
      topo.epoch = 3;
      topo.nodes = {{1, net::IpAddress(127, 0, 0, 1), 4730},
                    {2, net::IpAddress(127, 0, 0, 1), 4731},
                    {5, net::IpAddress(127, 0, 0, 1), 4732}};
      topo.ranges = {{0, 20000, 0},
                     {20000, 30000, 2},
                     {50000, server::kShardBlockCount - 50000, 1}};
      const std::vector<std::uint8_t> wire = server::EncodeTopology(topo);
      WriteBytes(root / "proto" / "seed-set-topology",
                 EncodeFrame(Opcode::kSetTopology, wire));
      WriteBytes(root / "proto" / "seed-topology-reply",
                 EncodeFrame(Opcode::kTopologyReply, wire));
      WriteBytes(root / "proto" / "seed-topology",
                 EncodeFrame(Opcode::kTopology, {}));
      WriteBytes(root / "proto" / "seed-set-topology-ack",
                 EncodeFrame(Opcode::kSetTopologyAck,
                             server::EncodeTopologyAck(topo.epoch)));

      // Non-canonical reject: a gap in the block coverage. The decoder
      // must refuse it (and chunked/whole must agree).
      server::Topology gap = topo;
      gap.ranges[1].block_count -= 1;
      WriteBytes(root / "proto" / "seed-set-topology-gap",
                 EncodeFrame(Opcode::kSetTopology,
                             server::EncodeTopology(gap)));
    }
    {
      server::ClusterLookupRequest req;
      req.epoch = 3;
      req.addresses = {net::IpAddress(12, 65, 143, 222),
                       net::IpAddress(151, 198, 194, 17)};
      WriteBytes(root / "proto" / "seed-cluster-lookup",
                 EncodeFrame(Opcode::kClusterLookup,
                             server::EncodeClusterLookup(req)));

      server::LookupRecord found;
      found.found = true;
      found.prefix = net::Prefix::Parse("151.198.192.0/18").value();
      found.kind = bgp::SourceKind::kBgpTable;
      found.origin_as = 1742;
      found.source_mask = 0x1;
      server::ClusterResult result;
      result.epoch = 3;
      result.records = {found, server::LookupRecord{}};
      WriteBytes(root / "proto" / "seed-cluster-result",
                 EncodeFrame(Opcode::kClusterResult,
                             server::EncodeClusterResult(result)));
    }
    WriteBytes(root / "proto" / "seed-redirect",
               EncodeFrame(Opcode::kRedirect,
                           server::EncodeRedirect(
                               {server::RedirectReason::kStaleEpoch, 4})));
    {
      server::ClusterStatsRecord record;
      record.epoch = 3;
      record.node_id = 2;
      record.frames_decoded = 1200;
      record.lookups_served = 800;
      record.cluster_lookups_served = 350;
      record.busy_replies = 4;
      record.redirects_sent = 2;
      record.connections_active = 3;
      record.latency_sum_ns = 9'000'000;
      record.latency_buckets[3] = 700;
      record.latency_buckets[4] = 100;
      WriteBytes(root / "proto" / "seed-cluster-stats-reply",
                 EncodeFrame(Opcode::kClusterStatsReply,
                             server::EncodeClusterStats(record)));
      WriteBytes(root / "proto" / "seed-cluster-stats",
                 EncodeFrame(Opcode::kClusterStats, {}));
    }
    {
      // CDN assignment opcodes: the paper's resold-/24 example address
      // keeps the seeds on the interesting path (split-block lookups).
      const net::IpAddress client(151, 198, 194, 17);
      WriteBytes(root / "proto" / "seed-rank",
                 EncodeFrame(Opcode::kRank,
                             server::EncodeRank({3, client})));
      WriteBytes(root / "proto" / "seed-assign",
                 EncodeFrame(Opcode::kAssign,
                             server::EncodeAssign({3, client})));

      server::RankReply ranking;
      ranking.epoch = 3;
      ranking.cluster_as = 1742;
      ranking.servers = {2, 0, 5, 1};
      WriteBytes(root / "proto" / "seed-rank-reply",
                 EncodeFrame(Opcode::kRankReply,
                             server::EncodeRankReply(ranking)));

      server::AssignReply assigned;
      assigned.epoch = 3;
      assigned.status = server::AssignStatus::kClusterRanked;
      assigned.server_id = 2;
      assigned.cluster_as = 1742;
      WriteBytes(root / "proto" / "seed-assign-reply",
                 EncodeFrame(Opcode::kAssignReply,
                             server::EncodeAssignReply(assigned)));
    }

    // Crafted rejects: each pins one framing bound. None may crash, and
    // chunked/whole decode must agree on the verdict.
    {
      ByteWriter bad_magic;
      bad_magic.U16(0x4E44);  // "ND", off by one
      bad_magic.U8(1);
      bad_magic.U8(0x01);
      bad_magic.U32(0);
      WriteBytes(root / "proto" / "seed-bad-magic", bad_magic.bytes);

      ByteWriter bad_version;
      bad_version.U16(0x4E43);
      bad_version.U8(9);
      bad_version.U8(0x01);
      bad_version.U32(0);
      WriteBytes(root / "proto" / "seed-bad-version", bad_version.bytes);

      ByteWriter bad_opcode;
      bad_opcode.U16(0x4E43);
      bad_opcode.U8(1);
      bad_opcode.U8(0x7F);
      bad_opcode.U32(0);
      WriteBytes(root / "proto" / "seed-bad-opcode", bad_opcode.bytes);

      // Hostile length field: 2 GiB payload claim in an 8-byte input. The
      // decoder must reject at the header, before any allocation.
      ByteWriter oversized;
      oversized.U16(0x4E43);
      oversized.U8(1);
      oversized.U8(0x02);
      oversized.U32(0x7FFFFFFF);
      WriteBytes(root / "proto" / "seed-oversized-length", oversized.bytes);

      // Truncated: a valid LOOKUP header whose 4-byte payload never
      // arrives (the decoder must park, not crash or accept).
      ByteWriter truncated;
      truncated.U16(0x4E43);
      truncated.U8(1);
      truncated.U8(0x02);
      truncated.U32(4);
      truncated.U8(12);
      WriteBytes(root / "proto" / "seed-truncated-payload", truncated.bytes);

      // Batch whose count disagrees with its length (payload decoder
      // reject, framing accept).
      ByteWriter liar;
      liar.U16(0x4E43);
      liar.U8(1);
      liar.U8(0x03);
      liar.U32(8);
      liar.U32(7);  // claims 7 addresses, carries one
      liar.U32(0x0A000001);
      WriteBytes(root / "proto" / "seed-batch-count-lies", liar.bytes);

      // Absent lookup record with a non-zero origin AS: violates the
      // canonical-form rule the byte-exact round trip depends on.
      ByteWriter noncanonical;
      noncanonical.U16(0x4E43);
      noncanonical.U8(1);
      noncanonical.U8(0x82);
      noncanonical.U32(16);
      noncanonical.U32(0);  // found=0, len=0, kind=0, reserved=0
      noncanonical.U32(0);  // network
      noncanonical.U32(7018);  // origin AS must be zero when absent
      noncanonical.U32(0);  // source mask
      WriteBytes(root / "proto" / "seed-noncanonical-absent",
                 noncanonical.bytes);

      // ASSIGN_REPLY claiming "no server" while naming one: violates the
      // canonical-form rule (server_id must be zero at kNoServer).
      ByteWriter phantom;
      phantom.U16(0x4E43);
      phantom.U8(1);
      phantom.U8(0x8B);
      phantom.U32(15);
      phantom.U32(0);  // epoch hi
      phantom.U32(3);  // epoch lo
      phantom.U8(0);   // status kNoServer
      phantom.U16(7);  // ...but a server id anyway
      phantom.U32(1742);
      WriteBytes(root / "proto" / "seed-assign-no-server-lies",
                 phantom.bytes);
    }
  }

  std::cout << "corpus written under " << root << "\n";
  return 0;
}
