file(REMOVE_RECURSE
  "CMakeFiles/netclust_validate.dir/oracles.cc.o"
  "CMakeFiles/netclust_validate.dir/oracles.cc.o.d"
  "CMakeFiles/netclust_validate.dir/suffix.cc.o"
  "CMakeFiles/netclust_validate.dir/suffix.cc.o.d"
  "CMakeFiles/netclust_validate.dir/validation.cc.o"
  "CMakeFiles/netclust_validate.dir/validation.cc.o.d"
  "libnetclust_validate.a"
  "libnetclust_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclust_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
