# Empty compiler generated dependencies file for bench_selfcorrect.
# This may be replaced when dependencies are built.
