// Proxy placement and proxy clusters (§4.1.4).
//
// "One way to place proxies is to assign one or more proxies for each
// client cluster based on metrics such as the number of clients, number of
// requests issued, ... The proxies assigned to clients in the same client
// cluster form a proxy cluster and would co-operate with each other.
// Alternatively, ... group proxies into proxy clusters according to their
// AS numbers and geographical locations."
//
// Both flavours are implemented: AssignProxies sizes a per-cluster proxy
// pool from a load metric; GroupProxiesByAs rolls the assigned proxies up
// into AS-level co-operating groups using the origin-AS annotation the
// merged prefix table carries.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/prefix_table.h"
#include "core/cluster.h"
#include "core/oracles.h"
#include "core/threshold.h"

namespace netclust::core {

enum class PlacementMetric { kRequests, kClients, kBytes };

struct PlacementConfig {
  PlacementMetric metric = PlacementMetric::kRequests;
  /// One proxy per this much load (requests, clients or bytes depending
  /// on the metric); every busy cluster gets at least one.
  std::uint64_t load_per_proxy = 100000;
  int max_proxies_per_cluster = 8;
};

/// One busy cluster's proxy pool.
struct ProxyAssignment {
  std::size_t cluster = 0;  // index into the Clustering
  int proxies = 1;
  std::uint64_t load = 0;   // in the configured metric
};

std::vector<ProxyAssignment> AssignProxies(const Clustering& clustering,
                                           const ThresholdReport& busy,
                                           const PlacementConfig& config = {});

/// AS-level proxy cluster: all proxies serving client clusters whose
/// keying prefix originates in the same AS (and, when a RegionOracle is
/// supplied, the same geographic region — §4.1.4's "belonging to the same
/// AS and located geographically nearby").
struct ProxyGroup {
  bgp::AsNumber as_number = 0;  // 0 = origin unknown
  int region = -1;              // -1 = not regionalized / unknown
  std::vector<std::size_t> clusters;
  int proxies = 0;
  std::size_t clients = 0;
  std::uint64_t requests = 0;
};

/// Groups `assignments` by the origin AS of each cluster's prefix — and by
/// region when `geo` is non-null — descending by request volume.
std::vector<ProxyGroup> GroupProxiesByAs(
    const Clustering& clustering,
    const std::vector<ProxyAssignment>& assignments,
    const bgp::PrefixTable& table, const RegionOracle* geo = nullptr);

}  // namespace netclust::core
