file(REMOVE_RECURSE
  "CMakeFiles/spider_hunt.dir/spider_hunt.cpp.o"
  "CMakeFiles/spider_hunt.dir/spider_hunt.cpp.o.d"
  "spider_hunt"
  "spider_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
