#include "core/compare.h"

#include <unordered_map>

namespace netclust::core {
namespace {

// client address -> dense cluster label; unclustered clients get unique
// singleton labels above the cluster range.
std::unordered_map<net::IpAddress, std::uint32_t> LabelClients(
    const Clustering& clustering) {
  std::unordered_map<net::IpAddress, std::uint32_t> labels;
  labels.reserve(clustering.clients.size());
  for (std::uint32_t c = 0; c < clustering.clusters.size(); ++c) {
    for (const std::uint32_t member : clustering.clusters[c].members) {
      labels.emplace(clustering.clients[member].address, c);
    }
  }
  auto singleton = static_cast<std::uint32_t>(clustering.clusters.size());
  for (const std::uint32_t member : clustering.unclustered) {
    labels.emplace(clustering.clients[member].address, singleton++);
  }
  return labels;
}

double PairCount(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

ClusteringComparison CompareClusterings(const Clustering& left,
                                        const Clustering& right) {
  ClusteringComparison comparison;
  const auto left_labels = LabelClients(left);
  const auto right_labels = LabelClients(right);

  // Contingency counts over the shared clients.
  std::unordered_map<std::uint64_t, double> joint;   // (l,r) -> count
  std::unordered_map<std::uint32_t, double> left_n;  // l -> count
  std::unordered_map<std::uint32_t, double> right_n; // r -> count
  for (const auto& [address, l] : left_labels) {
    const auto it = right_labels.find(address);
    if (it == right_labels.end()) {
      ++comparison.only_in_left;
      continue;
    }
    ++comparison.shared_clients;
    joint[(std::uint64_t{l} << 32) | it->second] += 1.0;
    left_n[l] += 1.0;
    right_n[it->second] += 1.0;
  }
  comparison.only_in_right = right_labels.size() - comparison.shared_clients;

  const double n = static_cast<double>(comparison.shared_clients);
  if (comparison.shared_clients < 1) return comparison;

  double precision = 0.0;
  double recall = 0.0;
  double joint_pairs = 0.0;
  for (const auto& [key, count] : joint) {
    const auto l = static_cast<std::uint32_t>(key >> 32);
    const auto r = static_cast<std::uint32_t>(key);
    precision += count * (count / left_n.at(l));
    recall += count * (count / right_n.at(r));
    joint_pairs += PairCount(count);
  }
  comparison.bcubed_precision = precision / n;
  comparison.bcubed_recall = recall / n;

  if (comparison.shared_clients >= 2) {
    double left_pairs = 0.0;
    for (const auto& [l, count] : left_n) left_pairs += PairCount(count);
    double right_pairs = 0.0;
    for (const auto& [r, count] : right_n) right_pairs += PairCount(count);
    const double total_pairs = PairCount(n);
    const double disagreements =
        left_pairs + right_pairs - 2.0 * joint_pairs;
    comparison.rand_index = 1.0 - disagreements / total_pairs;
  }
  return comparison;
}

}  // namespace netclust::core
