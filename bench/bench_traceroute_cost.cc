// §3.3: cost of the optimized traceroute vs stock traceroute.
//
// Paper: "we estimate that we can save 90% of the probes and 80% of the
// waiting time by our modified traceroute", "the time consumed by sending
// one probe in the optimized traceroute is about the same as that of a
// DNS nslookup", and resolvability (name OR path) rises from ~50% to 100%.
#include <cstdio>

#include "bench_common.h"
#include "validate/oracles.h"

int main() {
  using namespace netclust;
  bench::PrintHeader(
      "§3.3 — optimized vs classic traceroute cost",
      "~90% of probes and ~80% of waiting time saved; name-or-path "
      "resolvability 100% (nslookup alone: ~50%)");

  const auto& scenario = bench::GetScenario();
  const validate::ClassicTraceroute classic(scenario.internet);
  const validate::OptimizedTraceroute optimized(scenario.internet);
  const validate::SynthNameOracle dns(scenario.internet);

  std::uint64_t classic_probes = 0;
  std::uint64_t optimized_probes = 0;
  double classic_seconds = 0.0;
  double optimized_seconds = 0.0;
  std::size_t nslookup_resolved = 0;
  std::size_t optimized_resolved = 0;
  std::size_t direct_answers = 0;
  std::size_t probed = 0;

  const auto& allocations = scenario.internet.allocations();
  for (std::size_t a = 0; a < allocations.size(); ++a) {
    const net::IpAddress host =
        scenario.internet.HostAddress(allocations[a], a % 97);
    const auto c = classic.Trace(host);
    const auto o = optimized.Trace(host);
    classic_probes += static_cast<std::uint64_t>(c.probes_sent);
    optimized_probes += static_cast<std::uint64_t>(o.probes_sent);
    classic_seconds += c.seconds;
    optimized_seconds += o.seconds;
    if (dns.Resolve(host).has_value()) ++nslookup_resolved;
    if (o.host_name.has_value() || !o.path.empty()) ++optimized_resolved;
    if (o.probes_sent == 1) ++direct_answers;
    ++probed;
  }

  std::printf("\nhosts probed: %zu\n", probed);
  std::printf("%-36s  %14s  %14s\n", "", "classic", "optimized");
  std::printf("%-36s  %14llu  %14llu\n", "probes sent",
              static_cast<unsigned long long>(classic_probes),
              static_cast<unsigned long long>(optimized_probes));
  std::printf("%-36s  %13.0fs  %13.0fs\n", "modelled waiting time",
              classic_seconds, optimized_seconds);
  std::printf("\nprobe saving: %.1f%%   (paper: ~90%%)\n",
              100.0 * (1.0 - static_cast<double>(optimized_probes) /
                                 static_cast<double>(classic_probes)));
  std::printf("time saving:  %.1f%%   (paper: ~80%%)\n",
              100.0 * (1.0 - optimized_seconds / classic_seconds));
  std::printf("\nresolved by single Max_ttl probe: %.1f%%  (paper: ~50%%)\n",
              100.0 * static_cast<double>(direct_answers) /
                  static_cast<double>(probed));
  std::printf("nslookup resolvability: %.1f%%  (paper: ~50%%)\n",
              100.0 * static_cast<double>(nslookup_resolved) /
                  static_cast<double>(probed));
  std::printf("optimized traceroute resolvability (name or path): %.1f%%  "
              "(paper: 100%%)\n",
              100.0 * static_cast<double>(optimized_resolved) /
                  static_cast<double>(probed));
  return 0;
}
