#include "validate/validation.h"

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "test_fixtures.h"
#include "validate/oracles.h"

namespace netclust::validate {
namespace {

class ValidationOnSmallWorld : public ::testing::Test {
 protected:
  ValidationOnSmallWorld()
      : world_(netclust::testing::GetSmallWorld()),
        network_aware_(
            core::ClusterNetworkAware(world_.generated.log, world_.table)),
        simple_(core::ClusterSimple(world_.generated.log)),
        dns_(world_.internet),
        traceroute_(world_.internet) {
    config_.sample_fraction = 0.25;  // sample plenty at this small scale
  }

  const netclust::testing::SmallWorld& world_;
  core::Clustering network_aware_;
  core::Clustering simple_;
  SynthNameOracle dns_;
  OptimizedTraceroute traceroute_;
  ValidationConfig config_;
};

TEST_F(ValidationOnSmallWorld, NetworkAwarePassesMostSamples) {
  const ValidationReport report =
      ValidateClustering(network_aware_, dns_, traceroute_, config_);
  ASSERT_GT(report.sampled_clusters, 50u);
  // Table 3: both tests pass in >= ~90% of sampled clusters.
  EXPECT_GT(report.NslookupPassRate(), 0.88);
  EXPECT_GT(report.TraceroutePassRate(), 0.85);
  EXPECT_GT(report.sampled_clients, report.sampled_clusters);
}

TEST_F(ValidationOnSmallWorld, NslookupResolvesAboutHalfTheClients) {
  const ValidationReport report =
      ValidateClustering(network_aware_, dns_, traceroute_, config_);
  const double rate = static_cast<double>(report.nslookup_resolved_clients) /
                      static_cast<double>(report.sampled_clients);
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST_F(ValidationOnSmallWorld, TracerouteResolvesEveryone) {
  const ValidationReport report =
      ValidateClustering(network_aware_, dns_, traceroute_, config_);
  EXPECT_EQ(report.traceroute_resolved_clients, report.sampled_clients);
  EXPECT_GT(report.traceroute_probes, 0u);
  EXPECT_GT(report.traceroute_seconds, 0.0);
}

TEST_F(ValidationOnSmallWorld, AboutHalfTheSampledClustersAreSlash24) {
  // The paper scores the simple approach by how many true clusters have a
  // /24 key (48.6% for Nagano).
  const ValidationReport report =
      ValidateClustering(network_aware_, dns_, traceroute_, config_);
  const double rate = static_cast<double>(report.length24_clusters) /
                      static_cast<double>(report.sampled_clusters);
  EXPECT_GT(rate, 0.3);
  EXPECT_LT(rate, 0.7);
  EXPECT_LE(report.min_prefix_length, 16);
  EXPECT_GE(report.max_prefix_length, 24);
}

TEST_F(ValidationOnSmallWorld, MisidentificationsSkewNonUs) {
  // §3.3 blames national gateways (non-US) for a large share of failures.
  const ValidationReport report =
      ValidateClustering(network_aware_, dns_, traceroute_, config_);
  if (report.nslookup_misidentified > 0) {
    EXPECT_GE(report.nslookup_misidentified_non_us * 2,
              report.nslookup_misidentified);
  }
}

TEST_F(ValidationOnSmallWorld, GroundTruthNetworkAwareBeatsSimple) {
  const GroundTruthReport aware =
      ValidateAgainstTruth(network_aware_, world_.internet);
  const GroundTruthReport simple =
      ValidateAgainstTruth(simple_, world_.internet);

  // The simple approach fragments every non-/24 allocation.
  EXPECT_GT(simple.too_small, aware.too_small);
  EXPECT_GT(aware.ExactRate(), simple.ExactRate());
  EXPECT_GT(aware.ExactRate(), 0.8);
  EXPECT_LT(simple.ExactRate(), 0.6);
}

TEST_F(ValidationOnSmallWorld, SimpleApproachNeverBuildsTooLargeBeyond256) {
  // A /24 cluster can never span more than 256 addresses, so its failure
  // mode is "too small"; network-aware's failure mode is "too large".
  const GroundTruthReport simple =
      ValidateAgainstTruth(simple_, world_.internet);
  const GroundTruthReport aware =
      ValidateAgainstTruth(network_aware_, world_.internet);
  EXPECT_GE(aware.too_large, simple.too_large);
}

TEST(Validation, EmptyClusteringProducesEmptyReport) {
  const auto& world = netclust::testing::GetSmallWorld();
  const SynthNameOracle dns(world.internet);
  const OptimizedTraceroute traceroute(world.internet);
  const ValidationReport report =
      ValidateClustering(core::Clustering{}, dns, traceroute);
  EXPECT_EQ(report.sampled_clusters, 0u);
  EXPECT_DOUBLE_EQ(report.NslookupPassRate(), 1.0);
  EXPECT_DOUBLE_EQ(report.TraceroutePassRate(), 1.0);
}

TEST_F(ValidationOnSmallWorld, SelectiveSamplingToleratesMinorNoise) {
  // §3.3's tolerance proposal: with a 95% bar, more clusters pass than
  // under the strict all-clients test, and the mean consistency is high.
  SelectiveValidationConfig config;
  config.sample_fraction = 0.25;
  config.tolerance = 0.95;
  const auto selective =
      SelectiveValidate(network_aware_, traceroute_, config);
  ASSERT_GT(selective.sampled_clusters, 50u);
  EXPECT_GT(selective.PassRate(), 0.9);
  EXPECT_GT(selective.mean_consistency, 0.93);
  EXPECT_GT(selective.probes, 0u);

  // A perfect bar (tolerance 1.0) can only pass fewer clusters.
  SelectiveValidationConfig strict = config;
  strict.tolerance = 1.0;
  const auto exact = SelectiveValidate(network_aware_, traceroute_, strict);
  EXPECT_LE(exact.passed, selective.passed);
}

TEST_F(ValidationOnSmallWorld, RequestWeightedSamplingIsSupported) {
  SelectiveValidationConfig config;
  config.sample_fraction = 0.25;
  config.request_weighted = true;
  const auto report =
      SelectiveValidate(network_aware_, traceroute_, config);
  EXPECT_GT(report.sampled_clusters, 0u);
  EXPECT_GE(report.mean_consistency, 0.0);
  EXPECT_LE(report.mean_consistency, 1.0);
}

TEST(SelectiveValidation, EmptyClustering) {
  const auto& world = netclust::testing::GetSmallWorld();
  const OptimizedTraceroute traceroute(world.internet);
  const auto report =
      SelectiveValidate(core::Clustering{}, traceroute);
  EXPECT_EQ(report.sampled_clusters, 0u);
  EXPECT_DOUBLE_EQ(report.PassRate(), 1.0);
  EXPECT_DOUBLE_EQ(report.mean_consistency, 1.0);
}

TEST(Validation, SampleFractionScalesSampleSize) {
  const auto& world = netclust::testing::GetSmallWorld();
  const core::Clustering clustering =
      core::ClusterNetworkAware(world.generated.log, world.table);
  const SynthNameOracle dns(world.internet);
  const OptimizedTraceroute traceroute(world.internet);

  ValidationConfig small;
  small.sample_fraction = 0.05;
  ValidationConfig large;
  large.sample_fraction = 0.5;
  const auto few = ValidateClustering(clustering, dns, traceroute, small);
  const auto many = ValidateClustering(clustering, dns, traceroute, large);
  EXPECT_LT(few.sampled_clusters, many.sampled_clusters);
  EXPECT_NEAR(static_cast<double>(many.sampled_clusters),
              0.5 * static_cast<double>(clustering.cluster_count()),
              0.12 * static_cast<double>(clustering.cluster_count()));
}

}  // namespace
}  // namespace netclust::validate
