file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lpm.dir/bench_micro_lpm.cc.o"
  "CMakeFiles/bench_micro_lpm.dir/bench_micro_lpm.cc.o.d"
  "bench_micro_lpm"
  "bench_micro_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
