# Empty dependencies file for cluster_log.
# This may be replaced when dependencies are built.
