# Empty dependencies file for netclust_net.
# This may be replaced when dependencies are built.
