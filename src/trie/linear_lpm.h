// Linear-scan longest-prefix match.
//
// The O(entries) oracle: an unindexed list of prefixes scanned per lookup.
// Tests use it to cross-check both tries; the LPM microbenchmark uses it
// as the naive baseline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "net/ip_address.h"
#include "net/prefix.h"

namespace netclust::trie {

template <typename T>
class LinearLpm {
 public:
  struct Match {
    net::Prefix prefix;
    const T* value;
  };

  /// Inserts or overwrites the entry at `prefix`. Returns true if new.
  bool Insert(const net::Prefix& prefix, T value) {
    for (auto& entry : entries_) {
      if (entry.first == prefix) {
        entry.second = std::move(value);
        return false;
      }
    }
    entries_.emplace_back(prefix, std::move(value));
    return true;
  }

  bool Remove(const net::Prefix& prefix) {
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [&](const auto& entry) { return entry.first == prefix; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  [[nodiscard]] std::optional<Match> LongestMatch(
      net::IpAddress address) const {
    const std::pair<net::Prefix, T>* best = nullptr;
    for (const auto& entry : entries_) {
      if (entry.first.Contains(address) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) return std::nullopt;
    return Match{best->first, &best->second};
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<net::Prefix, T>> entries_;
};

}  // namespace netclust::trie
