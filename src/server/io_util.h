// EINTR-safe socket/file-descriptor helpers for the service layer.
//
// This is the only place in the tree where the raw POSIX I/O syscalls
// (read/write/accept/recv/send) may appear — the netclust_lint `raw-io`
// rule enforces it, and tools/lint/lint_suppressions.txt vets exactly this
// file. Everything here retries EINTR, and the Full variants add a
// deadline (poll-based, so they work on blocking and non-blocking
// descriptors alike) — a slow or stalled peer costs a bounded wait, never
// a hung thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>
#include <sys/uio.h>

#include "net/result.h"

namespace netclust::server {

/// Outcome of a bounded full-buffer I/O attempt.
enum class IoStatus {
  kOk,        // the whole buffer was transferred
  kClosed,    // orderly EOF before any byte (reads) / EPIPE (writes)
  kTimedOut,  // the deadline expired mid-transfer
};

// --- EINTR-retrying syscall wrappers ---

/// read(2), retried on EINTR.
ssize_t RetryRead(int fd, void* buffer, std::size_t size);

/// write(2), retried on EINTR. SIGPIPE is avoided via send(MSG_NOSIGNAL)
/// when `fd` is a socket-capable descriptor; plain write(2) otherwise.
ssize_t RetryWrite(int fd, const void* buffer, std::size_t size);

/// writev(2), retried on EINTR. The reactor reply path gathers every
/// queued frame of a connection into one syscall with this; EAGAIN
/// surfaces to the caller, which parks the remainder behind EPOLLOUT.
ssize_t RetryWritev(int fd, const struct iovec* iov, int iovcnt);

/// accept4(2) with SOCK_CLOEXEC, retried on EINTR.
int RetryAccept(int listen_fd);

/// close(2); EINTR is NOT retried (POSIX leaves the fd state unspecified,
/// and Linux always releases it).
void CloseFd(int fd);

/// poll(2) on one descriptor, retried on EINTR with the remaining budget.
/// Returns >0 when ready, 0 on timeout, <0 on error.
int PollOne(int fd, short events, int timeout_ms);

// --- descriptor plumbing ---

/// O_NONBLOCK on/off. Returns false on fcntl failure.
bool SetNonBlocking(int fd, bool enabled);

/// TCP_NODELAY — a lookup RPC is one small frame each way; Nagle only adds
/// latency. Best-effort (non-TCP descriptors just ignore it).
void SetNoDelay(int fd);

/// SO_SNDBUF / SO_RCVBUF. Best-effort; the kernel clamps and doubles the
/// request. Tests use tiny buffers to force EAGAIN on the reply path.
void SetSendBufferBytes(int fd, int bytes);
void SetRecvBufferBytes(int fd, int bytes);

/// Listening IPv4 TCP socket on `port` (0 = ephemeral) bound to
/// `bind_address` (host order; defaults to loopback). Non-blocking,
/// SO_REUSEADDR. With `reuse_port`, SO_REUSEPORT is set before bind so
/// several listeners can share one port and the kernel spreads accepts
/// across them (one listener per reactor). Returns the descriptor.
Result<int> CreateListener(std::uint16_t port, int backlog,
                           std::uint32_t bind_address = 0x7F000001,
                           bool reuse_port = false);

/// Blocking TCP connect to a dotted-quad `host`:`port` with a deadline.
Result<int> ConnectTcp(const std::string& host, std::uint16_t port,
                       int timeout_ms);

/// Local port a bound socket ended up on (resolves port 0 after bind).
Result<std::uint16_t> LocalPort(int fd);

// --- bounded full-buffer transfers ---

/// Reads exactly `size` bytes. kClosed only on EOF before the first byte;
/// EOF mid-buffer is an error (a torn frame). Works on blocking and
/// non-blocking descriptors (EAGAIN waits on poll within the deadline).
Result<IoStatus> ReadFull(int fd, void* buffer, std::size_t size,
                          int timeout_ms);

/// Writes exactly `size` bytes under the same deadline contract.
Result<IoStatus> WriteFull(int fd, const void* buffer, std::size_t size,
                           int timeout_ms);

}  // namespace netclust::server
